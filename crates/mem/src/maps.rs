//! Read the kernel's view of our address space (`/proc/self/maps`).
//!
//! The isomalloc layout rests on protection invariants — the guard page
//! between heap arena and stack must be `PROT_NONE`, a vacated slot must
//! not be readable — that the slot bookkeeping *believes* but cannot
//! prove. This module asks the kernel instead, so tests and the sanitizer
//! can verify the invariants against ground truth rather than against the
//! same state that would be wrong if the bookkeeping were.

/// One line of `/proc/self/maps`: a mapped range and its permissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapEntry {
    /// Start address (inclusive).
    pub start: usize,
    /// End address (exclusive).
    pub end: usize,
    /// Readable (`r` in the perms column).
    pub readable: bool,
    /// Writable (`w` in the perms column).
    pub writable: bool,
}

/// Parse `/proc/self/maps`. Returns entries in address order (the kernel
/// emits them sorted). Lines that fail to parse are skipped.
pub fn read_self_maps() -> std::io::Result<Vec<MapEntry>> {
    let text = std::fs::read_to_string("/proc/self/maps")?;
    let mut out = Vec::new();
    for line in text.lines() {
        let mut cols = line.split_whitespace();
        let (Some(range), Some(perms)) = (cols.next(), cols.next()) else {
            continue;
        };
        let Some((lo, hi)) = range.split_once('-') else {
            continue;
        };
        let (Ok(start), Ok(end)) = (
            usize::from_str_radix(lo, 16),
            usize::from_str_radix(hi, 16),
        ) else {
            continue;
        };
        out.push(MapEntry {
            start,
            end,
            readable: perms.starts_with('r'),
            writable: perms.as_bytes().get(1) == Some(&b'w'),
        });
    }
    Ok(out)
}

/// Is every byte of `[addr, addr+len)` inaccessible (`PROT_NONE` or not
/// mapped at all)? This is the ground-truth check behind the guard-page
/// and vacated-slot invariants.
pub fn range_is_unreadable(addr: usize, len: usize) -> std::io::Result<bool> {
    let end = addr.saturating_add(len);
    for e in read_self_maps()? {
        if e.readable && e.start < end && e.end > addr {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Is every byte of `[addr, addr+len)` mapped readable+writable?
pub fn range_is_read_write(addr: usize, len: usize) -> std::io::Result<bool> {
    let end = addr.saturating_add(len);
    let mut at = addr;
    // Entries are sorted; walk forward stitching contiguous rw coverage.
    for e in read_self_maps()? {
        if e.end <= at || !(e.readable && e.writable) {
            continue;
        }
        if e.start > at {
            if e.start >= end {
                break;
            }
            return Ok(false); // hole (or non-rw entry skipped) before `at`
        }
        at = e.end;
        if at >= end {
            return Ok(true);
        }
    }
    Ok(at >= end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_sys::map::{Mapping, Protection};
    use flows_sys::page::page_size;

    #[test]
    fn maps_parse_and_classify_protections() {
        let pg = page_size();
        let m = Mapping::reserve(4 * pg).unwrap(); // PROT_NONE reservation
        m.commit(pg, pg, Protection::ReadWrite).unwrap();
        let base = m.addr();
        assert!(range_is_unreadable(base, pg).unwrap(), "uncommitted page");
        assert!(range_is_read_write(base + pg, pg).unwrap(), "committed page");
        assert!(
            !range_is_unreadable(base + pg, pg).unwrap(),
            "committed page is readable"
        );
        assert!(
            !range_is_read_write(base, 2 * pg).unwrap(),
            "mixed range is not fully rw"
        );
    }

    #[test]
    fn unmapped_space_reads_as_unreadable() {
        // The zero page is never mapped in a Linux process.
        assert!(range_is_unreadable(0, 4096).unwrap());
    }
}
