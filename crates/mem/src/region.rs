//! The isomalloc region: one machine-wide address-space reservation,
//! divided into per-PE slot ranges (paper §3.4.2, Figure 2).
//!
//! All PEs agree on the region layout at startup. PE *p* allocates thread
//! slots only from its own range, so slot addresses are unique across the
//! whole (simulated) machine and a thread can migrate anywhere knowing its
//! addresses are free on the destination.

use flows_sys::error::{SysError, SysResult};
use flows_sys::map::{Mapping, Protection};
use flows_sys::page::{page_align_down, page_align_up, page_size};
use parking_lot::Mutex;
use std::sync::Arc;

/// Default preferred base of the isomalloc region: 16 TiB, far above the
/// heap and far below the stack / vdso region on x86-64 Linux.
pub const DEFAULT_BASE: usize = 0x1000_0000_0000;

/// Layout of the machine-wide isomalloc region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsoConfig {
    /// Preferred fixed base address (0 = let the kernel choose; migration
    /// still works inside one OS process because every PE shares the same
    /// mapping object, but a real multi-node machine needs the fixed base).
    pub base: usize,
    /// Number of PE ranges to carve.
    pub num_pes: usize,
    /// Slots in each PE range.
    pub slots_per_pe: usize,
    /// Bytes per slot (page multiple; stack at the top, heap at the bottom).
    pub slot_len: usize,
}

impl IsoConfig {
    /// A reasonable configuration for `num_pes` PEs: 1 MiB slots, 1024
    /// slots per PE.
    pub fn for_pes(num_pes: usize) -> IsoConfig {
        IsoConfig {
            base: DEFAULT_BASE,
            num_pes,
            slots_per_pe: 1024,
            slot_len: 1 << 20,
        }
    }

    /// Total bytes of address space the region reserves.
    pub fn total_len(&self) -> usize {
        self.num_pes * self.slots_per_pe * self.slot_len
    }

    fn validate(&self) -> SysResult<()> {
        if self.num_pes == 0 || self.slots_per_pe == 0 {
            return Err(SysError::logic("iso_config", "zero PEs or slots".into()));
        }
        if self.slot_len == 0 || !self.slot_len.is_multiple_of(page_size()) {
            return Err(SysError::logic(
                "iso_config",
                format!("slot_len {:#x} must be a positive page multiple", self.slot_len),
            ));
        }
        if !self.base.is_multiple_of(page_size()) {
            return Err(SysError::logic("iso_config", "unaligned base".into()));
        }
        Ok(())
    }
}

struct PeSlots {
    next_fresh: usize,
    free: Vec<usize>,
    live: usize,
}

/// Which parts of a slot are *warm*: still committed read-write from a
/// previous tenant. Slots keep their page protections when freed — only
/// the physical pages go back to the kernel (`madvise`) — so the next
/// tenant's commits of already-warm ranges are pure bookkeeping, no
/// syscalls. Heap commits grow up from the slot base and stack commits
/// grow down from the slot top, so two extents capture the whole history:
/// `[0, low)` and `[high, slot_len)` are read-write.
#[derive(Debug, Clone, Copy)]
struct Warm {
    low: usize,
    high: usize,
    /// A commit landed strictly between the extents, which the two-extent
    /// summary cannot represent; the slot reverts to a full decommit when
    /// dropped.
    tainted: bool,
}

/// The reserved region plus per-PE slot allocators.
pub struct IsoRegion {
    cfg: IsoConfig,
    map: Mapping,
    pes: Vec<Mutex<PeSlots>>,
    warm: Vec<Mutex<Warm>>,
}

impl std::fmt::Debug for IsoRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IsoRegion")
            .field("base", &format_args!("{:#x}", self.map.addr()))
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl IsoRegion {
    /// Reserve the region. Tries the configured fixed base first and falls
    /// back to a kernel-chosen address (reported by [`IsoRegion::base`]).
    pub fn new(cfg: IsoConfig) -> SysResult<Arc<IsoRegion>> {
        cfg.validate()?;
        let total = page_align_up(cfg.total_len());
        let map = if cfg.base != 0 {
            match Mapping::reserve_at(cfg.base, total) {
                Ok(m) => m,
                Err(_) => Mapping::reserve(total)?,
            }
        } else {
            Mapping::reserve(total)?
        };
        // Ask for transparent huge pages across the whole reservation when
        // the kernel allows anonymous THP (startup probe). Best-effort and
        // advisory: slots that commit ≥ 2 MiB contiguously may get their
        // pages assembled into huge mappings, everything else is untouched,
        // and a kernel without THP just ignores the hint.
        if crate::probe::hugepage_probe().thp_anon {
            let _ = map.advise_hugepage(0, total);
        }
        let pes = (0..cfg.num_pes)
            .map(|_| {
                Mutex::new(PeSlots {
                    next_fresh: 0,
                    free: Vec::new(),
                    live: 0,
                })
            })
            .collect();
        let warm = (0..cfg.num_pes * cfg.slots_per_pe)
            .map(|_| {
                Mutex::new(Warm {
                    low: 0,
                    high: cfg.slot_len,
                    tainted: false,
                })
            })
            .collect();
        Ok(Arc::new(IsoRegion { cfg, map, pes, warm }))
    }

    /// Actual base address of the reservation.
    pub fn base(&self) -> usize {
        self.map.addr()
    }

    /// The layout this region was built with.
    pub fn cfg(&self) -> &IsoConfig {
        &self.cfg
    }

    /// Whether the region landed at its preferred fixed base — required
    /// for cross-address-space migration on a real machine.
    pub fn at_fixed_base(&self) -> bool {
        self.cfg.base != 0 && self.map.addr() == self.cfg.base
    }

    fn slot_offset(&self, global_index: usize) -> usize {
        global_index * self.cfg.slot_len
    }

    /// Allocate a fresh slot from `pe`'s range.
    pub fn alloc_slot(self: &Arc<Self>, pe: usize) -> SysResult<Slot> {
        if pe >= self.cfg.num_pes {
            return Err(SysError::logic(
                "alloc_slot",
                format!("pe {pe} out of range ({} PEs)", self.cfg.num_pes),
            ));
        }
        let mut st = self.pes[pe].lock();
        let local = if let Some(i) = st.free.pop() {
            i
        } else if st.next_fresh < self.cfg.slots_per_pe {
            let i = st.next_fresh;
            st.next_fresh += 1;
            i
        } else {
            return Err(SysError::logic(
                "alloc_slot",
                format!("pe {pe} exhausted its {} slots", self.cfg.slots_per_pe),
            ));
        };
        st.live += 1;
        drop(st);
        Ok(Slot {
            region: Arc::clone(self),
            global_index: pe * self.cfg.slots_per_pe + local,
        })
    }

    /// Re-materialize a slot handle from its global index after migration.
    /// The caller is responsible for ensuring exactly one live handle per
    /// index (the migration protocol releases the source handle with
    /// [`Slot::into_global_index`] before the destination adopts it).
    ///
    /// Checkpoint restart adopts indices whose previous handle was
    /// *dropped* (the crashed machine's teardown freed them), so if the
    /// index sits on its home PE's free list it is reclaimed: removed from
    /// the list and counted live again. Otherwise the index is presumed
    /// still owned remotely (normal migration) and accounting is untouched.
    pub fn adopt_slot(self: &Arc<Self>, global_index: usize) -> SysResult<Slot> {
        if global_index >= self.cfg.num_pes * self.cfg.slots_per_pe {
            return Err(SysError::logic(
                "adopt_slot",
                format!("slot index {global_index} out of range"),
            ));
        }
        let pe = global_index / self.cfg.slots_per_pe;
        let local = global_index % self.cfg.slots_per_pe;
        let mut st = self.pes[pe].lock();
        if let Some(pos) = st.free.iter().position(|&i| i == local) {
            st.free.swap_remove(pos);
            st.live += 1;
        } else if local >= st.next_fresh {
            // Never allocated by THIS region instance: the image comes
            // from another process of the same machine (cross-process
            // recovery respawn), whose region allocated the index out of
            // its own instance of this PE's range. Materialize it here —
            // skipped fresh indices go to the free list so the invariant
            // "every index is free-listed, fresh, or live" holds and the
            // eventual drop balances.
            for i in st.next_fresh..local {
                st.free.push(i);
            }
            st.next_fresh = local + 1;
            st.live += 1;
        }
        drop(st);
        Ok(Slot {
            region: Arc::clone(self),
            global_index,
        })
    }

    /// Number of live slots currently allocated from `pe`'s range.
    pub fn live_slots(&self, pe: usize) -> usize {
        self.pes[pe].lock().live
    }

    /// Discard the physical pages of every listed slot, whole-slot, with
    /// adjacent indices merged into a single `madvise` each (the slab
    /// cache's batched flush). Protections are untouched, so the slots'
    /// warm extents stay warm and read zero on next touch — the same
    /// postcondition as `Slot::drop`'s clean path, at a fraction of the
    /// syscalls when a batch of neighbors retires together.
    pub(crate) fn discard_slot_runs(&self, indices: &mut [usize]) -> SysResult<()> {
        indices.sort_unstable();
        let slot_len = self.cfg.slot_len;
        let mut i = 0;
        while i < indices.len() {
            let start = indices[i];
            let mut len = 1;
            while i + len < indices.len() && indices[i + len] == start + len {
                len += 1;
            }
            self.map.discard(start * slot_len, len * slot_len)?;
            i += len;
        }
        Ok(())
    }
}

/// An owned thread slot: `slot_len` bytes of globally unique address space.
///
/// Dropping the slot decommits its pages and returns it to its home PE's
/// free list.
#[derive(Debug)]
pub struct Slot {
    // flowslint::allow(migration-image-closure): the region handle is
    // process-local on purpose — a packed thread never serializes it;
    // unpack re-derives the slot from the destination's own IsoRegion at
    // the same global_index (iso slots occupy identical addresses in
    // every process, §3.4.2).
    region: Arc<IsoRegion>,
    global_index: usize,
}

impl Slot {
    /// First address of the slot.
    pub fn base(&self) -> usize {
        self.region.base() + self.region.slot_offset(self.global_index)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.region.cfg.slot_len
    }

    /// Slots are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One-past-the-end address (the initial stack top).
    pub fn top(&self) -> usize {
        self.base() + self.len()
    }

    /// The machine-wide slot index (stable across migration).
    pub fn global_index(&self) -> usize {
        self.global_index
    }

    /// The PE from whose range this slot was carved.
    pub fn home_pe(&self) -> usize {
        self.global_index / self.region.cfg.slots_per_pe
    }

    /// The region this slot belongs to.
    pub fn region(&self) -> &Arc<IsoRegion> {
        &self.region
    }

    /// Commit `[offset, offset+len)` of the slot read-write. Ranges still
    /// warm from a previous tenant (see [`Warm`]) commit without a syscall.
    pub fn commit(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let (o, e) = (page_align_down(offset), page_align_up(offset + len));
        let mut w = self.region.warm[self.global_index].lock();
        if e <= w.low || o >= w.high {
            return Ok(());
        }
        self.region.map.commit(
            self.region.slot_offset(self.global_index) + offset,
            len,
            Protection::ReadWrite,
        )?;
        if o <= w.low && e >= w.high {
            // The commit spans the whole remaining gap: the slot is now
            // fully read-write. Keep `low <= high` (an empty gap at the
            // top) — crossed extents would make ensure_uncommitted
            // decommit ranges that are in use.
            w.low = self.region.cfg.slot_len;
            w.high = self.region.cfg.slot_len;
        } else if o <= w.low {
            w.low = w.low.max(e);
        } else if e >= w.high {
            w.high = w.high.min(o);
        } else {
            w.tainted = true;
        }
        Ok(())
    }

    /// Decommit `[offset, offset+len)` (pages returned to the kernel and
    /// reprotected `PROT_NONE`).
    pub fn decommit(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check(offset, len)?;
        self.region
            .map
            .decommit(self.region.slot_offset(self.global_index) + offset, len)?;
        let (o, e) = (page_align_down(offset), page_align_up(offset + len));
        let mut w = self.region.warm[self.global_index].lock();
        if o == 0 && e >= self.region.cfg.slot_len {
            *w = Warm {
                low: 0,
                high: self.region.cfg.slot_len,
                tainted: false,
            };
        } else {
            w.low = w.low.min(o);
            w.high = w.high.max(e);
        }
        Ok(())
    }

    /// Return the physical pages of `[offset, offset+len)` to the kernel
    /// *without* touching protections: warm ranges stay warm and read zero
    /// on next touch. One `madvise`, no `mprotect`.
    pub fn discard(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check(offset, len)?;
        self.region
            .map
            .discard(self.region.slot_offset(self.global_index) + offset, len)
    }

    /// Return every physical page of this slot to the kernel without
    /// changing protections (the warm extents stay RW for the next
    /// tenant). Only the warm extents are madvised — nothing else can
    /// hold resident pages — so the cost tracks the committed footprint,
    /// not the slot size.
    pub fn discard_committed(&self) -> SysResult<()> {
        let slot_len = self.len();
        let w = self.region.warm[self.global_index].lock();
        if w.tainted {
            return self.discard(0, slot_len);
        }
        if w.low > 0 {
            self.discard(0, w.low)?;
        }
        if w.high < slot_len {
            self.discard(w.high, slot_len - w.high)?;
        }
        Ok(())
    }

    /// Enforce that `[offset, offset+len)` is `PROT_NONE` — the guard-page
    /// discipline between heap arena and stack. Costs zero syscalls when
    /// the range was never warmed (the common case: a recycled slot reused
    /// with the same layout); otherwise decommits exactly the warm part.
    pub fn ensure_uncommitted(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let base = self.region.slot_offset(self.global_index);
        let (o, e) = (page_align_down(offset), page_align_up(offset + len));
        let mut w = self.region.warm[self.global_index].lock();
        if w.tainted {
            self.region.map.decommit(base + o, e - o)?;
            w.low = w.low.min(o);
            w.high = w.high.max(e);
            return Ok(());
        }
        if o < w.low {
            self.region.map.decommit(base + o, w.low - o)?;
            w.low = o;
        }
        if e > w.high {
            self.region.map.decommit(base + w.high, e - w.high)?;
            w.high = e;
        }
        Ok(())
    }

    fn check(&self, offset: usize, len: usize) -> SysResult<()> {
        if offset.checked_add(len).is_none_or(|e| e > self.len()) {
            return Err(SysError::logic(
                "slot_range",
                format!("{offset:#x}+{len:#x} outside slot of {:#x}", self.len()),
            ));
        }
        Ok(())
    }

    /// Release ownership for migration: decommits nothing, frees nothing —
    /// the slot's bytes travel with the packed thread and the index is
    /// re-adopted on the destination PE.
    pub fn into_global_index(self) -> usize {
        let idx = self.global_index;
        std::mem::forget(self);
        idx
    }

    /// Whether a commit ever landed between the warm extents (such a slot
    /// must take the full-decommit drop path; the batched flush skips it).
    pub(crate) fn warm_tainted(&self) -> bool {
        self.region.warm[self.global_index].lock().tainted
    }

    /// Free-list bookkeeping of `Slot::drop` *without* the page discard —
    /// the slab cache's flush path, which has already discarded this
    /// slot's pages in a coalesced run via
    /// [`IsoRegion::discard_slot_runs`].
    pub(crate) fn recycle_without_discard(self) {
        let pe = self.home_pe();
        let local = self.global_index % self.region.cfg.slots_per_pe;
        let mut st = self.region.pes[pe].lock();
        st.free.push(local);
        st.live -= 1;
        drop(st);
        std::mem::forget(self);
    }
}

impl Drop for Slot {
    fn drop(&mut self) {
        // Best effort: return physical pages and recycle the index. Warm
        // recycling — pages are discarded (they read zero on next touch)
        // but protections are kept so the next tenant commits for free.
        let off = self.region.slot_offset(self.global_index);
        let slot_len = self.region.cfg.slot_len;
        {
            let mut w = self.region.warm[self.global_index].lock();
            if w.tainted {
                let _ = self.region.map.decommit(off, slot_len);
                *w = Warm {
                    low: 0,
                    high: slot_len,
                    tainted: false,
                };
            } else {
                // Only the warm extents can hold resident pages; madvise
                // just those instead of walking the whole (possibly huge)
                // slot.
                if w.low > 0 {
                    let _ = self.region.map.discard(off, w.low);
                }
                if w.high < slot_len {
                    let _ = self.region.map.discard(off + w.high, slot_len - w.high);
                }
            }
        }
        let pe = self.home_pe();
        let local = self.global_index % self.region.cfg.slots_per_pe;
        let mut st = self.region.pes[pe].lock();
        st.free.push(local);
        st.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_region(pes: usize) -> Arc<IsoRegion> {
        IsoRegion::new(IsoConfig {
            base: 0, // anywhere: unit tests must not fight over the fixed base
            num_pes: pes,
            slots_per_pe: 4,
            slot_len: 64 * 1024,
        })
        .unwrap()
    }

    #[test]
    fn slots_are_disjoint_and_unique() {
        let r = small_region(3);
        let mut slots = Vec::new();
        for pe in 0..3 {
            for _ in 0..4 {
                slots.push(r.alloc_slot(pe).unwrap());
            }
        }
        let mut ranges: Vec<_> = slots.iter().map(|s| (s.base(), s.top())).collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "slots must not overlap");
        }
        let ids: std::collections::HashSet<_> =
            slots.iter().map(|s| s.global_index()).collect();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let r = small_region(1);
        let slots: Vec<_> = (0..4).map(|_| r.alloc_slot(0).unwrap()).collect();
        assert!(r.alloc_slot(0).is_err(), "5th slot must fail");
        assert_eq!(r.live_slots(0), 4);
        let freed_base = slots[1].base();
        drop(slots);
        assert_eq!(r.live_slots(0), 0);
        let s = r.alloc_slot(0).unwrap();
        // Freed slots are recycled (LIFO), same address range reappears.
        assert!(s.base() >= freed_base - 3 * 64 * 1024);
    }

    #[test]
    fn commit_write_read_across_alloc_free() {
        let r = small_region(1);
        let s = r.alloc_slot(0).unwrap();
        s.commit(0, 4096).unwrap();
        // SAFETY: just committed.
        unsafe {
            *(s.base() as *mut u64) = 0xDEAD_BEEF;
            assert_eq!(*(s.base() as *const u64), 0xDEAD_BEEF);
        }
        let idx = s.global_index();
        let base = s.base();
        drop(s);
        // Recycled slot must read zero after recommit (decommitted on drop).
        let s2 = r.alloc_slot(0).unwrap();
        assert_eq!(s2.global_index(), idx);
        assert_eq!(s2.base(), base);
        s2.commit(0, 4096).unwrap();
        // SAFETY: just committed.
        unsafe { assert_eq!(*(s2.base() as *const u64), 0) };
    }

    #[test]
    fn adopt_round_trip() {
        let r = small_region(2);
        let s = r.alloc_slot(1).unwrap();
        let base = s.base();
        let idx = s.into_global_index();
        let s2 = r.adopt_slot(idx).unwrap();
        assert_eq!(s2.base(), base);
        assert_eq!(s2.home_pe(), 1);
        assert!(r.adopt_slot(999).is_err());
    }

    /// Checkpoint-restart flow: the old handle is *dropped* (not forgotten
    /// as in migration), then the index is adopted again. The adoption must
    /// reclaim the index so accounting stays balanced and a later alloc
    /// cannot hand out a second handle to the same slot.
    #[test]
    fn adopt_reclaims_freed_index() {
        let r = small_region(1);
        let s = r.alloc_slot(0).unwrap();
        let idx = s.global_index();
        drop(s); // crashed machine teardown
        assert_eq!(r.live_slots(0), 0);
        let s2 = r.adopt_slot(idx).unwrap(); // restore from checkpoint
        assert_eq!(r.live_slots(0), 1, "reclaimed index is live again");
        // Fresh allocations must not alias the restored slot.
        let others: Vec<_> = (0..3).map(|_| r.alloc_slot(0).unwrap()).collect();
        assert!(others.iter().all(|o| o.global_index() != idx));
        assert!(r.alloc_slot(0).is_err(), "region is genuinely full");
        drop(s2);
        drop(others);
        assert_eq!(r.live_slots(0), 0, "drop accounting balanced");
    }

    #[test]
    fn out_of_range_pe_rejected() {
        let r = small_region(1);
        assert!(r.alloc_slot(1).is_err());
    }

    #[test]
    fn fixed_base_reservation_when_available() {
        // The default 16 TiB base should be free in a test process; if some
        // sanitizer claims it, the fallback still yields a working region.
        let r = IsoRegion::new(IsoConfig {
            base: DEFAULT_BASE + (7 << 30), // offset to dodge other tests
            num_pes: 1,
            slots_per_pe: 2,
            slot_len: 64 * 1024,
        })
        .unwrap();
        let s = r.alloc_slot(0).unwrap();
        s.commit(0, 4096).unwrap();
        // SAFETY: just committed.
        unsafe { *(s.base() as *mut u8) = 1 };
    }
}
