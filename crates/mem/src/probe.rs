//! Runtime feature detection behind this platform's row of the paper's
//! Table 1 (portability of the three migratable-thread techniques).

use crate::alias::AliasStackPool;
use crate::copystack::CopyStackPool;
use crate::region::{IsoConfig, IsoRegion, DEFAULT_BASE};
use flows_sys::os;
use flows_sys::page::page_size;

pub use flows_sys::counters::{snapshot as syscall_snapshot, SyscallCounts};

/// What each migration technique needs and whether this host provides it.
#[derive(Debug, Clone)]
pub struct Portability {
    /// Pointer width (32-bit machines are where isomalloc runs out of
    /// address space and memory-aliasing earns its keep).
    pub pointer_bits: u32,
    /// Can we reserve a large fixed-address region (isomalloc)?
    pub isomalloc_fixed_base: bool,
    /// Can we create large `PROT_NONE` reservations at all (isomalloc with
    /// a negotiated base)?
    pub isomalloc_reserve: bool,
    /// Is `memfd_create` + `MAP_FIXED` aliasing available (memory-aliasing
    /// stacks)?
    pub memory_alias: bool,
    /// Can a common read-write region be set up (stack copying)?
    pub stack_copy: bool,
    /// `vm.max_map_count`, which bounds simultaneously committed slots.
    pub max_map_count: Option<u64>,
}

impl Portability {
    /// Probe the current host.
    pub fn detect() -> Portability {
        let pg = page_size();
        let iso_fixed = {
            // Probe far from the default so a live region doesn't collide.
            let probe_base = DEFAULT_BASE + (101 << 30);
            flows_sys::map::fixed_range_available(probe_base, 64 * pg)
        };
        let iso_any = IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 1,
            slots_per_pe: 2,
            slot_len: 16 * pg,
        })
        .is_ok();
        let alias = AliasStackPool::new(16 * pg, 1)
            .and_then(|mut p| {
                let f = p.alloc_frame()?;
                p.activate(f)?;
                p.deactivate()
            })
            .is_ok();
        let copy = CopyStackPool::new(16 * pg).is_ok();
        Portability {
            pointer_bits: os::pointer_bits(),
            isomalloc_fixed_base: iso_fixed,
            isomalloc_reserve: iso_any,
            memory_alias: alias,
            stack_copy: copy,
            max_map_count: os::max_map_count(),
        }
    }

    /// Render this host's Table 1 row: technique → Yes/No with reason.
    pub fn table1_rows(&self) -> Vec<(&'static str, String)> {
        let yes_no = |b: bool| if b { "Yes" } else { "No" };
        vec![
            (
                "Stack Copy",
                format!("{} (common RW region)", yes_no(self.stack_copy)),
            ),
            (
                "Isomalloc",
                format!(
                    "{} (fixed base {}, {}-bit VA)",
                    yes_no(self.isomalloc_reserve),
                    if self.isomalloc_fixed_base {
                        "available"
                    } else {
                        "unavailable"
                    },
                    self.pointer_bits
                ),
            ),
            (
                "Memory Alias",
                format!("{} (memfd + MAP_FIXED)", yes_no(self.memory_alias)),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_x86_64_supports_everything() {
        let p = Portability::detect();
        assert!(p.stack_copy);
        assert!(p.isomalloc_reserve);
        assert!(p.memory_alias);
        assert_eq!(p.pointer_bits, 64);
        let rows = p.table1_rows();
        assert_eq!(rows.len(), 3);
        for (_, v) in rows {
            assert!(v.starts_with("Yes"), "this host should say Yes: {v}");
        }
    }
}
