//! Runtime feature detection behind this platform's row of the paper's
//! Table 1 (portability of the three migratable-thread techniques).

use crate::alias::AliasStackPool;
use crate::copystack::CopyStackPool;
use crate::region::{IsoConfig, IsoRegion, DEFAULT_BASE};
use flows_sys::memfd::HUGE_2MIB;
use flows_sys::os;
use flows_sys::page::page_size;
use std::sync::OnceLock;

pub use flows_sys::counters::{snapshot as syscall_snapshot, SyscallCounts};

/// What this host offers in the way of 2 MiB huge pages, probed once at
/// startup. Slot memory uses two independent mechanisms:
///
/// | mechanism | needs            | used for                     | on absence |
/// |-----------|------------------|------------------------------|------------|
/// | THP       | `thp_anon`       | isomalloc slot reservations  | plain 4 KiB pages |
/// | hugetlb   | `hugetlb_free_2m`| alias frame store (`memfd`)  | regular memfd |
///
/// THP advice (`MADV_HUGEPAGE`) is best-effort and can never fault;
/// hugetlb is all-or-nothing — mapping an unbacked hugetlb file SIGBUSes
/// on touch, so the frame store only requests it when the kernel reports
/// free reserved pages *right now*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugePageProbe {
    /// `/sys/kernel/mm/transparent_hugepage/enabled` allows anonymous THP
    /// (`always` or `madvise`).
    pub thp_anon: bool,
    /// `.../shmem_enabled` allows THP on shared memory (`always`,
    /// `within_size` or `advise`).
    pub thp_shmem: bool,
    /// Free reserved 2 MiB pages from `/proc/meminfo` `HugePages_Free`.
    pub hugetlb_free_2m: u64,
}

impl HugePageProbe {
    /// Probe the running kernel.
    pub fn detect() -> HugePageProbe {
        Self::from_sources(
            std::fs::read_to_string("/sys/kernel/mm/transparent_hugepage/enabled").ok(),
            std::fs::read_to_string("/sys/kernel/mm/transparent_hugepage/shmem_enabled").ok(),
            std::fs::read_to_string("/proc/meminfo").ok(),
        )
    }

    /// Build a probe from raw sysfs/procfs contents (`None` = file
    /// missing). Everything degrades to "absent" — a host with no THP and
    /// no hugetlb reservation yields the all-off probe and every consumer
    /// falls back to base pages.
    pub fn from_sources(
        thp_enabled: Option<String>,
        shmem_enabled: Option<String>,
        meminfo: Option<String>,
    ) -> HugePageProbe {
        let selected = |s: &Option<String>, ok: &[&str]| -> bool {
            s.as_deref()
                .and_then(|t| {
                    t.split_whitespace()
                        .find(|w| w.starts_with('[') && w.ends_with(']'))
                        .map(|w| ok.contains(&w.trim_matches(['[', ']'])))
                })
                .unwrap_or(false)
        };
        let free = meminfo
            .as_deref()
            .and_then(|m| {
                m.lines().find_map(|l| {
                    let rest = l.strip_prefix("HugePages_Free:")?;
                    rest.trim().parse::<u64>().ok()
                })
            })
            .unwrap_or(0);
        // Only count the reservation when the default huge page size is
        // the 2 MiB we would ask for.
        let is_2m = meminfo
            .as_deref()
            .and_then(|m| {
                m.lines().find_map(|l| {
                    let rest = l.strip_prefix("Hugepagesize:")?;
                    rest.trim().strip_suffix("kB").map(|n| n.trim().parse::<u64>().ok())?
                })
            })
            .map(|kb| kb * 1024 == HUGE_2MIB)
            .unwrap_or(false);
        HugePageProbe {
            thp_anon: selected(&thp_enabled, &["always", "madvise"]),
            thp_shmem: selected(&shmem_enabled, &["always", "within_size", "advise"]),
            hugetlb_free_2m: if is_2m { free } else { 0 },
        }
    }

    /// Whether alias frames of `frame_len` bytes can sit on hugetlb pages:
    /// the frame must tile 2 MiB pages exactly and the kernel must hold a
    /// free reservation (an unbacked hugetlb mapping SIGBUSes on touch).
    pub fn frames_can_use_hugetlb(&self, frame_len: usize) -> bool {
        frame_len.is_multiple_of(HUGE_2MIB as usize) && self.hugetlb_free_2m > 0
    }
}

/// The startup hugepage probe, run once and cached for the process
/// lifetime (the alias pool and isomalloc region consult it on
/// construction).
pub fn hugepage_probe() -> &'static HugePageProbe {
    static PROBE: OnceLock<HugePageProbe> = OnceLock::new();
    PROBE.get_or_init(HugePageProbe::detect)
}

/// What each migration technique needs and whether this host provides it.
#[derive(Debug, Clone)]
pub struct Portability {
    /// Pointer width (32-bit machines are where isomalloc runs out of
    /// address space and memory-aliasing earns its keep).
    pub pointer_bits: u32,
    /// Can we reserve a large fixed-address region (isomalloc)?
    pub isomalloc_fixed_base: bool,
    /// Can we create large `PROT_NONE` reservations at all (isomalloc with
    /// a negotiated base)?
    pub isomalloc_reserve: bool,
    /// Is `memfd_create` + `MAP_FIXED` aliasing available (memory-aliasing
    /// stacks)?
    pub memory_alias: bool,
    /// Can a common read-write region be set up (stack copying)?
    pub stack_copy: bool,
    /// `vm.max_map_count`, which bounds simultaneously committed slots.
    pub max_map_count: Option<u64>,
}

impl Portability {
    /// Probe the current host.
    pub fn detect() -> Portability {
        let pg = page_size();
        let iso_fixed = {
            // Probe far from the default so a live region doesn't collide.
            let probe_base = DEFAULT_BASE + (101 << 30);
            flows_sys::map::fixed_range_available(probe_base, 64 * pg)
        };
        let iso_any = IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 1,
            slots_per_pe: 2,
            slot_len: 16 * pg,
        })
        .is_ok();
        let alias = AliasStackPool::new(16 * pg, 1)
            .and_then(|mut p| {
                let mut b = p.bind(0)?;
                p.map_window(&mut b)?;
                p.release(&b)
            })
            .is_ok();
        let copy = CopyStackPool::new(16 * pg).is_ok();
        Portability {
            pointer_bits: os::pointer_bits(),
            isomalloc_fixed_base: iso_fixed,
            isomalloc_reserve: iso_any,
            memory_alias: alias,
            stack_copy: copy,
            max_map_count: os::max_map_count(),
        }
    }

    /// Render this host's Table 1 row: technique → Yes/No with reason.
    pub fn table1_rows(&self) -> Vec<(&'static str, String)> {
        let yes_no = |b: bool| if b { "Yes" } else { "No" };
        vec![
            (
                "Stack Copy",
                format!("{} (common RW region)", yes_no(self.stack_copy)),
            ),
            (
                "Isomalloc",
                format!(
                    "{} (fixed base {}, {}-bit VA)",
                    yes_no(self.isomalloc_reserve),
                    if self.isomalloc_fixed_base {
                        "available"
                    } else {
                        "unavailable"
                    },
                    self.pointer_bits
                ),
            ),
            (
                "Memory Alias",
                format!("{} (memfd + MAP_FIXED)", yes_no(self.memory_alias)),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hugepage_probe_parses_kernel_sources() {
        let p = HugePageProbe::from_sources(
            Some("always [madvise] never\n".into()),
            Some("always within_size [advise] never deny force\n".into()),
            Some("HugePages_Total:      16\nHugePages_Free:       12\nHugepagesize:       2048 kB\n".into()),
        );
        assert!(p.thp_anon);
        assert!(p.thp_shmem);
        assert_eq!(p.hugetlb_free_2m, 12);
        assert!(p.frames_can_use_hugetlb(2 * 1024 * 1024));
        assert!(p.frames_can_use_hugetlb(4 * 1024 * 1024));
        assert!(!p.frames_can_use_hugetlb(64 * 1024), "frame must tile 2 MiB");
    }

    #[test]
    fn hugepage_probe_ignores_non_2m_default_size() {
        let p = HugePageProbe::from_sources(
            Some("[never]\n".into()),
            None,
            Some("HugePages_Free:       64\nHugepagesize:    1048576 kB\n".into()),
        );
        assert!(!p.thp_anon);
        assert_eq!(p.hugetlb_free_2m, 0, "1 GiB default pages are not ours");
    }

    #[test]
    fn forced_probe_failure_falls_back_to_base_pages() {
        // A host with no THP sysfs and no meminfo: every hugepage path
        // must degrade, and an alias pool built under this probe must
        // still work on a regular memfd.
        let p = HugePageProbe::from_sources(None, None, None);
        assert!(!p.thp_anon && !p.thp_shmem);
        assert_eq!(p.hugetlb_free_2m, 0);
        assert!(!p.frames_can_use_hugetlb(2 * 1024 * 1024));
        // 2 MiB frames *without* hugetlb backing: the pool must come up
        // on base pages and round-trip data (graceful-fallback path; the
        // cached process probe may or may not report hugetlb, but the
        // pool works either way).
        let mut pool = AliasStackPool::new(2 * 1024 * 1024, 1).unwrap();
        let mut b = pool.bind(0).unwrap();
        pool.map_window(&mut b).unwrap();
        // SAFETY: window just mapped read-write.
        unsafe { *((b.top - 8) as *mut u64) = 0x4242 };
        let mut tail = Vec::new();
        pool.read_bound_tail_into(&b, 8, &mut tail).unwrap();
        assert_eq!(u64::from_le_bytes(tail.try_into().unwrap()), 0x4242);
        pool.release(&b).unwrap();
    }

    #[test]
    fn linux_x86_64_supports_everything() {
        let p = Portability::detect();
        assert!(p.stack_copy);
        assert!(p.isomalloc_reserve);
        assert!(p.memory_alias);
        assert_eq!(p.pointer_bits, 64);
        let rows = p.table1_rows();
        assert_eq!(rows.len(), 3);
        for (_, v) in rows {
            assert!(v.starts_with("Yes"), "this host should say Yes: {v}");
        }
    }
}
