//! # flows-mem — memory substrates for migratable threads
//!
//! Implements the three stack/heap management schemes of paper §3.4, on top
//! of the raw VM operations in `flows-sys`:
//!
//! * **Isomalloc** ([`region`], [`heap`], [`slab`]) — one machine-wide
//!   reservation of virtual address space is divided into per-PE ranges of
//!   fixed-size *slots*; every migratable thread owns a slot holding its
//!   stack (top) and heap arena (bottom). Because a slot's addresses are
//!   globally unique, migration is a raw byte copy: no pointer inside the
//!   stack or heap ever needs rewriting (§3.4.2, Figure 2).
//! * **Memory-aliasing stacks** ([`alias`]) — every thread's stack lives in
//!   distinct physical pages (frames of one `memfd`), aliased with
//!   `mmap(MAP_FIXED)` into per-thread virtual windows carved from per-PE
//!   ranges; the mapping is established once per tenancy, so a context
//!   switch is free and migration ships only the live stack tail
//!   (§3.4.3, Figure 3, minus the per-switch remap).
//! * **Stack-copying threads** ([`copystack`]) — all threads execute from
//!   one common stack region and their data is memcpy'd in and out around
//!   every switch (§3.4.1).
//!
//! [`probe`] performs the runtime feature detection behind our row of the
//! paper's Table 1.

#![warn(missing_docs)]

pub mod alias;
pub mod copystack;
pub mod heap;
pub mod maps;
pub mod probe;
pub mod reclaim;
pub mod region;
pub mod slab;

pub use alias::{AliasBinding, AliasStackPool, FrameId, WindowId};
pub use copystack::{CopyStack, CopyStackPool};
pub use heap::IsoHeap;
pub use probe::HugePageProbe;
pub use reclaim::SlabCache;
pub use region::{IsoConfig, IsoRegion, Slot, DEFAULT_BASE};
pub use slab::ThreadSlab;
