//! The per-thread isomalloc heap.
//!
//! The paper extends PM2's isomalloc so that *unmodified* application code
//! calling `malloc`/`free` from inside a thread gets memory inside the
//! thread's own globally unique address range (§3.4.2). This module is
//! that allocator: a segregated-free-list arena that lives entirely inside
//! a thread's slot, commits physical pages lazily, and whose bookkeeping is
//! PUP-serializable so the whole heap migrates as raw bytes.
//!
//! The allocator state deliberately lives *outside* the arena (in the
//! thread control block) — the arena holds only headers and payloads — so
//! packing the heap is `memcpy(arena, used_extent)` plus pupping this
//! struct.

use flows_pup::{pup_fields, Pup, Puper};
use flows_sys::error::{SysError, SysResult};
use flows_sys::page::page_align_up;

/// Size classes for small allocations (payload bytes).
pub const CLASSES: &[usize] = &[
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

const HEADER: usize = 16;

/// When the brk outgrows the committed extent, commit this far ahead
/// (clamped to the arena) instead of page-by-page. Protection widens in
/// one `mprotect` per chunk; physical pages still arrive lazily, on
/// first touch — so a thread that allocates 64 KiB in 4 KiB steps costs
/// one syscall, not sixteen, and a thread that never touches the slack
/// never pays for it.
pub const COMMIT_CHUNK: usize = 64 * 1024;
const MAGIC_ALLOC: u64 = 0xA110_CA11_A110_CA11;
const MAGIC_FREE: u64 = 0xF4EE_B10C_F4EE_B10C;
const LARGE_FLAG: u64 = 1 << 63;

/// Sanitizer red zone: poison bytes at the tail of every block's payload
/// capacity. A write past the caller's allocation lands here and is
/// caught at `free` time.
#[cfg(feature = "sanitize")]
pub const RED_ZONE: usize = 16;
#[cfg(feature = "sanitize")]
const POISON_RED: u8 = 0xFB;
#[cfg(feature = "sanitize")]
const POISON_FREE: u8 = 0xDD;
/// Freed blocks sit in a FIFO quarantine this long before becoming
/// reusable; their poison is verified on release, catching writes through
/// stale pointers.
#[cfg(feature = "sanitize")]
pub const QUARANTINE_MAX: usize = 32;

/// A large freed block: (arena offset, block length including header).
#[derive(Default, Debug, Clone, PartialEq)]
struct LargeBlock {
    off: u64,
    len: u64,
}
pup_fields!(LargeBlock { off, len });

/// Allocator state for one thread's heap arena.
#[derive(Debug, Default)]
pub struct IsoHeap {
    arena_base: usize,
    arena_len: usize,
    brk: usize,
    committed: usize,
    free_lists: Vec<Vec<u64>>,
    large_free: Vec<LargeBlock>,
    live: usize,
    /// Freed-block offsets awaiting release (FIFO). Part of the heap state
    /// so quarantined blocks migrate correctly mid-quarantine.
    #[cfg(feature = "sanitize")]
    quarantine: Vec<u64>,
}

impl Pup for IsoHeap {
    fn pup(&mut self, p: &mut Puper) {
        self.arena_base.pup(p);
        self.arena_len.pup(p);
        self.brk.pup(p);
        self.committed.pup(p);
        self.free_lists.pup(p);
        self.large_free.pup(p);
        self.live.pup(p);
        #[cfg(feature = "sanitize")]
        self.quarantine.pup(p);
    }
}

fn class_of(size: usize) -> Option<usize> {
    CLASSES.iter().position(|&c| c >= size)
}

impl IsoHeap {
    /// A fresh heap over the arena `[arena_base, arena_base + arena_len)`.
    /// No pages are committed until the first allocation.
    pub fn new(arena_base: usize, arena_len: usize) -> IsoHeap {
        IsoHeap {
            arena_base,
            arena_len,
            brk: 0,
            committed: 0,
            free_lists: vec![Vec::new(); CLASSES.len()],
            large_free: Vec::new(),
            live: 0,
            #[cfg(feature = "sanitize")]
            quarantine: Vec::new(),
        }
    }

    /// Base address of the arena.
    pub fn arena_base(&self) -> usize {
        self.arena_base
    }

    /// Arena length in bytes.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Bytes of arena that have ever been handed out (page-aligned); this
    /// is the extent that must travel with a migrating thread.
    pub fn used_extent(&self) -> usize {
        page_align_up(self.brk)
    }

    /// Bytes of arena currently committed to physical pages.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// Number of live (allocated, not freed) blocks.
    pub fn live_blocks(&self) -> usize {
        self.live
    }

    /// Allocate `size` bytes, 16-aligned. `commit(offset, len)` is invoked
    /// when the arena needs more committed pages (offsets relative to the
    /// arena base).
    pub fn alloc_with(
        &mut self,
        size: usize,
        commit: &mut dyn FnMut(usize, usize) -> SysResult<()>,
    ) -> SysResult<usize> {
        let size = size.max(1);
        // The red zone rides inside the block: sizing every request up by
        // RED_ZONE reserves the poisoned tail in whatever class or large
        // block the request lands in.
        #[cfg(feature = "sanitize")]
        let size = size + RED_ZONE;
        // Try a recycled block first.
        if let Some(ci) = class_of(size) {
            if let Some(off) = self.free_lists[ci].pop() {
                self.live += 1;
                // SAFETY: block was committed when first carved.
                unsafe { self.write_header(off as usize, ci as u64, MAGIC_ALLOC) };
                let addr = self.arena_base + off as usize + HEADER;
                #[cfg(feature = "sanitize")]
                // SAFETY: the block's capacity is committed.
                unsafe {
                    self.arm_red_zone(addr)
                };
                return Ok(addr);
            }
        } else if let Some(pos) = self
            .large_free
            .iter()
            .position(|b| b.len as usize >= HEADER + align16(size))
        {
            let b = self.large_free.swap_remove(pos);
            self.live += 1;
            // SAFETY: committed when first carved.
            unsafe { self.write_header(b.off as usize, LARGE_FLAG | b.len, MAGIC_ALLOC) };
            let addr = self.arena_base + b.off as usize + HEADER;
            #[cfg(feature = "sanitize")]
            // SAFETY: the block's capacity is committed.
            unsafe {
                self.arm_red_zone(addr)
            };
            return Ok(addr);
        }
        // Carve fresh space at the brk.
        let (tag, block_len) = match class_of(size) {
            Some(ci) => (ci as u64, HEADER + CLASSES[ci]),
            None => {
                let bl = HEADER + align16(size);
                (LARGE_FLAG | bl as u64, bl)
            }
        };
        let off = self.brk;
        let end = off
            .checked_add(block_len)
            .ok_or_else(|| SysError::logic("iso_alloc", "size overflow".into()))?;
        if end > self.arena_len {
            return Err(SysError::logic(
                "iso_alloc",
                format!(
                    "arena exhausted: need {block_len} bytes at {off:#x}, arena is {:#x}",
                    self.arena_len
                ),
            ));
        }
        if end > self.committed {
            let new_committed = page_align_up(end)
                .max(self.committed + COMMIT_CHUNK)
                .min(self.arena_len);
            commit(self.committed, new_committed - self.committed)?;
            self.committed = new_committed;
        }
        self.brk = end;
        self.live += 1;
        // SAFETY: just committed through `commit`.
        unsafe { self.write_header(off, tag, MAGIC_ALLOC) };
        let addr = self.arena_base + off + HEADER;
        #[cfg(feature = "sanitize")]
        // SAFETY: just committed through `commit`.
        unsafe {
            self.arm_red_zone(addr)
        };
        Ok(addr)
    }

    /// Free a block previously returned by [`IsoHeap::alloc_with`].
    /// Detects double frees and foreign pointers.
    pub fn free(&mut self, addr: usize) -> SysResult<()> {
        if addr < self.arena_base + HEADER || addr >= self.arena_base + self.brk {
            return Err(SysError::logic(
                "iso_free",
                format!("{addr:#x} is not inside this arena"),
            ));
        }
        let off = addr - self.arena_base - HEADER;
        // SAFETY: inside the used extent, which is committed.
        let (tag, magic) = unsafe { self.read_header(off) };
        if magic == MAGIC_FREE {
            return Err(SysError::logic("iso_free", format!("double free of {addr:#x}")));
        }
        if magic != MAGIC_ALLOC {
            return Err(SysError::logic(
                "iso_free",
                format!("{addr:#x} does not point at an allocated block"),
            ));
        }
        if tag & LARGE_FLAG == 0 && tag as usize >= CLASSES.len() {
            return Err(SysError::logic("iso_free", "corrupt size class".into()));
        }
        #[cfg(feature = "sanitize")]
        // SAFETY: header just validated, so the capacity is committed.
        unsafe {
            self.check_red_zone(tag, addr)
        };
        self.live -= 1;
        // SAFETY: same block as above.
        unsafe { self.write_header(off, tag, MAGIC_FREE) };
        #[cfg(not(feature = "sanitize"))]
        self.push_free(off as u64, tag);
        #[cfg(feature = "sanitize")]
        {
            // SAFETY: capacity committed (validated above).
            unsafe { self.poison_payload(off, tag) };
            self.quarantine.push(off as u64);
            if self.quarantine.len() > QUARANTINE_MAX {
                let oldest = self.quarantine.remove(0);
                self.release_quarantined(oldest);
            }
        }
        Ok(())
    }

    /// Return a validated freed block to its free list.
    fn push_free(&mut self, off: u64, tag: u64) {
        if tag & LARGE_FLAG != 0 {
            self.large_free.push(LargeBlock {
                off,
                len: tag & !LARGE_FLAG,
            });
        } else {
            self.free_lists[tag as usize].push(off);
        }
    }

    /// Payload capacity of the block at `addr` (for realloc-style callers).
    pub fn block_capacity(&self, addr: usize) -> SysResult<usize> {
        if addr < self.arena_base + HEADER || addr >= self.arena_base + self.brk {
            return Err(SysError::logic("iso_capacity", "foreign pointer".into()));
        }
        let off = addr - self.arena_base - HEADER;
        // SAFETY: inside the committed used extent.
        let (tag, magic) = unsafe { self.read_header(off) };
        if magic != MAGIC_ALLOC {
            return Err(SysError::logic("iso_capacity", "not an allocated block".into()));
        }
        let cap = if tag & LARGE_FLAG != 0 {
            (tag & !LARGE_FLAG) as usize - HEADER
        } else {
            CLASSES[tag as usize]
        };
        // The red zone is not usable payload.
        #[cfg(feature = "sanitize")]
        let cap = cap - RED_ZONE;
        Ok(cap)
    }

    /// Reset the committed-bytes bookkeeping after migration: the
    /// destination PE recommits exactly the used extent, whatever the
    /// source had committed beyond it.
    pub(crate) fn set_committed(&mut self, bytes: usize) {
        debug_assert!(bytes >= self.used_extent());
        self.committed = bytes.max(self.used_extent());
    }

    /// # Safety
    /// `off` must start a committed block header.
    unsafe fn write_header(&self, off: usize, tag: u64, magic: u64) {
        let p = (self.arena_base + off) as *mut u64;
        // SAFETY: per contract.
        unsafe {
            *p = tag;
            *p.add(1) = magic;
        }
    }

    /// # Safety
    /// `off` must start a committed block header.
    unsafe fn read_header(&self, off: usize) -> (u64, u64) {
        let p = (self.arena_base + off) as *const u64;
        // SAFETY: per contract.
        unsafe { (*p, *p.add(1)) }
    }
}

#[cfg(feature = "sanitize")]
impl IsoHeap {
    /// Payload capacity (red zone included) from a validated header tag.
    fn capacity_of(tag: u64) -> usize {
        if tag & LARGE_FLAG != 0 {
            (tag & !LARGE_FLAG) as usize - HEADER
        } else {
            CLASSES[tag as usize]
        }
    }

    /// Fill the red zone at the tail of the block at `addr` with poison.
    ///
    /// # Safety
    /// `addr` must be the payload address of a block whose header was just
    /// written `MAGIC_ALLOC`; its capacity must be committed.
    unsafe fn arm_red_zone(&self, addr: usize) {
        // SAFETY: the header precedes a payload we own.
        let (tag, _) = unsafe { self.read_header(addr - self.arena_base - HEADER) };
        let cap = Self::capacity_of(tag);
        // SAFETY: the last RED_ZONE bytes of the committed capacity.
        unsafe {
            std::ptr::write_bytes((addr + cap - RED_ZONE) as *mut u8, POISON_RED, RED_ZONE)
        };
    }

    /// Verify the red zone of the block being freed; trips the sanitizer
    /// (no return) on a torn zone.
    ///
    /// # Safety
    /// `tag` must come from a header validated as `MAGIC_ALLOC`.
    unsafe fn check_red_zone(&self, tag: u64, addr: usize) {
        let cap = Self::capacity_of(tag);
        let zone = addr + cap - RED_ZONE;
        for i in 0..RED_ZONE {
            // SAFETY: inside the block's committed capacity.
            let b = unsafe { *((zone + i) as *const u8) };
            if b != POISON_RED {
                flows_trace::san::trip(
                    flows_trace::san::SanCheck::HeapRedZone,
                    &format!(
                        "block {addr:#x} wrote past its allocation: red-zone byte {i} is {b:#04x}"
                    ),
                    addr as u64,
                    i as u64,
                );
            }
        }
    }

    /// Poison the whole payload of a freed block.
    ///
    /// # Safety
    /// `off`/`tag` must come from a validated header; capacity committed.
    unsafe fn poison_payload(&self, off: usize, tag: u64) {
        let cap = Self::capacity_of(tag);
        // SAFETY: the block's committed capacity.
        unsafe {
            std::ptr::write_bytes(
                (self.arena_base + off + HEADER) as *mut u8,
                POISON_FREE,
                cap,
            )
        };
    }

    /// Release one quarantined block to its free list, verifying that its
    /// poison survived quarantine — a torn byte means something wrote
    /// through a stale pointer. Trips the sanitizer on violation.
    fn release_quarantined(&mut self, off: u64) {
        let addr = self.arena_base + off as usize + HEADER;
        // SAFETY: quarantined blocks sit below brk, which stays committed.
        let (tag, magic) = unsafe { self.read_header(off as usize) };
        if magic != MAGIC_FREE {
            flows_trace::san::trip(
                flows_trace::san::SanCheck::HeapUseAfterFree,
                &format!("freed block {addr:#x}: header overwritten in quarantine"),
                addr as u64,
                magic,
            );
        }
        let cap = Self::capacity_of(tag);
        for i in 0..cap {
            // SAFETY: committed capacity.
            let b = unsafe { *((addr + i) as *const u8) };
            if b != POISON_FREE {
                flows_trace::san::trip(
                    flows_trace::san::SanCheck::HeapUseAfterFree,
                    &format!("freed block {addr:#x}: byte {i} written while quarantined ({b:#04x})"),
                    addr as u64,
                    i as u64,
                );
            }
        }
        self.push_free(off, tag);
    }

    /// Drain the quarantine, verifying every block. Tests use this to get
    /// deterministic reuse; the runtime never needs it.
    pub fn flush_quarantine(&mut self) {
        while !self.quarantine.is_empty() {
            let off = self.quarantine.remove(0);
            self.release_quarantined(off);
        }
    }

    /// Blocks currently held in quarantine.
    pub fn quarantined_blocks(&self) -> usize {
        self.quarantine.len()
    }
}

fn align16(n: usize) -> usize {
    (n + 15) & !15
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_sys::map::{Mapping, Protection};

    fn arena() -> (Mapping, IsoHeap) {
        let len = 1 << 20;
        let m = Mapping::reserve(len).unwrap();
        let h = IsoHeap::new(m.addr(), len);
        (m, h)
    }

    fn committer(m: &Mapping) -> impl FnMut(usize, usize) -> SysResult<()> + '_ {
        move |off, len| m.commit(off, len, Protection::ReadWrite)
    }

    #[test]
    fn alloc_is_aligned_and_writable() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        for size in [1, 15, 16, 17, 100, 4096, 70_000] {
            let a = h.alloc_with(size, &mut c).unwrap();
            assert_eq!(a % 16, 0, "allocation must be 16-aligned");
            // SAFETY: freshly allocated, committed.
            unsafe {
                std::ptr::write_bytes(a as *mut u8, 0xCD, size);
                assert_eq!(*(a as *const u8), 0xCD);
            }
        }
        assert_eq!(h.live_blocks(), 7);
    }

    #[test]
    fn free_and_reuse_same_class() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let a = h.alloc_with(100, &mut c).unwrap();
        let brk_after_first = h.used_extent();
        h.free(a).unwrap();
        #[cfg(feature = "sanitize")]
        h.flush_quarantine();
        let b = h.alloc_with(100, &mut c).unwrap(); // same 128-class
        assert_eq!(a, b, "freed block must be recycled");
        assert_eq!(h.used_extent(), brk_after_first, "no new carving");
    }

    #[test]
    fn large_blocks_recycle() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let a = h.alloc_with(100_000, &mut c).unwrap();
        h.free(a).unwrap();
        #[cfg(feature = "sanitize")]
        h.flush_quarantine();
        let b = h.alloc_with(90_000, &mut c).unwrap();
        assert_eq!(a, b, "large free block should satisfy smaller large alloc");
    }

    #[test]
    fn double_free_detected() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let a = h.alloc_with(64, &mut c).unwrap();
        h.free(a).unwrap();
        let e = h.free(a).unwrap_err();
        assert!(e.to_string().contains("double free"));
    }

    #[test]
    fn foreign_pointer_rejected() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let _ = h.alloc_with(64, &mut c).unwrap();
        assert!(h.free(0x1234).is_err());
        let stack_var = 0u8;
        assert!(h.free(&stack_var as *const u8 as usize).is_err());
    }

    #[test]
    fn arena_exhaustion_is_an_error() {
        let len = 64 * 1024;
        let m = Mapping::reserve(len).unwrap();
        let mut h = IsoHeap::new(m.addr(), len);
        let mut c = committer(&m);
        let mut got = 0;
        loop {
            match h.alloc_with(4000, &mut c) {
                Ok(_) => got += 1,
                Err(e) => {
                    assert!(e.to_string().contains("arena exhausted"));
                    break;
                }
            }
            assert!(got < 100, "must exhaust eventually");
        }
        assert!(got >= 10);
    }

    #[test]
    fn commit_is_lazy_and_monotonic() {
        let (m, mut h) = arena();
        assert_eq!(h.committed(), 0);
        let mut ranges = Vec::new();
        let mut c = |off: usize, len: usize| {
            ranges.push((off, len));
            m.commit(off, len, Protection::ReadWrite)
        };
        let _ = h.alloc_with(10, &mut c).unwrap();
        let first_commit = h.committed();
        assert!(first_commit > 0);
        // Small allocations fit in the already-committed page(s).
        for _ in 0..10 {
            let _ = h.alloc_with(10, &mut c).unwrap();
        }
        assert_eq!(h.committed(), first_commit);
        for w in ranges.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "commit ranges must not overlap");
        }
    }

    #[test]
    fn state_pups_round_trip() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let a = h.alloc_with(64, &mut c).unwrap();
        let _b = h.alloc_with(100_000, &mut c).unwrap();
        h.free(a).unwrap();
        let bytes = flows_pup::to_bytes(&mut h);
        let h2: IsoHeap = flows_pup::from_bytes(&bytes).unwrap();
        assert_eq!(h2.arena_base(), h.arena_base());
        assert_eq!(h2.used_extent(), h.used_extent());
        assert_eq!(h2.live_blocks(), h.live_blocks());
    }

    #[test]
    fn capacity_queries() {
        let (m, mut h) = arena();
        let mut c = committer(&m);
        let a = h.alloc_with(100, &mut c).unwrap();
        #[cfg(not(feature = "sanitize"))]
        assert_eq!(h.block_capacity(a).unwrap(), 128);
        #[cfg(feature = "sanitize")]
        assert_eq!(h.block_capacity(a).unwrap(), 128 - RED_ZONE);
        let b = h.alloc_with(100_000, &mut c).unwrap();
        assert!(h.block_capacity(b).unwrap() >= 100_000);
        h.free(a).unwrap();
        assert!(h.block_capacity(a).is_err(), "freed block has no capacity");
    }
}
