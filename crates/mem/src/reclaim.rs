//! Deferred reclaim for isomalloc slabs: exited threads' slabs park in a
//! machine-wide cache instead of being torn down inline.
//!
//! Without the cache, every thread exit costs two `madvise` calls (the
//! slot's warm extents go back to the kernel) and every spawn re-commits
//! a stack — which is exactly what the churn benchmark hammers. With it,
//! exit is a list push and spawn is a list pop: the slab's pages,
//! protections and warm bookkeeping are reused as-is, so a steady
//! spawn/exit cycle is completely syscall-free.
//!
//! Parked slabs drain in batches when a PE's list crosses the high-water
//! mark or the PE goes idle ([`SlabCache::flush`]): clean slabs' pages are
//! discarded with adjacent slots merged into single `madvise` runs, then
//! recycled through the free list without further syscalls; tainted slabs
//! (mid-slot commits the warm summary can't express) take the ordinary
//! `Slot` drop path. Under `sanitize` the high-water mark defaults to
//! zero, so reclaim is eager through the same code and every invariant
//! check sees vacated slots actually vacated.
//!
//! Ownership hazard (the PR 5 SIGSEGV class): a cached slab still *owns*
//! its slot index. A migration image arriving for that index must evict
//! the cached slab — dropping it, which discards its pages and frees the
//! index — **before** adopting the slot, or two owners would scribble on
//! one slot. [`crate::slab::ThreadSlab::unpack_with`] does this eviction;
//! the cache is global (not per-PE state) for exactly this reason.

use crate::region::IsoRegion;
use crate::slab::ThreadSlab;
use flows_sys::error::SysResult;
use flows_trace::{emit, EventKind};
use std::sync::Arc;

/// Parked slabs a PE may hold before a batch flush runs. Zero under
/// `sanitize`: every put flushes eagerly through the same batch path.
#[cfg(not(feature = "sanitize"))]
const DEFAULT_HIGH_WATER: usize = 128;
#[cfg(feature = "sanitize")]
const DEFAULT_HIGH_WATER: usize = 0;

/// A machine-wide cache of exited threads' slabs, one parking list per PE.
#[derive(Debug)]
pub struct SlabCache {
    per_pe: Vec<Vec<ThreadSlab>>,
    high_water: usize,
    batches: u64,
}

impl SlabCache {
    /// An empty cache serving `num_pes` PEs.
    pub fn new(num_pes: usize) -> SlabCache {
        SlabCache {
            per_pe: (0..num_pes).map(|_| Vec::new()).collect(),
            high_water: DEFAULT_HIGH_WATER,
            batches: 0,
        }
    }

    /// Override the per-PE high-water mark (tests; `0` = eager).
    pub fn set_high_water(&mut self, n: usize) {
        self.high_water = n;
    }

    /// Slabs currently parked for `pe`.
    pub fn cached(&self, pe: usize) -> usize {
        self.per_pe[pe].len()
    }

    /// Batched reclaim flushes performed so far.
    pub fn reclaim_batches(&self) -> u64 {
        self.batches
    }

    /// Park an exited thread's slab on `pe`'s list. Zero syscalls unless
    /// the list crosses the high-water mark, which triggers a batched
    /// flush down to half the mark.
    pub fn put(&mut self, pe: usize, slab: ThreadSlab) -> SysResult<()> {
        self.per_pe[pe].push(slab);
        if self.per_pe[pe].len() > self.high_water {
            self.flush_to(pe, self.high_water / 2)?;
        }
        Ok(())
    }

    /// Take a parked slab for a spawn on `pe` wanting `stack_len` bytes of
    /// stack, newest first. The slab is rebuilt in place — fresh heap
    /// allocator, guard re-verified, stack re-committed — all of which is
    /// pure bookkeeping on a warm slot (the `recycled_slots` fast path).
    /// Stale page contents are fine: the spawn path builds a new bootstrap
    /// frame on the stack, mirroring the Standard flavor's recycled
    /// stacks, and heap contents below the fresh brk are unreachable.
    pub fn take(&mut self, pe: usize, stack_len: usize) -> Option<ThreadSlab> {
        let list = self.per_pe.get_mut(pe)?;
        let pos = list.iter().rposition(|s| s.stack_len() == stack_len)?;
        let slab = list.remove(pos);
        ThreadSlab::new(slab.into_slot(), stack_len).ok()
    }

    /// [`SlabCache::take`], falling back to *other* PEs' parking lists
    /// when `pe`'s own list has no match. Isomalloc slots are globally
    /// unique addresses, so any PE can host any slot; a warm slab parked
    /// by a neighbour (say, after a stolen thread ran to exit here while
    /// its home PE churns) still beats a cold slot commit. Local hits are
    /// always preferred — cross-PE adoption trades a little NUMA locality
    /// for saved syscalls, the right trade only when the local list is
    /// dry.
    pub fn take_any(&mut self, pe: usize, stack_len: usize) -> Option<ThreadSlab> {
        if let Some(slab) = self.take(pe, stack_len) {
            return Some(slab);
        }
        let n = self.per_pe.len();
        for other in (0..n).filter(|&o| o != pe) {
            if let Some(slab) = self.take(other, stack_len) {
                return Some(slab);
            }
        }
        None
    }

    /// Drop the cached slab owning `global_index`, if any, returning
    /// whether one was found. A migration image adopting a slot MUST call
    /// this first: the cached slab is a live owner, and dropping it
    /// discards its pages (zero-below-tail restored) and frees the index
    /// for `adopt_slot` to reclaim.
    pub fn evict(&mut self, global_index: usize) -> bool {
        for list in &mut self.per_pe {
            if let Some(pos) = list
                .iter()
                .position(|s| s.slot().global_index() == global_index)
            {
                drop(list.remove(pos));
                return true;
            }
        }
        false
    }

    /// Release every slab parked for `pe` (idle/park hook). Returns the
    /// number released.
    pub fn flush(&mut self, pe: usize) -> SysResult<usize> {
        self.flush_to(pe, 0)
    }

    /// Release every parked slab on every PE. Returns the number released.
    pub fn flush_all(&mut self) -> SysResult<usize> {
        let mut n = 0;
        for pe in 0..self.per_pe.len() {
            n += self.flush_to(pe, 0)?;
        }
        Ok(n)
    }

    /// Release `pe`'s parked slabs, oldest first, until `keep` remain.
    /// Clean slabs are dismantled as a batch: adjacent slot indices merge
    /// into single whole-slot `madvise` runs, then the indices recycle
    /// through the free list with no further syscalls. Tainted slabs fall
    /// back to the ordinary drop path.
    fn flush_to(&mut self, pe: usize, keep: usize) -> SysResult<usize> {
        let n = self.per_pe[pe].len().saturating_sub(keep);
        if n == 0 {
            return Ok(0);
        }
        let drained: Vec<ThreadSlab> = self.per_pe[pe].drain(..n).collect();
        let region: Arc<IsoRegion> = Arc::clone(drained[0].slot().region());
        let mut clean: Vec<ThreadSlab> = Vec::with_capacity(drained.len());
        for slab in drained {
            if slab.slot().warm_tainted() {
                drop(slab); // full-decommit path; rare
            } else {
                clean.push(slab);
            }
        }
        let mut indices: Vec<usize> =
            clean.iter().map(|s| s.slot().global_index()).collect();
        region.discard_slot_runs(&mut indices)?;
        for slab in clean {
            slab.into_slot().recycle_without_discard();
        }
        self.batches += 1;
        flows_sys::counters::note_reclaim_batch();
        emit(EventKind::RemapBatch, pe as u64, n as u64, 1);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::syscall_snapshot;
    use crate::region::IsoConfig;
    use proptest::prelude::*;

    const SLOT_LEN: usize = 256 * 1024;
    const STACK_LEN: usize = 16 * 1024;

    fn region(slots: usize) -> Arc<IsoRegion> {
        IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 1,
            slots_per_pe: slots,
            slot_len: SLOT_LEN,
        })
        .unwrap()
    }

    fn fresh_slab(r: &Arc<IsoRegion>, cache: &mut SlabCache) -> ThreadSlab {
        cache
            .take(0, STACK_LEN)
            .map(Ok)
            .unwrap_or_else(|| ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN))
            .unwrap()
    }

    #[test]
    fn put_take_cycle_is_syscall_free() {
        let r = region(4);
        let mut cache = SlabCache::new(1);
        cache.set_high_water(usize::MAX);
        // Warm-up tenancy commits the stack and a heap page.
        let mut slab = fresh_slab(&r, &mut cache);
        let p = slab.malloc(4096).unwrap();
        // SAFETY: fresh allocation.
        unsafe { std::ptr::write_bytes(p, 0xAB, 4096) };
        cache.put(0, slab).unwrap();
        let before = syscall_snapshot();
        for _ in 0..8 {
            let mut slab = cache.take(0, STACK_LEN).expect("cache hit");
            let p = slab.malloc(4096).unwrap();
            // SAFETY: fresh allocation (stale contents allowed, but the
            // committed page must be writable).
            unsafe { std::ptr::write_bytes(p, 0xCD, 4096) };
            cache.put(0, slab).unwrap();
        }
        let d = syscall_snapshot().since(&before);
        assert_eq!(d.total(), 0, "steady churn through the cache costs nothing");
        assert_eq!(cache.reclaim_batches(), 0);
    }

    #[test]
    fn flush_coalesces_adjacent_slots() {
        let r = region(4);
        let mut cache = SlabCache::new(1);
        cache.set_high_water(usize::MAX);
        for _ in 0..4 {
            let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN).unwrap();
            cache.put(0, slab).unwrap();
        }
        let before = syscall_snapshot();
        assert_eq!(cache.flush(0).unwrap(), 4);
        let d = syscall_snapshot().since(&before);
        assert_eq!(d.madvise, 1, "4 adjacent slots must merge into one discard");
        assert_eq!(d.mprotect, 0, "clean flush never touches protections");
        assert_eq!(cache.reclaim_batches(), 1);
        assert_eq!(r.live_slots(0), 0, "indices recycled");
        // Recycled slots still read zero on fresh use.
        let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN).unwrap();
        let p = slab.malloc(64).unwrap();
        // SAFETY: fresh allocation of a discarded page.
        unsafe { assert_eq!(*(p as *const u64), 0) };
    }

    #[test]
    fn high_water_keeps_the_cache_bounded() {
        let r = region(8);
        let mut cache = SlabCache::new(1);
        cache.set_high_water(3);
        let slabs: Vec<_> = (0..6)
            .map(|_| ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN).unwrap())
            .collect();
        for slab in slabs {
            cache.put(0, slab).unwrap();
        }
        assert!(cache.cached(0) <= 3);
        assert!(cache.reclaim_batches() >= 1);
    }

    #[test]
    fn take_any_prefers_local_then_adopts_cross_pe() {
        let r = IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 2,
            slots_per_pe: 2,
            slot_len: SLOT_LEN,
        })
        .unwrap();
        let mut cache = SlabCache::new(2);
        cache.set_high_water(usize::MAX);
        let local = ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN).unwrap();
        let local_idx = local.slot().global_index();
        let remote = ThreadSlab::new(r.alloc_slot(1).unwrap(), STACK_LEN).unwrap();
        let remote_idx = remote.slot().global_index();
        cache.put(0, local).unwrap();
        cache.put(1, remote).unwrap();
        let first = cache.take_any(0, STACK_LEN).expect("local hit");
        assert_eq!(first.slot().global_index(), local_idx, "local list wins");
        // Local list now dry: the neighbour's warm slab is adopted, and
        // reusing it costs no syscalls (the warm-respawn fast path holds
        // across PEs).
        let before = syscall_snapshot();
        let second = cache.take_any(0, STACK_LEN).expect("cross-PE hit");
        assert_eq!(second.slot().global_index(), remote_idx);
        assert_eq!(syscall_snapshot().since(&before).total(), 0);
        assert!(cache.take_any(0, STACK_LEN).is_none(), "both lists dry");
        // Wrong stack length never matches anywhere.
        cache.put(1, second).unwrap();
        assert!(cache.take_any(0, STACK_LEN * 2).is_none());
    }

    #[test]
    fn evict_releases_the_index_for_adoption() {
        let r = region(4);
        let mut cache = SlabCache::new(1);
        cache.set_high_water(usize::MAX);
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), STACK_LEN).unwrap();
        let idx = slab.slot().global_index();
        cache.put(0, slab).unwrap();
        assert_eq!(r.live_slots(0), 1, "cached slab still owns its slot");
        assert!(cache.evict(idx));
        assert!(!cache.evict(idx), "second evict finds nothing");
        assert_eq!(r.live_slots(0), 0);
        let s = r.adopt_slot(idx).unwrap();
        assert_eq!(r.live_slots(0), 1, "adoption reclaimed the freed index");
        drop(s);
    }

    #[derive(Debug, Clone)]
    enum Op {
        Spawn,
        Exit(usize),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Spawn),
            Just(Op::Spawn), // bias toward spawning so lists fill up
            any::<usize>().prop_map(Op::Exit),
            Just(Op::Flush),
        ]
    }

    proptest! {
        /// The PR 5 SIGSEGV class, as a property: however spawn/exit/flush
        /// interleave with deferred reclaim enabled, no flush may ever
        /// touch a *live* slab's pages (its data must survive every
        /// subsequent op) and every live slab's guard invariants must hold
        /// against the kernel's own view of the address space. Runs under
        /// `sanitize` in CI.
        #[test]
        fn deferred_reclaim_never_harms_live_slabs(
            ops in proptest::collection::vec(op_strategy(), 1..40),
            hw in 0usize..4,
        ) {
            let r = region(8);
            let mut cache = SlabCache::new(1);
            cache.set_high_water(hw);
            let mut live: Vec<(ThreadSlab, *mut u8, u64)> = Vec::new();
            let mut token = 0x1000u64;
            for o in ops {
                match o {
                    Op::Spawn => {
                        if r.live_slots(0) + cache.cached(0) >= 8 {
                            continue;
                        }
                        let mut slab = fresh_slab(&r, &mut cache);
                        let p = slab.malloc(512).unwrap();
                        token += 1;
                        // SAFETY: fresh heap allocation; stack top word is
                        // committed stack.
                        unsafe {
                            *(p as *mut u64) = token;
                            *((slab.stack_top() - 8) as *mut u64) = token;
                        }
                        live.push((slab, p, token));
                    }
                    Op::Exit(k) => {
                        if live.is_empty() {
                            continue;
                        }
                        let (slab, _, _) = live.remove(k % live.len());
                        cache.put(0, slab).unwrap();
                    }
                    Op::Flush => {
                        cache.flush_all().unwrap();
                    }
                }
                // Every live slab's data must have survived, and its
                // guard must hold per /proc/self/maps.
                for (slab, p, tok) in &live {
                    // SAFETY: both writes above targeted committed ranges
                    // this slab still owns.
                    unsafe {
                        prop_assert_eq!(*(*p as *const u64), *tok);
                        prop_assert_eq!(*((slab.stack_top() - 8) as *const u64), *tok);
                    }
                    prop_assert!(slab.assert_guard().is_ok());
                }
            }
        }
    }
}
