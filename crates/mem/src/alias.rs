//! Memory-aliasing stacks (paper §3.4.3, Figure 3).
//!
//! Every thread's stack lives in its own physical *frame* — a page-aligned
//! extent of one `memfd` object — and all threads execute from a single
//! common virtual address range (the *window*). Switching to thread *i*
//! does **not** copy any stack data: it remaps the window onto frame *i*
//! with one `mmap(MAP_FIXED)` call. Virtual-address cost is one stack, no
//! matter how many threads exist, which is why the paper proposes this
//! scheme for 32-bit machines where isomalloc runs out of address space.
//!
//! Like stack-copying threads, only one aliased thread can be *running*
//! per address space (the window is shared); the thread package enforces
//! that with a process-wide lock.

use flows_sys::error::{SysError, SysResult};
use flows_sys::map::Mapping;
use flows_sys::memfd::MemFd;
use flows_sys::page::page_size;

/// Identifier of a stack frame inside the pool's `memfd`.
pub type FrameId = usize;

/// A pool of aliasable stack frames plus the common execution window.
#[derive(Debug)]
pub struct AliasStackPool {
    memfd: MemFd,
    frame_len: usize,
    window: Mapping,
    n_frames: usize,
    free: Vec<FrameId>,
    active: Option<FrameId>,
}

impl AliasStackPool {
    /// Create a pool with frames of `frame_len` bytes (page multiple) and
    /// capacity for `initial_frames` (grows on demand).
    pub fn new(frame_len: usize, initial_frames: usize) -> SysResult<AliasStackPool> {
        let pg = page_size();
        if frame_len == 0 || !frame_len.is_multiple_of(pg) {
            return Err(SysError::logic(
                "alias_pool",
                format!("frame_len {frame_len:#x} must be a positive page multiple"),
            ));
        }
        let cap = initial_frames.max(1);
        let memfd = MemFd::new("flows-alias-stacks", (frame_len * cap) as u64)?;
        let window = Mapping::reserve(frame_len)?;
        Ok(AliasStackPool {
            memfd,
            frame_len,
            window,
            n_frames: 0,
            free: Vec::new(),
            active: None,
        })
    }

    /// Bytes per frame.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Lowest address of the common window.
    pub fn window_base(&self) -> usize {
        self.window.addr()
    }

    /// One past the highest address of the common window — every aliased
    /// thread's initial stack top.
    pub fn window_top(&self) -> usize {
        self.window.addr() + self.frame_len
    }

    /// The frame currently mapped into the window, if any.
    pub fn active(&self) -> Option<FrameId> {
        self.active
    }

    /// Number of frames ever created and not freed.
    pub fn live_frames(&self) -> usize {
        self.n_frames - self.free.len()
    }

    /// Allocate a (zero-filled) frame.
    pub fn alloc_frame(&mut self) -> SysResult<FrameId> {
        if let Some(f) = self.free.pop() {
            // Recycled frames were hole-punched on free, so they read zero.
            return Ok(f);
        }
        let f = self.n_frames;
        let needed = ((f + 1) * self.frame_len) as u64;
        if needed > self.memfd.len() {
            let target = (self.memfd.len() * 2).max(needed);
            self.memfd.grow(target)?;
        }
        self.n_frames += 1;
        Ok(f)
    }

    /// Free a frame, returning its physical pages to the kernel.
    pub fn free_frame(&mut self, f: FrameId) -> SysResult<()> {
        self.check(f)?;
        if self.active == Some(f) {
            return Err(SysError::logic("alias_free", "frame is active".into()));
        }
        self.memfd
            .discard((f * self.frame_len) as u64, self.frame_len as u64)?;
        self.free.push(f);
        Ok(())
    }

    /// The memory-aliasing context switch: map frame `f` into the window.
    /// One `mmap` system call; no data is copied. Re-activating the frame
    /// that is already in the window is free (no syscall).
    pub fn activate(&mut self, f: FrameId) -> SysResult<()> {
        self.check(f)?;
        if self.active == Some(f) {
            return Ok(());
        }
        self.window.alias_file(
            0,
            self.frame_len,
            self.memfd.fd(),
            (f * self.frame_len) as u64,
        )?;
        self.active = Some(f);
        Ok(())
    }

    /// Free the *active* frame without unmapping the window: the frame's
    /// physical pages are hole-punched (one `fallocate`) and the frame id
    /// recycles zeroed, but the window keeps its now-stale file mapping.
    /// That is safe because nothing executes on the window until the next
    /// [`AliasStackPool::activate`] remaps it with `MAP_FIXED` — this is
    /// the thread-exit fast path, saving the `mmap` that
    /// [`AliasStackPool::deactivate`] + [`AliasStackPool::free_frame`]
    /// would spend.
    pub fn retire_active(&mut self) -> SysResult<FrameId> {
        let f = self
            .active
            .take()
            .ok_or_else(|| SysError::logic("alias_retire", "no active frame".into()))?;
        self.memfd
            .discard((f * self.frame_len) as u64, self.frame_len as u64)?;
        self.free.push(f);
        Ok(f)
    }

    /// Unmap the window (back to `PROT_NONE` reservation). Stack contents
    /// persist in the frame.
    pub fn deactivate(&mut self) -> SysResult<()> {
        self.window.unalias(0, self.frame_len)?;
        self.active = None;
        Ok(())
    }

    /// Read a frame's bytes without mapping it (used to pack a migrating
    /// thread). Works whether or not the frame is active.
    pub fn read_frame(&self, f: FrameId) -> SysResult<Vec<u8>> {
        self.check(f)?;
        let mut buf = vec![0u8; self.frame_len];
        self.memfd.read_at((f * self.frame_len) as u64, &mut buf)?;
        Ok(buf)
    }

    /// Append the last `tail_len` bytes of frame `f` to `out` without
    /// mapping the frame. Stacks grow down from the frame top, so the tail
    /// is the *live* part — migration ships it and nothing else.
    pub fn read_frame_tail_into(
        &self,
        f: FrameId,
        tail_len: usize,
        out: &mut Vec<u8>,
    ) -> SysResult<()> {
        self.check(f)?;
        if tail_len > self.frame_len {
            return Err(SysError::logic(
                "alias_read",
                format!("tail {tail_len:#x} exceeds frame {:#x}", self.frame_len),
            ));
        }
        let start = out.len();
        out.resize(start + tail_len, 0);
        self.memfd.read_at(
            (f * self.frame_len + (self.frame_len - tail_len)) as u64,
            &mut out[start..],
        )
    }

    /// Overwrite the last `tail.len()` bytes of frame `f`. The rest of the
    /// frame is untouched — callers unpacking a migrated thread rely on
    /// freshly allocated frames reading zero below the tail.
    pub fn write_frame_tail(&mut self, f: FrameId, tail: &[u8]) -> SysResult<()> {
        self.check(f)?;
        if tail.len() > self.frame_len {
            return Err(SysError::logic(
                "alias_write",
                format!("tail {:#x} exceeds frame {:#x}", tail.len(), self.frame_len),
            ));
        }
        self.memfd.write_at(
            (f * self.frame_len + (self.frame_len - tail.len())) as u64,
            tail,
        )
    }

    /// Overwrite a frame's bytes (used to unpack a migrated-in thread).
    pub fn write_frame(&mut self, f: FrameId, bytes: &[u8]) -> SysResult<()> {
        self.check(f)?;
        if bytes.len() != self.frame_len {
            return Err(SysError::logic(
                "alias_write",
                format!("image is {} bytes, frame is {}", bytes.len(), self.frame_len),
            ));
        }
        self.memfd.write_at((f * self.frame_len) as u64, bytes)
    }

    fn check(&self, f: FrameId) -> SysResult<()> {
        if f >= self.n_frames || self.free.contains(&f) {
            return Err(SysError::logic(
                "alias_frame",
                format!("frame {f} is not live (of {})", self.n_frames),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> AliasStackPool {
        AliasStackPool::new(64 * 1024, 2).unwrap()
    }

    #[test]
    fn switch_preserves_per_frame_contents() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        let b = p.alloc_frame().unwrap();
        let top = p.window_top();

        p.activate(a).unwrap();
        // SAFETY: window is mapped read-write while active.
        unsafe { *((top - 8) as *mut u64) = 0xAAAA };
        p.activate(b).unwrap();
        // SAFETY: as above.
        unsafe {
            assert_eq!(*((top - 8) as *const u64), 0, "fresh frame reads zero");
            *((top - 8) as *mut u64) = 0xBBBB;
        }
        p.activate(a).unwrap();
        // SAFETY: as above.
        unsafe { assert_eq!(*((top - 8) as *const u64), 0xAAAA) };
        p.activate(b).unwrap();
        // SAFETY: as above.
        unsafe { assert_eq!(*((top - 8) as *const u64), 0xBBBB) };
    }

    #[test]
    fn pool_grows_on_demand() {
        let mut p = AliasStackPool::new(page_size(), 1).unwrap();
        let frames: Vec<_> = (0..20).map(|_| p.alloc_frame().unwrap()).collect();
        assert_eq!(frames.len(), 20);
        assert_eq!(p.live_frames(), 20);
    }

    #[test]
    fn freed_frames_recycle_zeroed() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        p.activate(a).unwrap();
        let top = p.window_top();
        // SAFETY: active window.
        unsafe { *((top - 8) as *mut u64) = 77 };
        p.deactivate().unwrap();
        p.free_frame(a).unwrap();
        let b = p.alloc_frame().unwrap();
        assert_eq!(a, b, "frame id recycled");
        p.activate(b).unwrap();
        // SAFETY: active window.
        unsafe { assert_eq!(*((top - 8) as *const u64), 0, "hole punch zeroed it") };
    }

    #[test]
    fn cannot_free_active_or_bogus_frames() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        p.activate(a).unwrap();
        assert!(p.free_frame(a).is_err());
        assert!(p.free_frame(99).is_err());
        p.deactivate().unwrap();
        p.free_frame(a).unwrap();
        assert!(p.free_frame(a).is_err(), "double free rejected");
    }

    #[test]
    fn retire_active_recycles_without_remap() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        p.activate(a).unwrap();
        let top = p.window_top();
        // SAFETY: active window.
        unsafe { *((top - 8) as *mut u64) = 7 };
        let before = flows_sys::counters::snapshot();
        let f = p.retire_active().unwrap();
        assert_eq!(f, a);
        assert_eq!(p.active(), None);
        let d = flows_sys::counters::snapshot().since(&before);
        assert_eq!(d.mmap, 0, "retire must not remap the window");
        assert_eq!(d.fallocate, 1, "retire is one hole punch");
        // The frame recycles zeroed, and re-activating remaps the window.
        let b = p.alloc_frame().unwrap();
        assert_eq!(b, a, "frame id recycled");
        p.activate(b).unwrap();
        // SAFETY: active window.
        unsafe { assert_eq!(*((top - 8) as *const u64), 0, "hole punch zeroed it") };
        assert!(p.retire_active().is_ok());
        assert!(p.retire_active().is_err(), "no active frame left");
    }

    #[test]
    fn reactivating_the_active_frame_is_free() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        p.activate(a).unwrap();
        let before = flows_sys::counters::snapshot();
        p.activate(a).unwrap();
        assert_eq!(
            flows_sys::counters::snapshot().since(&before).total(),
            0,
            "re-activating the resident frame must cost nothing"
        );
    }

    #[test]
    fn frame_tail_round_trip() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        let tail: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        p.write_frame_tail(a, &tail).unwrap();
        let mut got = Vec::new();
        p.read_frame_tail_into(a, 1000, &mut got).unwrap();
        assert_eq!(got, tail);
        // The tail occupies the end of the frame; the rest reads zero.
        let full = p.read_frame(a).unwrap();
        assert_eq!(&full[p.frame_len() - 1000..], &tail[..]);
        assert!(full[..p.frame_len() - 1000].iter().all(|&b| b == 0));
        // Oversize tails rejected.
        let big = vec![0u8; p.frame_len() + 1];
        assert!(p.write_frame_tail(a, &big).is_err());
        assert!(p.read_frame_tail_into(a, p.frame_len() + 1, &mut got).is_err());
    }

    #[test]
    fn read_write_frame_round_trip() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        let mut img = vec![0u8; p.frame_len()];
        for (i, b) in img.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        p.write_frame(a, &img).unwrap();
        assert_eq!(p.read_frame(a).unwrap(), img);
        // The window sees what pwrite wrote (same physical pages).
        p.activate(a).unwrap();
        // SAFETY: active window.
        let seen = unsafe {
            std::slice::from_raw_parts(p.window_base() as *const u8, p.frame_len())
        };
        assert_eq!(seen, &img[..]);
        // Size mismatch rejected.
        p.deactivate().unwrap();
        assert!(p.write_frame(a, &img[1..]).is_err());
    }

    #[test]
    fn window_is_inaccessible_when_deactivated() {
        let mut p = pool();
        let a = p.alloc_frame().unwrap();
        p.activate(a).unwrap();
        assert_eq!(p.active(), Some(a));
        p.deactivate().unwrap();
        assert_eq!(p.active(), None);
        // (Touching the window now would SIGSEGV; we assert the bookkeeping
        // rather than install a fault handler.)
    }
}
