//! Memory-aliasing stacks (paper §3.4.3, Figure 3) with per-PE private
//! windows and deferred batch reclaim.
//!
//! Every thread's stack lives in its own physical *frame* — a page-aligned
//! extent of one `memfd` object. The paper's original scheme executes all
//! aliased threads from a single common virtual window and remaps it with
//! `mmap(MAP_FIXED)` on **every** context switch. That puts a syscall (and
//! a process-wide lock) in the switch hot loop, which is exactly where the
//! paper's Figure 4 shows the flavor falling behind.
//!
//! This implementation reserves a *window per thread slot* instead: one
//! machine-wide `PROT_NONE` reservation carved into `num_pes ×
//! windows_per_pe` windows of `frame_len` bytes. A thread binds a window
//! once, its frame is aliased into that window on the first resume, and
//! every later local switch costs **zero** syscalls and **zero** locks —
//! the mapping simply stays put, because no other thread shares the
//! window. Virtual-address cost grows with the live-thread bound (like
//! isomalloc) rather than staying at one stack, which is the documented
//! trade against the paper's 32-bit motivation; in exchange, any number of
//! aliased threads can run concurrently across PEs.
//!
//! ### Window lifecycle
//!
//! ```text
//!   Free ──bind──▶ Bound{mapped:false} ──map_window──▶ Bound{mapped:true}
//!    ▲                    │                                   │
//!    │                 release                             retire
//!    │                    ▼                                   ▼
//!    └──────flush────  (punched)                      Warm{frame} ──bind──▶ Bound
//!                                                         │
//!   pack: Bound ──begin_transit──▶ InTransit ──adopt──▶ Bound
//! ```
//!
//! * `Free` — window unmapped, no frame; on its home PE's free list (or
//!   still uncarved fresh territory).
//! * `Warm` — a thread exited here: frame *and* mapping are kept intact,
//!   parked on the home PE's warm list. Respawning from a warm pair costs
//!   zero syscalls (the stale contents are dead; a fresh bootstrap frame
//!   is built on top, mirroring the Standard flavor's recycled stacks).
//! * `Bound` — owned by a live thread ([`AliasBinding`]).
//! * `InTransit` — the thread packed for migration; the window identity
//!   travels inside the saved stack pointer and is re-bound by
//!   [`AliasStackPool::adopt`] wherever the thread lands.
//!
//! Warm windows are only reused *with their own frame* — their pages are
//! stale, not zero. Frames on the free list are always hole-punched first
//! and therefore read zero, which migration's "write only the live tail"
//! reconstruction relies on.
//!
//! ### Deferred reclaim
//!
//! Nothing is unmapped or punched on the exit path. Warm pairs accumulate
//! per PE until the list crosses a high-water mark (or the PE goes idle
//! and calls [`AliasStackPool::flush`]); one flush then releases a batch:
//! adjacent windows merge into single `MAP_FIXED PROT_NONE` remaps and
//! adjacent frames into single hole punches. Each flush bumps the
//! `reclaim_batch` counter and emits a `RemapBatch` trace event. Under
//! `sanitize` the high-water mark defaults to zero, so reclamation is
//! eager (through the same code path) and vacated windows fault on touch.

use flows_sys::error::{SysError, SysResult};
use flows_sys::map::Mapping;
use flows_sys::memfd::{MemFd, HUGE_2MIB};
use flows_sys::page::page_size;
use flows_trace::{emit, EventKind};

/// Identifier of a stack frame inside the pool's `memfd`.
pub type FrameId = usize;

/// Identifier of a virtual window inside the pool's reservation.
pub type WindowId = usize;

/// A live thread's claim on one window + one frame. Stored in the thread
/// control block; `mapped` is the lock-free fast-path check — once true,
/// resuming the thread touches neither the pool nor the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliasBinding {
    /// The physical frame holding the thread's stack bytes.
    pub frame: FrameId,
    /// The window the frame is (or will be) aliased into.
    pub wid: WindowId,
    /// Lowest address of the window (the stack floor).
    pub floor: usize,
    /// One past the highest address (the initial stack top).
    pub top: usize,
    /// Whether the frame is currently aliased into the window.
    pub mapped: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowState {
    Free,
    Warm { frame: FrameId },
    Bound { frame: FrameId, mapped: bool },
    InTransit { frame: Option<FrameId>, mapped: bool },
}

/// Warm pairs a PE may park before a batch flush runs. Zero under
/// `sanitize`: every retire reclaims eagerly through the same flush path,
/// so vacated windows are provably inaccessible.
#[cfg(not(feature = "sanitize"))]
const DEFAULT_HIGH_WATER: usize = 128;
#[cfg(feature = "sanitize")]
const DEFAULT_HIGH_WATER: usize = 0;

/// A pool of aliasable stack frames plus per-PE private window ranges.
#[derive(Debug)]
pub struct AliasStackPool {
    memfd: MemFd,
    frame_len: usize,
    map: Mapping,
    /// Offset of window 0 inside the reservation (non-zero only when the
    /// backing is hugetlb and the window base needed 2 MiB alignment).
    win_off0: usize,
    num_pes: usize,
    windows_per_pe: usize,
    states: Vec<WindowState>,
    /// Per PE: first never-carved local window index.
    next_fresh: Vec<usize>,
    /// Per PE: carved windows in state `Free`.
    free_windows: Vec<Vec<WindowId>>,
    /// Per PE: windows in state `Warm`, oldest first.
    warm: Vec<Vec<WindowId>>,
    /// Hole-punched frames (read zero), ready for reuse.
    free_frames: Vec<FrameId>,
    n_frames: usize,
    high_water: usize,
    batches: u64,
}

impl AliasStackPool {
    /// Single-PE convenience constructor: `initial_frames` windows on PE 0
    /// and memfd capacity for as many frames (both grow-/steal-free).
    pub fn new(frame_len: usize, initial_frames: usize) -> SysResult<AliasStackPool> {
        Self::new_windowed(frame_len, 1, initial_frames.max(1), initial_frames)
    }

    /// Create a pool with frames of `frame_len` bytes (page multiple),
    /// `windows_per_pe` private windows for each of `num_pes` PEs, and
    /// initial memfd capacity for `initial_frames` (grows on demand).
    ///
    /// When the startup probe reports free 2 MiB hugetlb pages and
    /// `frame_len` is a 2 MiB multiple, the frame store is backed by
    /// hugetlb pages (window base 2 MiB-aligned to match); otherwise it
    /// falls back to a regular memfd. See [`crate::probe::HugePageProbe`].
    pub fn new_windowed(
        frame_len: usize,
        num_pes: usize,
        windows_per_pe: usize,
        initial_frames: usize,
    ) -> SysResult<AliasStackPool> {
        let pg = page_size();
        if frame_len == 0 || !frame_len.is_multiple_of(pg) {
            return Err(SysError::logic(
                "alias_pool",
                format!("frame_len {frame_len:#x} must be a positive page multiple"),
            ));
        }
        if num_pes == 0 || windows_per_pe == 0 {
            return Err(SysError::logic(
                "alias_pool",
                "zero PEs or windows per PE".into(),
            ));
        }
        let num_windows = num_pes
            .checked_mul(windows_per_pe)
            .and_then(|w| w.checked_mul(frame_len))
            .ok_or_else(|| SysError::logic("alias_pool", "window range overflows".into()))?
            / frame_len;
        let total = num_windows * frame_len;
        let cap = initial_frames.max(1);
        let want_hugetlb = frame_len.is_multiple_of(HUGE_2MIB as usize)
            && crate::probe::hugepage_probe().frames_can_use_hugetlb(frame_len);
        let memfd = if want_hugetlb {
            MemFd::new_hugetlb("flows-alias-stacks", (frame_len * cap) as u64)?
        } else {
            MemFd::new("flows-alias-stacks", (frame_len * cap) as u64)?
        };
        // Hugetlb file mappings need 2 MiB-aligned addresses; over-reserve
        // and start the window range at the first aligned byte.
        let (map, win_off0) = if memfd.is_hugetlb() {
            let align = HUGE_2MIB as usize;
            let m = Mapping::reserve(total + align)?;
            let rem = m.addr() % align;
            (m, if rem == 0 { 0 } else { align - rem })
        } else {
            (Mapping::reserve(total)?, 0)
        };
        Ok(AliasStackPool {
            memfd,
            frame_len,
            map,
            win_off0,
            num_pes,
            windows_per_pe,
            states: vec![WindowState::Free; num_windows],
            next_fresh: vec![0; num_pes],
            free_windows: vec![Vec::new(); num_pes],
            warm: vec![Vec::new(); num_pes],
            free_frames: Vec::new(),
            n_frames: 0,
            high_water: DEFAULT_HIGH_WATER,
            batches: 0,
        })
    }

    /// Bytes per frame (= per window).
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// PEs this pool serves.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Private windows reserved for each PE.
    pub fn windows_per_pe(&self) -> usize {
        self.windows_per_pe
    }

    /// Total windows across all PEs.
    pub fn num_windows(&self) -> usize {
        self.num_pes * self.windows_per_pe
    }

    /// Whether the frame store sits on reserved 2 MiB hugetlb pages.
    pub fn hugetlb_backed(&self) -> bool {
        self.memfd.is_hugetlb()
    }

    /// Lowest address of window `wid` (its stack floor).
    pub fn window_floor(&self, wid: WindowId) -> usize {
        self.map.addr() + self.win_off0 + wid * self.frame_len
    }

    /// One past the highest address of window `wid` — the initial stack
    /// top of the thread bound to it.
    pub fn window_top(&self, wid: WindowId) -> usize {
        self.window_floor(wid) + self.frame_len
    }

    /// The PE from whose range `wid` was carved.
    pub fn home_pe(&self, wid: WindowId) -> usize {
        wid / self.windows_per_pe
    }

    /// Number of frames ever created and not freed.
    pub fn live_frames(&self) -> usize {
        self.n_frames - self.free_frames.len()
    }

    /// Warm pairs currently parked on `pe`'s reclaim list.
    pub fn warm_windows(&self, pe: usize) -> usize {
        self.warm[pe].len()
    }

    /// Batched reclaim flushes performed so far.
    pub fn reclaim_batches(&self) -> u64 {
        self.batches
    }

    /// Override the warm-list high-water mark (tests; `0` = eager).
    pub fn set_high_water(&mut self, n: usize) {
        self.high_water = n;
    }

    /// Recover a window id from a stack pointer saved inside it — how a
    /// migrated-in thread's image names its window (the sp travels in the
    /// packed head; the window range is machine-wide, so the id is stable
    /// across PEs).
    pub fn wid_for_sp(&self, sp: usize) -> SysResult<WindowId> {
        let base = self.window_floor(0);
        let end = base + self.num_windows() * self.frame_len;
        if sp <= base || sp > end {
            return Err(SysError::logic(
                "alias_wid",
                format!("sp {sp:#x} outside the window range [{base:#x},{end:#x})"),
            ));
        }
        Ok((sp - 1 - base) / self.frame_len)
    }

    // --- binding ---------------------------------------------------------

    /// Claim a window + frame for a thread spawning on `pe`. Preference
    /// order: `pe`'s warm list (zero syscalls — frame and mapping reused
    /// as-is), `pe`'s free/fresh windows, then other PEs' free/fresh, then
    /// other PEs' warm pairs. Fails only when every window machine-wide is
    /// owned.
    pub fn bind(&mut self, pe: usize) -> SysResult<AliasBinding> {
        if pe >= self.num_pes {
            return Err(SysError::logic(
                "alias_bind",
                format!("pe {pe} out of range ({} PEs)", self.num_pes),
            ));
        }
        if let Some(wid) = self.warm[pe].pop() {
            return self.rebind_warm(wid);
        }
        if let Some(wid) = self.take_free_window(pe) {
            return self.bind_fresh(wid);
        }
        for q in 0..self.num_pes {
            if q == pe {
                continue;
            }
            if let Some(wid) = self.take_free_window(q) {
                return self.bind_fresh(wid);
            }
        }
        for q in 0..self.num_pes {
            if q == pe {
                continue;
            }
            if let Some(wid) = self.warm[q].pop() {
                return self.rebind_warm(wid);
            }
        }
        Err(SysError::logic(
            "alias_bind",
            format!("all {} alias windows are owned", self.num_windows()),
        ))
    }

    fn rebind_warm(&mut self, wid: WindowId) -> SysResult<AliasBinding> {
        let WindowState::Warm { frame } = self.states[wid] else {
            return Err(SysError::logic(
                "alias_bind",
                format!("warm-list window {wid} is not Warm"),
            ));
        };
        self.states[wid] = WindowState::Bound { frame, mapped: true };
        Ok(self.binding(frame, wid, true))
    }

    fn bind_fresh(&mut self, wid: WindowId) -> SysResult<AliasBinding> {
        let frame = self.alloc_frame()?;
        self.states[wid] = WindowState::Bound { frame, mapped: false };
        Ok(self.binding(frame, wid, false))
    }

    fn binding(&self, frame: FrameId, wid: WindowId, mapped: bool) -> AliasBinding {
        AliasBinding {
            frame,
            wid,
            floor: self.window_floor(wid),
            top: self.window_top(wid),
            mapped,
        }
    }

    /// Alias the binding's frame into its window (one `MAP_FIXED` remap).
    /// Idempotent; after it succeeds the thread resumes lock- and
    /// syscall-free until it exits or migrates.
    pub fn map_window(&mut self, b: &mut AliasBinding) -> SysResult<()> {
        match self.states[b.wid] {
            WindowState::Bound { frame, mapped } if frame == b.frame => {
                if !mapped {
                    self.map.alias_file(
                        self.win_off0 + b.wid * self.frame_len,
                        self.frame_len,
                        self.memfd.fd(),
                        (b.frame * self.frame_len) as u64,
                    )?;
                    self.states[b.wid] = WindowState::Bound { frame, mapped: true };
                }
                b.mapped = true;
                Ok(())
            }
            s => Err(SysError::logic(
                "alias_map",
                format!("window {} not bound to frame {} ({s:?})", b.wid, b.frame),
            )),
        }
    }

    // --- exit / discard --------------------------------------------------

    /// Thread-exit fast path: park the (window, frame) pair warm on the
    /// window's home PE. Zero syscalls — the mapping and the stale frame
    /// contents are left in place for the next [`AliasStackPool::bind`] —
    /// until the warm list crosses the high-water mark, which triggers a
    /// batched flush.
    pub fn retire(&mut self, b: AliasBinding) -> SysResult<()> {
        match self.states[b.wid] {
            WindowState::Bound { frame, mapped } if frame == b.frame => {
                if mapped {
                    let home = self.home_pe(b.wid);
                    self.states[b.wid] = WindowState::Warm { frame };
                    self.warm[home].push(b.wid);
                    self.maybe_flush(home)
                } else {
                    // Never ran: no mapping exists, nothing to keep warm.
                    self.punch_frame(frame)?;
                    self.free_frames.push(frame);
                    self.make_free(b.wid);
                    Ok(())
                }
            }
            s => Err(SysError::logic(
                "alias_retire",
                format!("window {} not bound to frame {} ({s:?})", b.wid, b.frame),
            )),
        }
    }

    /// Discard a live thread's claim immediately (rollback path): punch
    /// the frame, tear down the mapping, return the window to its home
    /// free list.
    pub fn release(&mut self, b: &AliasBinding) -> SysResult<()> {
        match self.states[b.wid] {
            WindowState::Bound { frame, mapped } if frame == b.frame => {
                self.punch_frame(frame)?;
                self.free_frames.push(frame);
                if mapped {
                    self.map
                        .unalias(self.win_off0 + b.wid * self.frame_len, self.frame_len)?;
                }
                self.make_free(b.wid);
                Ok(())
            }
            s => Err(SysError::logic(
                "alias_release",
                format!("window {} not bound to frame {} ({s:?})", b.wid, b.frame),
            )),
        }
    }

    // --- migration -------------------------------------------------------

    /// Append the last `tail_len` bytes of the binding's frame to `out`
    /// without touching the mapping (one `pread`). Stacks grow down, so
    /// the tail is the live part — migration ships it and nothing else.
    pub fn read_bound_tail_into(
        &self,
        b: &AliasBinding,
        tail_len: usize,
        out: &mut Vec<u8>,
    ) -> SysResult<()> {
        match self.states[b.wid] {
            WindowState::Bound { frame, .. } if frame == b.frame => {
                self.read_frame_tail_into(frame, tail_len, out)
            }
            s => Err(SysError::logic(
                "alias_pack",
                format!("window {} not bound to frame {} ({s:?})", b.wid, b.frame),
            )),
        }
    }

    /// Mark a packed thread's window in-transit. Without `sanitize` the
    /// frame and its mapping stay intact (zero syscalls; re-adoption on
    /// any PE of this machine is a tail write). Under `sanitize` the frame
    /// is punched and the window unmapped, so any stale access on the
    /// source faults instead of silently reading departed bytes.
    pub fn begin_transit(&mut self, b: &AliasBinding) -> SysResult<()> {
        match self.states[b.wid] {
            WindowState::Bound { frame, mapped } if frame == b.frame => {
                #[cfg(not(feature = "sanitize"))]
                {
                    self.states[b.wid] = WindowState::InTransit {
                        frame: Some(frame),
                        mapped,
                    };
                    Ok(())
                }
                #[cfg(feature = "sanitize")]
                {
                    self.punch_frame(frame)?;
                    self.free_frames.push(frame);
                    if mapped {
                        self.map
                            .unalias(self.win_off0 + b.wid * self.frame_len, self.frame_len)?;
                    }
                    self.states[b.wid] = WindowState::InTransit {
                        frame: None,
                        mapped: false,
                    };
                    Ok(())
                }
            }
            s => Err(SysError::logic(
                "alias_transit",
                format!("window {} not bound to frame {} ({s:?})", b.wid, b.frame),
            )),
        }
    }

    /// Re-bind window `wid` for a migrated-in (or rolled-back) thread and
    /// reinstate `tail` as the top of its stack. Everything below the tail
    /// reads zero afterwards. Handles every reachable window state:
    ///
    /// * `InTransit` with its frame — the normal migration round trip:
    ///   one `pwrite`, mapping reused as-is.
    /// * `InTransit` without a frame (`sanitize` transit) — fresh zeroed
    ///   frame plus the tail write.
    /// * `Warm` — the thread exited after this image was captured and a
    ///   rollback re-instates it: the parked pair is pulled off the warm
    ///   list and its frame punched first (stale bytes below the tail must
    ///   not survive into the restored stack).
    /// * `Free` — the pair was already reclaimed (or the image predates
    ///   any tenant): allocate a zeroed frame, carving the window out of
    ///   fresh territory if it was never used.
    /// * `Bound` — error: the window still belongs to a live thread.
    pub fn adopt(&mut self, wid: WindowId, tail: &[u8]) -> SysResult<AliasBinding> {
        if wid >= self.num_windows() {
            return Err(SysError::logic(
                "alias_adopt",
                format!("window {wid} out of range ({})", self.num_windows()),
            ));
        }
        match self.states[wid] {
            WindowState::InTransit { frame: Some(frame), mapped } => {
                self.write_frame_tail(frame, tail)?;
                self.states[wid] = WindowState::Bound { frame, mapped };
                Ok(self.binding(frame, wid, mapped))
            }
            WindowState::InTransit { frame: None, .. } => {
                let frame = self.alloc_frame()?;
                self.write_frame_tail(frame, tail)?;
                self.states[wid] = WindowState::Bound { frame, mapped: false };
                Ok(self.binding(frame, wid, false))
            }
            WindowState::Warm { frame } => {
                let home = self.home_pe(wid);
                let pos = self.warm[home]
                    .iter()
                    .position(|&w| w == wid)
                    .ok_or_else(|| {
                        SysError::logic("alias_adopt", format!("warm window {wid} not listed"))
                    })?;
                self.warm[home].remove(pos);
                // The previous tenant's bytes are stale: punch before the
                // tail write so below-tail reads zero again.
                self.punch_frame(frame)?;
                self.write_frame_tail(frame, tail)?;
                self.states[wid] = WindowState::Bound { frame, mapped: true };
                Ok(self.binding(frame, wid, true))
            }
            WindowState::Free => {
                self.claim_specific(wid)?;
                let frame = self.alloc_frame()?;
                self.write_frame_tail(frame, tail)?;
                self.states[wid] = WindowState::Bound { frame, mapped: false };
                Ok(self.binding(frame, wid, false))
            }
            WindowState::Bound { .. } => Err(SysError::logic(
                "alias_adopt",
                format!("window {wid} is still owned by a live thread"),
            )),
        }
    }

    // --- deferred reclaim ------------------------------------------------

    /// Flush `pe`'s warm list completely, releasing every parked pair in
    /// coalesced batches (idle/park hook). Returns pairs released.
    pub fn flush(&mut self, pe: usize) -> SysResult<usize> {
        self.flush_to(pe, 0)
    }

    /// Flush every PE's warm list completely. Returns pairs released.
    pub fn flush_all(&mut self) -> SysResult<usize> {
        let mut n = 0;
        for pe in 0..self.num_pes {
            n += self.flush_to(pe, 0)?;
        }
        Ok(n)
    }

    fn maybe_flush(&mut self, pe: usize) -> SysResult<()> {
        if self.warm[pe].len() > self.high_water {
            self.flush_to(pe, self.high_water / 2)?;
        }
        Ok(())
    }

    /// Release warm pairs of `pe`, oldest first, until `keep` remain.
    /// Adjacent windows collapse into one remap and adjacent frames into
    /// one hole punch, so a flush of N pairs costs far fewer than 2N
    /// syscalls in the common batch-exit pattern.
    fn flush_to(&mut self, pe: usize, keep: usize) -> SysResult<usize> {
        let n = self.warm[pe].len().saturating_sub(keep);
        if n == 0 {
            return Ok(0);
        }
        let drained: Vec<WindowId> = self.warm[pe].drain(..n).collect();
        let mut wids = Vec::with_capacity(drained.len());
        let mut frames = Vec::with_capacity(drained.len());
        for wid in drained {
            let WindowState::Warm { frame } = self.states[wid] else {
                return Err(SysError::logic(
                    "alias_flush",
                    format!("warm-list window {wid} is not Warm"),
                ));
            };
            self.states[wid] = WindowState::Free;
            self.free_windows[pe].push(wid);
            wids.push(wid);
            frames.push(frame);
        }
        wids.sort_unstable();
        for (start, len) in runs(&wids) {
            self.map.unalias(
                self.win_off0 + start * self.frame_len,
                len * self.frame_len,
            )?;
        }
        frames.sort_unstable();
        for (start, len) in runs(&frames) {
            self.memfd
                .discard((start * self.frame_len) as u64, (len * self.frame_len) as u64)?;
        }
        self.free_frames.extend_from_slice(&frames);
        self.batches += 1;
        flows_sys::counters::note_reclaim_batch();
        emit(EventKind::RemapBatch, pe as u64, n as u64, 0);
        Ok(n)
    }

    // --- internals -------------------------------------------------------

    fn make_free(&mut self, wid: WindowId) {
        let home = self.home_pe(wid);
        self.states[wid] = WindowState::Free;
        self.free_windows[home].push(wid);
    }

    fn take_free_window(&mut self, pe: usize) -> Option<WindowId> {
        if let Some(wid) = self.free_windows[pe].pop() {
            return Some(wid);
        }
        if self.next_fresh[pe] < self.windows_per_pe {
            let wid = pe * self.windows_per_pe + self.next_fresh[pe];
            self.next_fresh[pe] += 1;
            return Some(wid);
        }
        None
    }

    /// Take a *specific* `Free` window out of circulation (adoption of a
    /// migrated image): off its home free list, or carved out of fresh
    /// territory with the skipped locals made available for binding.
    fn claim_specific(&mut self, wid: WindowId) -> SysResult<()> {
        let home = self.home_pe(wid);
        let local = wid % self.windows_per_pe;
        if let Some(pos) = self.free_windows[home].iter().position(|&w| w == wid) {
            self.free_windows[home].swap_remove(pos);
            return Ok(());
        }
        if local >= self.next_fresh[home] {
            for skipped in self.next_fresh[home]..local {
                self.free_windows[home].push(home * self.windows_per_pe + skipped);
            }
            self.next_fresh[home] = local + 1;
            return Ok(());
        }
        Err(SysError::logic(
            "alias_adopt",
            format!("window {wid} is not free"),
        ))
    }

    fn alloc_frame(&mut self) -> SysResult<FrameId> {
        if let Some(f) = self.free_frames.pop() {
            // Recycled frames were hole-punched on free, so they read zero.
            return Ok(f);
        }
        let f = self.n_frames;
        let needed = ((f + 1) * self.frame_len) as u64;
        if needed > self.memfd.len() {
            let target = (self.memfd.len() * 2).max(needed);
            self.memfd.grow(target)?;
        }
        self.n_frames += 1;
        Ok(f)
    }

    fn punch_frame(&self, f: FrameId) -> SysResult<()> {
        self.memfd
            .discard((f * self.frame_len) as u64, self.frame_len as u64)
    }

    fn check_frame(&self, f: FrameId) -> SysResult<()> {
        if f >= self.n_frames || self.free_frames.contains(&f) {
            return Err(SysError::logic(
                "alias_frame",
                format!("frame {f} is not live (of {})", self.n_frames),
            ));
        }
        Ok(())
    }

    /// Read a frame's bytes without mapping it.
    pub fn read_frame(&self, f: FrameId) -> SysResult<Vec<u8>> {
        self.check_frame(f)?;
        let mut buf = vec![0u8; self.frame_len];
        self.memfd.read_at((f * self.frame_len) as u64, &mut buf)?;
        Ok(buf)
    }

    /// Append the last `tail_len` bytes of frame `f` to `out` without
    /// mapping the frame (one `pread`).
    pub fn read_frame_tail_into(
        &self,
        f: FrameId,
        tail_len: usize,
        out: &mut Vec<u8>,
    ) -> SysResult<()> {
        self.check_frame(f)?;
        if tail_len > self.frame_len {
            return Err(SysError::logic(
                "alias_read",
                format!("tail {tail_len:#x} exceeds frame {:#x}", self.frame_len),
            ));
        }
        let start = out.len();
        out.resize(start + tail_len, 0);
        self.memfd.read_at(
            (f * self.frame_len + (self.frame_len - tail_len)) as u64,
            &mut out[start..],
        )
    }

    /// Overwrite the last `tail.len()` bytes of frame `f` (one `pwrite`).
    pub fn write_frame_tail(&mut self, f: FrameId, tail: &[u8]) -> SysResult<()> {
        self.check_frame(f)?;
        if tail.len() > self.frame_len {
            return Err(SysError::logic(
                "alias_write",
                format!("tail {:#x} exceeds frame {:#x}", tail.len(), self.frame_len),
            ));
        }
        self.memfd.write_at(
            (f * self.frame_len + (self.frame_len - tail.len())) as u64,
            tail,
        )
    }
}

/// Decompose a sorted id list into maximal `(start, len)` runs of
/// consecutive ids.
fn runs(sorted: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut len = 1;
        while i + len < sorted.len() && sorted[i + len] == start + len {
            len += 1;
        }
        out.push((start, len));
        i += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_sys::counters::snapshot;

    const FL: usize = 64 * 1024;

    /// 2 PEs × 4 windows, warm reclaim effectively unbounded so tests see
    /// deferred behavior regardless of the sanitize default.
    fn pool() -> AliasStackPool {
        let mut p = AliasStackPool::new_windowed(FL, 2, 4, 2).unwrap();
        p.set_high_water(usize::MAX);
        p
    }

    fn bind_mapped(p: &mut AliasStackPool, pe: usize) -> AliasBinding {
        let mut b = p.bind(pe).unwrap();
        p.map_window(&mut b).unwrap();
        b
    }

    #[test]
    fn windows_are_private_and_concurrent() {
        // The point of the redesign: two live threads, both mapped at
        // once, each seeing its own frame — no remap between "switches".
        let mut p = pool();
        let a = bind_mapped(&mut p, 0);
        let b = bind_mapped(&mut p, 0);
        assert_ne!(a.wid, b.wid);
        assert_ne!(a.frame, b.frame);
        // SAFETY: both windows are mapped read-write.
        unsafe {
            *((a.top - 8) as *mut u64) = 0xAAAA;
            *((b.top - 8) as *mut u64) = 0xBBBB;
            assert_eq!(*((a.top - 8) as *const u64), 0xAAAA);
            assert_eq!(*((b.top - 8) as *const u64), 0xBBBB);
        }
        let before = snapshot();
        // A "context switch" between them is nothing at all — both stay
        // mapped; re-mapping an already-mapped binding is a no-op.
        let mut a2 = a;
        p.map_window(&mut a2).unwrap();
        assert_eq!(snapshot().since(&before).total(), 0);
    }

    #[test]
    fn warm_pair_respawn_is_syscall_free() {
        let mut p = pool();
        let a = bind_mapped(&mut p, 0);
        let (wid, frame) = (a.wid, a.frame);
        let before = snapshot();
        p.retire(a).unwrap();
        assert_eq!(p.warm_windows(0), 1);
        let b = p.bind(0).unwrap();
        assert_eq!((b.wid, b.frame), (wid, frame), "warm pair reused");
        assert!(b.mapped, "mapping survived the park");
        let d = snapshot().since(&before);
        assert_eq!(d.total(), 0, "retire + warm respawn must cost nothing");
    }

    #[test]
    fn flush_coalesces_and_returns_pairs() {
        let mut p = pool();
        let bindings: Vec<_> = (0..4).map(|_| bind_mapped(&mut p, 0)).collect();
        let tops: Vec<usize> = bindings.iter().map(|b| b.top).collect();
        for b in bindings {
            p.retire(b).unwrap();
        }
        assert_eq!(p.warm_windows(0), 4);
        let before = snapshot();
        let released = p.flush(0).unwrap();
        assert_eq!(released, 4);
        assert_eq!(p.warm_windows(0), 0);
        assert_eq!(p.reclaim_batches(), 1);
        let d = snapshot().since(&before);
        // 4 adjacent windows and 4 adjacent frames collapse into one
        // remap and one hole punch.
        assert_eq!(d.remap, 1, "adjacent windows must merge into one unalias");
        assert_eq!(d.fallocate, 1, "adjacent frames must merge into one punch");
        // Freed frames recycle zeroed.
        let b = bind_mapped(&mut p, 0);
        assert!(tops.contains(&b.top), "window recycled");
        // SAFETY: window just mapped.
        unsafe { assert_eq!(*((b.top - 8) as *const u64), 0, "punched frame reads zero") };
    }

    #[test]
    fn high_water_triggers_batched_flush() {
        let mut p = AliasStackPool::new_windowed(FL, 1, 8, 2).unwrap();
        p.set_high_water(3);
        let bindings: Vec<_> = (0..6).map(|_| bind_mapped(&mut p, 0)).collect();
        for b in bindings {
            p.retire(b).unwrap();
        }
        // Crossing 3 parked pairs flushes down to high_water/2 = 1.
        assert!(p.reclaim_batches() >= 1);
        assert!(p.warm_windows(0) <= 3);
    }

    #[test]
    fn migration_round_trip_preserves_tail_and_zero_floor() {
        let mut p = pool();
        let b = bind_mapped(&mut p, 0);
        // SAFETY: mapped window.
        unsafe { *((b.top - 16) as *mut u64) = 0x5EED };
        let mut tail = Vec::new();
        p.read_bound_tail_into(&b, 64, &mut tail).unwrap();
        assert_eq!(tail.len(), 64);
        p.begin_transit(&b).unwrap();
        let b2 = p.adopt(b.wid, &tail).unwrap();
        assert_eq!(b2.wid, b.wid);
        assert_eq!((b2.floor, b2.top), (b.floor, b.top));
        let img = p.read_frame(b2.frame).unwrap();
        assert_eq!(&img[FL - 64..], &tail[..]);
        assert!(
            img[..FL - 64].iter().all(|&x| x == 0),
            "below the tail must read zero"
        );
    }

    #[test]
    fn adopt_from_warm_punches_stale_bytes() {
        let mut p = pool();
        let b = bind_mapped(&mut p, 0);
        let wid = b.wid;
        // Dirty the frame deep below where the next tail will land.
        // SAFETY: the window is mapped read-write for this binding.
        unsafe { *((b.floor + 128) as *mut u64) = 0xDEAD };
        p.retire(b).unwrap(); // parked warm, stale bytes intact
        let tail = vec![7u8; 32];
        let b2 = p.adopt(wid, &tail).unwrap();
        assert!(b2.mapped, "warm mapping reused");
        let img = p.read_frame(b2.frame).unwrap();
        assert_eq!(&img[FL - 32..], &tail[..]);
        assert!(
            img[..FL - 32].iter().all(|&x| x == 0),
            "stale tenant bytes must be punched before adoption"
        );
        assert_eq!(p.warm_windows(0), 0, "pair left the warm list");
    }

    #[test]
    fn adopt_from_free_and_fresh_territory() {
        let mut p = pool();
        // Window 2 of PE 0 was never carved; adopting it must skip 0 and 1
        // into the free list rather than losing them.
        let tail = vec![9u8; 16];
        let b = p.adopt(2, &tail).unwrap();
        assert_eq!(b.wid, 2);
        assert!(!b.mapped);
        let c = p.bind(0).unwrap();
        assert!(c.wid < 2, "skipped fresh windows are bindable");
        // Adopting an owned window is refused.
        assert!(p.adopt(2, &tail).is_err());
        assert!(p.adopt(99, &tail).is_err());
    }

    #[test]
    fn release_returns_window_and_frame() {
        let mut p = pool();
        let b = bind_mapped(&mut p, 0);
        let (wid, frame) = (b.wid, b.frame);
        assert_eq!(p.live_frames(), 1);
        p.release(&b).unwrap();
        assert_eq!(p.live_frames(), 0);
        let b2 = p.bind(0).unwrap();
        assert_eq!(b2.wid, wid, "window recycled via free list");
        assert_eq!(b2.frame, frame, "frame recycled");
        assert!(!b2.mapped, "released windows come back unmapped");
        // Releasing an already-free window is refused.
        p.release(&b2).unwrap();
        assert!(p.release(&b2).is_err());
    }

    #[test]
    fn cross_pe_steal_when_home_range_exhausts() {
        let mut p = AliasStackPool::new_windowed(FL, 2, 2, 2).unwrap();
        p.set_high_water(usize::MAX);
        let _a = bind_mapped(&mut p, 0);
        let _b = bind_mapped(&mut p, 0);
        let mut c = p.bind(0).unwrap(); // steals from PE 1's range
        assert_eq!(p.home_pe(c.wid), 1);
        p.map_window(&mut c).unwrap();
        let d = p.bind(0).unwrap();
        assert_eq!(p.home_pe(d.wid), 1);
        assert!(p.bind(0).is_err(), "machine-wide exhaustion reported");
        // Retired stolen windows go home: PE 1 finds them warm.
        p.retire(c).unwrap();
        assert_eq!(p.warm_windows(1), 1);
    }

    #[test]
    fn wid_round_trips_through_sp() {
        let p = pool();
        for wid in 0..p.num_windows() {
            let top = p.window_top(wid);
            let floor = p.window_floor(wid);
            assert_eq!(p.wid_for_sp(top).unwrap(), wid);
            assert_eq!(p.wid_for_sp(floor + 1).unwrap(), wid);
        }
        assert!(p.wid_for_sp(p.window_floor(0)).is_err());
        assert!(p.wid_for_sp(p.window_top(p.num_windows() - 1) + 1).is_err());
    }

    #[test]
    fn memfd_grows_beyond_initial_frames() {
        // 8 windows but capacity for only 2 frames: binding all 8 forces
        // the store to grow.
        let mut p = AliasStackPool::new_windowed(FL, 1, 8, 2).unwrap();
        p.set_high_water(usize::MAX);
        let bs: Vec<_> = (0..8).map(|_| bind_mapped(&mut p, 0)).collect();
        assert_eq!(p.live_frames(), 8);
        for (i, b) in bs.iter().enumerate() {
            // SAFETY: every window is mapped.
            unsafe { *((b.top - 8) as *mut u64) = i as u64 };
        }
        for (i, b) in bs.iter().enumerate() {
            // SAFETY: as above.
            unsafe { assert_eq!(*((b.top - 8) as *const u64), i as u64) };
        }
    }

    #[test]
    fn frame_tail_io_validates_lengths() {
        let mut p = pool();
        let b = bind_mapped(&mut p, 0);
        let tail: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        p.write_frame_tail(b.frame, &tail).unwrap();
        let mut got = Vec::new();
        p.read_frame_tail_into(b.frame, 1000, &mut got).unwrap();
        assert_eq!(got, tail);
        let big = vec![0u8; FL + 1];
        assert!(p.write_frame_tail(b.frame, &big).is_err());
        assert!(p.read_frame_tail_into(b.frame, FL + 1, &mut got).is_err());
        assert!(p.read_frame(999).is_err());
    }

    #[test]
    fn runs_decomposition() {
        assert_eq!(runs(&[]), Vec::<(usize, usize)>::new());
        assert_eq!(runs(&[3]), vec![(3, 1)]);
        assert_eq!(runs(&[1, 2, 3, 7, 9, 10]), vec![(1, 3), (7, 1), (9, 2)]);
    }

    #[test]
    fn sanitize_transit_leaves_no_readable_window() {
        // Under sanitize, begin_transit must tear the mapping down; the
        // bookkeeping (not a fault handler) is asserted here.
        let mut p = pool();
        let b = bind_mapped(&mut p, 0);
        p.begin_transit(&b).unwrap();
        #[cfg(feature = "sanitize")]
        {
            assert_eq!(p.live_frames(), 0, "sanitize transit frees the frame");
            assert!(
                crate::maps::range_is_unreadable(b.floor, p.frame_len()).unwrap(),
                "vacated window must fault on touch"
            );
        }
        let b2 = p.adopt(b.wid, &[1, 2, 3]).unwrap();
        assert_eq!(b2.wid, b.wid);
        let img = p.read_frame(b2.frame).unwrap();
        assert_eq!(&img[FL - 3..], &[1, 2, 3]);
    }
}
