//! A thread's *slab*: its slot carved into stack + guard + heap arena,
//! with pack/unpack for migration.
//!
//! ```text
//!  slot base                                                   slot top
//!  ├── heap arena (commits grow upward) ── guard page ── stack ──┤
//! ```
//!
//! Packing produces a self-describing byte image (PUP format) containing
//! the allocator bookkeeping, the used heap extent, and the live stack
//! bytes. Because isomalloc guarantees the slot occupies the same virtual
//! addresses on every PE, unpacking is: adopt slot → commit pages → copy
//! bytes. No pointer fixups, exactly as in the paper (§3.4.2).

use crate::heap::IsoHeap;
use crate::region::{IsoRegion, Slot};
use flows_pup::pup_fields;
use flows_sys::error::{SysError, SysResult};
use flows_sys::page::{page_align_down, page_size};
use std::sync::Arc;

/// Bytes below the suspended stack pointer that must travel with the
/// thread: the x86-64 SysV red zone is 128 bytes; we double it for margin.
pub const STACK_RED_ZONE: usize = 256;

/// A migratable thread's memory: stack at the top of its slot, isomalloc
/// heap at the bottom, one never-committed guard page between.
#[derive(Debug)]
pub struct ThreadSlab {
    slot: Slot,
    heap: IsoHeap,
    stack_len: usize,
}

#[derive(Default, Debug)]
struct PackedSlab {
    global_index: u64,
    slot_len: u64,
    stack_len: u64,
    sp: u64,
    heap: IsoHeap,
    heap_bytes: Vec<u8>,
    stack_floor: u64,
    stack_bytes: Vec<u8>,
}
pup_fields!(PackedSlab {
    global_index,
    slot_len,
    stack_len,
    sp,
    heap,
    heap_bytes,
    stack_floor,
    stack_bytes
});

impl ThreadSlab {
    /// Build a slab in `slot` with `stack_len` bytes of committed stack at
    /// the top. `stack_len` must be a page multiple small enough to leave
    /// room for the guard page and a non-empty heap arena.
    pub fn new(slot: Slot, stack_len: usize) -> SysResult<ThreadSlab> {
        let pg = page_size();
        if stack_len == 0 || !stack_len.is_multiple_of(pg) {
            return Err(SysError::logic(
                "thread_slab",
                format!("stack_len {stack_len:#x} must be a positive page multiple"),
            ));
        }
        if stack_len + 2 * pg >= slot.len() {
            return Err(SysError::logic(
                "thread_slab",
                format!(
                    "stack_len {stack_len:#x} leaves no heap room in slot of {:#x}",
                    slot.len()
                ),
            ));
        }
        slot.commit(slot.len() - stack_len, stack_len)?;
        let arena_len = page_align_down(slot.len() - stack_len - pg);
        let heap = IsoHeap::new(slot.base(), arena_len);
        Ok(ThreadSlab {
            slot,
            heap,
            stack_len,
        })
    }

    /// Highest stack address (initial stack pointer goes just below).
    pub fn stack_top(&self) -> usize {
        self.slot.top()
    }

    /// Lowest committed stack address.
    pub fn stack_bottom(&self) -> usize {
        self.slot.top() - self.stack_len
    }

    /// Committed stack bytes.
    pub fn stack_len(&self) -> usize {
        self.stack_len
    }

    /// The underlying slot.
    pub fn slot(&self) -> &Slot {
        &self.slot
    }

    /// The heap allocator (for inspection).
    pub fn heap(&self) -> &IsoHeap {
        &self.heap
    }

    /// Allocate `size` bytes from the thread's migratable heap.
    pub fn malloc(&mut self, size: usize) -> SysResult<*mut u8> {
        let slot = &self.slot;
        let addr = self
            .heap
            .alloc_with(size, &mut |off, len| slot.commit(off, len))?;
        Ok(addr as *mut u8)
    }

    /// Free a pointer previously returned by [`ThreadSlab::malloc`].
    pub fn free(&mut self, ptr: *mut u8) -> SysResult<()> {
        self.heap.free(ptr as usize)
    }

    /// Pack for migration. `sp` is the thread's suspended stack pointer;
    /// bytes from `sp - STACK_RED_ZONE` to the stack top travel with the
    /// thread. Consumes the slab: the slot index ownership moves into the
    /// returned image (the source decommits its pages but does *not*
    /// recycle the index — it is still live, just remote).
    pub fn pack(self, sp: usize) -> SysResult<Vec<u8>> {
        let top = self.stack_top();
        let bottom = self.stack_bottom();
        if sp < bottom || sp > top {
            return Err(SysError::logic(
                "slab_pack",
                format!("sp {sp:#x} outside stack [{bottom:#x},{top:#x}]"),
            ));
        }
        let floor = sp.saturating_sub(STACK_RED_ZONE).max(bottom);
        let heap_used = self.heap.used_extent();
        // SAFETY: [arena, arena+heap_used) and [floor, top) are committed
        // ranges of our own slot.
        let (heap_bytes, stack_bytes) = unsafe {
            (
                std::slice::from_raw_parts(self.heap.arena_base() as *const u8, heap_used)
                    .to_vec(),
                std::slice::from_raw_parts(floor as *const u8, top - floor).to_vec(),
            )
        };
        let mut packed = PackedSlab {
            global_index: self.slot.global_index() as u64,
            slot_len: self.slot.len() as u64,
            stack_len: self.stack_len as u64,
            sp: sp as u64,
            heap: self.heap,
            heap_bytes,
            stack_floor: floor as u64,
            stack_bytes,
        };
        let image = flows_pup::to_bytes(&mut packed);
        // Release physical pages on the "source processor"; keep the index.
        let slot = self.slot;
        let _ = slot.decommit(0, slot.len());
        let _ = slot.into_global_index();
        Ok(image)
    }

    /// Unpack an image produced by [`ThreadSlab::pack`] on the destination
    /// PE, reinstating every byte at its original virtual address. Returns
    /// the slab and the suspended stack pointer to resume from.
    pub fn unpack(region: &Arc<IsoRegion>, image: &[u8]) -> SysResult<(ThreadSlab, usize)> {
        let packed: PackedSlab = flows_pup::from_bytes(image)
            .map_err(|e| SysError::logic("slab_unpack", format!("corrupt image: {e}")))?;
        let slot = region.adopt_slot(packed.global_index as usize)?;
        if slot.len() as u64 != packed.slot_len {
            return Err(SysError::logic(
                "slab_unpack",
                format!(
                    "slot length mismatch: image {:#x}, region {:#x}",
                    packed.slot_len,
                    slot.len()
                ),
            ));
        }
        let stack_len = packed.stack_len as usize;
        if packed.heap.arena_base() != slot.base() {
            return Err(SysError::logic(
                "slab_unpack",
                "arena base mismatch: image from a different region layout".into(),
            ));
        }
        // Recommit and refill the heap's used extent.
        let heap_used = packed.heap.used_extent();
        if heap_used != packed.heap_bytes.len() {
            return Err(SysError::logic("slab_unpack", "heap extent mismatch".into()));
        }
        if heap_used > 0 {
            slot.commit(0, heap_used)?;
            // SAFETY: just committed; copying the packed bytes back to the
            // identical addresses they came from.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    packed.heap_bytes.as_ptr(),
                    slot.base() as *mut u8,
                    heap_used,
                );
            }
        }
        // Recommit the whole stack, refill the live portion.
        slot.commit(slot.len() - stack_len, stack_len)?;
        let floor = packed.stack_floor as usize;
        let top = slot.top();
        if floor + packed.stack_bytes.len() != top
            || floor < top - stack_len
            || packed.sp as usize > top
            || (packed.sp as usize) < top - stack_len
        {
            return Err(SysError::logic("slab_unpack", "stack extent mismatch".into()));
        }
        // SAFETY: stack range just committed; identical addresses.
        unsafe {
            std::ptr::copy_nonoverlapping(
                packed.stack_bytes.as_ptr(),
                floor as *mut u8,
                packed.stack_bytes.len(),
            );
        }
        // Rebuild heap committed state: exactly the used extent is backed.
        let mut heap = packed.heap;
        heap.set_committed(heap_used);
        Ok((
            ThreadSlab {
                slot,
                heap,
                stack_len,
            },
            packed.sp as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::IsoConfig;

    fn region() -> Arc<IsoRegion> {
        IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 2,
            slots_per_pe: 4,
            slot_len: 256 * 1024,
        })
        .unwrap()
    }

    #[test]
    fn slab_layout_is_sane() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 64 * 1024).unwrap();
        assert_eq!(slab.stack_top() - slab.stack_bottom(), 64 * 1024);
        assert!(slab.heap().arena_len() > 0);
        assert!(slab.heap().arena_base() + slab.heap().arena_len() < slab.stack_bottom());
    }

    #[test]
    fn bad_stack_lens_rejected() {
        let r = region();
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 0).is_err());
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 100).is_err());
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 256 * 1024).is_err());
    }

    #[test]
    fn stack_is_writable_heap_allocs_work() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        // SAFETY: committed stack range.
        unsafe {
            let top = slab.stack_top() as *mut u64;
            *top.sub(1) = 0x5AFE;
            assert_eq!(*top.sub(1), 0x5AFE);
        }
        let p = slab.malloc(1000).unwrap();
        // SAFETY: fresh allocation.
        unsafe { std::ptr::write_bytes(p, 7, 1000) };
        slab.free(p).unwrap();
    }

    /// The headline isomalloc property: a heap structure full of absolute
    /// pointers survives pack → decommit → unpack byte-for-byte, with all
    /// pointers still valid, because the addresses are identical.
    #[test]
    fn migration_preserves_pointer_graph() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();

        // Build a linked list in the migratable heap.
        #[repr(C)]
        struct Node {
            value: u64,
            next: *mut Node,
        }
        let mut head: *mut Node = std::ptr::null_mut();
        for i in 0..10u64 {
            let n = slab.malloc(std::mem::size_of::<Node>()).unwrap() as *mut Node;
            // SAFETY: fresh allocation.
            unsafe {
                (*n).value = i;
                (*n).next = head;
            }
            head = n;
        }
        // Park a pointer to the list head in the stack region, as a real
        // suspended thread would.
        let sp = slab.stack_top() - 4096;
        // SAFETY: committed stack.
        unsafe { *(sp as *mut u64) = head as u64 };

        let image = slab.pack(sp).unwrap();

        // "Arrive" on PE 1: unpack and walk the list through the stack slot.
        let (slab2, sp2) = ThreadSlab::unpack(&r, &image).unwrap();
        assert_eq!(sp2, sp);
        // SAFETY: unpack recommitted and refilled these addresses.
        unsafe {
            let mut cur = *(sp2 as *const u64) as *mut Node;
            let mut expect = 9i64;
            while !cur.is_null() {
                assert_eq!((*cur).value as i64, expect);
                expect -= 1;
                cur = (*cur).next;
            }
            assert_eq!(expect, -1, "all ten nodes reachable after migration");
        }
        drop(slab2);
    }

    #[test]
    fn pack_rejects_foreign_sp() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        let below = slab.stack_bottom() - 8;
        assert!(slab.pack(below).is_err());
    }

    #[test]
    fn unpack_rejects_corrupt_images() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        let sp = slab.stack_top() - 64;
        let image = slab.pack(sp).unwrap();
        assert!(ThreadSlab::unpack(&r, &image[..image.len() / 2]).is_err());
        let mut garbage = image.clone();
        garbage[0] ^= 0xFF; // clobber the slot index
        assert!(ThreadSlab::unpack(&r, &garbage).is_err());
        // The pristine image still works.
        let (s2, _) = ThreadSlab::unpack(&r, &image).unwrap();
        drop(s2);
    }

    #[test]
    fn heap_contents_survive_migration() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(1).unwrap(), 16 * 1024).unwrap();
        let p = slab.malloc(8192).unwrap();
        let data: Vec<u8> = (0..8192).map(|i| (i * 7 % 251) as u8).collect();
        // SAFETY: fresh allocation.
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), p, 8192) };
        let sp = slab.stack_top() - 128;
        let image = slab.pack(sp).unwrap();
        let (mut slab2, _) = ThreadSlab::unpack(&r, &image).unwrap();
        // SAFETY: same address, recommitted by unpack.
        let got = unsafe { std::slice::from_raw_parts(p as *const u8, 8192) };
        assert_eq!(got, &data[..]);
        // Allocator bookkeeping also survived: freeing still works and the
        // block is recycled.
        slab2.free(p).unwrap();
        let q = slab2.malloc(8192).unwrap();
        assert_eq!(q, p);
    }
}
