//! A thread's *slab*: its slot carved into stack + guard + heap arena,
//! with pack/unpack for migration.
//!
//! ```text
//!  slot base                                                   slot top
//!  ├── heap arena (commits grow upward) ── guard page ── stack ──┤
//! ```
//!
//! Packing produces a self-describing byte image (PUP format) containing
//! the allocator bookkeeping, the used heap extent, and the live stack
//! bytes. Because isomalloc guarantees the slot occupies the same virtual
//! addresses on every PE, unpacking is: adopt slot → commit pages → copy
//! bytes. No pointer fixups, exactly as in the paper (§3.4.2).

use crate::heap::IsoHeap;
use crate::region::{IsoRegion, Slot};
use flows_pup::pup_fields;
use flows_sys::error::{SysError, SysResult};
use flows_sys::page::{page_align_down, page_size};
use std::sync::Arc;

/// Bytes below the suspended stack pointer that must travel with the
/// thread: the x86-64 SysV red zone is 128 bytes; we double it for margin.
pub const STACK_RED_ZONE: usize = 256;

/// A migratable thread's memory: stack at the top of its slot, isomalloc
/// heap at the bottom, one never-committed guard page between.
#[derive(Debug)]
pub struct ThreadSlab {
    slot: Slot,
    heap: IsoHeap,
    stack_len: usize,
}

/// The self-describing prefix of a packed slab. The heap and stack bytes
/// follow as *raw* tails (no per-tail length prefixes — both lengths are
/// derivable from the head), so packing appends straight into the outgoing
/// message buffer and unpacking copies straight into the destination arena:
/// one copy each way.
#[derive(Default, Debug)]
struct SlabHead {
    global_index: u64,
    slot_len: u64,
    stack_len: u64,
    sp: u64,
    heap: IsoHeap,
    heap_used: u64,
    stack_floor: u64,
}
pup_fields!(SlabHead {
    global_index,
    slot_len,
    stack_len,
    sp,
    heap,
    heap_used,
    stack_floor
});

impl ThreadSlab {
    /// Build a slab in `slot` with `stack_len` bytes of committed stack at
    /// the top. `stack_len` must be a page multiple small enough to leave
    /// room for the guard page and a non-empty heap arena.
    pub fn new(slot: Slot, stack_len: usize) -> SysResult<ThreadSlab> {
        let pg = page_size();
        if stack_len == 0 || !stack_len.is_multiple_of(pg) {
            return Err(SysError::logic(
                "thread_slab",
                format!("stack_len {stack_len:#x} must be a positive page multiple"),
            ));
        }
        if stack_len + 2 * pg >= slot.len() {
            return Err(SysError::logic(
                "thread_slab",
                format!(
                    "stack_len {stack_len:#x} leaves no heap room in slot of {:#x}",
                    slot.len()
                ),
            ));
        }
        let arena_len = page_align_down(slot.len() - stack_len - pg);
        // The gap between arena and stack is the guard: it must fault on
        // touch. On a recycled slot whose previous tenant used a different
        // layout, parts of the gap may still be committed — reprotect just
        // those. Same-layout reuse costs zero syscalls here. Order
        // matters: clearing the guard must happen *before* the stack
        // commit — ensure_uncommitted widens the warm gap downward, and
        // doing that after the stack commit would decommit a freshly
        // committed stack that overlaps the previous tenant's heap extent.
        slot.ensure_uncommitted(arena_len, slot.len() - stack_len - arena_len)?;
        slot.commit(slot.len() - stack_len, stack_len)?;
        let heap = IsoHeap::new(slot.base(), arena_len);
        Ok(ThreadSlab {
            slot,
            heap,
            stack_len,
        })
    }

    /// Highest stack address (initial stack pointer goes just below).
    pub fn stack_top(&self) -> usize {
        self.slot.top()
    }

    /// Lowest committed stack address.
    pub fn stack_bottom(&self) -> usize {
        self.slot.top() - self.stack_len
    }

    /// Committed stack bytes.
    pub fn stack_len(&self) -> usize {
        self.stack_len
    }

    /// The underlying slot.
    pub fn slot(&self) -> &Slot {
        &self.slot
    }

    /// The heap allocator (for inspection).
    pub fn heap(&self) -> &IsoHeap {
        &self.heap
    }

    /// Allocate `size` bytes from the thread's migratable heap. Arena
    /// pages commit lazily — the callback fires only when the brk outgrows
    /// the committed extent (in `COMMIT_CHUNK` strides), and each firing
    /// is recorded as a `LazyCommit` trace event.
    pub fn malloc(&mut self, size: usize) -> SysResult<*mut u8> {
        let slot = &self.slot;
        let gi = slot.global_index() as u64;
        let addr = self.heap.alloc_with(size, &mut |off, len| {
            flows_trace::emit(flows_trace::EventKind::LazyCommit, gi, off as u64, len as u64);
            slot.commit(off, len)
        })?;
        Ok(addr as *mut u8)
    }

    /// Surrender the slab, keeping only its slot (pages, protections and
    /// warm bookkeeping untouched) — the slab cache's reuse path.
    pub(crate) fn into_slot(self) -> Slot {
        self.slot
    }

    /// Free a pointer previously returned by [`ThreadSlab::malloc`].
    pub fn free(&mut self, ptr: *mut u8) -> SysResult<()> {
        self.heap.free(ptr as usize)
    }

    /// The mutable heap allocator (sanitize tests drain its quarantine).
    #[cfg(feature = "sanitize")]
    pub fn heap_mut(&mut self) -> &mut IsoHeap {
        &mut self.heap
    }

    /// Verify the slab's protection invariants against the kernel's view
    /// of the address space (`/proc/self/maps`): the guard gap between
    /// heap arena and stack must be inaccessible, and the committed stack
    /// must be read-write. This is ground truth — it catches bookkeeping
    /// bugs the slot's own warm-extent state cannot see.
    pub fn assert_guard(&self) -> SysResult<()> {
        let guard_start = self.slot.base() + self.heap.arena_len();
        let guard_len = self.stack_bottom() - guard_start;
        let unreadable = crate::maps::range_is_unreadable(guard_start, guard_len)
            .map_err(|e| SysError::logic("assert_guard", format!("maps read failed: {e}")))?;
        if !unreadable {
            return Err(SysError::logic(
                "assert_guard",
                format!(
                    "guard [{guard_start:#x},{:#x}) is readable — over-committed slab",
                    guard_start + guard_len
                ),
            ));
        }
        let rw = crate::maps::range_is_read_write(self.stack_bottom(), self.stack_len)
            .map_err(|e| SysError::logic("assert_guard", format!("maps read failed: {e}")))?;
        if !rw {
            return Err(SysError::logic(
                "assert_guard",
                format!(
                    "stack [{:#x},{:#x}) is not fully read-write — over-decommitted slab",
                    self.stack_bottom(),
                    self.stack_top()
                ),
            ));
        }
        Ok(())
    }

    /// Pack for migration, appending the image to `out` (head + raw heap
    /// extent + raw live stack — one copy, straight into the outgoing
    /// buffer). `sp` is the thread's suspended stack pointer; bytes from
    /// `sp - STACK_RED_ZONE` to the stack top travel with the thread.
    /// Consumes the slab: the slot index ownership moves into the image
    /// (the source discards its pages but does *not* recycle the index —
    /// it is still live, just remote). Returns the bytes appended.
    pub fn pack_into(self, sp: usize, out: &mut Vec<u8>) -> SysResult<usize> {
        let top = self.stack_top();
        let bottom = self.stack_bottom();
        if sp < bottom || sp > top {
            return Err(SysError::logic(
                "slab_pack",
                format!("sp {sp:#x} outside stack [{bottom:#x},{top:#x}]"),
            ));
        }
        let floor = sp.saturating_sub(STACK_RED_ZONE).max(bottom);
        let heap_used = self.heap.used_extent();
        let start = out.len();
        let mut head = SlabHead {
            global_index: self.slot.global_index() as u64,
            slot_len: self.slot.len() as u64,
            stack_len: self.stack_len as u64,
            sp: sp as u64,
            heap: self.heap,
            heap_used: heap_used as u64,
            stack_floor: floor as u64,
        };
        flows_pup::pack_into(&mut head, out);
        // SAFETY: [arena, arena+heap_used) and [floor, top) are committed
        // ranges of our own slot.
        unsafe {
            out.extend_from_slice(std::slice::from_raw_parts(
                head.heap.arena_base() as *const u8,
                heap_used,
            ));
            out.extend_from_slice(std::slice::from_raw_parts(floor as *const u8, top - floor));
        }
        // Release physical pages on the "source processor"; keep the index
        // AND the page protections, so the destination (same reservation in
        // this single-process machine) recommits without syscalls.
        let slot = self.slot;
        #[cfg(not(feature = "sanitize"))]
        let _ = slot.discard_committed();
        // Under the sanitizer, trade the warm-recycling fast path for
        // detection: reprotect the whole vacated slot PROT_NONE so any
        // touch of memory that "left with the thread" faults instead of
        // silently reading stale bytes.
        #[cfg(feature = "sanitize")]
        let _ = slot.decommit(0, slot.len());
        let _ = slot.into_global_index();
        Ok(out.len() - start)
    }

    /// Pack for migration into a fresh buffer. See [`ThreadSlab::pack_into`].
    pub fn pack(self, sp: usize) -> SysResult<Vec<u8>> {
        let mut out = Vec::new();
        self.pack_into(sp, &mut out)?;
        Ok(out)
    }

    /// Unpack an image produced by [`ThreadSlab::pack`] on the destination
    /// PE, reinstating every byte at its original virtual address. Returns
    /// the slab and the suspended stack pointer to resume from.
    pub fn unpack(region: &Arc<IsoRegion>, image: &[u8]) -> SysResult<(ThreadSlab, usize)> {
        Self::unpack_with(region, image, None)
    }

    /// [`ThreadSlab::unpack`] in the presence of a slab cache. The cache
    /// may hold a parked slab that still owns this image's slot index
    /// (the thread exited here earlier, or a rollback re-instates a
    /// checkpoint over a recycled slot); that slab MUST be evicted —
    /// dropped, discarding its pages — before the index is adopted, or
    /// two owners would share one slot (the PR 5 double-ownership
    /// SIGSEGV). Eviction also restores the zero-below-tail guarantee the
    /// copy-in below relies on.
    pub fn unpack_with(
        region: &Arc<IsoRegion>,
        image: &[u8],
        cache: Option<&mut crate::reclaim::SlabCache>,
    ) -> SysResult<(ThreadSlab, usize)> {
        let (head, head_len): (SlabHead, usize) = flows_pup::from_bytes_prefix(image)
            .map_err(|e| SysError::logic("slab_unpack", format!("corrupt image: {e}")))?;
        let heap_used = head.heap_used as usize;
        if heap_used != head.heap.used_extent() {
            return Err(SysError::logic("slab_unpack", "heap extent mismatch".into()));
        }
        if let Some(cache) = cache {
            cache.evict(head.global_index as usize);
        }
        let slot = region.adopt_slot(head.global_index as usize)?;
        if slot.len() as u64 != head.slot_len {
            return Err(SysError::logic(
                "slab_unpack",
                format!(
                    "slot length mismatch: image {:#x}, region {:#x}",
                    head.slot_len,
                    slot.len()
                ),
            ));
        }
        let stack_len = head.stack_len as usize;
        if head.heap.arena_base() != slot.base() {
            return Err(SysError::logic(
                "slab_unpack",
                "arena base mismatch: image from a different region layout".into(),
            ));
        }
        let floor = head.stack_floor as usize;
        let top = slot.top();
        if stack_len > slot.len()
            || floor < top.saturating_sub(stack_len)
            || floor > top
            || head.sp as usize > top
            || (head.sp as usize) < top - stack_len
        {
            return Err(SysError::logic("slab_unpack", "stack extent mismatch".into()));
        }
        let stack_used = top - floor;
        if image.len() != head_len + heap_used + stack_used {
            return Err(SysError::logic(
                "slab_unpack",
                format!(
                    "image length mismatch: {} bytes, expected {}",
                    image.len(),
                    head_len + heap_used + stack_used
                ),
            ));
        }
        // Recommit (free when the slot is still warm) and refill the heap's
        // used extent and the live stack — one copy each, straight from the
        // wire image into the arena.
        if heap_used > 0 {
            slot.commit(0, heap_used)?;
            // SAFETY: just committed; copying the packed bytes back to the
            // identical addresses they came from.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    image[head_len..].as_ptr(),
                    slot.base() as *mut u8,
                    heap_used,
                );
            }
        }
        slot.commit(slot.len() - stack_len, stack_len)?;
        // SAFETY: stack range just committed; identical addresses.
        unsafe {
            std::ptr::copy_nonoverlapping(
                image[head_len + heap_used..].as_ptr(),
                floor as *mut u8,
                stack_used,
            );
        }
        // Rebuild heap committed state: exactly the used extent is backed.
        let mut heap = head.heap;
        heap.set_committed(heap_used);
        Ok((
            ThreadSlab {
                slot,
                heap,
                stack_len,
            },
            head.sp as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::IsoConfig;

    fn region() -> Arc<IsoRegion> {
        IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 2,
            slots_per_pe: 4,
            slot_len: 256 * 1024,
        })
        .unwrap()
    }

    #[test]
    fn slab_layout_is_sane() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 64 * 1024).unwrap();
        assert_eq!(slab.stack_top() - slab.stack_bottom(), 64 * 1024);
        assert!(slab.heap().arena_len() > 0);
        assert!(slab.heap().arena_base() + slab.heap().arena_len() < slab.stack_bottom());
    }

    #[test]
    fn bad_stack_lens_rejected() {
        let r = region();
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 0).is_err());
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 100).is_err());
        assert!(ThreadSlab::new(r.alloc_slot(0).unwrap(), 256 * 1024).is_err());
    }

    #[test]
    fn stack_is_writable_heap_allocs_work() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        // SAFETY: committed stack range.
        unsafe {
            let top = slab.stack_top() as *mut u64;
            *top.sub(1) = 0x5AFE;
            assert_eq!(*top.sub(1), 0x5AFE);
        }
        let p = slab.malloc(1000).unwrap();
        // SAFETY: fresh allocation.
        unsafe { std::ptr::write_bytes(p, 7, 1000) };
        slab.free(p).unwrap();
    }

    /// The headline isomalloc property: a heap structure full of absolute
    /// pointers survives pack → decommit → unpack byte-for-byte, with all
    /// pointers still valid, because the addresses are identical.
    #[test]
    fn migration_preserves_pointer_graph() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();

        // Build a linked list in the migratable heap.
        #[repr(C)]
        struct Node {
            value: u64,
            next: *mut Node,
        }
        let mut head: *mut Node = std::ptr::null_mut();
        for i in 0..10u64 {
            let n = slab.malloc(std::mem::size_of::<Node>()).unwrap() as *mut Node;
            // SAFETY: fresh allocation.
            unsafe {
                (*n).value = i;
                (*n).next = head;
            }
            head = n;
        }
        // Park a pointer to the list head in the stack region, as a real
        // suspended thread would.
        let sp = slab.stack_top() - 4096;
        // SAFETY: committed stack.
        unsafe { *(sp as *mut u64) = head as u64 };

        let image = slab.pack(sp).unwrap();

        // "Arrive" on PE 1: unpack and walk the list through the stack slot.
        let (slab2, sp2) = ThreadSlab::unpack(&r, &image).unwrap();
        assert_eq!(sp2, sp);
        // SAFETY: unpack recommitted and refilled these addresses.
        unsafe {
            let mut cur = *(sp2 as *const u64) as *mut Node;
            let mut expect = 9i64;
            while !cur.is_null() {
                assert_eq!((*cur).value as i64, expect);
                expect -= 1;
                cur = (*cur).next;
            }
            assert_eq!(expect, -1, "all ten nodes reachable after migration");
        }
        drop(slab2);
    }

    #[test]
    fn pack_rejects_foreign_sp() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        let below = slab.stack_bottom() - 8;
        assert!(slab.pack(below).is_err());
    }

    #[test]
    fn unpack_rejects_corrupt_images() {
        let r = region();
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
        let sp = slab.stack_top() - 64;
        let image = slab.pack(sp).unwrap();
        assert!(ThreadSlab::unpack(&r, &image[..image.len() / 2]).is_err());
        let mut garbage = image.clone();
        garbage[0] ^= 0xFF; // clobber the slot index
        assert!(ThreadSlab::unpack(&r, &garbage).is_err());
        // The pristine image still works.
        let (s2, _) = ThreadSlab::unpack(&r, &image).unwrap();
        drop(s2);
    }

    /// The recycling fast path: after one warm-up tenancy, create/exit on
    /// a recycled slot must be entirely syscall-free except the single
    /// `madvise` that returns the pages on exit — and the recycled memory
    /// must still read zero.
    #[test]
    fn recycled_slots_rebuild_without_syscalls() {
        use crate::probe::syscall_snapshot;
        let r = region();
        for _ in 0..2 {
            let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
            let p = slab.malloc(4096).unwrap();
            // SAFETY: fresh allocation.
            unsafe { std::ptr::write_bytes(p, 0xAB, 4096) };
        }
        let before = syscall_snapshot();
        for _ in 0..8 {
            let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
            let p = slab.malloc(4096).unwrap();
            // SAFETY: fresh allocation (discarded pages read zero).
            unsafe {
                assert_eq!(*(p as *const u64), 0, "recycled slot must read zero");
                std::ptr::write_bytes(p, 0xCD, 4096);
            }
        }
        let d = syscall_snapshot().since(&before);
        assert_eq!(d.mmap, 0, "steady state must not map");
        assert_eq!(d.mprotect, 0, "steady state must not reprotect");
        // Each exit discards the two warm extents (heap arena, stack) —
        // and nothing else.
        assert_eq!(d.madvise, 16, "two extent discards per exit");
    }

    #[test]
    fn heap_contents_survive_migration() {
        let r = region();
        let mut slab = ThreadSlab::new(r.alloc_slot(1).unwrap(), 16 * 1024).unwrap();
        let p = slab.malloc(8192).unwrap();
        let data: Vec<u8> = (0..8192).map(|i| (i * 7 % 251) as u8).collect();
        // SAFETY: fresh allocation.
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), p, 8192) };
        let sp = slab.stack_top() - 128;
        let image = slab.pack(sp).unwrap();
        let (mut slab2, _) = ThreadSlab::unpack(&r, &image).unwrap();
        // SAFETY: same address, recommitted by unpack.
        let got = unsafe { std::slice::from_raw_parts(p as *const u8, 8192) };
        assert_eq!(got, &data[..]);
        // Allocator bookkeeping also survived: freeing still works and the
        // block is recycled.
        slab2.free(p).unwrap();
        #[cfg(feature = "sanitize")]
        slab2.heap_mut().flush_quarantine();
        let q = slab2.malloc(8192).unwrap();
        assert_eq!(q, p);
    }
}
