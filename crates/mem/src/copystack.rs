//! Stack-copying threads (paper §3.4.1).
//!
//! The oldest migratable-thread scheme: one stack address system-wide; a
//! thread's stack *data* is memcpy'd into the common region before it runs
//! and memcpy'd back out when it suspends. Migration is trivial (the saved
//! bytes are position-independent only because they always execute from
//! the same address), but every context switch pays a copy proportional to
//! the live stack — the cost Figure 9 shows growing past usability above
//! ~20 KB of stack data.

use flows_pup::pup_fields;
use flows_sys::error::{SysError, SysResult};
use flows_sys::map::{Mapping, Protection};
use flows_sys::page::page_size;

/// Bytes below the suspended stack pointer saved along with the frame
/// (x86-64 red zone with margin; see `slab::STACK_RED_ZONE`).
pub const RED_ZONE: usize = 256;

/// The single common execution region shared by all copy-stacks.
#[derive(Debug)]
pub struct CopyStackPool {
    window: Mapping,
    len: usize,
}

/// The saved stack data of one suspended copy-stack thread: the bytes from
/// `top - saved.len()` to `top`. Being plain bytes, it migrates as-is
/// (PUP-serializable).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CopyStack {
    saved: Vec<u8>,
}
pup_fields!(CopyStack { saved });

impl CopyStack {
    /// A brand-new (empty) stack image.
    pub fn new() -> CopyStack {
        CopyStack::default()
    }

    /// Bytes currently saved.
    pub fn saved_len(&self) -> usize {
        self.saved.len()
    }

    /// The saved bytes themselves (the migration payload: position-bound
    /// raw stack data, shipped without further framing).
    pub fn saved(&self) -> &[u8] {
        &self.saved
    }

    /// Rebuild an image from bytes previously exposed by
    /// [`CopyStack::saved`] on the source machine.
    pub fn from_saved(saved: Vec<u8>) -> CopyStack {
        CopyStack { saved }
    }
}

impl CopyStackPool {
    /// Create a pool whose common region is `len` bytes (page multiple).
    pub fn new(len: usize) -> SysResult<CopyStackPool> {
        let pg = page_size();
        if len == 0 || !len.is_multiple_of(pg) {
            return Err(SysError::logic(
                "copystack_pool",
                format!("len {len:#x} must be a positive page multiple"),
            ));
        }
        let window = Mapping::reserve(len)?;
        window.commit(0, len, Protection::ReadWrite)?;
        Ok(CopyStackPool { window, len })
    }

    /// Lowest address of the common region.
    pub fn base(&self) -> usize {
        self.window.addr()
    }

    /// One past the highest address — every copy-stack thread's stack top.
    pub fn top(&self) -> usize {
        self.window.addr() + self.len
    }

    /// Region length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Pools are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Copy a suspended thread's bytes into the common region (the
    /// "switch in" half of a stack-copying context switch).
    ///
    /// # Safety
    /// No other copy-stack thread may be executing from this pool's region
    /// (the thread package serializes with a lock).
    pub unsafe fn switch_in(&self, s: &CopyStack) -> SysResult<()> {
        if s.saved.len() > self.len {
            return Err(SysError::logic(
                "copystack_in",
                format!("saved {} bytes > region {}", s.saved.len(), self.len),
            ));
        }
        let dst = self.top() - s.saved.len();
        // SAFETY: [dst, top) is inside our committed region; caller
        // guarantees nothing is executing on it.
        unsafe {
            std::ptr::copy_nonoverlapping(s.saved.as_ptr(), dst as *mut u8, s.saved.len());
        }
        Ok(())
    }

    /// Copy the live bytes (`sp - RED_ZONE` .. top) out of the common
    /// region into the thread's image (the "switch out" half).
    ///
    /// # Safety
    /// The thread that was executing on the region must be suspended with
    /// stack pointer `sp`.
    pub unsafe fn switch_out(&self, s: &mut CopyStack, sp: usize) -> SysResult<()> {
        if sp < self.base() || sp > self.top() {
            return Err(SysError::logic(
                "copystack_out",
                format!("sp {sp:#x} outside region [{:#x},{:#x}]", self.base(), self.top()),
            ));
        }
        let floor = sp.saturating_sub(RED_ZONE).max(self.base());
        let used = self.top() - floor;
        s.saved.resize(used, 0);
        // SAFETY: [floor, top) is committed and the flow on it is suspended.
        unsafe {
            std::ptr::copy_nonoverlapping(floor as *const u8, s.saved.as_mut_ptr(), used);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_round_trip_preserves_bytes() {
        let pool = CopyStackPool::new(64 * 1024).unwrap();
        let top = pool.top();

        // Simulate a thread that used 1 KiB of stack.
        let sp = top - 1024;
        // SAFETY: committed region, nothing running on it.
        unsafe {
            for i in 0..1024u64 / 8 {
                *((sp + (i * 8) as usize) as *mut u64) = i * 3 + 1;
            }
        }
        let mut img = CopyStack::new();
        // SAFETY: no flow executing on the region in this test.
        unsafe { pool.switch_out(&mut img, sp).unwrap() };
        assert_eq!(img.saved_len(), 1024 + RED_ZONE);

        // Clobber the region, then switch the image back in.
        // SAFETY: as above.
        unsafe {
            std::ptr::write_bytes(pool.base() as *mut u8, 0xFF, pool.len());
            pool.switch_in(&img).unwrap();
            for i in 0..1024u64 / 8 {
                assert_eq!(*((sp + (i * 8) as usize) as *const u64), i * 3 + 1);
            }
        }
    }

    #[test]
    fn two_threads_interleave_without_corruption() {
        let pool = CopyStackPool::new(16 * 1024).unwrap();
        let top = pool.top();
        let mut a = CopyStack::new();
        let mut b = CopyStack::new();

        // Thread A writes a pattern, suspends.
        let sp_a = top - 512;
        // SAFETY: serialized access in this test.
        unsafe {
            *((sp_a) as *mut u64) = 0xA;
            pool.switch_out(&mut a, sp_a).unwrap();
            // Thread B runs with different depth and pattern.
            let sp_b = top - 2048;
            *((sp_b) as *mut u64) = 0xB;
            pool.switch_out(&mut b, sp_b).unwrap();
            // Resume A: its word must be back.
            pool.switch_in(&a).unwrap();
            assert_eq!(*((sp_a) as *const u64), 0xA);
            // Resume B likewise.
            pool.switch_in(&b).unwrap();
            assert_eq!(*((sp_b) as *const u64), 0xB);
        }
    }

    #[test]
    fn images_are_pup_migratable() {
        let pool = CopyStackPool::new(16 * 1024).unwrap();
        let sp = pool.top() - 304;
        // SAFETY: test-serialized.
        unsafe { *(sp as *mut u64) = 42 };
        let mut img = CopyStack::new();
        // SAFETY: test-serialized.
        unsafe { pool.switch_out(&mut img, sp).unwrap() };
        let bytes = flows_pup::to_bytes(&mut img);
        let img2: CopyStack = flows_pup::from_bytes(&bytes).unwrap();
        assert_eq!(img2, img);
    }

    #[test]
    fn bounds_are_enforced() {
        let pool = CopyStackPool::new(page_size()).unwrap();
        let mut img = CopyStack::new();
        // SAFETY: error paths only.
        unsafe {
            assert!(pool.switch_out(&mut img, pool.base() - 8).is_err());
            assert!(pool.switch_out(&mut img, pool.top() + 8).is_err());
        }
        let oversize = CopyStack {
            saved: vec![0; pool.len() + 1],
        };
        // SAFETY: error path only.
        unsafe { assert!(pool.switch_in(&oversize).is_err()) };
        assert!(CopyStackPool::new(0).is_err());
        assert!(CopyStackPool::new(123).is_err());
    }
}
