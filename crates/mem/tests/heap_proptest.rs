//! Model-based property tests: the isomalloc heap against a reference
//! model, and slot allocation invariants under random operation sequences.

use flows_mem::{IsoConfig, IsoHeap, IsoRegion};
use flows_sys::map::{Mapping, Protection};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(usize),
    /// Free the nth live allocation (mod live count).
    Free(usize),
    /// Write/readback check on the nth live allocation.
    Touch(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..100_000).prop_map(HeapOp::Alloc),
            (0usize..64).prop_map(HeapOp::Free),
            (0usize..64).prop_map(HeapOp::Touch),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heap never hands out overlapping blocks, blocks stay writable
    /// and retain their fill pattern, and free/alloc cycles never corrupt
    /// neighbours.
    #[test]
    fn heap_against_reference_model(ops in arb_ops()) {
        let len = 8 << 20;
        let m = Mapping::reserve(len).unwrap();
        let mut h = IsoHeap::new(m.addr(), len);
        let mut commit = |off: usize, l: usize| m.commit(off, l, Protection::ReadWrite);
        // live: addr -> (size, fill byte)
        let mut live: Vec<(usize, usize, u8)> = Vec::new();
        let mut next_fill = 1u8;

        for op in ops {
            match op {
                HeapOp::Alloc(size) => {
                    match h.alloc_with(size, &mut commit) {
                        Ok(addr) => {
                            // No overlap with any live block.
                            for &(a, s, _) in &live {
                                prop_assert!(
                                    addr + size <= a || a + s <= addr,
                                    "overlap: new [{addr:#x},{:#x}) vs live [{a:#x},{:#x})",
                                    addr + size, a + s
                                );
                            }
                            // SAFETY: fresh allocation of `size` bytes.
                            unsafe { std::ptr::write_bytes(addr as *mut u8, next_fill, size) };
                            live.push((addr, size, next_fill));
                            next_fill = next_fill.wrapping_add(1).max(1);
                        }
                        Err(e) => {
                            prop_assert!(
                                e.to_string().contains("arena exhausted"),
                                "only exhaustion may fail: {e}"
                            );
                        }
                    }
                }
                HeapOp::Free(i) => {
                    if !live.is_empty() {
                        let (addr, _, _) = live.swap_remove(i % live.len());
                        prop_assert!(h.free(addr).is_ok());
                        prop_assert!(h.free(addr).is_err(), "double free must fail");
                    }
                }
                HeapOp::Touch(i) => {
                    if !live.is_empty() {
                        let (addr, size, fill) = live[i % live.len()];
                        // SAFETY: live allocation.
                        let bytes = unsafe { std::slice::from_raw_parts(addr as *const u8, size) };
                        prop_assert!(
                            bytes.iter().all(|&b| b == fill),
                            "block at {addr:#x} lost its fill"
                        );
                    }
                }
            }
        }
        prop_assert_eq!(h.live_blocks(), live.len());
    }

    /// Slot allocation: unique, disjoint, recycled exactly once.
    #[test]
    fn slot_allocator_invariants(frees in proptest::collection::vec(any::<bool>(), 1..40)) {
        let region = IsoRegion::new(IsoConfig {
            base: 0,
            num_pes: 2,
            slots_per_pe: 16,
            slot_len: 64 * 1024,
        }).unwrap();
        let mut held = HashMap::new();
        for (i, do_free) in frees.iter().enumerate() {
            let pe = i % 2;
            if *do_free && !held.is_empty() {
                let k = *held.keys().next().unwrap();
                held.remove(&k);
            } else if let Ok(slot) = region.alloc_slot(pe) {
                let base = slot.base();
                prop_assert!(
                    !held.contains_key(&base),
                    "live slot address handed out twice"
                );
                // Slot is inside its PE's range.
                let idx = slot.global_index();
                prop_assert_eq!(idx / 16, pe, "slot from the wrong PE range");
                held.insert(base, slot);
            }
        }
        // All remaining slots are disjoint.
        let mut spans: Vec<(usize, usize)> =
            held.values().map(|s| (s.base(), s.top())).collect();
        spans.sort();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
    }
}
