//! Ground-truth protection checks for thread slabs: every layout, fresh
//! or recycled, must show the kernel (via `/proc/self/maps`) exactly the
//! protections the slot bookkeeping believes — a `PROT_NONE` guard gap and
//! a fully read-write stack. This is the regression net for the class of
//! bug where recycling a slot under a different layout leaves the guard
//! readable or the stack decommitted.

use flows_mem::region::{IsoConfig, IsoRegion};
use flows_mem::ThreadSlab;
use std::sync::Arc;

fn region() -> Arc<IsoRegion> {
    IsoRegion::new(IsoConfig {
        base: 0,
        num_pes: 2,
        slots_per_pe: 4,
        slot_len: 256 * 1024,
    })
    .unwrap()
}

#[test]
fn fresh_slabs_hold_guard_invariants_across_layouts() {
    let r = region();
    for stack_len in [4096, 16 * 1024, 64 * 1024] {
        let slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), stack_len).unwrap();
        slab.assert_guard()
            .unwrap_or_else(|e| panic!("fresh slab, stack {stack_len:#x}: {e}"));
    }
}

#[test]
fn recycled_slots_hold_guard_invariants_under_new_layouts() {
    let r = region();
    // First tenant: small stack, heavy heap use — commits pages deep into
    // the arena, including addresses a later large-stack layout will want
    // for its stack and guard.
    let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
    let p = slab.malloc(140 * 1024).unwrap();
    // SAFETY: freshly allocated from the committed arena.
    unsafe { std::ptr::write_bytes(p, 0x5A, 140 * 1024) };
    slab.assert_guard().unwrap();
    drop(slab);

    // Second tenant recycles the same slot with a much larger stack; the
    // guard and stack land where the first tenant's heap pages were.
    let slab2 = ThreadSlab::new(r.alloc_slot(0).unwrap(), 128 * 1024).unwrap();
    slab2.assert_guard().unwrap();
    // And writing the full stack extent must not fault.
    let bottom = slab2.stack_bottom() as *mut u8;
    // SAFETY: assert_guard just proved [bottom, top) is read-write.
    unsafe { std::ptr::write_bytes(bottom, 0x11, slab2.stack_len()) };
    drop(slab2);

    // Third tenant goes back to a small stack: the gap left where the
    // big stack was must be guard again.
    let slab3 = ThreadSlab::new(r.alloc_slot(0).unwrap(), 4096).unwrap();
    slab3.assert_guard().unwrap();
}
