use flows_mem::{IsoConfig, IsoRegion, ThreadSlab};

// Recycle a slot whose previous tenant had a small stack and a heap that
// grew past the next tenant's (larger) stack bottom. If ensure_uncommitted
// over-decommits, the second tenant's stack is PROT_NONE and the write
// below faults.
#[test]
fn recycled_slot_with_larger_stack_keeps_stack_committed() {
    let r = IsoRegion::new(IsoConfig {
        base: 0,
        num_pes: 1,
        slots_per_pe: 1,
        slot_len: 256 * 1024,
    })
    .unwrap();

    // Tenant 1: 16 KiB stack, heap grown to ~140 KiB (past 256-128=128 KiB).
    let mut s1 = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
    let p = s1.malloc(140 * 1024).unwrap();
    // SAFETY: `p` was just returned by malloc(140 KiB); the extent is
    // committed and exclusively ours.
    unsafe { std::ptr::write_bytes(p, 0xAB, 140 * 1024) };
    drop(s1);

    // Tenant 2: 128 KiB stack on the recycled slot.
    let s2 = ThreadSlab::new(r.alloc_slot(0).unwrap(), 128 * 1024).unwrap();
    let top = s2.stack_top();
    let bottom = s2.stack_bottom();
    // SAFETY: both probes land inside s2's freshly committed stack extent.
    unsafe {
        std::ptr::write_volatile((top - 8) as *mut u64, 7);
        std::ptr::write_volatile(bottom as *mut u64, 9);
        assert_eq!(std::ptr::read_volatile((top - 8) as *const u64), 7);
    }
}
