//! Sanitizer detector tests for the memory substrate: each test drives a
//! real corruption through the isomalloc heap or a thread slab and asserts
//! the matching detector fires (as a panic, via `set_trip_panics`).

#![cfg(feature = "sanitize")]

use flows_mem::heap::{IsoHeap, RED_ZONE};
use flows_mem::region::{IsoConfig, IsoRegion};
use flows_mem::{maps, ThreadSlab};
use flows_sys::error::SysResult;
use flows_sys::map::{Mapping, Protection};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn arena() -> (Mapping, IsoHeap) {
    let len = 1 << 20;
    let m = Mapping::reserve(len).unwrap();
    let h = IsoHeap::new(m.addr(), len);
    (m, h)
}

fn committer(m: &Mapping) -> impl FnMut(usize, usize) -> SysResult<()> + '_ {
    move |off, len| m.commit(off, len, Protection::ReadWrite)
}

fn trip_message(r: std::thread::Result<()>) -> String {
    let err = r.expect_err("the detector must fire");
    err.downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into())
}

#[test]
fn heap_overflow_into_red_zone_trips_at_free() {
    flows_trace::san::set_trip_panics(true);
    let (m, mut h) = arena();
    let mut c = committer(&m);
    let a = h.alloc_with(100, &mut c).unwrap();
    let cap = h.block_capacity(a).unwrap();
    // SAFETY: one byte past the usable capacity is the first red-zone
    // byte — inside the block, committed, but poisoned.
    unsafe { ((a + cap) as *mut u8).write(0x42) };
    let msg = trip_message(catch_unwind(AssertUnwindSafe(|| {
        let _ = h.free(a);
    })));
    assert!(msg.contains("heap-red-zone"), "got: {msg}");
}

#[test]
fn write_through_stale_pointer_trips_at_quarantine_release() {
    flows_trace::san::set_trip_panics(true);
    let (m, mut h) = arena();
    let mut c = committer(&m);
    let a = h.alloc_with(100, &mut c).unwrap();
    h.free(a).unwrap();
    assert_eq!(h.quarantined_blocks(), 1, "freed block sits in quarantine");
    // SAFETY: the page is still committed; this models a use-after-free
    // write through a pointer the caller should no longer hold.
    unsafe { (a as *mut u8).write(0x42) };
    let msg = trip_message(catch_unwind(AssertUnwindSafe(|| {
        h.flush_quarantine();
    })));
    assert!(msg.contains("heap-use-after-free"), "got: {msg}");
}

#[test]
fn quarantine_delays_reuse() {
    let (m, mut h) = arena();
    let mut c = committer(&m);
    let a = h.alloc_with(100, &mut c).unwrap();
    h.free(a).unwrap();
    // The freed block must NOT come back on the very next allocation —
    // that immediacy is what makes use-after-free bugs silent.
    let b = h.alloc_with(100, &mut c).unwrap();
    assert_ne!(a, b, "quarantine must delay reuse of a freed block");
    h.free(b).unwrap();
    h.flush_quarantine();
    assert_eq!(h.quarantined_blocks(), 0);
    let d = h.alloc_with(100, &mut c).unwrap();
    assert!(d == a || d == b, "flushed blocks become reusable");
}

#[test]
fn red_zone_rides_inside_reported_capacity() {
    let (m, mut h) = arena();
    let mut c = committer(&m);
    let a = h.alloc_with(100, &mut c).unwrap();
    // The class for a 100-byte request (116 with its red zone) is 128;
    // the usable capacity excludes the poisoned tail.
    assert_eq!(h.block_capacity(a).unwrap(), 128 - RED_ZONE);
    h.free(a).unwrap();
}

fn region() -> Arc<IsoRegion> {
    IsoRegion::new(IsoConfig {
        base: 0,
        num_pes: 2,
        slots_per_pe: 4,
        slot_len: 256 * 1024,
    })
    .unwrap()
}

#[test]
fn packed_slab_leaves_the_whole_slot_unreadable() {
    let r = region();
    let mut slab = ThreadSlab::new(r.alloc_slot(0).unwrap(), 16 * 1024).unwrap();
    let p = slab.malloc(8192).unwrap();
    // SAFETY: freshly allocated from the committed arena.
    unsafe { std::ptr::write_bytes(p, 0xAB, 8192) };
    let (base, len) = (slab.slot().base(), slab.slot().len());
    let sp = slab.stack_top() - 512;
    let mut out = Vec::new();
    slab.pack_into(sp, &mut out).unwrap();
    // Under sanitize the vacated slot is fully decommitted: a stale
    // pointer dereference on the source PE faults instead of silently
    // reading dead bytes.
    assert!(maps::range_is_unreadable(base, len).unwrap());
}
