//! Running a multi-zone benchmark on AMPI, with optional thread-migration
//! load balancing — the Figure 12 experiment.

use crate::solver::ZoneGrid;
use crate::zones::{rank_of_zone, zone_layout, MzBench, MzClass, Zone};
use flows_ampi::{run_world, run_world_ft, AmpiOptions};
use flows_converse::{FaultPlan, FaultSummary, NetModel};
use flows_lb::LbStrategy;
use std::sync::{Arc, Mutex};

/// Configuration of one BT-MZ/SP-MZ run.
#[derive(Clone)]
pub struct MzConfig {
    /// Zone-size distribution.
    pub bench: MzBench,
    /// Problem class.
    pub class: MzClass,
    /// Number of AMPI ranks (the benchmark's NPROCS).
    pub nprocs: usize,
    /// Number of PEs.
    pub pes: usize,
    /// Outer iterations.
    pub iterations: usize,
    /// Jacobi sweeps per iteration (work multiplier).
    pub sweeps: usize,
    /// Load balancer (None = the "without LB" arm).
    pub lb: Option<Arc<dyn LbStrategy + Send + Sync>>,
    /// Invoke `migrate()` once, after this iteration (1-based). The NPB-MZ
    /// imbalance is static, so one early LB epoch is the paper's regime;
    /// repeated epochs only exercise churn.
    pub lb_at: usize,
    /// Threaded drive mode.
    pub threaded: bool,
    /// Fault plan: when set, the run goes through the fault-tolerant
    /// driver (reliable transport + checkpoint restart on PE crashes).
    pub faults: Option<FaultPlan>,
    /// Coordinated checkpoint every N iterations (0 = never). Only
    /// meaningful together with `faults`.
    pub checkpoint_every: usize,
}

impl MzConfig {
    /// A configuration in the paper's "A.8,4PE" notation.
    pub fn new(bench: MzBench, class: MzClass, nprocs: usize, pes: usize) -> MzConfig {
        MzConfig {
            bench,
            class,
            nprocs,
            pes,
            iterations: 16,
            sweeps: 40,
            lb: None,
            lb_at: 3,
            threaded: false,
            faults: None,
            checkpoint_every: 0,
        }
    }

    /// Attach a load balancer.
    pub fn with_lb(mut self, lb: Arc<dyn LbStrategy + Send + Sync>) -> Self {
        self.lb = Some(lb);
        self
    }

    /// Attach a fault plan and checkpoint every `every` iterations.
    pub fn with_faults(mut self, plan: FaultPlan, every: usize) -> Self {
        self.faults = Some(plan);
        self.checkpoint_every = every;
        self
    }

    /// The paper's x-axis label, e.g. `A.8,4PE`.
    pub fn label(&self) -> String {
        format!(
            "{:?}.{},{}PE",
            self.class, self.nprocs, self.pes
        )
        .replace("MzClass::", "")
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct MzReport {
    /// `A.8,4PE`-style label.
    pub label: String,
    /// Modeled parallel execution time, seconds: max over PEs of *busy*
    /// virtual time. BT-MZ's per-iteration work is static, so for this
    /// bulk-synchronous pattern `sum_k max_i work_i(k) = max_i busy_i`;
    /// using busy time keeps the model insensitive to simulation-transport
    /// artifacts (see DESIGN.md §2 and flows-converse on virtual time).
    pub modeled_time_s: f64,
    /// Critical-path virtual time (max PE vtime incl. arrival waits).
    pub critical_path_s: f64,
    /// Host wall time, seconds.
    pub wall_s: f64,
    /// Global checksum (must be identical with and without LB).
    pub checksum: f64,
    /// Rank migrations executed.
    pub migrations: u64,
    /// Per-PE virtual times (seconds) — the balance picture.
    pub pe_vtimes_s: Vec<f64>,
    /// Per-PE busy times (seconds): work only, no waits.
    pub pe_busy_s: Vec<f64>,
    /// Checkpoint restarts taken (PE crashes survived; 0 without faults).
    pub restarts: usize,
    /// PEs the run finished on (crashes shrink the machine).
    pub pes_used: usize,
    /// Logical messages of the final (successful) attempt.
    pub messages: u64,
    /// Logical messages over every attempt, crashed ones included.
    pub total_messages: u64,
    /// Fault/recovery counters (present iff a plan was attached).
    pub faults: Option<FaultSummary>,
}

/// Run the benchmark.
pub fn run(cfg: &MzConfig) -> MzReport {
    let zones = Arc::new(zone_layout(cfg.bench, cfg.class));
    assert!(
        cfg.nprocs <= zones.len(),
        "{} ranks but only {} zones",
        cfg.nprocs,
        zones.len()
    );
    let checksum = Arc::new(Mutex::new(0.0f64));
    let checksum2 = checksum.clone();
    let zones2 = zones.clone();
    let cfg2 = cfg.clone();

    // The mesh (and hence per-iteration compute) is scaled ~1000x down
    // from the real NPB classes, so the interconnect model is scaled the
    // same way; otherwise message latency would dwarf compute and no
    // placement could matter (see DESIGN.md §2).
    let net = NetModel {
        latency_ns: 500,
        ns_per_byte: 0.2,
    };
    let mut opts = AmpiOptions::new(cfg.nprocs, cfg.pes)
        .with_net(net)
        .threaded(cfg.threaded);
    if let Some(lb) = &cfg.lb {
        opts = opts.with_strategy(lb.clone());
    }
    if cfg.faults.as_ref().is_some_and(|p| p.online) {
        // Online recovery replays survivors deterministically from the
        // rolled-back cut; that only reproduces the fault-free execution
        // under the modeled clock.
        opts = opts.modeled_time(true);
    }

    let main = move |ampi: &mut flows_ampi::Ampi| {
        rank_main(ampi, &cfg2, &zones2, &checksum2);
    };
    let (report, restarts, pes_used, faults, total_messages) = match &cfg.faults {
        Some(plan) => {
            let ft = run_world_ft(opts, plan.clone(), main);
            (
                ft.report,
                ft.restarts,
                ft.pes_used,
                Some(ft.faults),
                ft.total_messages,
            )
        }
        None => {
            let r = run_world(opts, main);
            let (f, m) = (r.faults, r.messages);
            (r, 0, cfg.pes, f, m)
        }
    };

    let checksum = *checksum.lock().unwrap();
    MzReport {
        label: cfg.label(),
        modeled_time_s: report.pe_busy.iter().copied().max().unwrap_or(0) as f64 * 1e-9,
        critical_path_s: report.parallel_time_ns() as f64 * 1e-9,
        wall_s: report.wall_ns as f64 * 1e-9,
        checksum,
        migrations: report.sched_stats.iter().map(|s| s.migrations_in).sum(),
        pe_vtimes_s: report.pe_vtimes.iter().map(|&v| v as f64 * 1e-9).collect(),
        pe_busy_s: report.pe_busy.iter().map(|&v| v as f64 * 1e-9).collect(),
        restarts,
        pes_used,
        messages: report.messages,
        total_messages,
        faults,
    }
}

/// Direction of a ghost exchange, from the receiver's point of view.
#[derive(Clone, Copy)]
enum Side {
    West,
    East,
    South,
    North,
}

/// The neighbor zone in a given direction, if any.
fn neighbor(zones: &[Zone], z: &Zone, side: Side) -> Option<usize> {
    let (gx_max, gy_max) = zones.iter().fold((0, 0), |(mx, my), q| {
        (mx.max(q.gx), my.max(q.gy))
    });
    let (ni, nj) = match side {
        Side::West if z.gx > 0 => (z.gx - 1, z.gy),
        Side::East if z.gx < gx_max => (z.gx + 1, z.gy),
        Side::South if z.gy > 0 => (z.gx, z.gy - 1),
        Side::North if z.gy < gy_max => (z.gx, z.gy + 1),
        _ => return None,
    };
    zones.iter().position(|q| q.gx == ni && q.gy == nj)
}

fn pack_f64(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend(v.to_le_bytes());
    }
    out
}

fn unpack_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

fn rank_main(
    ampi: &mut flows_ampi::Ampi,
    cfg: &MzConfig,
    zones: &Arc<Vec<Zone>>,
    checksum: &Arc<Mutex<f64>>,
) {
    let nz = zones.len();
    let me = ampi.rank();
    let my_zones: Vec<Zone> = zones
        .iter()
        .filter(|z| rank_of_zone(z.id, nz, ampi.size()) == me)
        .cloned()
        .collect();
    let mut grids: Vec<ZoneGrid> = my_zones
        .iter()
        .map(|z| ZoneGrid::new(z.id, z.nx, z.ny))
        .collect();

    let tag = |from: usize, to: usize| (from * nz + to) as u64;

    for iter in 0..cfg.iterations {
        // Phase 1: everyone ships the edge data its neighbours need.
        for (z, g) in my_zones.iter().zip(grids.iter()) {
            for side in [Side::West, Side::East, Side::South, Side::North] {
                if let Some(n) = neighbor(zones, z, side) {
                    // Our edge nearest that neighbour:
                    let edge = match side {
                        Side::West => g.edge_column(false),
                        Side::East => g.edge_column(true),
                        Side::South => g.edge_row(false),
                        Side::North => g.edge_row(true),
                    };
                    let owner = rank_of_zone(n, nz, ampi.size());
                    ampi.send(owner, tag(z.id, n), pack_f64(&edge));
                }
            }
        }
        // Phase 2: install the ghosts we expect.
        for (z, g) in my_zones.iter().zip(grids.iter_mut()) {
            for side in [Side::West, Side::East, Side::South, Side::North] {
                if let Some(n) = neighbor(zones, z, side) {
                    let (_src, _t, bytes) = ampi.recv(None, Some(tag(n, z.id)));
                    let vals = unpack_f64(&bytes);
                    match side {
                        Side::West => g.set_ghost_column(false, &vals),
                        Side::East => g.set_ghost_column(true, &vals),
                        Side::South => g.set_ghost_row(false, &vals),
                        Side::North => g.set_ghost_row(true, &vals),
                    }
                }
            }
        }
        // Phase 3: solve — the real, area-proportional work.
        for g in grids.iter_mut() {
            for _ in 0..cfg.sweeps {
                std::hint::black_box(g.sweep());
            }
        }
        // Phase 4: the load-balancing point.
        if cfg.lb.is_some() && iter + 1 == cfg.lb_at {
            ampi.migrate();
        }
        // Phase 5: coordinated checkpoint. The iteration boundary is a
        // matched communication boundary — every ghost sent this iteration
        // was consumed by a recv above before any rank can pass the
        // checkpoint collective.
        if cfg.checkpoint_every > 0 && (iter + 1) % cfg.checkpoint_every == 0 {
            ampi.checkpoint();
        }
    }

    // Validation: global checksum over all zones.
    let local: f64 = grids.iter().map(ZoneGrid::interior_sum).sum();
    let global = ampi.allreduce_f64(&[local], flows_comm::ReduceOp::SumF64);
    if me == 0 {
        *checksum.lock().unwrap() = global[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_lb::{GreedyLb, RotateLb};

    fn base(nprocs: usize, pes: usize) -> MzConfig {
        let mut c = MzConfig::new(MzBench::BtMz, MzClass::S, nprocs, pes);
        c.iterations = 4;
        c
    }

    #[test]
    fn runs_and_labels() {
        let r = run(&base(4, 2));
        assert_eq!(r.label, "S.4,2PE");
        assert!(r.checksum.is_finite() && r.checksum != 0.0);
        assert_eq!(r.migrations, 0);
        assert!(r.modeled_time_s > 0.0);
    }

    #[test]
    fn checksum_is_invariant_under_migration() {
        // The strongest correctness statement in the repo: migrating rank
        // threads mid-run must not change the numerical answer.
        let plain = run(&base(4, 2));
        let rotated = run(&base(4, 2).with_lb(Arc::new(RotateLb)));
        let greedy = run(&base(4, 2).with_lb(Arc::new(GreedyLb)));
        assert_eq!(plain.checksum, rotated.checksum);
        assert_eq!(plain.checksum, greedy.checksum);
        assert!(rotated.migrations > 0, "RotateLB must actually migrate");
    }

    #[test]
    fn faulty_run_recovers_and_matches_fault_free_checksum() {
        // The ISSUE's acceptance bar: lossy links plus a PE death mid-run
        // must yield the exact fault-free answer, on a smaller machine.
        let clean = run(&base(4, 2));
        let plan = FaultPlan::new(0xBDF)
            .drop_prob(0.02)
            .dup_prob(0.02)
            .crash_pe(1, 150_000);
        let faulty = run(&base(4, 2).with_faults(plan, 1));
        assert_eq!(
            clean.checksum, faulty.checksum,
            "recovery must not change the numerical answer"
        );
        assert_eq!(faulty.restarts, 1, "the scripted crash fired");
        assert_eq!(faulty.pes_used, 1, "the machine degraded to one PE");
        let f = faulty.faults.expect("fault counters present");
        assert!(f.retransmits >= f.dropped, "every drop was repaired");
        assert!(
            faulty.total_messages >= faulty.messages,
            "crashed attempts add to the total"
        );
    }

    #[test]
    fn single_rank_per_zone_works() {
        // nprocs == zones: every rank owns exactly one zone.
        let mut c = MzConfig::new(MzBench::SpMz, MzClass::S, 4, 2);
        c.iterations = 2;
        let r = run(&c);
        assert!(r.checksum.is_finite());
    }

    #[test]
    #[should_panic(expected = "only")]
    fn more_ranks_than_zones_is_refused() {
        let _ = run(&base(64, 2));
    }
}
