//! Multi-zone mesh definitions: zone counts and the BT-MZ zone-size law.
//!
//! The NAS Multi-Zone benchmarks partition a global mesh into zones that
//! are solved independently and exchange boundary values each iteration.
//! SP-MZ uses equal zones; **BT-MZ deliberately makes zone sizes follow a
//! geometric progression with a ≈20× spread between the largest and
//! smallest zone**, which is what creates the "most dramatic load
//! imbalance" the paper uses for Figure 12.

/// Problem classes (grid sizes scaled to laptop scale; the *structure* —
/// zone counts and the 20× spread — matches the NPB-MZ definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MzClass {
    /// Sample: 2×2 zones over 64².
    S,
    /// Workstation: 4×4 zones over 96².
    W,
    /// Class A: 4×4 zones over 128².
    A,
    /// Class B: 8×8 zones over 192².
    B,
}

impl MzClass {
    /// (zone-grid x, zone-grid y, total nx, total ny)
    pub fn shape(self) -> (usize, usize, usize, usize) {
        match self {
            MzClass::S => (2, 2, 64, 64),
            MzClass::W => (4, 4, 96, 96),
            MzClass::A => (4, 4, 128, 128),
            MzClass::B => (8, 8, 192, 192),
        }
    }

    /// Number of zones.
    pub fn zones(self) -> usize {
        let (gx, gy, _, _) = self.shape();
        gx * gy
    }

    /// Parse "S"/"W"/"A"/"B".
    pub fn parse(s: &str) -> Option<MzClass> {
        match s {
            "S" | "s" => Some(MzClass::S),
            "W" | "w" => Some(MzClass::W),
            "A" | "a" => Some(MzClass::A),
            "B" | "b" => Some(MzClass::B),
            _ => None,
        }
    }
}

/// Which multi-zone benchmark (zone-size distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MzBench {
    /// Uneven zones (≈20× area spread) — the load-imbalance stressor.
    BtMz,
    /// Equal zones — balanced by construction.
    SpMz,
}

/// One zone of the partitioned mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    /// Zone index (row-major in the zone grid).
    pub id: usize,
    /// Position in the zone grid.
    pub gx: usize,
    /// Position in the zone grid.
    pub gy: usize,
    /// Interior points in x.
    pub nx: usize,
    /// Interior points in y.
    pub ny: usize,
}

impl Zone {
    /// Interior area (the per-iteration work scale).
    pub fn area(&self) -> usize {
        self.nx * self.ny
    }
}

/// Split `total` into `parts` spans of size ∝ `ratio^i` (each ≥ 4),
/// exactly summing to `total`.
fn geometric_split(total: usize, parts: usize, ratio: f64) -> Vec<usize> {
    let weights: Vec<f64> = (0..parts).map(|i| ratio.powi(i as i32)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f64).floor().max(4.0) as usize)
        .collect();
    // Fix the rounding drift on the largest part.
    let assigned: usize = sizes.iter().sum();
    let last = parts - 1;
    if assigned <= total {
        sizes[last] += total - assigned;
    } else {
        let over = assigned - total;
        assert!(sizes[last] > over + 4, "split drift too large");
        sizes[last] -= over;
    }
    sizes
}

/// Compute every zone of a benchmark/class pair.
///
/// For BT-MZ the per-dimension ratio `q` is chosen so the largest/smallest
/// zone *area* ratio is ≈20 (NPB-MZ's published characteristic):
/// `q^(gx-1) * q^(gy-1) = 20`.
pub fn zone_layout(bench: MzBench, class: MzClass) -> Vec<Zone> {
    let (gx, gy, nx, ny) = class.shape();
    let (xs, ys) = match bench {
        MzBench::SpMz => (
            geometric_split(nx, gx, 1.0),
            geometric_split(ny, gy, 1.0),
        ),
        MzBench::BtMz => {
            let exponent = (gx - 1) + (gy - 1);
            let q = if exponent == 0 {
                1.0
            } else {
                20f64.powf(1.0 / exponent as f64)
            };
            (geometric_split(nx, gx, q), geometric_split(ny, gy, q))
        }
    };
    let mut zones = Vec::with_capacity(gx * gy);
    for (j, &ny) in ys.iter().enumerate() {
        for (i, &nx) in xs.iter().enumerate() {
            zones.push(Zone {
                id: j * gx + i,
                gx: i,
                gy: j,
                nx,
                ny,
            });
        }
    }
    zones
}

/// Zone-to-rank assignment: round-robin over zone ids, as in the NPB-MZ
/// reference. Composed with AMPI's block rank→PE map, different NPROCS
/// values scatter the geometric zone sizes very differently across PEs —
/// which is exactly why the paper's no-LB times vary so dramatically
/// between e.g. B.16, B.32 and B.64 on the same 8 PEs.
pub fn rank_of_zone(zone: usize, zones: usize, ranks: usize) -> usize {
    let _ = zones;
    zone % ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        for class in [MzClass::S, MzClass::W, MzClass::A, MzClass::B] {
            for bench in [MzBench::BtMz, MzBench::SpMz] {
                let (gx, gy, nx, ny) = class.shape();
                let zones = zone_layout(bench, class);
                assert_eq!(zones.len(), gx * gy);
                // Widths along each row sum to the full mesh.
                let row_total: usize = zones[..gx].iter().map(|z| z.nx).sum();
                assert_eq!(row_total, nx, "{bench:?} {class:?}");
                let col_total: usize = zones.iter().step_by(gx).map(|z| z.ny).sum();
                assert_eq!(col_total, ny);
                for z in &zones {
                    assert!(z.nx >= 4 && z.ny >= 4);
                }
            }
        }
    }

    #[test]
    fn btmz_has_large_area_spread_spmz_is_flat() {
        for class in [MzClass::W, MzClass::A, MzClass::B] {
            let bt = zone_layout(MzBench::BtMz, class);
            let max = bt.iter().map(Zone::area).max().unwrap() as f64;
            let min = bt.iter().map(Zone::area).min().unwrap() as f64;
            assert!(
                max / min > 6.0,
                "{class:?}: BT-MZ spread must be large, got {}",
                max / min
            );
            let sp = zone_layout(MzBench::SpMz, class);
            let smax = sp.iter().map(Zone::area).max().unwrap() as f64;
            let smin = sp.iter().map(Zone::area).min().unwrap() as f64;
            assert!(smax / smin < 1.5, "{class:?}: SP-MZ must be near-equal");
        }
    }

    #[test]
    fn round_robin_assignment_covers_all_ranks_evenly() {
        let zones = 16;
        let ranks = 8;
        let mut per_rank = vec![0; ranks];
        for z in 0..zones {
            per_rank[rank_of_zone(z, zones, ranks)] += 1;
        }
        assert!(per_rank.iter().all(|&c| c == 2));
        assert_eq!(rank_of_zone(0, zones, ranks), 0);
        assert_eq!(rank_of_zone(8, zones, ranks), 0, "wraps around");
        assert_eq!(rank_of_zone(9, zones, ranks), 1);
    }

    #[test]
    fn class_parsing() {
        assert_eq!(MzClass::parse("A"), Some(MzClass::A));
        assert_eq!(MzClass::parse("b"), Some(MzClass::B));
        assert_eq!(MzClass::parse("q"), None);
    }
}
