//! The per-zone solver: a halo'd 5-point Jacobi relaxation.
//!
//! The NPB-MZ reference solves BT/SP/LU systems; what Figure 12 exercises
//! is the *work distribution* (∝ zone area) and the boundary exchange, not
//! the numerics, so the solver here is a real (deterministic, floating-
//! point) stencil sweep whose cost scales with zone area — see DESIGN.md
//! §2 on this substitution.

/// A zone's field with a one-cell halo ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneGrid {
    /// Interior points in x.
    pub nx: usize,
    /// Interior points in y.
    pub ny: usize,
    data: Vec<f64>,
    scratch: Vec<f64>,
}

impl ZoneGrid {
    /// Deterministic initial condition derived from the zone id.
    pub fn new(zone_id: usize, nx: usize, ny: usize) -> ZoneGrid {
        let w = nx + 2;
        let h = ny + 2;
        let mut data = vec![0.0; w * h];
        for j in 0..h {
            for i in 0..w {
                data[j * w + i] =
                    ((zone_id * 37 + i * 13 + j * 7) % 101) as f64 * 0.01;
            }
        }
        ZoneGrid {
            nx,
            ny,
            scratch: data.clone(),
            data,
        }
    }

    fn w(&self) -> usize {
        self.nx + 2
    }

    /// Value at interior coordinates (1-based inside the halo).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[j * self.w() + i]
    }

    /// The interior column adjacent to the west/east edge (for sending).
    pub fn edge_column(&self, east: bool) -> Vec<f64> {
        let i = if east { self.nx } else { 1 };
        (1..=self.ny).map(|j| self.at(i, j)).collect()
    }

    /// The interior row adjacent to the south/north edge (for sending).
    pub fn edge_row(&self, north: bool) -> Vec<f64> {
        let j = if north { self.ny } else { 1 };
        (1..=self.nx).map(|i| self.at(i, j)).collect()
    }

    /// Install a received ghost column (west edge when `east == false`).
    pub fn set_ghost_column(&mut self, east: bool, vals: &[f64]) {
        assert_eq!(vals.len(), self.ny, "ghost column length");
        let w = self.w();
        let i = if east { self.nx + 1 } else { 0 };
        for (j, v) in (1..=self.ny).zip(vals) {
            self.data[j * w + i] = *v;
        }
    }

    /// Install a received ghost row.
    pub fn set_ghost_row(&mut self, north: bool, vals: &[f64]) {
        assert_eq!(vals.len(), self.nx, "ghost row length");
        let w = self.w();
        let j = if north { self.ny + 1 } else { 0 };
        for (i, v) in (1..=self.nx).zip(vals) {
            self.data[j * w + i] = *v;
        }
    }

    /// One Jacobi sweep over the interior; returns the residual-ish sum of
    /// absolute updates (a cheap convergence witness).
    pub fn sweep(&mut self) -> f64 {
        let w = self.w();
        let mut delta = 0.0;
        for j in 1..=self.ny {
            for i in 1..=self.nx {
                let v = 0.25
                    * (self.data[j * w + i - 1]
                        + self.data[j * w + i + 1]
                        + self.data[(j - 1) * w + i]
                        + self.data[(j + 1) * w + i]);
                delta += (v - self.data[j * w + i]).abs();
                self.scratch[j * w + i] = v;
            }
        }
        // Swap interiors (halo stays in `data`): copy interior back.
        for j in 1..=self.ny {
            let row = j * w;
            self.data[row + 1..row + 1 + self.nx]
                .copy_from_slice(&self.scratch[row + 1..row + 1 + self.nx]);
        }
        delta
    }

    /// Sum of interior values (checksum component).
    pub fn interior_sum(&self) -> f64 {
        let mut s = 0.0;
        for j in 1..=self.ny {
            for i in 1..=self.nx {
                s += self.at(i, j);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_smooth_the_field() {
        let mut g = ZoneGrid::new(0, 8, 8);
        let d1 = g.sweep();
        let mut d_last = d1;
        for _ in 0..20 {
            d_last = g.sweep();
        }
        assert!(d_last < d1, "Jacobi must converge on a fixed boundary");
        assert!(g.interior_sum().is_finite());
    }

    #[test]
    fn ghost_installation_affects_adjacent_cells() {
        let mut g = ZoneGrid::new(1, 4, 4);
        let before = g.at(1, 1);
        g.set_ghost_column(false, &[10.0, 10.0, 10.0, 10.0]);
        g.set_ghost_row(false, &[10.0, 10.0, 10.0, 10.0]);
        g.sweep();
        assert!(g.at(1, 1) > before, "hot ghosts heat the corner");
    }

    #[test]
    fn edges_are_what_neighbors_would_read() {
        let g = ZoneGrid::new(2, 3, 2);
        assert_eq!(g.edge_column(false), vec![g.at(1, 1), g.at(1, 2)]);
        assert_eq!(g.edge_column(true), vec![g.at(3, 1), g.at(3, 2)]);
        assert_eq!(g.edge_row(false), vec![g.at(1, 1), g.at(2, 1), g.at(3, 1)]);
        assert_eq!(g.edge_row(true), vec![g.at(1, 2), g.at(2, 2), g.at(3, 2)]);
    }

    #[test]
    fn determinism() {
        let mut a = ZoneGrid::new(7, 6, 5);
        let mut b = ZoneGrid::new(7, 6, 5);
        for _ in 0..5 {
            a.sweep();
            b.sweep();
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ghost column length")]
    fn wrong_ghost_length_panics() {
        let mut g = ZoneGrid::new(0, 4, 4);
        g.set_ghost_column(false, &[1.0]);
    }
}
