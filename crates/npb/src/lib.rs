//! # flows-npb — NAS Multi-Zone workloads on AMPI
//!
//! The paper's load-balancing demonstration (§4.5, Figure 12) runs the
//! NAS "Multi-Zone" benchmarks — coarse-grained collections of loosely
//! coupled zones solved independently with per-iteration boundary
//! exchange — on AMPI, with many more ranks than PEs so that migratable
//! threads can flow from overloaded to underloaded processors.
//!
//! * [`zones`] — zone counts per class and BT-MZ's ≈20× zone-size spread
//!   (the deliberate imbalance source);
//! * [`solver`] — the per-zone halo'd stencil solver (area-proportional
//!   real work; see DESIGN.md §2 for the substitution note);
//! * [`run`] — the AMPI driver: boundary exchange, solve, optional
//!   `migrate()` every few iterations, and a global checksum that must be
//!   bit-identical with and without load balancing.

#![warn(missing_docs)]

pub mod run;
pub mod solver;
pub mod zones;

pub use run::{run, MzConfig, MzReport};
pub use solver::ZoneGrid;
pub use zones::{rank_of_zone, zone_layout, MzBench, MzClass, Zone};
