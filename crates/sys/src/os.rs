//! Process-level OS services: yielding, resource limits, `/proc` discovery.
//!
//! Table 2 of the paper reports the *practical* limits each platform places
//! on processes and kernel threads. This module exposes the knobs those
//! limits come from (`RLIMIT_NPROC`, `/proc/sys/kernel/threads-max`,
//! `pid_max`) so the probing harness can report both the configured limit
//! and the empirically reached one.

use crate::error::{SysError, SysResult};

/// Yield the processor (`sched_yield`), as the process/pthread context
/// switch benchmarks in §4.1 of the paper do.
#[inline]
pub fn sched_yield() {
    // SAFETY: sched_yield has no preconditions.
    unsafe { libc::sched_yield() };
}

/// A soft/hard resource-limit pair. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limit {
    /// Soft limit (enforced); `None` = unlimited.
    pub soft: Option<u64>,
    /// Hard limit (ceiling for the soft limit); `None` = unlimited.
    pub hard: Option<u64>,
}

fn getrlimit(resource: libc::__rlimit_resource_t) -> SysResult<Limit> {
    let mut rl = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: getrlimit writes into the struct we provide.
    if unsafe { libc::getrlimit(resource, &mut rl) } != 0 {
        return Err(SysError::last("getrlimit"));
    }
    let cvt = |v: libc::rlim_t| {
        if v == libc::RLIM_INFINITY {
            None
        } else {
            Some(v)
        }
    };
    Ok(Limit {
        soft: cvt(rl.rlim_cur),
        hard: cvt(rl.rlim_max),
    })
}

/// `RLIMIT_NPROC`: maximum number of processes/threads for this user.
pub fn nproc_limit() -> SysResult<Limit> {
    getrlimit(libc::RLIMIT_NPROC)
}

/// `RLIMIT_STACK`: default stack size for new kernel threads.
pub fn stack_limit() -> SysResult<Limit> {
    getrlimit(libc::RLIMIT_STACK)
}

/// `RLIMIT_AS`: address-space ceiling — the resource isomalloc spends.
pub fn address_space_limit() -> SysResult<Limit> {
    getrlimit(libc::RLIMIT_AS)
}

fn read_proc_u64(path: &str) -> Option<u64> {
    std::fs::read_to_string(path)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
}

/// Kernel-wide maximum thread count (`/proc/sys/kernel/threads-max`).
pub fn kernel_threads_max() -> Option<u64> {
    read_proc_u64("/proc/sys/kernel/threads-max")
}

/// Kernel-wide maximum pid (`/proc/sys/kernel/pid_max`).
pub fn kernel_pid_max() -> Option<u64> {
    read_proc_u64("/proc/sys/kernel/pid_max")
}

/// Maximum distinct memory mappings per process
/// (`/proc/sys/vm/max_map_count`) — the resource that bounds how many
/// isomalloc slots can be *committed* simultaneously.
pub fn max_map_count() -> Option<u64> {
    read_proc_u64("/proc/sys/vm/max_map_count")
}

/// `personality(2)` syscall number.
#[cfg(target_arch = "x86_64")]
const SYS_PERSONALITY: libc::c_long = 135;
#[cfg(target_arch = "aarch64")]
const SYS_PERSONALITY: libc::c_long = 92;

/// The `ADDR_NO_RANDOMIZE` personality bit: disable address-space layout
/// randomization for this process and everything it execs.
const ADDR_NO_RANDOMIZE: libc::c_long = 0x0040000;

/// Query the current personality word without changing it.
fn personality_get() -> libc::c_long {
    // SAFETY: 0xffffffff is the documented "query only" argument.
    unsafe { libc::syscall(SYS_PERSONALITY, 0xffff_ffffu64 as libc::c_long) }
}

/// Is address-space layout randomization off for this process — either
/// system-wide (`randomize_va_space = 0`) or via `ADDR_NO_RANDOMIZE`?
///
/// Migratable-thread images embed raw return addresses into the text
/// segment, so images may only cross a process boundary between processes
/// whose executable is mapped at the same base: same binary, ASLR off.
pub fn aslr_disabled() -> bool {
    if personality_get() & ADDR_NO_RANDOMIZE != 0 {
        return true;
    }
    matches!(
        std::fs::read_to_string("/proc/sys/kernel/randomize_va_space")
            .map(|s| s.trim().to_string()),
        Ok(ref v) if v == "0"
    )
}

/// Set `ADDR_NO_RANDOMIZE` on the current process. The flag survives
/// `execve`, so a process that sets it and re-execs itself gets a
/// deterministic layout, as do all children it then spawns (this is what
/// `setarch -R` does). Returns whether the bit is now set.
pub fn disable_aslr() -> bool {
    let cur = personality_get();
    if cur & ADDR_NO_RANDOMIZE != 0 {
        return true;
    }
    // SAFETY: personality only alters execution-domain flags of the
    // calling process.
    unsafe { libc::syscall(SYS_PERSONALITY, cur | ADDR_NO_RANDOMIZE) };
    personality_get() & ADDR_NO_RANDOMIZE != 0
}

/// Number of online CPUs.
pub fn cpu_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pointer width of this platform in bits (the paper's 32-bit vs 64-bit
/// distinction that motivates memory-aliasing stacks).
pub fn pointer_bits() -> u32 {
    (std::mem::size_of::<usize>() * 8) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_does_not_crash() {
        for _ in 0..10 {
            sched_yield();
        }
    }

    #[test]
    fn limits_are_readable() {
        let n = nproc_limit().unwrap();
        // Either unlimited or a positive count.
        if let Some(s) = n.soft {
            assert!(s > 0);
        }
        let st = stack_limit().unwrap();
        if let Some(s) = st.soft {
            assert!(s >= 4096);
        }
    }

    #[test]
    fn proc_values_parse_on_linux() {
        // These files exist on any modern Linux; values must be sane.
        if let Some(v) = kernel_threads_max() {
            assert!(v > 16);
        }
        if let Some(v) = kernel_pid_max() {
            assert!(v > 16);
        }
        if let Some(v) = max_map_count() {
            assert!(v > 16);
        }
    }

    #[test]
    fn aslr_personality_round_trip() {
        // Setting the bit only affects future execs; safe to do in-process.
        assert!(disable_aslr());
        assert!(aslr_disabled());
    }

    #[test]
    fn platform_sanity() {
        assert!(cpu_count() >= 1);
        let bits = pointer_bits();
        assert!(bits == 32 || bits == 64);
    }
}
