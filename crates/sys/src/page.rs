//! Page-size discovery and alignment arithmetic.

use std::sync::OnceLock;

/// The system page size in bytes (cached after the first call).
pub fn page_size() -> usize {
    static PAGE: OnceLock<usize> = OnceLock::new();
    *PAGE.get_or_init(|| {
        // SAFETY: sysconf(_SC_PAGESIZE) has no preconditions.
        let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
        if sz <= 0 {
            4096
        } else {
            sz as usize
        }
    })
}

/// Round `n` up to the next multiple of the page size.
pub fn page_align_up(n: usize) -> usize {
    let p = page_size();
    n.checked_add(p - 1).expect("page_align_up overflow") & !(p - 1)
}

/// Round `n` down to a multiple of the page size.
pub fn page_align_down(n: usize) -> usize {
    n & !(page_size() - 1)
}

/// Round `n` up to the next multiple of `align` (`align` must be a power of
/// two).
pub fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    n.checked_add(align - 1).expect("align_up overflow") & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_power_of_two() {
        let p = page_size();
        assert!(p >= 4096);
        assert!(p.is_power_of_two());
    }

    #[test]
    fn align_round_trips() {
        let p = page_size();
        assert_eq!(page_align_up(0), 0);
        assert_eq!(page_align_up(1), p);
        assert_eq!(page_align_up(p), p);
        assert_eq!(page_align_up(p + 1), 2 * p);
        assert_eq!(page_align_down(p - 1), 0);
        assert_eq!(page_align_down(p), p);
        assert_eq!(page_align_down(2 * p + 5), 2 * p);
    }

    #[test]
    fn align_up_generic() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 8), 24);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn align_up_overflow_panics() {
        let _ = page_align_up(usize::MAX);
    }
}
