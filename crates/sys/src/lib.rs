//! # flows-sys — raw OS services for the `flows` workspace
//!
//! This crate is the single home for every interaction with the operating
//! system that the migratable-thread machinery needs:
//!
//! * page-granular virtual memory control ([`map`]): reserving large
//!   `PROT_NONE` regions, committing/decommitting pages, `MAP_FIXED`
//!   remapping — the substrate for *isomalloc* and *memory-aliasing* stacks
//!   (paper §3.4.2–§3.4.3);
//! * anonymous shared memory objects ([`memfd`]) that back memory-aliasing
//!   stacks;
//! * monotonic and cycle-accurate timing ([`time`]) used by every benchmark
//!   harness;
//! * process-level odds and ends ([`os`]): `sched_yield`, pids, resource
//!   limits, `/proc` limit discovery for Table 2.
//!
//! Everything above this crate (except `flows-arch` and `flows-mem`) is
//! safe Rust; the `unsafe` concentrated here is small and each block carries
//! a `SAFETY` comment.

#![warn(missing_docs)]

pub mod counters;
pub mod error;
pub mod futex;
pub mod map;
pub mod memfd;
pub mod os;
pub mod page;
pub mod signal;
pub mod sock;
pub mod time;

pub use error::{SysError, SysResult};
pub use map::{Mapping, Protection};
pub use memfd::MemFd;
pub use page::{page_align_down, page_align_up, page_size};
