//! Per-thread syscall counters for the memory substrate.
//!
//! Every VM or memfd syscall issued through this crate bumps a counter on
//! the calling OS thread. Tests and probes snapshot the counters around an
//! operation to prove steady-state paths stay syscall-free (e.g. thread
//! create/exit on recycled slots must do zero `mmap`s). Thread-local
//! storage keeps concurrent test binaries from polluting each other's
//! deltas: a PE's scheduler runs on one OS thread, so its syscalls land on
//! its own counters.

use std::cell::Cell;

macro_rules! counters {
    ($($name:ident / $bump:ident : $doc:literal),* $(,)?) => {
        thread_local! {
            $( static $name: Cell<u64> = const { Cell::new(0) }; )*
        }

        /// A snapshot of the calling thread's syscall counters.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct SyscallCounts {
            $( #[doc = $doc] pub $bump: u64, )*
        }

        /// Snapshot the calling thread's counters.
        pub fn snapshot() -> SyscallCounts {
            SyscallCounts {
                $( $bump: $name.with(|c| c.get()), )*
            }
        }

        $(
            pub(crate) fn $bump() {
                $name.with(|c| c.set(c.get() + 1));
            }
        )*
    };
}

counters! {
    MMAP / mmap: "`mmap` calls that create or reserve address space.",
    REMAP / remap: "`MAP_FIXED` replacements inside an existing reservation (aliasing a frame into a window, restoring `PROT_NONE`). The address space does not grow — this is the memory-aliasing context switch itself.",
    MUNMAP / munmap: "`munmap` calls (releasing reservations).",
    MPROTECT / mprotect: "`mprotect` calls (commit/decommit protection flips).",
    MADVISE / madvise: "`madvise` calls (page discards).",
    FALLOCATE / fallocate: "`fallocate` calls (memfd hole punches).",
    FTRUNCATE / ftruncate: "`ftruncate` calls (memfd sizing).",
    PREAD / pread: "`pread` calls (frame reads).",
    PWRITE / pwrite: "`pwrite` calls (frame writes).",
    SIGMASK / sigmask: "`sigprocmask`/`pthread_sigmask` calls (swapcontext-style mask save/restore, §4.3).",
    RECLAIM_BATCH / reclaim_batch: "Deferred-reclaim flushes: each is one batched pass releasing a PE's vacated alias windows or isomalloc slots (not itself a syscall — the remaps/discards it issues are counted by the other fields).",
    FUTEX_WAIT / futex_wait: "`futex(FUTEX_WAIT)` calls (shared-memory doorbell parks).",
    FUTEX_WAKE / futex_wake: "`futex(FUTEX_WAKE)` calls (shared-memory doorbell wakes).",
    SOCK_SEND / sock_send: "Socket `write` calls (one per framed transport send).",
    SOCK_RECV / sock_recv: "Socket `read` calls (transport reader-thread fills).",
}

/// Record one deferred-reclaim batch flush on the calling thread.
/// Exposed (unlike the syscall bumps, which stay crate-private behind
/// the wrappers in `map`/`memfd`) because batching happens a layer up,
/// in `flows-mem`'s reclaim lists.
pub fn note_reclaim_batch() {
    reclaim_batch();
}

impl SyscallCounts {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &SyscallCounts) -> SyscallCounts {
        SyscallCounts {
            mmap: self.mmap.saturating_sub(earlier.mmap),
            remap: self.remap.saturating_sub(earlier.remap),
            munmap: self.munmap.saturating_sub(earlier.munmap),
            mprotect: self.mprotect.saturating_sub(earlier.mprotect),
            madvise: self.madvise.saturating_sub(earlier.madvise),
            fallocate: self.fallocate.saturating_sub(earlier.fallocate),
            ftruncate: self.ftruncate.saturating_sub(earlier.ftruncate),
            pread: self.pread.saturating_sub(earlier.pread),
            pwrite: self.pwrite.saturating_sub(earlier.pwrite),
            sigmask: self.sigmask.saturating_sub(earlier.sigmask),
            reclaim_batch: self.reclaim_batch.saturating_sub(earlier.reclaim_batch),
            futex_wait: self.futex_wait.saturating_sub(earlier.futex_wait),
            futex_wake: self.futex_wake.saturating_sub(earlier.futex_wake),
            sock_send: self.sock_send.saturating_sub(earlier.sock_send),
            sock_recv: self.sock_recv.saturating_sub(earlier.sock_recv),
        }
    }

    /// Total syscalls across all counters. `reclaim_batch` is excluded:
    /// it counts flush passes, not kernel entries — the syscalls a flush
    /// issues already land in `remap`/`madvise`/`fallocate`.
    pub fn total(&self) -> u64 {
        self.mmap
            + self.remap
            + self.munmap
            + self.mprotect
            + self.madvise
            + self.fallocate
            + self.ftruncate
            + self.pread
            + self.pwrite
            + self.sigmask
            + self.futex_wait
            + self.futex_wake
            + self.sock_send
            + self.sock_recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let a = snapshot();
        mmap();
        mmap();
        madvise();
        let b = snapshot();
        let d = b.since(&a);
        assert_eq!(d.mmap, 2);
        assert_eq!(d.madvise, 1);
        assert_eq!(d.munmap, 0);
        assert_eq!(d.total(), 3);
    }
}
