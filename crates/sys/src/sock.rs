//! Counted stream-socket I/O (Unix-domain and TCP) for the flows-net
//! transport.
//!
//! Socket syscalls stay confined to `flows-sys` like every other kernel
//! interaction in this workspace (flowslint enforces the confinement for
//! raw `libc`; the transport layer keeps the convention for `std` socket
//! I/O too by routing through these helpers). Each framed write bumps
//! `sock_send` and each blocking fill bumps `sock_recv`, so transport
//! tests can assert per-message syscall behaviour the same way the
//! memory fast paths assert zero-`mmap` steady states.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Write one complete frame (`write_all`), counted as one `sock_send`.
pub fn write_frame(w: &mut dyn Write, frame: &[u8]) -> io::Result<()> {
    crate::counters::sock_send();
    w.write_all(frame)
}

/// Fill `buf` completely (`read_exact`), counted as one `sock_recv`.
/// An EOF before the first byte is reported as `UnexpectedEof`.
pub fn read_frame(r: &mut dyn Read, buf: &mut [u8]) -> io::Result<()> {
    crate::counters::sock_recv();
    r.read_exact(buf)
}

/// Bind a Unix-domain listener, replacing any stale socket file left by
/// a previous (crashed) run at the same path.
pub fn uds_listen(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

/// Connect to a Unix-domain socket, retrying while the peer's listener
/// is still coming up (the flows-net mesh dials by filesystem
/// convention, so the file may not exist yet). Gives up after `timeout`.
pub fn uds_connect_retry(path: &Path, timeout: Duration) -> io::Result<UnixStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Bind a TCP listener on `addr` (the flows-net TCP backend binds
/// loopback port `base + rank`).
pub fn tcp_listen(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Connect to `addr`, retrying until the peer's listener is up or
/// `timeout` elapses. Disables Nagle: transport frames are latency-bound.
pub fn tcp_connect_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uds_roundtrip_is_counted() {
        let dir = std::env::temp_dir().join(format!("flows-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let listener = uds_listen(&path).unwrap();
        let srv = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            read_frame(&mut s, &mut buf).unwrap();
            write_frame(&mut (&s), &buf).unwrap();
            buf
        });
        let mut c = uds_connect_retry(&path, Duration::from_secs(2)).unwrap();
        let before = crate::counters::snapshot();
        write_frame(&mut c, b"hello").unwrap();
        let mut echo = [0u8; 5];
        read_frame(&mut c, &mut echo).unwrap();
        let d = crate::counters::snapshot().since(&before);
        assert_eq!(&echo, b"hello");
        assert_eq!(srv.join().unwrap(), *b"hello");
        assert_eq!(d.sock_send, 1);
        assert_eq!(d.sock_recv, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_socket_file_is_replaced() {
        let dir = std::env::temp_dir().join(format!("flows-sock2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        std::fs::write(&path, b"junk").unwrap();
        let _l = uds_listen(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_connect_retries_until_listener_appears() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let l = tcp_listen(addr).unwrap();
        let bound = l.local_addr().unwrap();
        let c = tcp_connect_retry(bound, Duration::from_secs(2)).unwrap();
        assert!(c.nodelay().unwrap());
    }
}
