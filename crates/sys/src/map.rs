//! Page-granular virtual-memory control.
//!
//! Isomalloc (paper §3.4.2) needs to *reserve* a huge span of virtual
//! address space at a fixed, machine-wide-agreed address, then commit
//! physical pages only to the slots of locally resident threads.
//! Memory-aliasing stacks (paper §3.4.3) need to remap a shared-memory
//! object over a fixed "common stack" address on every context switch.
//! Both are expressed with the small vocabulary in this module:
//!
//! * [`Mapping::reserve`] / [`Mapping::reserve_at`] — claim address space
//!   with `PROT_NONE` (no physical memory, no swap accounting);
//! * [`Mapping::commit`] / [`Mapping::decommit`] — flip page ranges between
//!   "backed, zero-filled, read-write" and "inaccessible, physical pages
//!   returned to the kernel";
//! * [`Mapping::alias_file`] / [`Mapping::unalias`] — splice a file-backed
//!   (`memfd`) window over part of a reservation and put the `PROT_NONE`
//!   reservation back afterwards.

use crate::error::{SysError, SysResult};
use crate::page::page_size;

/// Memory protection for committed ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No access — reserved address space only.
    None,
    /// Read-only.
    Read,
    /// Read + write (the normal committed state).
    ReadWrite,
}

impl Protection {
    fn as_raw(self) -> libc::c_int {
        match self {
            Protection::None => libc::PROT_NONE,
            Protection::Read => libc::PROT_READ,
            Protection::ReadWrite => libc::PROT_READ | libc::PROT_WRITE,
        }
    }
}

/// An owned span of virtual address space.
///
/// Dropping a `Mapping` unmaps it. All offsets/lengths passed to methods
/// must be page-aligned; this is asserted in debug builds and enforced with
/// errors in release builds.
#[derive(Debug)]
pub struct Mapping {
    addr: *mut u8,
    len: usize,
}

// SAFETY: a `Mapping` is a handle to kernel state identified by an address
// range; the kernel serializes the mmap/mprotect calls themselves. Racing
// *data* accesses within the range are the responsibility of the memory
// managers built on top (flows-mem), which guard them with locks.
unsafe impl Send for Mapping {}
// SAFETY: see above — all &self methods are kernel-serialized.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Reserve `len` bytes of address space anywhere, with no backing pages.
    pub fn reserve(len: usize) -> SysResult<Mapping> {
        Self::reserve_inner(std::ptr::null_mut(), len, 0)
    }

    /// Reserve `len` bytes at exactly `addr`.
    ///
    /// Fails (rather than clobbering) if any byte of the range is already
    /// mapped, which is how isomalloc detects that its agreed-upon region is
    /// unavailable on this machine.
    pub fn reserve_at(addr: usize, len: usize) -> SysResult<Mapping> {
        Self::reserve_inner(addr as *mut libc::c_void, len, libc::MAP_FIXED_NOREPLACE)
    }

    fn reserve_inner(
        addr: *mut libc::c_void,
        len: usize,
        extra_flags: libc::c_int,
    ) -> SysResult<Mapping> {
        check_aligned(len, "reserve len")?;
        if len == 0 {
            return Err(SysError::logic("mmap", "zero-length reservation".into()));
        }
        // SAFETY: anonymous PROT_NONE mapping; no existing memory is touched
        // (MAP_FIXED_NOREPLACE refuses to replace existing mappings).
        let p = unsafe {
            libc::mmap(
                addr,
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | extra_flags,
                -1,
                0,
            )
        };
        crate::counters::mmap();
        if p == libc::MAP_FAILED {
            return Err(SysError::last_with(
                "mmap",
                format!("reserve {len:#x} bytes at {addr:p}"),
            ));
        }
        if !addr.is_null() && p != addr {
            // Pre-4.17 kernels ignore MAP_FIXED_NOREPLACE; treat a moved
            // mapping as failure.
            // SAFETY: unmapping the mapping we just created.
            unsafe { libc::munmap(p, len) };
            crate::counters::munmap();
            return Err(SysError::logic(
                "mmap",
                format!("kernel moved fixed reservation from {addr:p} to {p:p}"),
            ));
        }
        Ok(Mapping {
            addr: p.cast(),
            len,
        })
    }

    /// Base address of the mapping.
    pub fn addr(&self) -> usize {
        self.addr as usize
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping has zero length (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check_range(&self, offset: usize, len: usize, op: &'static str) -> SysResult<()> {
        check_aligned(offset, op)?;
        check_aligned(len, op)?;
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(SysError::logic(
                op,
                format!(
                    "range {offset:#x}+{len:#x} outside mapping of {:#x}",
                    self.len
                ),
            ));
        }
        Ok(())
    }

    /// Commit the page range `[offset, offset+len)` with the given
    /// protection. Newly committed anonymous pages read as zero.
    pub fn commit(&self, offset: usize, len: usize, prot: Protection) -> SysResult<()> {
        self.check_range(offset, len, "mprotect")?;
        // SAFETY: range checked against this mapping.
        let rc = unsafe {
            libc::mprotect(
                self.addr.add(offset).cast(),
                len,
                prot.as_raw(),
            )
        };
        crate::counters::mprotect();
        if rc != 0 {
            return Err(SysError::last_with(
                "mprotect",
                format!("commit {len:#x} at +{offset:#x}"),
            ));
        }
        Ok(())
    }

    /// Return the physical pages of `[offset, offset+len)` to the kernel and
    /// make the range inaccessible again. The address space stays reserved.
    pub fn decommit(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check_range(offset, len, "decommit")?;
        // SAFETY: range checked; MADV_DONTNEED on an anonymous private
        // mapping discards the pages (subsequent commits read zero).
        unsafe {
            let p = self.addr.add(offset).cast::<libc::c_void>();
            crate::counters::madvise();
            if libc::madvise(p, len, libc::MADV_DONTNEED) != 0 {
                return Err(SysError::last("madvise"));
            }
            crate::counters::mprotect();
            if libc::mprotect(p, len, libc::PROT_NONE) != 0 {
                return Err(SysError::last("mprotect"));
            }
        }
        Ok(())
    }

    /// Return the physical pages of `[offset, offset+len)` to the kernel
    /// *without* changing protection: a committed range stays committed but
    /// reads as zero afterwards. This is the cheap half of
    /// [`Mapping::decommit`] and the basis of warm slot recycling — a freed
    /// slot gives its pages back with one `madvise` and the next owner
    /// commits nothing at all.
    pub fn discard(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check_range(offset, len, "discard")?;
        // SAFETY: range checked; MADV_DONTNEED on an anonymous private
        // mapping discards the pages (subsequent reads return zero).
        unsafe {
            crate::counters::madvise();
            if libc::madvise(self.addr.add(offset).cast(), len, libc::MADV_DONTNEED) != 0 {
                return Err(SysError::last("madvise"));
            }
        }
        Ok(())
    }

    /// Splice `len` bytes of `fd` starting at file offset `file_offset` over
    /// `[offset, offset+len)` of this mapping (shared, read-write).
    ///
    /// This is the memory-aliasing primitive: the window contents become the
    /// file contents, and stores are visible through every other alias of
    /// the same file range.
    pub fn alias_file(
        &self,
        offset: usize,
        len: usize,
        fd: std::os::fd::RawFd,
        file_offset: u64,
    ) -> SysResult<()> {
        self.check_range(offset, len, "alias_file")?;
        // SAFETY: MAP_FIXED over a range we own (checked above); replaces
        // our own reservation, never foreign mappings.
        let p = unsafe {
            libc::mmap(
                self.addr.add(offset).cast(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_FIXED,
                fd,
                file_offset as libc::off_t,
            )
        };
        crate::counters::remap();
        if p == libc::MAP_FAILED {
            return Err(SysError::last_with(
                "mmap",
                format!("alias {len:#x} at +{offset:#x} from fd {fd} @{file_offset:#x}"),
            ));
        }
        Ok(())
    }

    /// Replace `[offset, offset+len)` with a fresh anonymous `PROT_NONE`
    /// reservation, undoing [`Mapping::alias_file`] or [`Mapping::commit`].
    pub fn unalias(&self, offset: usize, len: usize) -> SysResult<()> {
        self.check_range(offset, len, "unalias")?;
        // SAFETY: MAP_FIXED over a range we own.
        let p = unsafe {
            libc::mmap(
                self.addr.add(offset).cast(),
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
                -1,
                0,
            )
        };
        crate::counters::remap();
        if p == libc::MAP_FAILED {
            return Err(SysError::last("mmap"));
        }
        Ok(())
    }

    /// Ask the kernel to back `[offset, offset+len)` with transparent
    /// huge pages when it can (`MADV_HUGEPAGE`). Best-effort: a kernel
    /// built without THP returns EINVAL, which callers treat as "no
    /// hugepages here" rather than an error — hence the `bool` (advice
    /// accepted) instead of a result.
    pub fn advise_hugepage(&self, offset: usize, len: usize) -> SysResult<bool> {
        self.check_range(offset, len, "advise_hugepage")?;
        crate::counters::madvise();
        // SAFETY: range checked against this mapping; MADV_HUGEPAGE only
        // sets a VMA flag.
        let rc = unsafe {
            libc::madvise(self.addr.add(offset).cast(), len, libc::MADV_HUGEPAGE)
        };
        Ok(rc == 0)
    }

    /// Raw pointer to byte `offset` of the mapping. The caller must ensure
    /// the range it dereferences is committed.
    pub fn ptr(&self, offset: usize) -> *mut u8 {
        assert!(offset <= self.len, "offset outside mapping");
        // SAFETY: offset bounds-checked against the mapping length.
        unsafe { self.addr.add(offset) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        if !self.addr.is_null() && self.len > 0 {
            // SAFETY: unmapping a region this handle owns.
            unsafe { libc::munmap(self.addr.cast(), self.len) };
            crate::counters::munmap();
        }
    }
}

fn check_aligned(n: usize, op: &'static str) -> SysResult<()> {
    if !n.is_multiple_of(page_size()) {
        return Err(SysError::logic(
            "align",
            format!("{op}: {n:#x} is not page-aligned"),
        ));
    }
    Ok(())
}

/// Is the fixed range `[addr, addr+len)` currently available (unmapped) in
/// this process? Used by the Table 1 portability probe.
pub fn fixed_range_available(addr: usize, len: usize) -> bool {
    match Mapping::reserve_at(addr, len) {
        Ok(_m) => true, // dropped => unmapped again
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_commit_write_decommit() {
        let p = page_size();
        let m = Mapping::reserve(16 * p).unwrap();
        m.commit(p, 2 * p, Protection::ReadWrite).unwrap();
        // SAFETY: just committed read-write.
        unsafe {
            let q = m.ptr(p);
            assert_eq!(*q, 0, "fresh pages must read zero");
            *q = 0xAB;
            assert_eq!(*q, 0xAB);
        }
        m.decommit(p, 2 * p).unwrap();
        m.commit(p, p, Protection::ReadWrite).unwrap();
        // SAFETY: recommitted read-write.
        unsafe {
            assert_eq!(*m.ptr(p), 0, "decommit must discard contents");
        }
    }

    #[test]
    fn reserve_at_conflict_detected() {
        let p = page_size();
        let m = Mapping::reserve(4 * p).unwrap();
        // Reserving on top of an existing mapping must fail, not clobber.
        let r = Mapping::reserve_at(m.addr(), 4 * p);
        assert!(r.is_err());
    }

    #[test]
    fn reserve_at_free_range_works() {
        let p = page_size();
        // Find a free range by reserving and releasing.
        let probe = Mapping::reserve(8 * p).unwrap();
        let addr = probe.addr();
        drop(probe);
        let m = Mapping::reserve_at(addr, 8 * p).unwrap();
        assert_eq!(m.addr(), addr);
    }

    #[test]
    fn unaligned_arguments_rejected() {
        let p = page_size();
        let m = Mapping::reserve(4 * p).unwrap();
        assert!(m.commit(1, p, Protection::ReadWrite).is_err());
        assert!(m.commit(0, p + 1, Protection::ReadWrite).is_err());
        assert!(m.commit(4 * p, p, Protection::ReadWrite).is_err());
        assert!(m.commit(usize::MAX - p + 1, p, Protection::ReadWrite).is_err());
    }

    #[test]
    fn zero_len_reserve_rejected() {
        assert!(Mapping::reserve(0).is_err());
    }

    #[test]
    fn fixed_probe_reports_truthfully() {
        let p = page_size();
        let m = Mapping::reserve(4 * p).unwrap();
        assert!(!fixed_range_available(m.addr(), 4 * p));
        let addr = m.addr();
        drop(m);
        assert!(fixed_range_available(addr, 4 * p));
    }
}
