//! Signal-mask save/restore — the syscalls behind `swapcontext` emulation.
//!
//! The paper's §4.3 point is that `swapcontext`-style thread packages pay
//! two `sigprocmask` system calls per context switch. `SwapKind::SignalMask`
//! in `flows-arch` reproduces that overhead deliberately; this module is
//! where those calls live so they flow through the same [`crate::counters`]
//! accounting as every other syscall in the workspace.

use crate::counters;

/// A saved per-thread signal mask. Plain-old-data: safe to copy, store in
/// a suspended context, and carry across a thread migration (signal
/// numbers are machine-global, not address-space-relative).
#[derive(Clone, Copy)]
pub struct SigSet(libc::sigset_t);

impl SigSet {
    /// An empty mask (no signals blocked). A valid starting value that is
    /// overwritten by the first [`swap_mask`].
    pub fn empty() -> SigSet {
        // SAFETY: sigset_t is a plain bitmask; all-zeroes is the empty set.
        SigSet(unsafe { std::mem::zeroed() })
    }

    /// The calling thread's current mask, as `getcontext` would capture it.
    pub fn current() -> SigSet {
        let mut s = SigSet::empty();
        counters::sigmask();
        // SAFETY: querying the current mask into a valid sigset_t; a null
        // `set` pointer means "read only, change nothing".
        unsafe { libc::pthread_sigmask(libc::SIG_SETMASK, std::ptr::null(), &mut s.0) };
        s
    }
}

impl Default for SigSet {
    fn default() -> SigSet {
        SigSet::empty()
    }
}

impl std::fmt::Debug for SigSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SigSet(..)")
    }
}

/// Save the calling thread's mask into `*old` and install `*new` — the two
/// `sigprocmask` syscalls a `swapcontext` pays on every switch.
///
/// Raw pointers because the caller (the context-switch path) must not hold
/// Rust references across the register swap that follows.
///
/// # Safety
/// `old` must be valid for writes and `new` valid for reads; neither may be
/// accessed concurrently from another thread during the call.
pub unsafe fn swap_mask(old: *mut SigSet, new: *const SigSet) {
    counters::sigmask();
    counters::sigmask();
    // SAFETY: valid sigset_t pointers per this function's contract.
    unsafe {
        libc::pthread_sigmask(libc::SIG_SETMASK, std::ptr::null(), &raw mut (*old).0);
        libc::pthread_sigmask(libc::SIG_SETMASK, &raw const (*new).0, std::ptr::null_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_and_swap_count_syscalls() {
        let before = crate::counters::snapshot();
        let mut a = SigSet::current();
        let b = SigSet::current();
        // SAFETY: both sets live on this stack, this thread only.
        unsafe { swap_mask(&raw mut a, &raw const b) };
        let d = crate::counters::snapshot().since(&before);
        assert_eq!(d.sigmask, 4, "2 queries + 1 swap (2 calls)");
    }
}
