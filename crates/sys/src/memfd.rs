//! Anonymous shared-memory objects (`memfd_create`).
//!
//! Memory-aliasing stacks (paper §3.4.3) store each thread's stack in
//! distinct physical pages and map the running thread's pages over one
//! common virtual address. The distinct physical pages are frames of a
//! single `memfd` object; "switching in" thread *i* is one
//! `mmap(MAP_FIXED, fd, i * frame_size)` call.

use crate::error::{SysError, SysResult};
use crate::page::page_size;
use std::os::fd::RawFd;

/// 2 MiB — the hugetlb page size [`MemFd::new_hugetlb`] requests.
pub const HUGE_2MIB: u64 = 2 * 1024 * 1024;

/// An owned anonymous file living entirely in memory.
#[derive(Debug)]
pub struct MemFd {
    fd: RawFd,
    len: u64,
    hugetlb: bool,
}

impl MemFd {
    /// Create a memfd named `name` (debug aid only) of `len` bytes.
    pub fn new(name: &str, len: u64) -> SysResult<MemFd> {
        Self::new_with_flags(name, len, 0, page_size() as u64)
    }

    /// Create a memfd backed by reserved 2 MiB hugetlb pages
    /// (`MFD_HUGETLB | MFD_HUGE_2MB`), falling back to a regular memfd
    /// when the kernel refuses (no hugetlb support, or `len` not a huge
    /// page multiple). Check [`MemFd::is_hugetlb`] for which one you got.
    ///
    /// Callers must gate this on a probe that confirms free reserved
    /// huge pages: hugetlb mappings over an unbacked file SIGBUS on
    /// touch instead of failing cleanly at map time.
    pub fn new_hugetlb(name: &str, len: u64) -> SysResult<MemFd> {
        if len.is_multiple_of(HUGE_2MIB) {
            if let Ok(f) = Self::new_with_flags(
                name,
                len,
                libc::MFD_HUGETLB | libc::MFD_HUGE_2MB,
                HUGE_2MIB,
            ) {
                return Ok(f);
            }
        }
        Self::new(name, len)
    }

    fn new_with_flags(name: &str, len: u64, extra: libc::c_uint, granule: u64) -> SysResult<MemFd> {
        if len == 0 || !len.is_multiple_of(granule) {
            return Err(SysError::logic(
                "memfd_create",
                format!("length {len:#x} must be a positive multiple of {granule:#x}"),
            ));
        }
        let cname = std::ffi::CString::new(name)
            .map_err(|_| SysError::logic("memfd_create", "name contains NUL".into()))?;
        // SAFETY: memfd_create with a valid C string; no memory is shared
        // until the fd is mapped.
        let fd = unsafe { libc::memfd_create(cname.as_ptr(), libc::MFD_CLOEXEC | extra) };
        if fd < 0 {
            return Err(SysError::last("memfd_create"));
        }
        crate::counters::ftruncate();
        // SAFETY: fd is a fresh memfd we own.
        if unsafe { libc::ftruncate(fd, len as libc::off_t) } != 0 {
            let e = SysError::last("ftruncate");
            // SAFETY: closing the fd we just created.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        Ok(MemFd {
            fd,
            len,
            hugetlb: extra & libc::MFD_HUGETLB != 0,
        })
    }

    /// Attach to another (same-user) process's memfd by reopening it
    /// through procfs — the flows-net attach-by-address mode, where a
    /// process that was not spawned by the segment's creator joins its
    /// shared-memory rings. The returned handle owns a fresh fd onto the
    /// same in-memory object; length is taken from the object itself.
    pub fn open_pid_fd(pid: i32, fd: RawFd) -> SysResult<MemFd> {
        use std::os::fd::IntoRawFd;
        let path = format!("/proc/{pid}/fd/{fd}");
        let f = std::fs::File::options()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| {
                SysError::logic("memfd_attach", format!("open {path}: {e}"))
            })?;
        let len = f
            .metadata()
            .map_err(|e| SysError::logic("memfd_attach", format!("fstat {path}: {e}")))?
            .len();
        if len == 0 {
            return Err(SysError::logic(
                "memfd_attach",
                format!("{path} has zero length"),
            ));
        }
        Ok(MemFd {
            fd: f.into_raw_fd(),
            len,
            hugetlb: false,
        })
    }

    /// Whether this object is backed by reserved hugetlb pages.
    pub fn is_hugetlb(&self) -> bool {
        self.hugetlb
    }

    /// The raw file descriptor (owned by this object; do not close).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Size of the object in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the object has zero length (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow the object to `new_len` bytes (must be a page multiple ≥ len).
    pub fn grow(&mut self, new_len: u64) -> SysResult<()> {
        if new_len < self.len || !new_len.is_multiple_of(page_size() as u64) {
            return Err(SysError::logic(
                "ftruncate",
                format!("bad grow {:#x} -> {new_len:#x}", self.len),
            ));
        }
        crate::counters::ftruncate();
        // SAFETY: fd owned by self.
        if unsafe { libc::ftruncate(self.fd, new_len as libc::off_t) } != 0 {
            return Err(SysError::last("ftruncate"));
        }
        self.len = new_len;
        Ok(())
    }

    /// Punch a hole: return the physical pages backing
    /// `[offset, offset+len)` to the kernel; the range reads as zero after.
    pub fn discard(&self, offset: u64, len: u64) -> SysResult<()> {
        crate::counters::fallocate();
        // SAFETY: fallocate PUNCH_HOLE on an fd we own.
        let rc = unsafe {
            libc::fallocate(
                self.fd,
                libc::FALLOC_FL_PUNCH_HOLE | libc::FALLOC_FL_KEEP_SIZE,
                offset as libc::off_t,
                len as libc::off_t,
            )
        };
        if rc != 0 {
            return Err(SysError::last("fallocate"));
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at `offset` without mapping the object.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> SysResult<()> {
        crate::counters::pread();
        // SAFETY: pread into a buffer we borrow, from an fd we own.
        let n = unsafe {
            libc::pread(
                self.fd,
                buf.as_mut_ptr().cast(),
                buf.len(),
                offset as libc::off_t,
            )
        };
        if n != buf.len() as isize {
            return Err(SysError::last("pread"));
        }
        Ok(())
    }

    /// Write `buf` at `offset` without mapping the object.
    pub fn write_at(&self, offset: u64, buf: &[u8]) -> SysResult<()> {
        crate::counters::pwrite();
        // SAFETY: pwrite from a buffer we borrow, to an fd we own.
        let n = unsafe {
            libc::pwrite(
                self.fd,
                buf.as_ptr().cast(),
                buf.len(),
                offset as libc::off_t,
            )
        };
        if n != buf.len() as isize {
            return Err(SysError::last("pwrite"));
        }
        Ok(())
    }
}

impl Drop for MemFd {
    fn drop(&mut self) {
        // SAFETY: closing the fd this handle owns.
        unsafe { libc::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Mapping;

    #[test]
    fn create_and_grow() {
        let p = page_size() as u64;
        let mut f = MemFd::new("flows-test", 4 * p).unwrap();
        assert_eq!(f.len(), 4 * p);
        f.grow(8 * p).unwrap();
        assert_eq!(f.len(), 8 * p);
        assert!(f.grow(4 * p).is_err(), "shrinking must be rejected");
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(MemFd::new("flows-test", 0).is_err());
        assert!(MemFd::new("flows-test", 123).is_err());
        assert!(MemFd::new("bad\0name", page_size() as u64).is_err());
    }

    #[test]
    fn alias_two_windows_share_contents() {
        // The heart of memory-aliasing: two virtual windows, one physical
        // frame.
        let p = page_size();
        let f = MemFd::new("flows-alias", 2 * p as u64).unwrap();
        let m = Mapping::reserve(2 * p).unwrap();
        m.alias_file(0, p, f.fd(), 0).unwrap();
        m.alias_file(p, p, f.fd(), 0).unwrap();
        // SAFETY: both windows just mapped read-write.
        unsafe {
            *m.ptr(0) = 42;
            assert_eq!(*m.ptr(p), 42, "aliased windows must share storage");
        }
        m.unalias(0, 2 * p).unwrap();
    }

    #[test]
    fn switching_frames_switches_contents() {
        // Frame 0 and frame 1 hold different data; remapping the common
        // window flips which data is visible — the aliasing context switch.
        let p = page_size();
        let f = MemFd::new("flows-frames", 2 * p as u64).unwrap();
        let m = Mapping::reserve(p).unwrap();
        m.alias_file(0, p, f.fd(), 0).unwrap();
        // SAFETY: window mapped read-write.
        unsafe { *m.ptr(0) = 1 };
        m.alias_file(0, p, f.fd(), p as u64).unwrap();
        // SAFETY: window remapped to frame 1.
        unsafe {
            assert_eq!(*m.ptr(0), 0);
            *m.ptr(0) = 2;
        }
        m.alias_file(0, p, f.fd(), 0).unwrap();
        // SAFETY: back to frame 0.
        unsafe { assert_eq!(*m.ptr(0), 1) };
    }
}
