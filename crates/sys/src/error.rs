//! Error type for OS-level failures.

use std::fmt;

/// Result alias used throughout `flows-sys`.
pub type SysResult<T> = Result<T, SysError>;

/// An error returned by an operating-system service.
///
/// Wraps the `errno` value together with the operation that failed so that
/// diagnostics from deep inside the memory machinery stay actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysError {
    /// The syscall or logical operation that failed (static description).
    pub op: &'static str,
    /// The raw `errno` value at the time of failure (0 when not applicable).
    pub errno: i32,
    /// Optional extra context (an address, a size, ...).
    pub detail: Option<String>,
}

impl SysError {
    /// Capture the current `errno` for a failed operation `op`.
    pub fn last(op: &'static str) -> Self {
        SysError {
            op,
            errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
            detail: None,
        }
    }

    /// Capture the current `errno` with extra context.
    pub fn last_with(op: &'static str, detail: String) -> Self {
        let mut e = Self::last(op);
        e.detail = Some(detail);
        e
    }

    /// A logical (non-errno) error, e.g. an invariant violation detected
    /// before reaching the kernel.
    pub fn logic(op: &'static str, detail: String) -> Self {
        SysError {
            op,
            errno: 0,
            detail: Some(detail),
        }
    }

    /// The failure as a `std::io::Error` (loses the `op` context).
    pub fn as_io(&self) -> std::io::Error {
        if self.errno != 0 {
            std::io::Error::from_raw_os_error(self.errno)
        } else {
            std::io::Error::other(self.to_string())
        }
    }
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed", self.op)?;
        if self.errno != 0 {
            write!(
                f,
                ": {} (errno {})",
                std::io::Error::from_raw_os_error(self.errno),
                self.errno
            )?;
        }
        if let Some(d) = &self.detail {
            write!(f, " [{d}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for SysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_error_formats_without_errno() {
        let e = SysError::logic("slot_alloc", "out of slots".into());
        let s = e.to_string();
        assert!(s.contains("slot_alloc"));
        assert!(s.contains("out of slots"));
        assert!(!s.contains("errno"));
    }

    #[test]
    fn errno_error_formats_with_code() {
        let e = SysError {
            op: "mmap",
            errno: libc::ENOMEM,
            detail: None,
        };
        assert!(e.to_string().contains("errno 12"));
        assert_eq!(e.as_io().raw_os_error(), Some(libc::ENOMEM));
    }
}
