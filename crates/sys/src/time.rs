//! Timing utilities for the benchmark harnesses.
//!
//! The paper reports context-switch times down to ~16 ns (Fig. 10), so the
//! harness needs both a cheap monotonic nanosecond clock and, on x86-64, the
//! TSC for cycle-level confirmation.

use std::time::Instant;

/// Monotonic nanoseconds since an arbitrary epoch (CLOCK_MONOTONIC).
pub fn monotonic_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: clock_gettime writes into the timespec we provide.
    unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// CPU time consumed by the calling OS thread, in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID). Use this — not wall time — to measure work
/// bursts: wall time silently absorbs preemption by unrelated processes,
/// which corrupts load measurement on busy hosts.
pub fn thread_cpu_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: clock_gettime writes into the timespec we provide.
    unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// The scheduler's per-burst load clock: monotonic nanoseconds via the
/// vDSO — no kernel entry, ~20 ns. A non-preemptive PE owns its OS thread,
/// so wall time between swap-in and swap-out *is* the burst's CPU time in
/// the common case (Charm++'s load database is likewise built on wall
/// timers). `CLOCK_THREAD_CPUTIME_ID` would stay exact under preemption by
/// unrelated processes, but it is a real syscall (~200 ns) and a context
/// switch pays for two of them — several times the switch itself.
#[inline]
pub fn load_clock_ns() -> u64 {
    monotonic_ns()
}

/// Read the time-stamp counter (x86-64). Falls back to `monotonic_ns` on
/// other architectures so callers stay portable.
#[inline]
pub fn cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: rdtsc has no memory effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        monotonic_ns()
    }
}

/// A stopwatch that reports elapsed wall time in seconds / nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed nanoseconds.
    pub fn nanos(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Run `f` repeatedly until it has consumed at least `min_ns` nanoseconds
/// and return `(iterations, elapsed_ns)`. `f` is called with the iteration
/// batch size it should perform. Used by the figure harnesses to get stable
/// per-operation times without criterion's full machinery.
pub fn measure_for(min_ns: u64, mut batch: u64, mut f: impl FnMut(u64)) -> (u64, u64) {
    let mut total_iters = 0u64;
    let t0 = Instant::now();
    loop {
        f(batch);
        total_iters += batch;
        let el = t0.elapsed().as_nanos() as u64;
        if el >= min_ns {
            return (total_iters, el);
        }
        // Grow batches so the loop overhead stays negligible.
        batch = batch.saturating_mul(2).min(1 << 24);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_increases() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.nanos() >= 1_000_000);
        assert!(sw.secs() > 0.0);
    }

    #[test]
    fn measure_for_counts_iterations() {
        let mut calls = 0u64;
        let (iters, ns) = measure_for(1_000_000, 10, |b| {
            calls += b;
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert_eq!(calls, iters);
        assert!(ns >= 1_000_000);
        assert!(iters >= 10);
    }
}
