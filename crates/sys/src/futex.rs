//! Futex wait/wake on 32-bit words, including words in shared memory.
//!
//! The flows-net shared-memory transport parks its per-process doorbell
//! consumers here. The *shared* futex variant is used deliberately (no
//! `FUTEX_PRIVATE_FLAG`): the doorbell word lives in a `memfd` segment
//! mapped by several processes, and a private futex would hash the wait
//! queue per-process, so a producer's wake could never reach a consumer
//! parked in another process.

use crate::error::{SysError, SysResult};
use std::sync::atomic::AtomicU32;
use std::time::Duration;

/// Block until `word` no longer holds `expected`, a wake arrives, or
/// `timeout` elapses. Returns `Ok(true)` when (possibly spuriously)
/// woken or the value already differed, `Ok(false)` on timeout. Callers
/// must re-check their condition either way — futex wakeups carry no
/// payload.
pub fn wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> SysResult<bool> {
    crate::counters::futex_wait();
    let ts = timeout.map(|d| libc::timespec {
        tv_sec: d.as_secs() as libc::time_t,
        tv_nsec: i64::from(d.subsec_nanos()),
    });
    let ts_ptr = ts
        .as_ref()
        .map_or(std::ptr::null(), |t| t as *const libc::timespec);
    // SAFETY: FUTEX_WAIT reads the 4-byte word (valid: it is a borrowed
    // AtomicU32) and the optional timespec pointer is either null or
    // points at a live stack value for the duration of the call.
    let rc = unsafe {
        libc::syscall(
            libc::SYS_futex,
            word.as_ptr(),
            libc::FUTEX_WAIT,
            expected,
            ts_ptr,
        )
    };
    if rc == 0 {
        return Ok(true);
    }
    let err = SysError::last("futex_wait");
    match err.errno {
        // Value already differed from `expected` — the condition the
        // caller waits on may already hold.
        libc::EAGAIN | libc::EINTR => Ok(true),
        libc::ETIMEDOUT => Ok(false),
        _ => Err(err),
    }
}

/// Wake up to `n` waiters parked on `word`. Returns how many were woken.
pub fn wake(word: &AtomicU32, n: u32) -> SysResult<u32> {
    crate::counters::futex_wake();
    // SAFETY: FUTEX_WAKE only uses the word's address as a key; the word
    // is a live borrowed AtomicU32.
    let rc = unsafe { libc::syscall(libc::SYS_futex, word.as_ptr(), libc::FUTEX_WAKE, n) };
    if rc < 0 {
        return Err(SysError::last("futex_wake"));
    }
    Ok(rc as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn wait_returns_immediately_on_changed_value() {
        let w = AtomicU32::new(7);
        // expected 3 != actual 7 -> EAGAIN -> Ok(true) without blocking.
        assert!(wait(&w, 3, Some(Duration::from_secs(5))).unwrap());
    }

    #[test]
    fn wait_times_out() {
        let w = AtomicU32::new(0);
        let t0 = std::time::Instant::now();
        let woken = wait(&w, 0, Some(Duration::from_millis(20))).unwrap();
        assert!(!woken, "nobody woke us");
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn wake_unblocks_waiter_in_another_thread() {
        let w = Arc::new(AtomicU32::new(0));
        let w2 = w.clone();
        let h = std::thread::spawn(move || {
            while w2.load(Ordering::SeqCst) == 0 {
                let _ = wait(&w2, 0, Some(Duration::from_secs(2))).unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        w.store(1, Ordering::SeqCst);
        wake(&w, u32::MAX).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn waits_and_wakes_are_counted() {
        let before = crate::counters::snapshot();
        let w = AtomicU32::new(1);
        let _ = wait(&w, 0, None).unwrap();
        let _ = wake(&w, 1).unwrap();
        let d = crate::counters::snapshot().since(&before);
        assert_eq!(d.futex_wait, 1);
        assert_eq!(d.futex_wake, 1);
    }
}
