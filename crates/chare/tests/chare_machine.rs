//! Machine-level chare tests: entry dispatch, SDAG-driven chares, and
//! chare migration with messages in flight.

use flows_chare::{
    create, init_pe, migrate, register_chare_type, send, send_from_here, Chare, ChareLayer,
    ChareTypeId,
};
use flows_comm::{CommLayer, ObjId};
use flows_converse::{MachineBuilder, NetModel, Pe};
use flows_pup::{from_bytes, pup_fields, to_bytes};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A counter chare: ep 0 adds the payload byte, ep 1 reports its total to
/// a process-global sink (test observability).
#[derive(Default, Debug, Clone, PartialEq)]
struct Counter {
    total: u64,
}
pup_fields!(Counter { total });

type SinkLog = Arc<Mutex<Vec<(usize, u64)>>>;

static SINK: OnceLock<SinkLog> = OnceLock::new();

impl Chare for Counter {
    fn receive(&mut self, pe: &Pe, ep: u32, data: Vec<u8>) {
        match ep {
            0 => self.total += data[0] as u64,
            1 => SINK
                .get()
                .unwrap()
                .lock()
                .unwrap()
                .push((pe.id(), self.total)),
            _ => panic!("unknown ep {ep}"),
        }
    }

    fn pack(&mut self) -> Vec<u8> {
        to_bytes(self)
    }
}

fn counter_factory(bytes: Vec<u8>) -> Box<dyn Chare> {
    Box::new(from_bytes::<Counter>(&bytes).expect("counter state"))
}

fn counter_type() -> ChareTypeId {
    static TY: OnceLock<ChareTypeId> = OnceLock::new();
    *TY.get_or_init(|| register_chare_type(counter_factory))
}

fn machine(pes: usize) -> MachineBuilder {
    SINK.get_or_init(|| Arc::new(Mutex::new(Vec::new())));
    let mut mb = MachineBuilder::new(pes).net_model(NetModel::zero());
    let _ = CommLayer::register(&mut mb);
    let _ = ChareLayer::register(&mut mb);
    mb
}

#[test]
fn entry_methods_dispatch_across_pes() {
    let mut mb = machine(3);
    let ty = counter_type();
    let go = mb.handler(move |pe, _| {
        // Every PE pokes the chare on PE1 three times.
        for v in 1..=3u8 {
            send_from_here(ObjId(100), 0, vec![v]);
        }
        let _ = pe;
    });
    let report = mb.handler(move |_pe, _| send_from_here(ObjId(100), 1, vec![]));
    mb.run_deterministic(move |pe| {
        init_pe(pe);
        if pe.id() == 1 {
            create(pe, ObjId(100), ty, Box::new(Counter::default()));
        }
        pe.send(pe.id(), go, vec![]);
        if pe.id() == 0 {
            // Report after the pokes quiesce-ish; ordering is guaranteed
            // by the deterministic driver only loosely, so send it last
            // from a chain: poke, then report.
            pe.send(0, report, vec![]);
        }
    });
    let sink = SINK.get().unwrap().lock().unwrap();
    let (pe_id, total) = *sink.last().expect("report arrived");
    assert_eq!(pe_id, 1);
    // 3 PEs x (1+2+3) = 18, though the report may have raced some pokes in
    // the deterministic interleaving; it must at least see its own PE's.
    assert!((6..=18).contains(&total), "saw {total}");
    drop(sink);
    SINK.get().unwrap().lock().unwrap().clear();
}

#[test]
fn chare_migration_carries_state_and_messages_follow() {
    let mut mb = machine(2);
    let ty = counter_type();
    let moved = Arc::new(AtomicU64::new(0));
    let m2 = moved.clone();
    let do_move = mb.handler(move |pe, _| {
        migrate(pe, ObjId(7), 1);
        m2.fetch_add(1, Ordering::Relaxed);
        // Messages sent after departure must chase it to PE1.
        send(pe, ObjId(7), 0, vec![5]);
    });
    let report = mb.handler(move |_pe, _| send_from_here(ObjId(7), 1, vec![]));
    mb.run_deterministic(move |pe| {
        init_pe(pe);
        if pe.id() == 0 {
            create(pe, ObjId(7), ty, Box::new(Counter { total: 0 }));
            send(pe, ObjId(7), 0, vec![10]); // delivered locally, pre-move
            pe.send(0, do_move, vec![]);
            pe.send(0, report, vec![]);
        }
    });
    assert_eq!(moved.load(Ordering::Relaxed), 1);
    let sink = SINK.get().unwrap().lock().unwrap();
    let (pe_id, total) = *sink.last().expect("report");
    assert_eq!(pe_id, 1, "chare answered from its new home");
    assert_eq!(total, 15, "pre-move 10 + chased 5");
    drop(sink);
    SINK.get().unwrap().lock().unwrap().clear();
}

/// A chare driven by an SDAG program — the Figure 1 shape on a live
/// machine: two "ghost strip" events per iteration, any order.
struct StencilStrip {
    run: flows_chare::SdagRun<StripState>,
}

#[derive(Default)]
struct StripState {
    iterations_done: u64,
    ghost_sum: u64,
}

impl Chare for StencilStrip {
    fn receive(&mut self, _pe: &Pe, ep: u32, data: Vec<u8>) {
        self.run.deliver(ep, data);
    }
}

#[test]
fn sdag_chare_runs_figure1_lifecycle_on_machine() {
    use flows_chare::{atomic, for_n, overlap, seq, when};
    const ITERS: u64 = 3;

    static DONE: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    let done = DONE.get_or_init(|| Arc::new(AtomicU64::new(0))).clone();

    fn strip_factory(_: Vec<u8>) -> Box<dyn Chare> {
        let done = DONE.get().unwrap().clone();
        let prog = for_n(
            move |_s: &StripState| ITERS,
            seq(vec![
                overlap(vec![
                    when(0, |s: &mut StripState, m: Vec<u8>| {
                        s.ghost_sum += m[0] as u64
                    }),
                    when(1, |s: &mut StripState, m: Vec<u8>| {
                        s.ghost_sum += m[0] as u64
                    }),
                ]),
                atomic(move |s: &mut StripState| {
                    s.iterations_done += 1;
                }),
            ]),
        );
        let _ = &done;
        Box::new(StencilStrip {
            run: flows_chare::SdagRun::new(&prog, StripState::default()),
        })
    }
    let ty = register_chare_type(strip_factory);

    let mut mb = machine(2);
    let done2 = done.clone();
    let check = mb.handler(move |_pe, _| {
        done2.fetch_add(1, Ordering::Relaxed);
    });
    mb.run_deterministic(move |pe| {
        init_pe(pe);
        if pe.id() == 0 {
            create(pe, ObjId(50), ty, strip_factory(Vec::new()));
        }
        if pe.id() == 1 {
            // Feed 3 iterations of ghosts, right-then-left each time.
            for i in 0..ITERS {
                send_from_here(ObjId(50), 1, vec![(2 * i + 1) as u8]);
                send_from_here(ObjId(50), 0, vec![(2 * i + 2) as u8]);
            }
            pe.send(0, check, vec![]);
        }
    });
    assert_eq!(done.load(Ordering::Relaxed), 1);
}
