//! Property tests: the SDAG FSM is insensitive to event arrival order
//! within an `overlap` and never loses or duplicates messages.

use flows_chare::{atomic, for_n, overlap, seq, when, Node, SdagRun};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[derive(Default, Debug, Clone, PartialEq)]
struct St {
    per_event: [u64; 4],
    works: u64,
}

fn figure1_prog(iters: u64, events: usize) -> Node<St> {
    for_n(
        move |_| iters,
        seq(vec![
            overlap(
                (0..events as u32)
                    .map(|e| {
                        when(e, move |s: &mut St, m: Vec<u8>| {
                            s.per_event[e as usize] += m[0] as u64
                        })
                    })
                    .collect(),
            ),
            atomic(|s: &mut St| s.works += 1),
        ]),
    )
}

proptest! {
    #[test]
    fn any_interleaving_reaches_same_state(
        iters in 1u64..5,
        events in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Build the full schedule: each iteration needs one message per
        // event. Shuffle *within* each iteration (SDAG requires iteration
        // k's messages before k+1's only in the sense that `when`s consume
        // FIFO per event — same-event messages keep their order).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut run = SdagRun::new(&figure1_prog(iters, events), St::default());
        for it in 0..iters {
            let mut batch: Vec<u32> = (0..events as u32).collect();
            batch.shuffle(&mut rng);
            for e in batch {
                run.deliver(e, vec![(it + 1) as u8]);
            }
        }
        prop_assert!(run.is_done());
        prop_assert_eq!(run.state().works, iters);
        let expect: u64 = (1..=iters).sum();
        for e in 0..events {
            prop_assert_eq!(run.state().per_event[e], expect);
        }
        prop_assert_eq!(run.buffered(), 0, "no lost/duplicated messages");
    }

    #[test]
    fn early_flood_then_drain(extra in 0usize..10) {
        // Deliver everything up front, including for future iterations —
        // the FSM must buffer and consume in program order.
        let iters = 3u64;
        let mut run = SdagRun::new(&figure1_prog(iters, 2), St::default());
        for _ in 0..iters {
            run.deliver(0, vec![1]);
        }
        for _ in 0..iters {
            run.deliver(1, vec![1]);
        }
        prop_assert!(run.is_done());
        prop_assert_eq!(run.state().works, iters);
        // Excess messages just sit in the buffer harmlessly.
        let mut run2 = SdagRun::new(&figure1_prog(1, 1), St::default());
        for _ in 0..1 + extra {
            run2.deliver(0, vec![1]);
        }
        prop_assert!(run2.is_done());
        prop_assert_eq!(run2.buffered(), extra);
    }
}
