//! Event-driven objects ("chares", paper §2.4 and §3.2).
//!
//! A chare is a location-independent object with numbered entry methods.
//! Messages are routed to wherever the chare currently lives via
//! `flows-comm`; migration (the "simplest kind" per §3.2) packs the
//! object's application state with PUP and re-creates it from a registered
//! factory on the destination PE.

use flows_comm::{ObjId, Port};
use flows_converse::{MachineBuilder, Message, Payload, Pe};
use flows_pup::pup_fields;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};

/// The comm-layer port chare traffic travels on.
pub const PORT_CHARE: Port = 0;

/// An event-driven object.
pub trait Chare: 'static {
    /// Entry-method dispatch: `ep` selects the method, `data` its payload.
    fn receive(&mut self, pe: &Pe, ep: u32, data: Vec<u8>);

    /// Serialize application state for migration (paired with the factory
    /// given to [`register_chare_type`]).
    fn pack(&mut self) -> Vec<u8> {
        Vec::new()
    }
}

/// Re-creates a chare from its packed state on the destination PE.
pub type ChareFactory = fn(Vec<u8>) -> Box<dyn Chare>;

/// Identifies a registered chare type across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChareTypeId(u32);

static FACTORIES: Mutex<Vec<ChareFactory>> = Mutex::new(Vec::new());

/// Register a chare type's reconstruction factory (process-wide; do this
/// before machines run, symmetrically everywhere, like Charm++'s
/// registration phase).
pub fn register_chare_type(factory: ChareFactory) -> ChareTypeId {
    let mut f = FACTORIES.lock().unwrap();
    f.push(factory);
    ChareTypeId((f.len() - 1) as u32)
}

#[derive(Debug, Default, Clone, PartialEq)]
struct EpMsg {
    ep: u32,
    data: Vec<u8>,
}
pup_fields!(EpMsg { ep, data });

#[derive(Debug, Default, Clone, PartialEq)]
struct MoveMsg {
    obj: ObjId,
    type_id: u32,
    state: Vec<u8>,
}
pup_fields!(MoveMsg {
    obj,
    type_id,
    state
});

type ChareRef = Rc<RefCell<Box<dyn Chare>>>;

#[derive(Default)]
struct ChareState {
    chares: HashMap<ObjId, (u32, ChareRef)>,
}

static MOVE_HANDLER: OnceLock<flows_converse::HandlerId> = OnceLock::new();

/// The chare layer; register after [`flows_comm::CommLayer`].
#[derive(Debug, Clone, Copy)]
pub struct ChareLayer;

impl ChareLayer {
    /// Register the chare-migration handler on the machine builder.
    pub fn register(mb: &mut MachineBuilder) -> ChareLayer {
        let id = mb.handler(on_move);
        let stored = *MOVE_HANDLER.get_or_init(|| id);
        assert_eq!(stored, id, "ChareLayer must occupy the same handler slot in every machine");
        ChareLayer
    }
}

/// Install chare delivery on this PE (once, from the machine's init).
pub fn init_pe(pe: &Pe) {
    flows_comm::set_delivery(pe, PORT_CHARE, deliver);
}

fn deliver(pe: &Pe, obj: ObjId, payload: Payload) {
    let m: EpMsg = flows_pup::from_bytes(&payload).expect("chare wire");
    let chare = pe.ext::<ChareState, _>(|st| {
        st.chares
            .get(&obj)
            .unwrap_or_else(|| panic!("message for unknown chare {obj:?} on PE {}", pe.id()))
            .1
            .clone()
    });
    // The Rc keeps the chare alive even if it migrates *itself* inside the
    // entry method; borrow ends before any further dispatch.
    chare.borrow_mut().receive(pe, m.ep, m.data);
}

fn on_move(pe: &Pe, msg: Message) {
    let m: MoveMsg = flows_pup::from_bytes(&msg.data).expect("move wire");
    let factory = {
        let f = FACTORIES.lock().unwrap();
        *f.get(m.type_id as usize)
            .unwrap_or_else(|| panic!("unregistered chare type {}", m.type_id))
    };
    let chare = factory(m.state);
    pe.ext::<ChareState, _>(|st| {
        st.chares
            .insert(m.obj, (m.type_id, Rc::new(RefCell::new(chare))))
    });
    flows_comm::migrate_obj_in(pe, m.obj);
}

/// Create a chare of `type_id` as object `obj` on this PE.
pub fn create(pe: &Pe, obj: ObjId, type_id: ChareTypeId, chare: Box<dyn Chare>) {
    pe.ext::<ChareState, _>(|st| {
        let prev = st
            .chares
            .insert(obj, (type_id.0, Rc::new(RefCell::new(chare))));
        assert!(prev.is_none(), "chare {obj:?} already exists on this PE");
    });
    flows_comm::register_obj(pe, obj);
}

/// Invoke entry method `ep` of chare `obj` with `data`, wherever it lives.
pub fn send(pe: &Pe, obj: ObjId, ep: u32, data: Vec<u8>) {
    let mut m = EpMsg { ep, data };
    flows_comm::route(pe, obj, PORT_CHARE, pe.pack_payload(&mut m));
}

/// Convenience: send using the ambient PE (handlers, threads).
pub fn send_from_here(obj: ObjId, ep: u32, data: Vec<u8>) {
    flows_converse::with_pe(|pe| send(pe, obj, ep, data));
}

/// Migrate chare `obj` from this PE to `dest`: pack its state, update the
/// location layer, ship it. Event-driven object migration is "the simplest
/// kind" (§3.2): data structures plus the name of the next event.
pub fn migrate(pe: &Pe, obj: ObjId, dest: usize) {
    assert_ne!(dest, pe.id(), "migrating to self is a no-op");
    let (type_id, chare) = pe.ext::<ChareState, _>(|st| {
        st.chares
            .remove(&obj)
            .unwrap_or_else(|| panic!("cannot migrate unknown chare {obj:?}"))
    });
    let state = chare.borrow_mut().pack();
    flows_comm::migrate_obj_out(pe, obj, dest);
    let mut m = MoveMsg {
        obj,
        type_id,
        state,
    };
    pe.send(
        dest,
        *MOVE_HANDLER.get().expect("ChareLayer::register first"),
        pe.pack_payload(&mut m),
    );
}

/// Number of chares resident on this PE.
pub fn local_count(pe: &Pe) -> usize {
    pe.ext::<ChareState, _>(|st| st.chares.len())
}
