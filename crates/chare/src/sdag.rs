//! Structured Dagger (SDAG): a coordination language for event-driven
//! objects (paper §2.4.2, ref [22], Figure 1).
//!
//! SDAG expresses an object's *life cycle* — "alternate receiving these two
//! messages, k times" — which a flat event-driven style obscures. Programs
//! are built from five combinators and compiled (here: interpreted) as an
//! efficient finite-state machine that buffers early messages and resumes
//! exactly where the control flow is waiting:
//!
//! * [`atomic`] — run sequential code (the paper's `atomic { ... }`);
//! * [`seq`] — run children in order;
//! * [`for_n`] — counted loop, the `for` construct;
//! * [`when`] / [`when_then`] — wait for a tagged message, bind its
//!   payload, optionally run a body;
//! * [`overlap`] — children complete in *any* order.
//!
//! The paper's Figure 1 stencil life cycle is expressed as:
//!
//! ```
//! use flows_chare::sdag::*;
//! #[derive(Default)]
//! struct Strip { iter: u64, left: Vec<u8>, right: Vec<u8>, work: u64 }
//! const LEFT: Event = 0;
//! const RIGHT: Event = 1;
//!
//! let program: Node<Strip> = for_n(
//!     |_s| 10, // MAX_ITER
//!     seq(vec![
//!         atomic(|s: &mut Strip| { /* sendStripToLeftAndRight() */ s.iter += 1; }),
//!         overlap(vec![
//!             when(LEFT, |s: &mut Strip, m| s.left = m),
//!             when(RIGHT, |s: &mut Strip, m| s.right = m),
//!         ]),
//!         atomic(|s: &mut Strip| s.work += 1 /* doWork() */),
//!     ]),
//! );
//! let mut run = SdagRun::new(&program, Strip::default());
//! for _ in 0..10 {
//!     run.deliver(RIGHT, vec![2]); // either order works
//!     run.deliver(LEFT, vec![1]);
//! }
//! assert!(run.is_done());
//! assert_eq!(run.state().work, 10);
//! ```

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Message tag an SDAG `when` waits for.
pub type Event = u32;

type AtomicFn<S> = Rc<dyn Fn(&mut S)>;
type BindFn<S> = Rc<dyn Fn(&mut S, Vec<u8>)>;
type TimesFn<S> = Rc<dyn Fn(&S) -> u64>;
type CondFn<S> = Rc<dyn Fn(&S) -> bool>;

/// A node of an SDAG program. Cheap to clone (all contents are shared).
pub struct Node<S>(NodeKind<S>);

enum NodeKind<S> {
    Atomic(AtomicFn<S>),
    Seq(Rc<Vec<Node<S>>>),
    For {
        times: TimesFn<S>,
        body: Rc<Node<S>>,
    },
    When {
        event: Event,
        bind: BindFn<S>,
        body: Rc<Node<S>>,
    },
    Overlap(Rc<Vec<Node<S>>>),
    While {
        cond: CondFn<S>,
        body: Rc<Node<S>>,
    },
    If {
        cond: CondFn<S>,
        then: Rc<Node<S>>,
        otherwise: Rc<Node<S>>,
    },
}

impl<S> Clone for Node<S> {
    fn clone(&self) -> Self {
        Node(match &self.0 {
            NodeKind::Atomic(f) => NodeKind::Atomic(f.clone()),
            NodeKind::Seq(v) => NodeKind::Seq(v.clone()),
            NodeKind::For { times, body } => NodeKind::For {
                times: times.clone(),
                body: body.clone(),
            },
            NodeKind::When { event, bind, body } => NodeKind::When {
                event: *event,
                bind: bind.clone(),
                body: body.clone(),
            },
            NodeKind::Overlap(v) => NodeKind::Overlap(v.clone()),
            NodeKind::While { cond, body } => NodeKind::While {
                cond: cond.clone(),
                body: body.clone(),
            },
            NodeKind::If {
                cond,
                then,
                otherwise,
            } => NodeKind::If {
                cond: cond.clone(),
                then: then.clone(),
                otherwise: otherwise.clone(),
            },
        })
    }
}

/// Sequential code (the `atomic { ... }` construct).
pub fn atomic<S>(f: impl Fn(&mut S) + 'static) -> Node<S> {
    Node(NodeKind::Atomic(Rc::new(f)))
}

/// Children in order.
pub fn seq<S>(children: Vec<Node<S>>) -> Node<S> {
    Node(NodeKind::Seq(Rc::new(children)))
}

/// Do nothing.
pub fn nop<S>() -> Node<S> {
    Node(NodeKind::Seq(Rc::new(Vec::new())))
}

/// Counted loop; the count is evaluated against the state at loop entry.
pub fn for_n<S>(times: impl Fn(&S) -> u64 + 'static, body: Node<S>) -> Node<S> {
    Node(NodeKind::For {
        times: Rc::new(times),
        body: Rc::new(body),
    })
}

/// Wait for `event`; `bind` receives the payload.
pub fn when<S>(event: Event, bind: impl Fn(&mut S, Vec<u8>) + 'static) -> Node<S> {
    when_then(event, bind, nop())
}

/// Wait for `event`, bind the payload, then run `body`.
pub fn when_then<S>(
    event: Event,
    bind: impl Fn(&mut S, Vec<u8>) + 'static,
    body: Node<S>,
) -> Node<S> {
    Node(NodeKind::When {
        event,
        bind: Rc::new(bind),
        body: Rc::new(body),
    })
}

/// Children complete in any order (the `overlap { ... }` construct).
pub fn overlap<S>(children: Vec<Node<S>>) -> Node<S> {
    Node(NodeKind::Overlap(Rc::new(children)))
}

/// Repeat `body` while `cond(state)` holds (evaluated before each pass) —
/// SDAG's `while` construct.
pub fn while_cond<S>(cond: impl Fn(&S) -> bool + 'static, body: Node<S>) -> Node<S> {
    Node(NodeKind::While {
        cond: Rc::new(cond),
        body: Rc::new(body),
    })
}

/// Run `then` or `otherwise` depending on `cond(state)` at entry —
/// SDAG's `if/else` construct.
pub fn if_else<S>(
    cond: impl Fn(&S) -> bool + 'static,
    then: Node<S>,
    otherwise: Node<S>,
) -> Node<S> {
    Node(NodeKind::If {
        cond: Rc::new(cond),
        then: Rc::new(then),
        otherwise: Rc::new(otherwise),
    })
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

type Inbox = HashMap<Event, VecDeque<Vec<u8>>>;

enum Task<S> {
    Atomic(AtomicFn<S>),
    Seq {
        items: Rc<Vec<Node<S>>>,
        idx: usize,
        current: Option<Box<Task<S>>>,
    },
    For {
        times: TimesFn<S>,
        body: Rc<Node<S>>,
        total: Option<u64>,
        iter: u64,
        current: Option<Box<Task<S>>>,
    },
    When {
        event: Event,
        bind: BindFn<S>,
        body: Rc<Node<S>>,
        fired: Option<Box<Task<S>>>,
    },
    Overlap {
        children: Vec<Option<Task<S>>>,
    },
    While {
        cond: CondFn<S>,
        body: Rc<Node<S>>,
        current: Option<Box<Task<S>>>,
    },
    If {
        cond: CondFn<S>,
        then: Rc<Node<S>>,
        otherwise: Rc<Node<S>>,
        current: Option<Box<Task<S>>>,
        decided: bool,
    },
}

fn task_of<S>(node: &Node<S>) -> Task<S> {
    match &node.0 {
        NodeKind::Atomic(f) => Task::Atomic(f.clone()),
        NodeKind::Seq(items) => Task::Seq {
            items: items.clone(),
            idx: 0,
            current: None,
        },
        NodeKind::For { times, body } => Task::For {
            times: times.clone(),
            body: body.clone(),
            total: None,
            iter: 0,
            current: None,
        },
        NodeKind::When { event, bind, body } => Task::When {
            event: *event,
            bind: bind.clone(),
            body: body.clone(),
            fired: None,
        },
        NodeKind::Overlap(items) => Task::Overlap {
            children: items.iter().map(|n| Some(task_of(n))).collect(),
        },
        NodeKind::While { cond, body } => Task::While {
            cond: cond.clone(),
            body: body.clone(),
            current: None,
        },
        NodeKind::If {
            cond,
            then,
            otherwise,
        } => Task::If {
            cond: cond.clone(),
            then: then.clone(),
            otherwise: otherwise.clone(),
            current: None,
            decided: false,
        },
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Poll {
    Done,
    /// Blocked on events; `true` if any progress was made this poll.
    Blocked(bool),
}

impl<S> Task<S> {
    fn poll(&mut self, st: &mut S, inbox: &mut Inbox) -> Poll {
        match self {
            Task::Atomic(f) => {
                f(st);
                Poll::Done
            }
            Task::Seq {
                items,
                idx,
                current,
            } => {
                let mut progressed = false;
                loop {
                    if current.is_none() {
                        if *idx >= items.len() {
                            return Poll::Done;
                        }
                        *current = Some(Box::new(task_of(&items[*idx])));
                    }
                    match current.as_mut().expect("just set").poll(st, inbox) {
                        Poll::Done => {
                            progressed = true;
                            *current = None;
                            *idx += 1;
                        }
                        Poll::Blocked(p) => return Poll::Blocked(progressed || p),
                    }
                }
            }
            Task::For {
                times,
                body,
                total,
                iter,
                current,
            } => {
                let total = *total.get_or_insert_with(|| times(st));
                let mut progressed = false;
                loop {
                    if *iter >= total {
                        return Poll::Done;
                    }
                    if current.is_none() {
                        *current = Some(Box::new(task_of(body)));
                    }
                    match current.as_mut().expect("just set").poll(st, inbox) {
                        Poll::Done => {
                            progressed = true;
                            *current = None;
                            *iter += 1;
                        }
                        Poll::Blocked(p) => return Poll::Blocked(progressed || p),
                    }
                }
            }
            Task::When {
                event,
                bind,
                body,
                fired,
            } => {
                let mut progressed = false;
                if fired.is_none() {
                    let payload = inbox.get_mut(event).and_then(|q| q.pop_front());
                    match payload {
                        Some(p) => {
                            bind(st, p);
                            *fired = Some(Box::new(task_of(body)));
                            progressed = true;
                        }
                        None => return Poll::Blocked(false),
                    }
                }
                match fired.as_mut().expect("fired").poll(st, inbox) {
                    Poll::Done => Poll::Done,
                    Poll::Blocked(p) => Poll::Blocked(progressed || p),
                }
            }
            Task::Overlap { children } => {
                let mut progressed = false;
                let mut all_done = true;
                for slot in children.iter_mut() {
                    if let Some(task) = slot {
                        match task.poll(st, inbox) {
                            Poll::Done => {
                                *slot = None;
                                progressed = true;
                            }
                            Poll::Blocked(p) => {
                                progressed |= p;
                                all_done = false;
                            }
                        }
                    }
                }
                if all_done {
                    Poll::Done
                } else {
                    Poll::Blocked(progressed)
                }
            }
            Task::While {
                cond,
                body,
                current,
            } => {
                let mut progressed = false;
                loop {
                    if current.is_none() {
                        if !cond(st) {
                            return Poll::Done;
                        }
                        *current = Some(Box::new(task_of(body)));
                    }
                    match current.as_mut().expect("just set").poll(st, inbox) {
                        Poll::Done => {
                            progressed = true;
                            *current = None;
                        }
                        Poll::Blocked(p) => return Poll::Blocked(progressed || p),
                    }
                }
            }
            Task::If {
                cond,
                then,
                otherwise,
                current,
                decided,
            } => {
                if !*decided {
                    *decided = true;
                    *current = Some(Box::new(task_of(if cond(st) {
                        then
                    } else {
                        otherwise
                    })));
                }
                current.as_mut().expect("decided").poll(st, inbox)
            }
        }
    }
}

/// A running SDAG program over state `S`: feed it events, it advances the
/// control flow and buffers anything that arrives early.
pub struct SdagRun<S> {
    root: Option<Task<S>>,
    state: S,
    inbox: Inbox,
}

impl<S> SdagRun<S> {
    /// Start the program; runs until it first blocks (or completes).
    pub fn new(program: &Node<S>, state: S) -> SdagRun<S> {
        let mut run = SdagRun {
            root: Some(task_of(program)),
            state,
            inbox: HashMap::new(),
        };
        run.advance();
        run
    }

    fn advance(&mut self) {
        if let Some(root) = self.root.as_mut() {
            loop {
                match root.poll(&mut self.state, &mut self.inbox) {
                    Poll::Done => {
                        self.root = None;
                        break;
                    }
                    Poll::Blocked(true) => continue,
                    Poll::Blocked(false) => break,
                }
            }
        }
    }

    /// Deliver a message; the program consumes it now or buffers it for a
    /// future `when`. Returns [`SdagRun::is_done`] afterwards.
    pub fn deliver(&mut self, event: Event, payload: Vec<u8>) -> bool {
        self.inbox.entry(event).or_default().push_back(payload);
        self.advance();
        self.is_done()
    }

    /// Has the whole program completed?
    pub fn is_done(&self) -> bool {
        self.root.is_none()
    }

    /// Messages delivered but not yet consumed by any `when`.
    pub fn buffered(&self) -> usize {
        self.inbox.values().map(|q| q.len()).sum()
    }

    /// The program state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the program state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consume the run, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_of_atomics_runs_immediately() {
        let prog: Node<Vec<u32>> = seq(vec![
            atomic(|s: &mut Vec<u32>| s.push(1)),
            atomic(|s: &mut Vec<u32>| s.push(2)),
            atomic(|s: &mut Vec<u32>| s.push(3)),
        ]);
        let run = SdagRun::new(&prog, Vec::new());
        assert!(run.is_done());
        assert_eq!(run.state(), &vec![1, 2, 3]);
    }

    #[test]
    fn when_blocks_until_delivery() {
        let prog: Node<u64> = seq(vec![
            atomic(|s: &mut u64| *s += 1),
            when(7, |s: &mut u64, m| *s += m[0] as u64),
            atomic(|s: &mut u64| *s *= 10),
        ]);
        let mut run = SdagRun::new(&prog, 0);
        assert!(!run.is_done());
        assert_eq!(*run.state(), 1, "only the first atomic ran");
        assert!(run.deliver(7, vec![4]));
        assert_eq!(*run.state(), 50, "(1+4)*10");
    }

    #[test]
    fn early_messages_are_buffered() {
        let prog: Node<Vec<u8>> = seq(vec![
            when(1, |s: &mut Vec<u8>, m| s.extend(m)),
            when(2, |s: &mut Vec<u8>, m| s.extend(m)),
        ]);
        let mut run = SdagRun::new(&prog, Vec::new());
        // Event 2 arrives first: buffered, not consumed.
        assert!(!run.deliver(2, vec![20]));
        assert_eq!(run.buffered(), 1);
        assert!(run.deliver(1, vec![10]));
        assert_eq!(run.state(), &vec![10, 20], "program order, not arrival order");
    }

    #[test]
    fn overlap_accepts_any_order() {
        for order in [[0u32, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let prog: Node<Vec<u32>> = seq(vec![
                overlap(vec![
                    when(0, |s: &mut Vec<u32>, _| s.push(0)),
                    when(1, |s: &mut Vec<u32>, _| s.push(1)),
                    when(2, |s: &mut Vec<u32>, _| s.push(2)),
                ]),
                atomic(|s: &mut Vec<u32>| s.push(99)),
            ]);
            let mut run = SdagRun::new(&prog, Vec::new());
            for e in order {
                run.deliver(e, vec![]);
            }
            assert!(run.is_done());
            let st = run.state();
            assert_eq!(st.len(), 4);
            assert_eq!(*st.last().unwrap(), 99, "continuation after all whens");
            assert_eq!(st[..3].to_vec(), order.to_vec(), "whens fire in arrival order");
        }
    }

    #[test]
    fn for_loop_repeats_body() {
        #[derive(Default)]
        struct St {
            rounds: u64,
            got: Vec<u8>,
        }
        let prog: Node<St> = for_n(
            |_| 3,
            seq(vec![
                when(5, |s: &mut St, m| s.got.extend(m)),
                atomic(|s: &mut St| s.rounds += 1),
            ]),
        );
        let mut run = SdagRun::new(&prog, St::default());
        for i in 0..3u8 {
            assert!(!run.is_done());
            run.deliver(5, vec![i]);
        }
        assert!(run.is_done());
        assert_eq!(run.state().rounds, 3);
        assert_eq!(run.state().got, vec![0, 1, 2]);
    }

    #[test]
    fn loop_count_reads_state_at_entry() {
        let prog: Node<(u64, u64)> = seq(vec![
            atomic(|s: &mut (u64, u64)| s.0 = 4), // set count
            for_n(|s: &(u64, u64)| s.0, atomic(|s: &mut (u64, u64)| s.1 += 1)),
        ]);
        let run = SdagRun::new(&prog, (0, 0));
        assert!(run.is_done());
        assert_eq!(run.state().1, 4);
    }

    #[test]
    fn figure1_stencil_lifecycle() {
        // The paper's Figure 1, with 2 iterations and payload checking.
        #[derive(Default)]
        struct Strip {
            sends: u64,
            lefts: Vec<u8>,
            rights: Vec<u8>,
            works: u64,
        }
        const LEFT: Event = 10;
        const RIGHT: Event = 11;
        let prog: Node<Strip> = for_n(
            |_| 2,
            seq(vec![
                atomic(|s: &mut Strip| s.sends += 1),
                overlap(vec![
                    when(LEFT, |s: &mut Strip, m| s.lefts.extend(m)),
                    when(RIGHT, |s: &mut Strip, m| s.rights.extend(m)),
                ]),
                atomic(|s: &mut Strip| s.works += 1),
            ]),
        );
        let mut run = SdagRun::new(&prog, Strip::default());
        assert_eq!(run.state().sends, 1, "first send fired eagerly");
        // Iteration 1: right then left.
        run.deliver(RIGHT, vec![1]);
        assert_eq!(run.state().works, 0, "still waiting for left");
        run.deliver(LEFT, vec![2]);
        assert_eq!(run.state().works, 1);
        assert_eq!(run.state().sends, 2, "second iteration's send fired");
        // Iteration 2: left then right, and the RIGHT arrives early for...
        // no, deliver in order this time.
        run.deliver(LEFT, vec![3]);
        run.deliver(RIGHT, vec![4]);
        assert!(run.is_done());
        assert_eq!(run.state().works, 2);
        assert_eq!(run.state().lefts, vec![2, 3]);
        assert_eq!(run.state().rights, vec![1, 4]);
    }

    #[test]
    fn nested_overlap_and_loops() {
        let prog: Node<u64> = overlap(vec![
            for_n(|_| 2, when(0, |s: &mut u64, _| *s += 1)),
            for_n(|_| 2, when(1, |s: &mut u64, _| *s += 100)),
        ]);
        let mut run = SdagRun::new(&prog, 0);
        run.deliver(1, vec![]);
        run.deliver(0, vec![]);
        run.deliver(1, vec![]);
        assert!(!run.is_done(), "one more event 0 needed");
        run.deliver(0, vec![]);
        assert!(run.is_done());
        assert_eq!(*run.state(), 202);
    }

    #[test]
    fn zero_iteration_loop_is_done_immediately() {
        let prog: Node<u64> = for_n(|_| 0, when(0, |_: &mut u64, _| {}));
        let run = SdagRun::new(&prog, 0);
        assert!(run.is_done());
    }
}

#[cfg(test)]
mod control_flow_tests {
    use super::*;

    #[test]
    fn while_loop_reads_live_state() {
        // Keep consuming event 0 until the accumulated total passes 10 —
        // the data-dependent loop `for_n` cannot express.
        let prog: Node<u64> = while_cond(
            |s: &u64| *s < 10,
            when(0, |s: &mut u64, m: Vec<u8>| *s += m[0] as u64),
        );
        let mut run = SdagRun::new(&prog, 0);
        for v in [3u8, 3, 3] {
            assert!(!run.is_done());
            run.deliver(0, vec![v]);
        }
        assert!(!run.is_done(), "9 < 10: still looping");
        run.deliver(0, vec![4]);
        assert!(run.is_done());
        assert_eq!(*run.state(), 13);
    }

    #[test]
    fn while_false_at_entry_skips_body() {
        let prog: Node<u64> = while_cond(|_s: &u64| false, when(0, |_: &mut u64, _| {}));
        let run = SdagRun::new(&prog, 5);
        assert!(run.is_done());
    }

    #[test]
    fn if_else_branches_on_state() {
        let prog = |threshold: u64| -> Node<(u64, &'static str)> {
            seq(vec![
                atomic(move |s: &mut (u64, &'static str)| s.0 = threshold),
                if_else(
                    |s: &(u64, &'static str)| s.0 > 5,
                    atomic(|s: &mut (u64, &'static str)| s.1 = "big"),
                    seq(vec![
                        when(1, |s: &mut (u64, &'static str), _| s.1 = "small-waited"),
                    ]),
                ),
            ])
        };
        let run = SdagRun::new(&prog(9), (0, ""));
        assert!(run.is_done());
        assert_eq!(run.state().1, "big");
        // The else-branch can block on events like any other node.
        let mut run = SdagRun::new(&prog(2), (0, ""));
        assert!(!run.is_done());
        run.deliver(1, vec![]);
        assert!(run.is_done());
        assert_eq!(run.state().1, "small-waited");
    }

    #[test]
    fn nested_while_in_for() {
        // Each of 2 rounds drains events until a sentinel (value 0).
        #[derive(Default)]
        struct St {
            draining: bool,
            drained: u64,
            rounds: u64,
        }
        let prog: Node<St> = for_n(
            |_| 2,
            seq(vec![
                atomic(|s: &mut St| s.draining = true),
                while_cond(
                    |s: &St| s.draining,
                    when(0, |s: &mut St, m: Vec<u8>| {
                        if m[0] == 0 {
                            s.draining = false;
                        } else {
                            s.drained += m[0] as u64;
                        }
                    }),
                ),
                atomic(|s: &mut St| s.rounds += 1),
            ]),
        );
        let mut run = SdagRun::new(&prog, St::default());
        for v in [5u8, 7, 0, 2, 0] {
            run.deliver(0, vec![v]);
        }
        assert!(run.is_done());
        assert_eq!(run.state().rounds, 2);
        assert_eq!(run.state().drained, 14);
    }
}
