//! Return-switch functions (paper §2.4.1).
//!
//! The oldest way to fake suspend/resume without threads: when the
//! function needs to block it *returns*, saving a label; when resumed it
//! switches on the label and jumps back to where it left off — Duff's
//! device dressed up in macros (the paper cites Tatham's C coroutines
//! [37]). The [`retswitch!`] macro makes the "save, return, resume from
//! label" bookkeeping explicit but compact.
//!
//! The paper's verdict — *"this technique can still be confusing,
//! error-prone and tough to debug"* — is reproduced faithfully: compare
//! the stencil below with the same life cycle in [`crate::sdag`], where
//! the control flow reads top-to-bottom. This module exists so the
//! comparison is concrete, and because the mechanism is still the right
//! tool for tiny protocol steppers.
//!
//! ```
//! use flows_chare::retswitch;
//!
//! retswitch! {
//!     /// Alternates doubling and incrementing across resumes.
//!     pub machine Zigzag(st: u64, input: u64) -> u64 {
//!         0 => { let v = *st + input; *st = v; (1, Some(v)) }
//!         1 => { let v = *st * 2;     *st = v; (0, Some(v)) }
//!     }
//! }
//!
//! let mut m = Zigzag::new(1);
//! assert_eq!(m.resume(10), Some(11)); // label 0: add
//! assert_eq!(m.resume(0), Some(22));  // label 1: double
//! assert_eq!(m.resume(5), Some(27));  // back at label 0
//! ```

/// What a return-switch machine did on one resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsStep<O> {
    /// The machine suspended again, emitting a value.
    Yielded(O),
    /// The machine finished.
    Done,
}

/// Define a return-switch machine: a struct holding a program counter and
/// user state, whose `resume(input)` switches on the saved label. Each
/// arm's body must evaluate to `(next_label, Option<output>)`; jumping to
/// a label with no arm (conventionally [`u32::MAX`]) finishes the machine.
///
/// Inside an arm, the state binding is a `&mut` to the machine's state.
#[macro_export]
macro_rules! retswitch {
    (
        $(#[$meta:meta])*
        $vis:vis machine $name:ident($state:ident : $sty:ty, $input:ident : $ity:ty) -> $oty:ty {
            $( $label:literal => $body:block )*
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            pc: u32,
            /// The machine's persistent state (the paper's "manually
            /// stored and restored" part).
            $vis state: $sty,
        }

        impl $name {
            /// Start at label 0 with the given state.
            $vis fn new(state: $sty) -> Self {
                Self { pc: 0, state }
            }

            /// Has the machine run off the end of its labels?
            #[allow(dead_code)]
            $vis fn is_done(&self) -> bool {
                !matches!(self.pc, $( $label )|*)
            }

            /// The label the machine will resume at.
            #[allow(dead_code)]
            $vis fn label(&self) -> u32 {
                self.pc
            }

            /// Resume at the saved label. Returns `None` once finished.
            #[allow(unreachable_patterns)]
            $vis fn resume(&mut self, $input: $ity) -> Option<$oty> {
                let $state = &mut self.state;
                let (next, out): (u32, Option<$oty>) = match self.pc {
                    $( $label => $body, )*
                    _ => return None,
                };
                self.pc = next;
                out
            }
        }
    };
}

#[cfg(test)]
mod tests {
    // The paper's Figure 1 stencil life cycle, hand-compiled to
    // return-switch style — note how the iteration loop becomes label
    // arithmetic and the overlap becomes a bitmask, exactly the
    // obfuscation §2.4.1 warns about.
    #[derive(Debug, Default)]
    struct StripState {
        iter: u64,
        max_iter: u64,
        got_left: bool,
        got_right: bool,
        ghost_sum: u64,
        work_done: u64,
    }

    crate::retswitch! {
        /// input: (side, value) where side 0 = left ghost, 1 = right.
        machine Stencil(st: StripState, input: (u8, u64)) -> u64 {
            // label 0: "send strips" then wait in the overlap.
            0 => {
                // sendStripToLeftAndRight() would go here.
                st.got_left = false;
                st.got_right = false;
                (1, None)
            }
            // label 1: the overlap — re-entered until both ghosts arrive.
            1 => {
                match input.0 {
                    0 => st.got_left = true,
                    _ => st.got_right = true,
                }
                st.ghost_sum += input.1;
                if st.got_left && st.got_right {
                    // doWork(), then loop or finish.
                    st.work_done += 1;
                    st.iter += 1;
                    if st.iter < st.max_iter {
                        (0, Some(st.work_done))
                    } else {
                        (u32::MAX, Some(st.work_done))
                    }
                } else {
                    (1, None) // keep waiting at the same label
                }
            }
        }
    }

    #[test]
    fn stencil_lifecycle_in_return_switch_style() {
        let mut m = Stencil::new(StripState {
            max_iter: 3,
            ..Default::default()
        });
        // Kick off (label 0 consumes a dummy input — one of the warts).
        assert_eq!(m.resume((0, 0)), None);
        for i in 1..=3u64 {
            // Ghosts in either order.
            if i % 2 == 0 {
                assert_eq!(m.resume((0, i)), None);
                let r = m.resume((1, i));
                assert_eq!(r, Some(i));
            } else {
                assert_eq!(m.resume((1, i)), None);
                assert_eq!(m.resume((0, i)), Some(i));
            }
            if i < 3 {
                assert_eq!(m.resume((0, 0)), None, "restart sends");
            }
        }
        assert!(m.is_done());
        assert_eq!(m.state.work_done, 3);
        assert_eq!(m.state.ghost_sum, 2 * (1 + 2 + 3));
        assert_eq!(m.resume((0, 9)), None, "done machines stay done");
    }

    crate::retswitch! {
        machine Countdown(st: u32, _input: ()) -> u32 {
            0 => {
                if *st == 0 {
                    (u32::MAX, None)
                } else {
                    *st -= 1;
                    (0, Some(*st))
                }
            }
        }
    }

    #[test]
    fn self_loops_express_iteration() {
        let mut m = Countdown::new(3);
        assert_eq!(m.resume(()), Some(2));
        assert_eq!(m.resume(()), Some(1));
        assert_eq!(m.resume(()), Some(0));
        assert!(!m.is_done(), "label 0 still armed");
        assert_eq!(m.resume(()), None);
        assert!(m.is_done());
        assert_eq!(m.label(), u32::MAX);
    }

    /// The same alternating-event workload through SDAG and through
    /// return-switch must agree — the two §2.4 styles are equivalent in
    /// power, different in readability.
    #[test]
    fn sdag_and_retswitch_agree() {
        use crate::sdag::{atomic, for_n, overlap, seq, when, SdagRun};

        #[derive(Default)]
        struct S {
            ghost_sum: u64,
            work_done: u64,
        }
        let prog = for_n(
            |_| 3,
            seq(vec![
                overlap(vec![
                    when(0, |s: &mut S, m: Vec<u8>| s.ghost_sum += m[0] as u64),
                    when(1, |s: &mut S, m: Vec<u8>| s.ghost_sum += m[0] as u64),
                ]),
                atomic(|s: &mut S| s.work_done += 1),
            ]),
        );
        let mut sdag = SdagRun::new(&prog, S::default());
        let mut rs = Stencil::new(StripState {
            max_iter: 3,
            ..Default::default()
        });
        rs.resume((0, 0));
        for i in 1..=3u64 {
            sdag.deliver(1, vec![i as u8]);
            sdag.deliver(0, vec![i as u8]);
            rs.resume((1, i));
            rs.resume((0, i));
            if i < 3 {
                rs.resume((0, 0));
            }
        }
        assert!(sdag.is_done());
        assert!(rs.is_done());
        assert_eq!(sdag.state().ghost_sum, rs.state.ghost_sum);
        assert_eq!(sdag.state().work_done, rs.state.work_done);
    }
}
