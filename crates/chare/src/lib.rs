//! # flows-chare — event-driven objects and Structured Dagger
//!
//! The fourth flow-of-control mechanism of the paper (§2.4): *event-driven
//! objects*, which store and restore their own state explicitly instead of
//! keeping it on a machine stack, plus the Structured Dagger coordination
//! language (§2.4.2, Figure 1) that makes their life cycles readable.
//!
//! * [`chare`] — location-independent objects with numbered entry methods,
//!   routed via `flows-comm`, migratable by PUP-packing their state (§3.2);
//! * [`sdag`] — the `atomic` / `for` / `when` / `overlap` combinators
//!   interpreted as a message-buffering finite-state machine;
//! * [`retswitch`] — the §2.4.1 return-switch ("Duff's device") style,
//!   kept for comparison and for tiny protocol steppers.

#![warn(missing_docs)]

pub mod chare;
pub mod retswitch;
pub mod sdag;

pub use chare::{
    create, init_pe, local_count, migrate, register_chare_type, send, send_from_here, Chare,
    ChareLayer, ChareTypeId, PORT_CHARE,
};
pub use retswitch::RsStep;
pub use sdag::{
    atomic, for_n, if_else, nop, overlap, seq, when, when_then, while_cond, Event, Node, SdagRun,
};
