//! Criterion bench: swap-global privatization ablation — GOT-style base
//! pointer swap vs copying the globals block in and out per switch
//! (§3.1.1: why the GOT swap matters as globals grow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flows_bench::bench_pools;
use flows_core::{
    yield_now, GlobalsLayoutBuilder, PrivatizeMode, SchedConfig, Scheduler, StackFlavor,
};
use std::cell::Cell;
use std::rc::Rc;

/// Cost per context switch with `n_globals` privatized u64 globals, under
/// the given privatization mode.
fn switch_cost(mode: PrivatizeMode, n_globals: usize, switches: u64) -> std::time::Duration {
    let mut b = GlobalsLayoutBuilder::new();
    for i in 0..n_globals {
        b.register::<u64>(i as u64);
    }
    let layout = b.finish();
    let sched = Scheduler::new(
        0,
        bench_pools(1, 1 << 20, 1 << 20, 16),
        SchedConfig {
            globals: Some(layout),
            privatize: mode,
            ..SchedConfig::default()
        },
    );
    let stop = Rc::new(Cell::new(false));
    for _ in 0..2 {
        let stop = stop.clone();
        sched
            .spawn(StackFlavor::Standard, move || {
                while !stop.get() {
                    yield_now();
                }
            })
            .unwrap();
    }
    for _ in 0..64 {
        sched.step();
    }
    let t0 = std::time::Instant::now();
    for _ in 0..switches {
        sched.step();
    }
    let el = t0.elapsed();
    stop.set(true);
    sched.run();
    el
}

fn bench_privatize(c: &mut Criterion) {
    let mut g = c.benchmark_group("privatize_switch");
    for n_globals in [8usize, 512, 8192] {
        for mode in [PrivatizeMode::GotSwap, PrivatizeMode::CopyInOut] {
            let label = format!("{mode:?}");
            g.bench_with_input(
                BenchmarkId::new(label, n_globals),
                &n_globals,
                |b, &n| {
                    b.iter_custom(|iters| switch_cost(mode, n, iters));
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_privatize
}
criterion_main!(benches);
