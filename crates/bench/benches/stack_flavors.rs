//! Criterion bench: yield cost per stack flavor at a fixed live-stack
//! size (the micro version of Figure 9) plus thread creation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flows_bench::{bench_pools, with_stack_bytes};
use flows_core::{yield_now, SchedConfig, Scheduler, StackFlavor};
use std::cell::Cell;
use std::rc::Rc;

fn switch_cost(flavor: StackFlavor, live_stack: usize, switches: u64) -> std::time::Duration {
    let sched = Scheduler::new(
        0,
        bench_pools(1, 1 << 20, 1 << 20, 16),
        SchedConfig {
            stack_len: 256 * 1024,
            ..SchedConfig::default()
        },
    );
    let stop = Rc::new(Cell::new(false));
    for _ in 0..2 {
        let stop = stop.clone();
        sched
            .spawn(flavor, move || {
                with_stack_bytes(live_stack, || {
                    while !stop.get() {
                        yield_now();
                    }
                })
            })
            .unwrap();
    }
    for _ in 0..64 {
        sched.step();
    }
    let t0 = std::time::Instant::now();
    for _ in 0..switches {
        sched.step();
    }
    let el = t0.elapsed();
    stop.set(true);
    sched.run();
    el
}

fn bench_flavors(c: &mut Criterion) {
    let mut g = c.benchmark_group("flavor_switch_16k_stack");
    for flavor in StackFlavor::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(flavor.name()),
            &flavor,
            |b, &f| b.iter_custom(|iters| switch_cost(f, 16 * 1024, iters)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("spawn_and_run_empty_thread");
    for flavor in StackFlavor::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(flavor.name()),
            &flavor,
            |b, &f| {
                b.iter_custom(|iters| {
                    let sched = Scheduler::new(
                        0,
                        bench_pools(1, 1 << 20, 1 << 20, 1024),
                        SchedConfig::default(),
                    );
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        sched.spawn_with(f, 32 * 1024, || {}).unwrap();
                        sched.run();
                    }
                    t0.elapsed()
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_flavors
}
criterion_main!(benches);
