//! Criterion bench: the three swap routines (Fig. 10 / §4.3 ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use flows_arch::{Context, InitialStack, SwapKind};
use std::cell::Cell;

struct PingPong {
    main: Context,
    flow: Context,
    stop: bool,
    _stack: Vec<u8>,
}

thread_local! {
    static EXIT_TARGET: Cell<*mut PingPong> = const { Cell::new(std::ptr::null_mut()) };
}

fn exit_hook() -> ! {
    let st = EXIT_TARGET.with(|c| c.get());
    // SAFETY: installed by setup below.
    unsafe {
        let mut dead = Context::new((*st).main.kind());
        Context::swap_raw(&raw mut dead, &raw const (*st).main);
    }
    unreachable!()
}

extern "C" fn partner(arg: usize) {
    let st = arg as *mut PingPong;
    // SAFETY: cooperative ping-pong; main runs only while we're suspended.
    unsafe {
        while !(*st).stop {
            Context::swap_raw(&raw mut (*st).flow, &raw const (*st).main);
        }
    }
}

fn make(kind: SwapKind) -> *mut PingPong {
    let mut stack = vec![0u8; 64 * 1024];
    // SAFETY: one-past-the-end of the owned vec, used only as stack top.
    let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
    let st = Box::into_raw(Box::new(PingPong {
        main: Context::new(kind),
        flow: Context::new(kind),
        stop: false,
        _stack: stack,
    }));
    flows_arch::set_exit_hook(exit_hook);
    EXIT_TARGET.with(|c| c.set(st));
    // SAFETY: stack owned by the PingPong.
    unsafe { (*st).flow = InitialStack::build(kind, top, partner, st as usize) };
    st
}

fn finish(st: *mut PingPong) {
    // SAFETY: tell the partner to exit, then reclaim.
    unsafe {
        (*st).stop = true;
        Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
        drop(Box::from_raw(st));
    }
}

fn bench_swaps(c: &mut Criterion) {
    let mut g = c.benchmark_group("swap_roundtrip");
    for kind in [SwapKind::Minimal, SwapKind::Full, SwapKind::SignalMask] {
        let st = make(kind);
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                // SAFETY: ping-pong as above.
                unsafe { Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow) }
            })
        });
        finish(st);
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_swaps
}
criterion_main!(benches);
