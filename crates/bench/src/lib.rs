//! # flows-bench — harnesses that regenerate every table and figure
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Each prints a self-describing plain-text table comparable to
//! the paper's, plus machine-readable CSV when `--csv` is passed:
//!
//! ```text
//! cargo run --release -p flows-bench --bin table1_portability
//! cargo run --release -p flows-bench --bin table2_limits
//! cargo run --release -p flows-bench --bin fig4_ctxswitch_flows
//! cargo run --release -p flows-bench --bin fig9_stacksize
//! cargo run --release -p flows-bench --bin fig10_minswap
//! cargo run --release -p flows-bench --bin fig11_bigsim      [--full]
//! cargo run --release -p flows-bench --bin fig12_btmz
//! ```
//!
//! Criterion micro-benches (`cargo bench -p flows-bench`) cover the swap
//! routines, privatization modes and stack flavors.

#![warn(missing_docs)]

use flows_core::{yield_now, SchedConfig, Scheduler, SharedPools, StackFlavor};
use std::cell::Cell;
use std::rc::Rc;

/// Get `--name value` from argv.
pub fn arg_val(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

/// Is `--name` present in argv?
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// A plain-text results table with optional CSV output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print aligned plain text; CSV instead when `--csv` was passed.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        if arg_flag("csv") {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", line(r));
        }
    }
}

/// Measure user-level-thread context-switch time: `flows` threads of
/// `flavor` yield in a circle for roughly `window_ms`; returns
/// (ns per switch, switches observed).
///
/// This is the §4.1 methodology with the scheduler's own switch counter
/// as ground truth.
pub fn uthread_switch_bench(
    flavor: StackFlavor,
    flows: usize,
    stack_len: usize,
    window_ms: u64,
    shared: std::sync::Arc<SharedPools>,
) -> (f64, u64) {
    let sched = Scheduler::new(0, shared, SchedConfig::default());
    let stop = Rc::new(Cell::new(false));
    for _ in 0..flows {
        let stop = stop.clone();
        sched
            .spawn_with(flavor, stack_len, move || {
                while !stop.get() {
                    yield_now();
                }
            })
            .expect("spawn bench thread");
    }
    // Warmup: give every thread a few turns.
    for _ in 0..flows * 3 {
        sched.step();
    }
    let s0 = sched.stats().switches;
    let t0 = std::time::Instant::now();
    let window = std::time::Duration::from_millis(window_ms);
    while t0.elapsed() < window {
        for _ in 0..64 {
            sched.step();
        }
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    let switches = sched.stats().switches - s0;
    stop.set(true);
    sched.run(); // drain: every thread exits
    (
        elapsed as f64 / switches.max(1) as f64,
        switches,
    )
}

/// Shared pools sized for benchmark use (large common regions so big
/// stacks fit the copy/alias flavors).
pub fn bench_pools(num_pes: usize, common_len: usize, slot_len: usize, slots: usize) -> std::sync::Arc<SharedPools> {
    let mut iso = flows_mem::IsoConfig::for_pes(num_pes);
    iso.base = 0;
    iso.slot_len = slot_len;
    iso.slots_per_pe = slots;
    SharedPools::new(iso, common_len).expect("bench pools")
}

/// Recursively pin `bytes` of stack, then run `f` at depth — the
/// harness's `alloca()` analog for Figure 9.
pub fn with_stack_bytes<R>(bytes: usize, f: impl FnOnce() -> R) -> R {
    if bytes <= 4096 {
        f()
    } else {
        let mut pad = [0u8; 4096];
        std::hint::black_box(&mut pad[..]);
        let r = with_stack_bytes(bytes - 4096, f);
        std::hint::black_box(&mut pad[..]);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uthread_bench_reports_sane_numbers() {
        let pools = bench_pools(1, 1 << 20, 1 << 20, 64);
        let (ns, switches) = uthread_switch_bench(StackFlavor::Standard, 8, 32 * 1024, 30, pools);
        assert!(switches > 100, "must have switched: {switches}");
        assert!(ns > 1.0 && ns < 1_000_000.0, "ns/switch = {ns}");
    }

    #[test]
    fn stack_pinning_reaches_depth() {
        let x = with_stack_bytes(64 * 1024, || 42);
        assert_eq!(x, 42);
    }

    #[test]
    fn table_formats() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print("test"); // must not panic
    }
}
