//! Online-recovery chaos soak: randomized crash/stall schedules healed
//! in place, with detection latency and MTTR measured off the recovery
//! timeline.
//!
//! For each seed a splitmix64 stream derives a fault schedule — one or
//! two PE crashes at randomized virtual times, sometimes a transient
//! stall and a pinch of packet loss on top — and the same ring workload
//! runs once fault-free and once under the schedule with online recovery
//! (in-memory buddy checkpoints, phi-accrual failure detection, in-place
//! rollback/respawn). Every run must finish with bit-identical per-rank
//! checksums on a machine that was never torn down (`restarts == 0`).
//!
//! Per seed the table and `BENCH_ft.json` record:
//!
//! * **detect ms** — first `Suspect` of the victim minus the scripted
//!   crash time (phi-accrual detection latency, modeled ms);
//! * **confirm ms** — first `Confirm` minus the crash time;
//! * **mttr ms** — `Resume` minus first `Suspect` of that round (time
//!   from first suspicion to a healed, running machine);
//! * the recovery-round count and the checksum verdict.
//!
//! `--seeds N` soak width (default 12); `--fast` shrinks to 4 seeds;
//! `--json PATH` overrides the output path. Exits non-zero if any run
//! diverges from the fault-free answer or fails to heal.

use flows_ampi::{run_world, run_world_ft, AmpiOptions};
use flows_bench::{arg_flag, arg_val, Table};
use flows_converse::{FaultPlan, NetModel, RecoveryPhase};
use flows_lb::GreedyLb;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const RANKS: usize = 8;
const PES: usize = 4;
const ITERS: usize = 10;

/// splitmix64: the per-seed schedule stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

type Results = Arc<Mutex<HashMap<usize, u64>>>;

fn workload(results: Results) -> impl Fn(&mut flows_ampi::Ampi) + Send + Sync {
    move |ampi| {
        let me = ampi.rank();
        let n = ampi.size();
        let mut check: u64 = me as u64 + 1;
        for it in 0..ITERS {
            let next = (me + 1) % n;
            ampi.send(next, 7, check.to_le_bytes().to_vec());
            // Free the received buffer before checkpoint(): heap memory
            // held across the cut is not part of the image.
            let (src, got) = {
                let (src, _, data) = ampi.recv(Some((me + n - 1) % n), Some(7));
                (src, u64::from_le_bytes(data[..8].try_into().unwrap()))
            };
            check = check
                .wrapping_mul(1_000_003)
                .wrapping_add(got)
                .wrapping_add((it * n + src) as u64);
            ampi.charge_ns(50_000 + 20_000 * me as u64);
            ampi.checkpoint();
        }
        let total = ampi.allreduce_u64_sum(&[check]);
        results.lock().unwrap().insert(me, total[0]);
    }
}

fn opts() -> AmpiOptions {
    AmpiOptions::new(RANKS, PES)
        .with_net(NetModel::default())
        .with_strategy(Arc::new(GreedyLb))
        .modeled_time(true)
}

/// One randomized schedule: 1-2 distinct victims at vts spread over the
/// run, degree-2 replication, sometimes a stall and light packet loss.
/// Returns the plan, the scripted crashes, and every PE allowed to die —
/// a long stall may legitimately end in fencing (fail-stop by decree), so
/// the staller is an allowed casualty too.
fn schedule(seed: u64) -> (FaultPlan, Vec<(usize, u64)>, Vec<usize>) {
    let mut s = seed;
    let mut plan = FaultPlan::new(seed).online_recovery(2);
    let n_crashes = 1 + (mix(&mut s) % 2) as usize;
    let first_victim = (mix(&mut s) % PES as u64) as usize;
    let mut crashes = Vec::new();
    let mut vt = 1_500_000 + mix(&mut s) % 3_000_000;
    for i in 0..n_crashes {
        let victim = (first_victim + i * 2) % PES; // distinct by construction
        plan = plan.crash_pe(victim, vt);
        crashes.push((victim, vt));
        // Far enough apart that the second death usually lands after the
        // first heal — and sometimes inside it, exercising supersession.
        vt += 5_000_000 + mix(&mut s) % 6_000_000;
    }
    let mut allowed: Vec<usize> = crashes.iter().map(|&(v, _)| v).collect();
    if mix(&mut s).is_multiple_of(3) {
        let staller = (first_victim + 1) % PES;
        // Short stalls stay transient (suspect, then clear); long ones
        // outlast the confirm window and end in a STONITH fence.
        let steps = 200 + mix(&mut s) % 2_800;
        plan = plan.stall_pe(staller, 1_000_000 + mix(&mut s) % 2_000_000, steps);
        allowed.push(staller);
    }
    if mix(&mut s).is_multiple_of(2) {
        plan = plan.drop_prob(0.01);
    }
    (plan, crashes, allowed)
}

struct Row {
    seed: u64,
    crashes: Vec<(usize, u64)>,
    healed: usize,
    recoveries: usize,
    detect_ns: Vec<u64>,
    confirm_ns: Vec<u64>,
    mttr_ns: Vec<u64>,
    equal: bool,
}

fn mean_ms(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64 / 1e6
}

fn main() {
    let fast = arg_flag("fast");
    let seeds: u64 = arg_val("seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 4 } else { 12 });
    let json_path = arg_val("json").unwrap_or_else(|| "BENCH_ft.json".into());

    let clean: Results = Arc::new(Mutex::new(HashMap::new()));
    run_world(opts(), workload(clean.clone()));
    let clean = clean.lock().unwrap().clone();
    assert_eq!(clean.len(), RANKS);

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for i in 0..seeds {
        let seed = 0xC0FFEE ^ (i.wrapping_mul(0x9E3779B97F4A7C15));
        let (plan, crashes, allowed) = schedule(seed);
        let results: Results = Arc::new(Mutex::new(HashMap::new()));
        let ft = run_world_ft(opts(), plan, workload(results.clone()));
        let got = results.lock().unwrap().clone();

        let equal = got.len() == RANKS && (0..RANKS).all(|r| got[&r] == clean[&r]);
        let healed_ok = ft.restarts == 0
            && ft.report.stranded_threads.iter().sum::<usize>() == 0
            && ft.crashed_pes.iter().all(|pe| allowed.contains(pe));
        ok &= equal && healed_ok;

        // Detection latency / MTTR off the recovery timeline. A crash
        // scripted at vt X fires when the victim's clock crosses X, so
        // use the recorded Crash event as the anchor.
        let ev = &ft.report.recovery;
        let mut detect_ns = Vec::new();
        let mut confirm_ns = Vec::new();
        let mut mttr_ns = Vec::new();
        for c in ev.iter().filter(|e| e.phase == RecoveryPhase::Crash) {
            let suspect = ev
                .iter()
                .find(|e| e.phase == RecoveryPhase::Suspect && e.dead == c.dead && e.vt >= c.vt);
            let confirm = ev
                .iter()
                .find(|e| e.phase == RecoveryPhase::Confirm && e.dead == c.dead && e.vt >= c.vt);
            if let Some(s) = suspect {
                detect_ns.push(s.vt - c.vt);
                if let Some(r) = ev
                    .iter()
                    .find(|e| e.phase == RecoveryPhase::Resume && e.vt >= s.vt)
                {
                    mttr_ns.push(r.vt - s.vt);
                }
            }
            if let Some(cf) = confirm {
                confirm_ns.push(cf.vt - c.vt);
            }
        }

        rows.push(Row {
            seed,
            crashes,
            healed: ft.crashed_pes.len(),
            recoveries: ft.recoveries,
            detect_ns,
            confirm_ns,
            mttr_ns,
            equal,
        });
    }

    let mut t = Table::new(&[
        "seed",
        "schedule",
        "healed",
        "rounds",
        "detect ms",
        "confirm ms",
        "mttr ms",
        "checksum equal",
    ]);
    for r in &rows {
        let sched = r
            .crashes
            .iter()
            .map(|(pe, vt)| format!("PE{pe}@{:.1}ms", *vt as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            format!("{:#x}", r.seed),
            sched,
            r.healed.to_string(),
            r.recoveries.to_string(),
            format!("{:.2}", mean_ms(&r.detect_ns)),
            format!("{:.2}", mean_ms(&r.confirm_ns)),
            format!("{:.2}", mean_ms(&r.mttr_ns)),
            r.equal.to_string(),
        ]);
    }
    t.print(&format!(
        "Chaos soak: {seeds} randomized fault schedules, online recovery (ring {RANKS} ranks / {PES} PEs, k=2 buddies)"
    ));

    let all_detect: Vec<u64> = rows.iter().flat_map(|r| r.detect_ns.clone()).collect();
    let all_mttr: Vec<u64> = rows.iter().flat_map(|r| r.mttr_ns.clone()).collect();
    println!(
        "\nexpected shape: every schedule heals in place (restarts = 0) with \
         the fault-free checksums; detection latency is set by the phi \
         threshold over a {:.1}ms heartbeat, and MTTR adds the rollback + \
         respawn + re-replication round.",
        0.1
    );

    let mut json = String::from("{\n  \"bench\": \"ft_online\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"seed\": \"{:#x}\", \"crashes\": {}, \"healed\": {}, \"recovery_rounds\": {}, \"detect_ms\": {:.3}, \"confirm_ms\": {:.3}, \"mttr_ms\": {:.3}, \"checksum_equal\": {}}}{}\n",
            r.seed,
            r.crashes.len(),
            r.healed,
            r.recoveries,
            mean_ms(&r.detect_ns),
            mean_ms(&r.confirm_ns),
            mean_ms(&r.mttr_ns),
            r.equal,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"summary\": {{\"seeds\": {}, \"mean_detect_ms\": {:.3}, \"mean_mttr_ms\": {:.3}}}\n}}\n",
        seeds,
        mean_ms(&all_detect),
        mean_ms(&all_mttr)
    ));
    std::fs::write(&json_path, json).expect("write bench json");
    println!("wrote {json_path}");

    if !ok {
        eprintln!("FAIL: a chaos run diverged from the fault-free checksum or failed to heal");
        std::process::exit(1);
    }
}
