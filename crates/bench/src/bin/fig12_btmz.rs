//! Figure 12: NAS BT-MZ with and without thread-migration load balancing.
//!
//! Each paper configuration (`A.8,4PE` = class A, 8 AMPI rank-threads, 4
//! PEs, ...) runs twice: without LB and with GreedyLB invoked at
//! `migrate()` points. The modeled parallel time (max PE virtual time) is
//! the paper's y-axis analog; the checksum column proves migration did
//! not change the numerics.
//!
//! `--iters N` sets outer iterations (default 8); `--sweeps N` the work
//! multiplier per iteration.

use flows_bench::{arg_val, Table};
use flows_lb::GreedyLb;
use flows_npb::{MzBench, MzClass, MzConfig};
use std::sync::Arc;

fn main() {
    let iters: usize = arg_val("iters").and_then(|v| v.parse().ok()).unwrap_or(16);
    let sweeps: usize = arg_val("sweeps").and_then(|v| v.parse().ok()).unwrap_or(100);

    // The paper's x-axis configurations, scaled classes (zone structure
    // and the 20x BT-MZ spread preserved).
    let configs: &[(MzClass, usize, usize)] = &[
        (MzClass::A, 8, 4),
        (MzClass::A, 16, 4),
        (MzClass::A, 16, 8),
        (MzClass::B, 16, 8),
        (MzClass::B, 32, 8),
        (MzClass::B, 64, 8),
    ];

    let mut t = Table::new(&[
        "config",
        "no-LB s",
        "LB s",
        "speedup",
        "migrations",
        "checksum equal",
    ]);
    for &(class, nprocs, pes) in configs {
        let mut cfg = MzConfig::new(MzBench::BtMz, class, nprocs, pes);
        cfg.iterations = iters;
        cfg.sweeps = sweeps;
        let without = flows_npb::run(&cfg);
        let with = flows_npb::run(&cfg.clone().with_lb(Arc::new(GreedyLb)));
        t.row(vec![
            without.label.clone(),
            format!("{:.4}", without.modeled_time_s),
            format!("{:.4}", with.modeled_time_s),
            format!("{:.2}x", without.modeled_time_s / with.modeled_time_s.max(1e-12)),
            with.migrations.to_string(),
            (without.checksum == with.checksum).to_string(),
        ]);
    }
    t.print("Figure 12: BT-MZ execution time with vs without thread-migration LB (modeled parallel time)");
    println!(
        "\nexpected shape (paper): without LB, same-class configurations \
         vary wildly with the rank count (BT-MZ's 20x zone spread lands \
         unevenly); with LB they flatten to roughly the same time, and LB \
         helps most when ranks >> PEs. Checksums must all be equal."
    );
}
