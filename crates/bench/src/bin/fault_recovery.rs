//! Fault-recovery harness: completion time and message overhead vs fault
//! rate on BT-MZ, plus a PE-crash scenario recovered from coordinated
//! checkpoints.
//!
//! Two tables:
//!
//! 1. A transport-fault sweep (drop = dup = the listed rate) at a fixed
//!    seed. Columns give the modeled completion time, logical messages,
//!    physical packets on the wire (data + retransmits + acks), the
//!    overhead ratio vs the fault-free run, and whether the checksum is
//!    bit-identical to fault-free — it must always be.
//! 2. The crash scenario: lossy links plus one scripted PE death mid-run,
//!    checkpointing every iteration. The run restarts from the last
//!    committed checkpoint generation on the surviving PEs and must still
//!    reproduce the fault-free checksum.
//!
//! `--iters N` outer iterations (default 8); `--sweeps N` work per
//! iteration; `--seed H` fault seed (hex).
//!
//! The harness exits non-zero if any faulty checksum deviates.

use flows_bench::{arg_val, Table};
use flows_converse::FaultPlan;
use flows_npb::{MzBench, MzClass, MzConfig};

const RANKS: usize = 8;
const PES: usize = 4;

fn base(iters: usize, sweeps: usize) -> MzConfig {
    let mut cfg = MzConfig::new(MzBench::BtMz, MzClass::A, RANKS, PES);
    cfg.iterations = iters;
    cfg.sweeps = sweeps;
    cfg
}

fn main() {
    let iters: usize = arg_val("iters").and_then(|v| v.parse().ok()).unwrap_or(8);
    let sweeps: usize = arg_val("sweeps").and_then(|v| v.parse().ok()).unwrap_or(50);
    let seed: u64 = arg_val("seed")
        .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0xFA17);

    let clean = flows_npb::run(&base(iters, sweeps));
    let mut ok = true;

    let mut t = Table::new(&[
        "fault rate",
        "time s",
        "messages",
        "packets",
        "retransmits",
        "overhead",
        "checksum equal",
    ]);
    // The 0% row (a plan that never fires) is the packet-overhead
    // baseline: same instrumentation, no injected faults.
    let mut baseline_packets = 0u64;
    for &rate in &[0.0, 0.01, 0.05, 0.10] {
        let plan = FaultPlan::new(seed).drop_prob(rate).dup_prob(rate);
        // checkpoint_every = 0: the sweep measures pure transport-fault
        // overhead; recovery is exercised by the crash scenario below.
        let r = flows_npb::run(&base(iters, sweeps).with_faults(plan, 0));
        let f = r.faults.expect("fault-instrumented run reports counters");
        if rate == 0.0 {
            baseline_packets = f.physical_packets();
        }
        let equal = r.checksum == clean.checksum;
        ok &= equal;
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.4}", r.modeled_time_s),
            r.messages.to_string(),
            f.physical_packets().to_string(),
            f.retransmits.to_string(),
            format!(
                "{:.2}x",
                f.physical_packets() as f64 / baseline_packets.max(1) as f64
            ),
            equal.to_string(),
        ]);
    }
    t.print("Fault sweep: BT-MZ A.8,4PE under seeded transport faults (drop = dup = rate)");

    let plan = FaultPlan::new(seed)
        .drop_prob(0.02)
        .dup_prob(0.02)
        .crash_pe(1, 150_000);
    let r = flows_npb::run(&base(iters, sweeps).with_faults(plan, 1));
    let equal = r.checksum == clean.checksum;
    ok &= equal;
    let mut c = Table::new(&[
        "scenario",
        "time s",
        "restarts",
        "PEs left",
        "total msgs",
        "checksum equal",
    ]);
    c.row(vec![
        "drop 2% + dup 2% + crash PE1".into(),
        format!("{:.4}", r.modeled_time_s),
        r.restarts.to_string(),
        r.pes_used.to_string(),
        r.total_messages.to_string(),
        equal.to_string(),
    ]);
    c.print("Crash recovery: checkpoint every iteration, restart on surviving PEs");

    println!(
        "\nexpected shape: overhead grows with the fault rate (every drop \
         costs a timeout + retransmit) while the checksum column stays \
         true throughout; the crash scenario completes on {} PEs with the \
         fault-free answer.",
        PES - 1
    );
    if !ok {
        eprintln!("FAIL: a faulty run diverged from the fault-free checksum");
        std::process::exit(1);
    }
}
