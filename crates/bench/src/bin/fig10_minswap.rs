//! Figure 10 / §4.3: the minimal context switch, and what fat swaps cost.
//!
//! Two flows ping-pong through `Context::swap` for each [`SwapKind`]:
//! * `minimal` — the paper's Figure 10(b) routine (callee-saved GPRs
//!   only); the paper measures 16–18 ns on a 2.2 GHz Athlon64;
//! * `full` — every GPR + the 512-byte FXSAVE area ("fear or ignorance");
//! * `sigmask` — minimal plus two `sigprocmask` syscalls, the
//!   `swapcontext` idiom §4.3 says forfeits the user-level advantage.

use flows_arch::{Context, InitialStack, SwapKind};
use flows_bench::{arg_val, Table};

struct PingPong {
    main: Context,
    flow: Context,
    stop: bool,
    _stack: Vec<u8>,
}

extern "C" fn partner(arg: usize) {
    let st = arg as *mut PingPong;
    // SAFETY: disjoint-field coroutine access; the main flow only runs
    // while we are suspended.
    unsafe {
        while !(*st).stop {
            Context::swap_raw(&raw mut (*st).flow, &raw const (*st).main);
        }
    }
}

fn bench(kind: SwapKind, iters: u64) -> f64 {
    let mut stack = vec![0u8; 64 * 1024];
    // SAFETY: one-past-the-end of the owned vec, used only as stack top.
    let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
    let st = Box::into_raw(Box::new(PingPong {
        main: Context::new(kind),
        flow: Context::new(kind),
        stop: false,
        _stack: stack,
    }));
    flows_arch::set_exit_hook(exit_hook);
    EXIT_TARGET.with(|c| c.set(st));
    // SAFETY: stack owned by the PingPong; single-threaded ping-pong.
    unsafe {
        (*st).flow = InitialStack::build(kind, top, partner, st as usize);
        // Warmup.
        for _ in 0..1000 {
            Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
        }
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
        }
        let per_roundtrip = t0.elapsed().as_nanos() as f64 / iters as f64;
        (*st).stop = true;
        Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
        drop(Box::from_raw(st));
        // Each round trip is two swaps (there and back).
        per_roundtrip / 2.0
    }
}

thread_local! {
    static EXIT_TARGET: std::cell::Cell<*mut PingPong> =
        const { std::cell::Cell::new(std::ptr::null_mut()) };
}

fn exit_hook() -> ! {
    let st = EXIT_TARGET.with(|c| c.get());
    // SAFETY: set right before the flow could exit.
    unsafe {
        let mut dead = Context::new((*st).main.kind());
        Context::swap_raw(&raw mut dead, &raw const (*st).main);
    }
    unreachable!()
}

fn main() {
    let iters: u64 = arg_val("iters").and_then(|v| v.parse().ok()).unwrap_or(2_000_000);
    let mut t = Table::new(&["swap kind", "ns/swap", "vs minimal"]);
    let base = bench(SwapKind::Minimal, iters);
    t.row(vec!["minimal (Fig. 10b)".into(), format!("{base:.1}"), "1.0x".into()]);
    let full = bench(SwapKind::Full, iters);
    t.row(vec![
        "full (all GPRs + FXSAVE)".into(),
        format!("{full:.1}"),
        format!("{:.1}x", full / base),
    ]);
    let sig = bench(SwapKind::SignalMask, iters / 20);
    t.row(vec![
        "sigmask (swapcontext-like)".into(),
        format!("{sig:.1}"),
        format!("{:.1}x", sig / base),
    ]);
    t.print("Figure 10 / §4.3: minimal vs fat user-level thread swaps");
    println!(
        "\npaper: 16–18 ns minimal swap on a 2.2 GHz Athlon64; a single \
         system call in the switch path (the sigmask row) erases the \
         user-level advantage."
    );
}
