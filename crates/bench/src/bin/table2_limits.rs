//! Table 2: practical limits on the number of flows per mechanism.
//!
//! Bounded probing (never more than the cap alive at once); `N+` in the
//! output means the probe reached its cap without hitting a system limit,
//! matching the paper's "90000+" notation. Caps are deliberately modest
//! by default — raise them with `--proc-cap/--kthread-cap/--uthread-cap`.

use flows_bench::{arg_val, bench_pools, Table};
use flows_core::{SchedConfig, Scheduler, StackFlavor};
use flows_mech::limits::{probe_kernel_threads, probe_user_threads};
use flows_mech::procs::probe_processes;

fn main() {
    let proc_cap: usize = arg_val("proc-cap").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let kt_cap: usize = arg_val("kthread-cap").and_then(|v| v.parse().ok()).unwrap_or(4096);
    let ut_cap: usize = arg_val("uthread-cap").and_then(|v| v.parse().ok()).unwrap_or(100_000);

    let mut t = Table::new(&["Flow of control", "Limiting factor", "This host", "Configured limit"]);

    let pr = probe_processes(proc_cap);
    t.row(vec![
        "Process".into(),
        "ulimit/kernel".into(),
        pr.summary(),
        pr.configured_limit
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unlimited".into()),
    ]);

    let kt = probe_kernel_threads(kt_cap);
    t.row(vec![
        "Kernel Threads".into(),
        "kernel".into(),
        kt.summary(),
        kt.configured_limit
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unknown".into()),
    ]);

    // User-level threads: spawn (unstarted) standard-flavor threads with
    // small stacks until the cap; memory is the only limiter.
    let pools = bench_pools(1, 1 << 20, 1 << 20, 64);
    let sched = Scheduler::new(0, pools, SchedConfig::default());
    let ut = probe_user_threads(ut_cap, |_i| {
        sched
            .spawn_with(StackFlavor::Standard, 16 * 1024, || {})
            .is_ok()
    });
    t.row(vec![
        "User-level Threads".into(),
        "memory".into(),
        ut.summary(),
        "address space".into(),
    ]);

    t.print("Table 2: practical limits for flow-of-control mechanisms (this host)");
    println!(
        "\npaper (Linux column): processes 8000, kernel threads 250 (stock \
         RH9), user-level threads 90000+. Modern kernels lift the pthread \
         limit, but the ordering user >> process/kthread persists."
    );
    for r in [&pr, &kt] {
        if let Some(e) = &r.error {
            println!("note: {} probe stopped by: {}", r.mechanism, e);
        }
    }
}
