//! Table 2: practical limits on the number of flows per mechanism.
//!
//! Bounded probing (never more than the cap alive at once); `N+` in the
//! output means the probe reached its cap without hitting a system limit,
//! matching the paper's "90000+" notation. Caps are deliberately modest
//! by default — raise them with `--proc-cap/--kthread-cap/--uthread-cap/
//! --iso-cap`.
//!
//! The isomalloc probe is the million-thread scale-out check: it spawns
//! `--iso-cap` *migratable* threads in lazy-slab mode (slot allocation
//! deferred to first resume, so live-but-unstarted threads cost only
//! their Tcb and scheduler bookkeeping — neither committed stacks nor
//! `vm.max_map_count` entries), measures the RSS delta per live thread,
//! then steps a window of them to prove the backlog actually schedules.
//! Machine-readable lines for the smoke gate:
//! `iso_live_threads: N` and `iso_bytes_per_thread: N`.

use flows_bench::{arg_val, bench_pools, Table};
use flows_core::{yield_now, SchedConfig, Scheduler, StackFlavor};
use flows_mech::limits::{probe_kernel_threads, probe_user_threads};
use flows_mech::procs::probe_processes;

/// Current resident set from `/proc/self/status` (`VmRSS`), in bytes.
fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let proc_cap: usize = arg_val("proc-cap").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let kt_cap: usize = arg_val("kthread-cap").and_then(|v| v.parse().ok()).unwrap_or(4096);
    let ut_cap: usize = arg_val("uthread-cap").and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let iso_cap: usize = arg_val("iso-cap").and_then(|v| v.parse().ok()).unwrap_or(250_000);

    let mut t = Table::new(&["Flow of control", "Limiting factor", "This host", "Configured limit"]);

    let pr = probe_processes(proc_cap);
    t.row(vec![
        "Process".into(),
        "ulimit/kernel".into(),
        pr.summary(),
        pr.configured_limit
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unlimited".into()),
    ]);

    let kt = probe_kernel_threads(kt_cap);
    t.row(vec![
        "Kernel Threads".into(),
        "kernel".into(),
        kt.summary(),
        kt.configured_limit
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unknown".into()),
    ]);

    // User-level threads: spawn (unstarted) standard-flavor threads with
    // small stacks until the cap; memory is the only limiter.
    let pools = bench_pools(1, 1 << 20, 1 << 20, 64);
    let sched = Scheduler::new(0, pools, SchedConfig::default());
    let ut = probe_user_threads(ut_cap, |_i| {
        sched
            .spawn_with(StackFlavor::Standard, 16 * 1024, || {})
            .is_ok()
    });
    t.row(vec![
        "User-level Threads".into(),
        "memory".into(),
        ut.summary(),
        "address space".into(),
    ]);

    // Migratable (isomalloc) threads at scale: 64 KiB slots reserved per
    // thread (address space only), 16 KiB stacks committed at first
    // resume. The RSS delta is taken across the spawn loop alone so the
    // figure is the per-thread holding cost: Tcb + entry closure +
    // thread-table entry + run-queue entry.
    let iso_pools = bench_pools(1, 1 << 20, 64 * 1024, iso_cap + 64);
    let iso_sched = Scheduler::new(
        0,
        iso_pools,
        SchedConfig {
            lazy_iso: true,
            ..SchedConfig::default()
        },
    );
    let rss_before = vm_rss_bytes();
    let iso = probe_user_threads(iso_cap, |_i| {
        iso_sched
            .spawn_with(StackFlavor::Isomalloc, 16 * 1024, || {
                yield_now();
            })
            .is_ok()
    });
    let rss_after = vm_rss_bytes();
    let bytes_per_thread = rss_after.saturating_sub(rss_before) / iso.created.max(1) as u64;
    // The backlog must be real schedulable work, not inert bookkeeping:
    // run a window of threads through first-resume slab materialization.
    let window = iso.created.min(2048);
    for _ in 0..window {
        iso_sched.step();
    }
    let started = iso_sched.stats().switches;
    assert!(
        started >= window as u64,
        "stepped {window} threads but only {started} switches happened"
    );
    t.row(vec![
        "Migratable Threads (iso)".into(),
        "memory (lazy slabs)".into(),
        iso.summary(),
        "vm.max_map_count bounds *started*".into(),
    ]);

    t.print("Table 2: practical limits for flow-of-control mechanisms (this host)");
    println!(
        "\npaper (Linux column): processes 8000, kernel threads 250 (stock \
         RH9), user-level threads 90000+. Modern kernels lift the pthread \
         limit, but the ordering user >> process/kthread persists."
    );
    println!(
        "\niso probe: {} live migratable threads held at once; {} of them \
         stepped through first-resume slab materialization.",
        iso.created, window
    );
    println!("iso_live_threads: {}", iso.created);
    println!("iso_bytes_per_thread: {bytes_per_thread}");
    for r in [&pr, &kt, &iso] {
        if let Some(e) = &r.error {
            println!("note: {} probe stopped by: {}", r.mechanism, e);
        }
    }
    // A million-thread teardown (thread-table drain, slab frees for the
    // stepped window) is pure exit-path work; the process is about to
    // exit and the kernel reclaims everything faster.
    std::mem::forget(iso_sched);
    std::mem::forget(sched);
}
