//! Figure 11: BigSim — simulation time per MD step while the number of
//! simulating processors grows, with the full target machine represented
//! as user-level threads.
//!
//! Default: 20 000 target processors (threads), sim PEs ∈ {4..64}.
//! `--full` runs the paper's 200 000 threads (needs ~4 GB RAM and
//! patience). On this 1-core host the *modeled* per-step time (max over
//! PEs of busy time) carries the scaling curve; host wall time is also
//! printed (roughly constant — the total work doesn't change).

use flows_bench::{arg_flag, arg_val, Table};
use flows_bigsim::{run, BigSimConfig};

fn main() {
    let full = arg_flag("full");
    let target: usize = arg_val("target")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 200_000 } else { 20_000 });
    let steps: usize = arg_val("steps").and_then(|v| v.parse().ok()).unwrap_or(2);
    let particles: usize = arg_val("particles").and_then(|v| v.parse().ok()).unwrap_or(8);

    let mut t = Table::new(&[
        "sim PEs",
        "target procs",
        "threads/PE",
        "modeled s/step",
        "host wall s/step",
        "switches",
    ]);
    for &pes in &[4usize, 8, 16, 32, 64] {
        let cfg = BigSimConfig {
            target_procs: target,
            sim_pes: pes,
            steps,
            particles_per_proc: particles,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: Default::default(),
            faults: None,
            tracing: false,
        };
        let r = run(&cfg);
        t.row(vec![
            pes.to_string(),
            target.to_string(),
            (target / pes).to_string(),
            format!("{:.4}", r.modeled_step_ns as f64 * 1e-9),
            format!("{:.4}", r.wall_ns as f64 * 1e-9 / steps as f64),
            r.switches.to_string(),
        ]);
    }
    t.print("Figure 11: BigSim simulation time per step vs simulating processors");
    println!(
        "\nexpected shape (paper): near-linear decrease of time-per-step as \
         simulating processors grow from 4 to 64 with 200k target-processor \
         threads. The modeled column reproduces that scaling; host wall time \
         is flat because this host has one core doing all the work."
    );
}
