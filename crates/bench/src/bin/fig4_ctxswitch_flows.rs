//! Figures 4–8: context-switch time vs number of flows, for processes,
//! kernel threads (pthreads), Cth-style user-level threads, and
//! AMPI-style (isomalloc, migratable) user-level threads.
//!
//! Figure 4 is the x86 Linux instance, which this host reproduces
//! directly; Figures 5–8 are the same experiment on Mac G5 / Solaris /
//! IBM SP / Alpha hardware we do not have (see DESIGN.md §2). The paper's
//! caveat applies here too: `sched_yield()` storms under-measure when the
//! kernel elides yields.
//!
//! Flags: `--full` extends the sweep (more flows), `--window-ms N` sets
//! the per-point measurement window.

use flows_bench::{arg_flag, arg_val, bench_pools, uthread_switch_bench, Table};
use flows_core::StackFlavor;

fn main() {
    let window: u64 = arg_val("window-ms").and_then(|v| v.parse().ok()).unwrap_or(150);
    let full = arg_flag("full");

    let uthread_counts: &[usize] = if full {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 50000]
    } else {
        &[1, 4, 16, 64, 256, 1024, 4096, 16384]
    };
    let proc_counts: &[usize] = if full {
        &[2, 4, 8, 16, 32, 64, 128, 256, 512]
    } else {
        &[2, 8, 32, 128]
    };
    let kthread_counts: &[usize] = if full {
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    } else {
        &[2, 8, 32, 128, 512]
    };

    let mut t = Table::new(&["flows", "mechanism", "ns/switch", "switches"]);

    for &n in proc_counts {
        match flows_mech::procs::yield_benchmark(n, window) {
            Ok(b) => t.row(vec![
                n.to_string(),
                "process".into(),
                format!("{:.1}", b.ns_per_switch()),
                b.total_yields.to_string(),
            ]),
            Err(e) => t.row(vec![n.to_string(), "process".into(), format!("err: {e}"), "0".into()]),
        }
    }
    for &n in kthread_counts {
        match flows_mech::kthreads::yield_benchmark(n, window) {
            Ok(b) => t.row(vec![
                n.to_string(),
                "pthread".into(),
                format!("{:.1}", b.ns_per_switch()),
                b.total_yields.to_string(),
            ]),
            Err(e) => t.row(vec![n.to_string(), "pthread".into(), format!("err: {e}"), "0".into()]),
        }
    }
    // Cth analog: standard (non-migratable) user-level threads.
    for &n in uthread_counts {
        let pools = bench_pools(1, 1 << 20, 1 << 20, 64);
        let (ns, sw) = uthread_switch_bench(StackFlavor::Standard, n, 16 * 1024, window, pools);
        t.row(vec![
            n.to_string(),
            "cth (user-level)".into(),
            format!("{ns:.1}"),
            sw.to_string(),
        ]);
    }
    // AMPI analog: isomalloc migratable threads (no migrations occur,
    // exactly as in the paper's measurement).
    let ampi_counts: Vec<usize> = uthread_counts
        .iter()
        .copied()
        .filter(|&n| n <= 16384)
        .collect();
    for &n in &ampi_counts {
        let pools = bench_pools(1, 1 << 20, 256 * 1024, n + 8);
        let (ns, sw) = uthread_switch_bench(StackFlavor::Isomalloc, n, 16 * 1024, window, pools);
        t.row(vec![
            n.to_string(),
            "ampi (isomalloc)".into(),
            format!("{ns:.1}"),
            sw.to_string(),
        ]);
    }

    t.print("Figure 4: context switch time vs number of flows (this host = the paper's Linux/x86 case)");
    println!(
        "\nexpected shape (paper): user-level threads switch fastest and \
         stay flat into the tens of thousands of flows; processes and \
         pthreads are slower and capped far earlier (Table 2)."
    );
}
