//! Table 1: portability of the migratable-thread techniques.
//!
//! The paper reports a hand-audited matrix over nine platforms; this
//! binary produces our row for the host it runs on by *probing* — trying
//! each technique's kernel prerequisites and reporting Yes/No with the
//! reason. Run on other hosts to extend the matrix.

use flows_bench::Table;
use flows_mem::probe::Portability;

fn main() {
    let p = Portability::detect();
    let mut t = Table::new(&["Technique", "This host"]);
    for (name, verdict) in p.table1_rows() {
        t.row(vec![name.to_string(), verdict]);
    }
    t.print("Table 1 (host row): portability of migratable thread techniques");
    println!(
        "\nhost: {}-bit pointers, vm.max_map_count = {}",
        p.pointer_bits,
        p.max_map_count
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unknown".into())
    );
    println!(
        "paper context: x86 Linux row of Table 1 is Yes/Yes/Yes; isomalloc \
         address-space pressure only binds on 32-bit hosts."
    );
}
