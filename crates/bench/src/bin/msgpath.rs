//! Message-path microbenchmarks: ping-pong latency, ring hop rate,
//! fan-in throughput and a payload-size sweep, in both drive modes.
//!
//! Writes `BENCH_msgpath.json` (messages/sec and ns/msg per scenario,
//! with the pre-zero-copy baseline and speedup where one was recorded).
//!
//! `--fast` shrinks every scenario (smoke mode); `--json PATH` overrides
//! the output path. `--processes N` adds a multi-process leg: the same
//! pingpong/ring programs crossing real OS-process boundaries over both
//! flows-net backends (shared-memory rings and Unix sockets), one
//! `N procs × 2 PEs` world per scenario. The leader re-executes this
//! binary as each child rank (`--mp-scenario` selects the SPMD body), so
//! in-process vs shm vs socket rows land in one table.

use flows_bench::{arg_flag, arg_val, Table};
use flows_converse::{FaultPlan, MachineBuilder, NetModel};
use flows_net::{Backend, TopologySpec, World};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Throughput of the same scenarios measured immediately before the
/// zero-copy message path landed (Vec payloads, per-message SeqCst
/// quiescence counters, yield-spin idle loop), on this reproduction host.
/// Keyed (scenario, mode, pes, payload, reliable) → msgs/sec.
const BASELINE: &[(&str, &str, usize, usize, bool, f64)] = &[
    ("pingpong", "det", 2, 16384, true, 588_686.7),
    ("ring", "det", 4, 16384, true, 511_490.5),
    ("pingpong", "det", 2, 8, false, 1_645_618.8),
    ("ring", "det", 4, 8, false, 1_714_576.2),
    ("fanin", "det", 4, 64, false, 5_520_768.6),
    ("pingpong", "threaded", 2, 16384, true, 1_461.4),
    ("ring", "threaded", 4, 8, false, 581_901.1),
    ("pingpong", "det", 2, 8, true, 1_071_591.4),
    ("pingpong", "det", 2, 1024, true, 1_264_567.0),
    ("pingpong", "det", 2, 4096, true, 943_617.9),
    ("pingpong", "det", 2, 65536, true, 154_384.3),
];

fn baseline_of(s: &Scenario) -> Option<f64> {
    BASELINE
        .iter()
        .find(|b| {
            b.0 == s.name && b.1 == s.mode && b.2 == s.pes && b.3 == s.payload && b.4 == s.reliable
        })
        .map(|b| b.5)
}

#[derive(Clone, Copy)]
enum Mode {
    Det,
    Threaded,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Det => "det",
            Mode::Threaded => "threaded",
        }
    }
}

struct Scenario {
    name: &'static str,
    mode: &'static str,
    /// OS processes the machine spans (1 = classic in-process machine).
    procs: usize,
    /// Wire backend carrying inter-process crossings; "in-process" when
    /// every PE shares one address space.
    backend: &'static str,
    pes: usize,
    payload: usize,
    reliable: bool,
    messages: u64,
    /// Handler invocations summed over PEs — must equal `messages` at
    /// quiescence (exactly-once dispatch). Multi-process rows count only
    /// the leader's local PEs, so there the ledger check is global
    /// `messages` agreement instead (asserted by the machine itself).
    delivered: u64,
    wall_ns: u64,
}

impl Scenario {
    fn ns_per_msg(&self) -> f64 {
        self.wall_ns as f64 / self.messages.max(1) as f64
    }
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

fn builder(pes: usize, reliable: bool) -> MachineBuilder {
    let mut mb = MachineBuilder::new(pes)
        .net_model(NetModel::zero())
        .modeled_time(true);
    if reliable {
        // A zero-fault plan still switches every link to the reliable
        // (seq/ack/retransmit) transport — the Converse-like wire path.
        mb = mb.fault_plan(FaultPlan::new(1));
    }
    mb
}

/// Two PEs bounce one message back and forth `rounds` times. The payload
/// is forwarded as received (`msg.data.clone()`) — the classic echo, and
/// the exact pattern payload sharing is built for.
fn pingpong(mode: Mode, payload: usize, reliable: bool, rounds: u64) -> Scenario {
    let mut mb = builder(2, reliable);
    let hops = Arc::new(AtomicU64::new(rounds));
    let hops2 = hops.clone();
    let h = mb.handler(move |pe, msg| {
        if hops2.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok_and(|n| n > 1)
        {
            pe.send(1 - pe.id(), msg.handler, msg.data.clone());
        }
    });
    let init = move |pe: &flows_converse::Pe| {
        if pe.id() == 0 {
            pe.send(1, h, vec![0u8; payload.max(8)]);
        }
    };
    let t0 = flows_sys::time::monotonic_ns();
    let rep = match mode {
        Mode::Det => mb.run_deterministic(init),
        Mode::Threaded => mb.run(init),
    };
    let wall_ns = flows_sys::time::monotonic_ns() - t0;
    Scenario {
        name: "pingpong",
        mode: mode.name(),
        procs: 1,
        backend: "in-process",
        pes: 2,
        payload: payload.max(8),
        reliable,
        messages: rep.messages,
        delivered: rep.pe_delivered.iter().sum(),
        wall_ns,
    }
}

/// A token circles a `pes`-PE ring for `hops` hops, forwarded as
/// received.
fn ring(mode: Mode, pes: usize, payload: usize, reliable: bool, hops: u64) -> Scenario {
    let mut mb = builder(pes, reliable);
    let left = Arc::new(AtomicU64::new(hops));
    let left2 = left.clone();
    let h = mb.handler(move |pe, msg| {
        if left2.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok_and(|n| n > 1)
        {
            pe.send((pe.id() + 1) % pe.num_pes(), msg.handler, msg.data.clone());
        }
    });
    let init = move |pe: &flows_converse::Pe| {
        if pe.id() == 0 {
            pe.send(1, h, vec![0u8; payload.max(8)]);
        }
    };
    let t0 = flows_sys::time::monotonic_ns();
    let rep = match mode {
        Mode::Det => mb.run_deterministic(init),
        Mode::Threaded => mb.run(init),
    };
    let wall_ns = flows_sys::time::monotonic_ns() - t0;
    Scenario {
        name: "ring",
        mode: mode.name(),
        procs: 1,
        backend: "in-process",
        pes,
        payload: payload.max(8),
        reliable,
        messages: rep.messages,
        delivered: rep.pe_delivered.iter().sum(),
        wall_ns,
    }
}

/// Every PE except 0 fires `count` messages at PE 0 (fan-in pressure on
/// one receive queue).
fn fanin(mode: Mode, pes: usize, payload: usize, reliable: bool, count: u64) -> Scenario {
    let mut mb = builder(pes, reliable);
    let sink = Arc::new(AtomicU64::new(0));
    let sink2 = sink.clone();
    let h = mb.handler(move |_pe, msg| {
        sink2.fetch_add(msg.data.len() as u64, Ordering::Relaxed);
    });
    let init = move |pe: &flows_converse::Pe| {
        if pe.id() != 0 {
            for _ in 0..count {
                pe.send(0, h, vec![0u8; payload.max(8)]);
            }
        }
    };
    let t0 = flows_sys::time::monotonic_ns();
    let rep = match mode {
        Mode::Det => mb.run_deterministic(init),
        Mode::Threaded => mb.run(init),
    };
    let wall_ns = flows_sys::time::monotonic_ns() - t0;
    assert_eq!(
        sink.load(Ordering::Relaxed),
        (pes as u64 - 1) * count * payload.max(8) as u64,
        "fan-in lost bytes"
    );
    Scenario {
        name: "fanin",
        mode: mode.name(),
        procs: 1,
        backend: "in-process",
        pes,
        payload: payload.max(8),
        reliable,
        messages: rep.messages,
        delivered: rep.pe_delivered.iter().sum(),
        wall_ns,
    }
}

/// Multi-process message body: comfortably past the inline-payload
/// threshold so a shared-memory delivery is a zero-copy arena view.
const MP_BODY: usize = 256;

/// Hop budget for one multi-process scenario at `k = 1`.
const MP_HOPS: u64 = 200;

fn mp_fill(hops: u64) -> Vec<u8> {
    let mut v = vec![0xA5u8; MP_BODY];
    v[..8].copy_from_slice(&hops.to_le_bytes());
    v
}

/// The SPMD body of one multi-process scenario; every process of the
/// world runs this identical function (handler ids must agree
/// machine-wide). The hop budget travels in the message body — a shared
/// atomic cannot cross process boundaries.
fn mp_one(world: &Arc<World>, name: &'static str, hops: u64) -> Scenario {
    let first_remote = world.pes_per_proc();
    let pingpong = name == "pingpong";
    let mut mb = MachineBuilder::new(world.num_pes())
        .net_model(NetModel::zero())
        .multiproc(world.clone());
    let h = mb.handler(move |pe, msg| {
        let left = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
        if left > 0 {
            let dst = if pingpong {
                msg.src_pe
            } else {
                (pe.id() + 1) % pe.num_pes()
            };
            pe.send(dst, msg.handler, mp_fill(left - 1));
        }
    });
    let t0 = flows_sys::time::monotonic_ns();
    let rep = mb.run(move |pe| {
        if pe.id() == 0 {
            // Pingpong crosses the process boundary every hop (PE 0 on
            // the leader <-> the first PE of process 1); the ring token
            // visits every PE of every process in turn.
            let dst = if pingpong { first_remote } else { 1 % pe.num_pes() };
            pe.send(dst, h, mp_fill(hops));
        }
    });
    let wall_ns = flows_sys::time::monotonic_ns() - t0;
    Scenario {
        name,
        mode: "threaded",
        procs: world.procs(),
        backend: world.backend().as_str(),
        pes: world.num_pes(),
        payload: MP_BODY,
        reliable: false,
        messages: rep.messages,
        delivered: rep.pe_delivered.iter().sum(),
        wall_ns,
    }
}

/// Leader side of the multi-process leg: one fresh `procs × 2` world per
/// (backend, scenario) pair, children re-executing this binary with
/// `--mp-scenario` so they run the matching SPMD body.
fn mp_leg(procs: usize, fast: bool, k: u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for backend in [Backend::Shm, Backend::Uds] {
        let copies_before = flows_net::body_copies();
        for name in ["pingpong", "ring"] {
            let mut args = vec!["--mp-scenario".to_string(), name.to_string()];
            if fast {
                args.push("--fast".to_string());
            }
            let world = TopologySpec::new(procs, 2)
                .backend(backend)
                .child_args(args)
                .launch()
                .unwrap_or_else(|e| panic!("launch {} world: {e}", backend.as_str()));
            out.push(mp_one(&world, name, MP_HOPS * k));
            world.shutdown().expect("children exited clean");
        }
        if backend == Backend::Shm {
            assert_eq!(
                flows_net::body_copies() - copies_before,
                0,
                "shm backend staged body copies on the intra-host bench path"
            );
        }
    }
    out
}

fn main() {
    let fast = arg_flag("fast");
    let json_path = arg_val("json").unwrap_or_else(|| "BENCH_msgpath.json".into());
    let k = if fast { 1 } else { 10 };

    // Child rank of a multi-process leg: join the leader's world, run the
    // one SPMD scenario it named, and exit (no table, no JSON).
    if flows_net::child_rank().is_some() {
        let world = flows_net::attach_from_env().expect("child attach");
        let name: &'static str = match arg_val("mp-scenario").as_deref() {
            Some("pingpong") => "pingpong",
            Some("ring") => "ring",
            other => panic!("child spawned without a known --mp-scenario ({other:?})"),
        };
        mp_one(&world, name, MP_HOPS * k);
        return;
    }
    let processes: usize = arg_val("processes").map_or(0, |v| v.parse().expect("--processes N"));

    let mut results: Vec<Scenario> = vec![
        // Headline scenarios: 16 KiB payloads over the reliable transport
        // in deterministic mode — the paper's "message handling must be
        // cheap" path with the full Converse-like wire protocol engaged.
        pingpong(Mode::Det, 16 * 1024, true, 500 * k),
        ring(Mode::Det, 4, 16 * 1024, true, 500 * k),
        // Raw channels (no protocol), small payloads: dispatch-rate floor.
        pingpong(Mode::Det, 8, false, 2000 * k),
        ring(Mode::Det, 4, 8, false, 2000 * k),
        fanin(Mode::Det, 4, 64, false, 500 * k),
        // Threaded mode: true concurrency (and idle-PE cost) on the host.
        pingpong(Mode::Threaded, 16 * 1024, true, 200 * k),
        ring(Mode::Threaded, 4, 8, false, 500 * k),
    ];
    // Payload-size sweep, deterministic + reliable.
    for size in [8usize, 1024, 4096, 65536] {
        results.push(pingpong(Mode::Det, size, true, 200 * k));
    }
    // Multi-process leg: the same pingpong/ring over real process
    // boundaries, shared-memory rings then Unix sockets.
    if processes >= 2 {
        results.extend(mp_leg(processes, fast, k as u64));
    }

    let mut t = Table::new(&[
        "scenario", "mode", "procs", "backend", "pes", "payload", "reliable", "messages",
        "ns/msg", "msgs/sec", "speedup",
    ]);
    for s in &results {
        if s.procs == 1 {
            assert_eq!(
                s.delivered, s.messages,
                "{}/{}: dispatch count diverged from logical sends",
                s.name, s.mode
            );
        }
        t.row(vec![
            s.name.into(),
            s.mode.into(),
            s.procs.to_string(),
            s.backend.into(),
            s.pes.to_string(),
            s.payload.to_string(),
            s.reliable.to_string(),
            s.messages.to_string(),
            format!("{:.0}", s.ns_per_msg()),
            format!("{:.0}", s.msgs_per_sec()),
            baseline_of(s)
                .map(|b| format!("{:.2}x", s.msgs_per_sec() / b))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print("msgpath: message-path micro-benchmarks");

    let mut json = String::from("{\n  \"bench\": \"msgpath\",\n  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let base = baseline_of(s);
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"processes\": {}, \
             \"backend\": \"{}\", \"pes\": {}, \"payload_bytes\": {}, \
             \"reliable_link\": {}, \"messages\": {}, \"delivered\": {}, \"wall_ns\": {}, \
             \"ns_per_msg\": {:.1}, \"msgs_per_sec\": {:.1}, \"baseline_msgs_per_sec\": {}, \
             \"speedup\": {}}}{}\n",
            s.name,
            s.mode,
            s.procs,
            s.backend,
            s.pes,
            s.payload,
            s.reliable,
            s.messages,
            s.delivered,
            s.wall_ns,
            s.ns_per_msg(),
            s.msgs_per_sec(),
            base.map(|b| format!("{b:.1}")).unwrap_or_else(|| "null".into()),
            base.map(|b| format!("{:.3}", s.msgs_per_sec() / b))
                .unwrap_or_else(|| "null".into()),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write bench json");
    println!("\nwrote {json_path}");
}
