//! trace-export: run a traced AMPI job and emit a Chrome-trace JSON file
//! loadable in `chrome://tracing` or https://ui.perfetto.dev.
//!
//! The default job is a 4-PE, 8-rank ring exchange with RotateLB
//! migrations, one coordinated checkpoint, and a lossy transport plan —
//! so the exported timeline contains thread-lifecycle, context-switch,
//! message, migration, checkpoint, LB-epoch, and fault events all at
//! once.
//!
//! Flags: `--ranks N` / `--pes N` / `--iters N` size the job, `--out
//! PATH` sets the output file (default `trace_chrome.json`), `--seed N`
//! reseeds the fault plan, `--sweep` instead measures trace-derived
//! scheduler utilization for each of the four stack flavors (the
//! EXPERIMENTS.md table).

use flows_bench::{arg_flag, arg_val, bench_pools, Table};
use flows_converse::FaultPlan;
use flows_core::{yield_now, SchedConfig, Scheduler, StackFlavor};
use flows_lb::RotateLb;
use std::sync::Arc;

fn main() {
    if arg_flag("sweep") {
        sweep();
        return;
    }
    let ranks: usize = arg_val("ranks").and_then(|v| v.parse().ok()).unwrap_or(8);
    let pes: usize = arg_val("pes").and_then(|v| v.parse().ok()).unwrap_or(4);
    let iters: usize = arg_val("iters").and_then(|v| v.parse().ok()).unwrap_or(4);
    let seed: u64 = arg_val("seed").and_then(|v| v.parse().ok()).unwrap_or(0x7ace);
    let out = arg_val("out").unwrap_or_else(|| "trace_chrome.json".into());

    let opts = flows_ampi::AmpiOptions::new(ranks, pes)
        .with_strategy(Arc::new(RotateLb))
        .with_faults(FaultPlan::new(seed).drop_prob(0.2))
        .modeled_time(true)
        .tracing(true);
    let report = flows_ampi::run_world(opts, move |a| {
        let next = (a.rank() + 1) % a.size();
        let prev = (a.rank() + a.size() - 1) % a.size();
        for it in 0..iters {
            // Real CPU so context-switch slices have visible width.
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            let (_, _, data) =
                a.sendrecv(next, it as u64, vec![a.rank() as u8; 64], Some(prev), None);
            assert_eq!(data.len(), 64);
            if it == iters / 2 {
                a.checkpoint();
            }
            a.migrate(); // RotateLB moves every rank each epoch
        }
    });

    let json = flows_trace::chrome::chrome_trace_json(&report.trace_rings);
    flows_trace::chrome::validate_json(&json).expect("exporter must emit valid JSON");
    std::fs::write(&out, &json).expect("write chrome trace");

    let sum = report.trace.as_ref().expect("tracing was on");
    let mut t = Table::new(&[
        "PE", "events", "dropped", "switches", "util", "msgs tx/rx", "migs out/in", "ckpts",
        "faults", "syscalls",
    ]);
    for p in &sum.pes {
        t.row(vec![
            p.pe.to_string(),
            p.events.to_string(),
            p.dropped.to_string(),
            p.switches.to_string(),
            format!("{:.3}", p.utilization),
            format!("{}/{}", p.msgs_sent, p.msgs_recv),
            format!("{}/{}", p.migrations_out, p.migrations_in),
            p.checkpoints.to_string(),
            p.faults.to_string(),
            p.syscalls_total.to_string(),
        ]);
    }
    t.print("trace-export: per-PE trace summary");
    println!(
        "\n{} migration records, mean utilization {:.3}",
        sum.migrations.len(),
        sum.mean_utilization()
    );
    println!("wrote {out} — open it at https://ui.perfetto.dev or chrome://tracing");
}

/// Trace-derived scheduler utilization per stack flavor: N threads
/// alternating a fixed spin with a yield, measured entirely from the
/// event ring (SwitchOut bursts / span).
fn sweep() {
    let flows: usize = arg_val("flows").and_then(|v| v.parse().ok()).unwrap_or(64);
    let rounds: usize = arg_val("rounds").and_then(|v| v.parse().ok()).unwrap_or(200);
    flows_trace::set_enabled(true);
    let mut t = Table::new(&["flavor", "switches", "events", "ns/switch", "utilization"]);
    let body = move || {
        for _ in 0..rounds {
            let mut acc = 1u64;
            for i in 0..500u64 {
                acc = acc.wrapping_mul(0x9e3779b97f4a7c15) ^ i;
            }
            std::hint::black_box(acc);
            yield_now();
        }
    };
    for flavor in StackFlavor::ALL {
        let sched = Scheduler::new(0, bench_pools(1, 1 << 20, 1 << 20, flows + 8), {
            SchedConfig::default()
        });
        // Untraced warmup batch: primes stacks, pools and branch history so
        // the first measured flavor isn't charged the process cold start.
        for _ in 0..flows {
            sched.spawn_with(flavor, 32 * 1024, body).expect("spawn warmup thread");
        }
        sched.run();
        let ring = Arc::new(flows_trace::TraceRing::new(0, 1 << 20));
        let _guard = flows_trace::install_ring(&ring);
        for _ in 0..flows {
            sched.spawn_with(flavor, 32 * 1024, body).expect("spawn sweep thread");
        }
        sched.run();
        let sum = flows_trace::summarize_pe(&ring, &mut Vec::new());
        let span = sum.last_ts.saturating_sub(sum.first_ts);
        t.row(vec![
            flavor.name().into(),
            sum.switches.to_string(),
            sum.events.to_string(),
            format!("{:.0}", span as f64 / sum.switches.max(1) as f64),
            format!("{:.3}", sum.utilization),
        ]);
    }
    t.print("trace-export --sweep: trace-derived utilization per stack flavor");
    println!(
        "\nutilization = sum(SwitchOut bursts) / trace span; the remainder \
         is scheduler overhead, so faster-switching flavors sit closer to 1."
    );
}
