//! Scheduler & migration fast-path microbenchmarks: context-switch
//! latency, thread create/exit churn, and threads-migrated/sec for every
//! stack flavor.
//!
//! Writes `BENCH_sched.json` (ops/sec and ns/op per scenario, with the
//! pre-fast-path baseline and speedup where one was recorded).
//!
//! `--fast` shrinks every window (smoke mode); `--json PATH` overrides
//! the output path; `--flavors a,b` restricts the sweep to the named
//! flavors; `--reps N` sets the best-of-N pass count (noise control on
//! shared hosts; fast mode defaults to 1, full mode to 3).
//!
//! `--steal` additionally runs the work-stealing shootout: a zipf-skewed
//! spawn across four in-process scheduler PEs, raced four ways (steal,
//! no-steal, RotateLB, trace-fed GreedyLB) under the modeled-parallel
//! makespan clock (see [`shootout`]), and records `steal_speedup` — the
//! no-steal/steal makespan ratio — in the JSON.

use flows_bench::{arg_flag, arg_val, bench_pools, uthread_switch_bench, Table};
use flows_core::{
    migrate::migrate as migrate_thread, suspend, yield_now, SchedConfig, Scheduler, SharedPools,
    StackFlavor,
};
use flows_lb::{GreedyLb, LbStats, LbStrategy, ObjLoad, RotateLb};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rates measured immediately before the slot-memory fast paths landed
/// (per-switch `MAP_FIXED` remaps through the single shared alias
/// window, per-tenancy slot teardown in isomalloc, eager whole-extent
/// commits), on this reproduction host: mean of three full runs of the
/// pre-change binary, interleaved with the post-change runs so both saw
/// the same host conditions. The earlier memory-alias migrate figure
/// (50.3 ops/s) was bogus — it predated the wire-format fix and timed an
/// error path — so the whole table was re-recorded rather than patching
/// one cell. Keyed (scenario, flavor) → ops/sec.
const BASELINE: &[(&str, &str, f64)] = &[
    ("ctx_switch", "standard", 6_286_328.0),
    ("ctx_switch", "stack-copy", 5_481_582.0),
    ("ctx_switch", "isomalloc", 6_175_205.0),
    ("ctx_switch", "memory-alias", 190_568.0),
    ("churn", "standard", 2_712_758.0),
    ("churn", "stack-copy", 2_762_403.0),
    ("churn", "isomalloc", 224_382.0),
    ("churn", "memory-alias", 97_091.0),
    ("migrate", "stack-copy", 1_235_413.0),
    ("migrate", "isomalloc", 163_671.0),
    ("migrate", "memory-alias", 255_708.0),
];

fn baseline_of(s: &Scenario) -> Option<f64> {
    BASELINE
        .iter()
        .find(|b| b.0 == s.name && b.1 == s.flavor && b.2 > 0.0)
        .map(|b| b.2)
}

struct Scenario {
    name: &'static str,
    flavor: &'static str,
    ops: u64,
    wall_ns: u64,
}

impl Scenario {
    fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

const STACK_LEN: usize = 32 * 1024;

fn pools(pes: usize) -> Arc<SharedPools> {
    bench_pools(pes, 1 << 20, 1 << 20, 512)
}

/// Context-switch latency: `flows` threads yield in a circle for a wall
/// window; ops = scheduler-counted switches.
fn ctx_switch(flavor: StackFlavor, flows: usize, window_ms: u64) -> Scenario {
    let (ns, switches) = uthread_switch_bench(flavor, flows, STACK_LEN, window_ms, pools(1));
    Scenario {
        name: "ctx_switch",
        flavor: flavor.name(),
        ops: switches,
        wall_ns: (ns * switches as f64) as u64,
    }
}

/// Thread create/exit churn: spawn a batch of trivial threads, run them
/// to completion, repeat for a wall window; ops = threads created+reaped.
fn churn(flavor: StackFlavor, batch: usize, window_ms: u64) -> Scenario {
    let shared = pools(1);
    let sched = Scheduler::new(0, shared, SchedConfig::default());
    let spawn_batch = |sched: &Scheduler| {
        for _ in 0..batch {
            sched
                .spawn_with(flavor, STACK_LEN, || {})
                .expect("spawn churn thread");
        }
        sched.run();
    };
    spawn_batch(&sched); // warmup: prime any caches
    let t0 = Instant::now();
    let window = Duration::from_millis(window_ms);
    let mut ops = 0u64;
    while t0.elapsed() < window {
        spawn_batch(&sched);
        ops += batch as u64;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(sched.thread_count(), 0, "churn left live threads");
    Scenario {
        name: "churn",
        flavor: flavor.name(),
        ops,
        wall_ns,
    }
}

/// Migration throughput: `threads` suspended workers bounce between two
/// PEs via the full pack → wire bytes → unpack path for a wall window;
/// ops = threads migrated. Afterwards every worker must still finish
/// correctly on whichever PE it ended up on.
fn migrate(flavor: StackFlavor, threads: usize, window_ms: u64) -> Scenario {
    let shared = pools(2);
    let pe: Vec<Scheduler> = (0..2)
        .map(|i| Scheduler::new(i, shared.clone(), SchedConfig::default()))
        .collect();
    let stop = Rc::new(Cell::new(false));
    let done = Rc::new(Cell::new(0u32));
    let mut tids = Vec::new();
    for _ in 0..threads {
        let stop = stop.clone();
        let done = done.clone();
        let tid = pe[0]
            .spawn_with(flavor, STACK_LEN, move || {
                while !stop.get() {
                    suspend(); // ---- migrations happen here ----
                }
                done.set(done.get() + 1);
            })
            .expect("spawn migration worker");
        tids.push(tid);
    }
    pe[0].run(); // everyone suspended, stacks live
    let mut src = 0usize;
    let hop = |src: usize, count: &mut u64| {
        let dst = 1 - src;
        for &tid in &tids {
            let packed = pe[src].pack_thread(tid).expect("pack");
            let bytes = packed.to_bytes();
            let arrived = flows_core::PackedThread::from_bytes(&bytes).expect("wire");
            pe[dst].unpack_thread(arrived).expect("unpack");
            *count += 1;
        }
    };
    let mut warm = 0u64;
    hop(src, &mut warm); // warmup round trip
    hop(1 - src, &mut warm);
    let t0 = Instant::now();
    let window = Duration::from_millis(window_ms);
    let mut ops = 0u64;
    while t0.elapsed() < window {
        hop(src, &mut ops);
        src = 1 - src;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    // The moved threads must still be intact: wake them where they sit.
    stop.set(true);
    for &tid in &tids {
        pe[src].awaken_tid(tid).expect("awaken after migration");
    }
    pe[src].run();
    assert_eq!(done.get(), threads as u32, "migrated threads lost work");
    Scenario {
        name: "migrate",
        flavor: flavor.name(),
        ops,
        wall_ns,
    }
}

/// How the shootout fights a skewed spawn: do nothing, steal, or run a
/// periodic measurement-based balancer.
enum Arm {
    NoSteal,
    Steal,
    Lb(&'static dyn LbStrategy),
}

const SHOOT_PES: usize = 4;
/// Scheduler steps each PE may take per modeled round (the BSP quantum).
const SHOOT_BURST: usize = 64;
/// Rounds between LB epochs in the `Arm::Lb` arms.
const LB_EPOCH: usize = 8;

/// Per-yield compute for a shootout worker — enough arithmetic that the
/// makespan measures work distribution, not pure switch overhead.
#[inline(never)]
fn spin_work(iters: u32) -> u64 {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x)
}

/// Deterministic heavy-head placement: ~80/10/6/4 percent of workers
/// land on PEs 0..4 (splitmix64 of the worker index, so every arm sees
/// the identical skew). The 80% head puts the no-balancing makespan at
/// ~3.2x the perfectly-spread one, leaving room for each policy's real
/// overhead to show.
fn skew_place(idx: usize) -> usize {
    let mut x = (idx as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xDA94_2042_E4DD_58B5);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    match x % 100 {
        0..=79 => 0,
        80..=89 => 1,
        90..=95 => 2,
        _ => 3,
    }
}

/// Measured cost of one worker slice (spin work + context switch) on an
/// uncontended single-PE scheduler. The minimum over several trials
/// rejects OS preemption on a loaded host; every shootout arm is charged
/// with the same figure, so any residual bias cancels in the ratios.
fn calibrate_slice_ns(spin: u32) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let shared = pools(1);
        let s = Scheduler::new(0, shared, SchedConfig::default());
        for _ in 0..16 {
            s.spawn_with(StackFlavor::Isomalloc, STACK_LEN, move || {
                for _ in 0..32 {
                    spin_work(spin);
                    yield_now();
                }
            })
            .expect("spawn calibration worker");
        }
        let t0 = Instant::now();
        s.run();
        best = best.min((t0.elapsed().as_nanos() as u64 / (16 * 32)).max(1));
    }
    best
}

/// Work-stealing shootout under the modeled-parallel makespan clock.
///
/// The host may have a single CPU, so the four scheduler PEs run
/// interleaved on one OS thread and parallelism is *modeled* BigSim
/// style: execution proceeds in BSP rounds of at most [`SHOOT_BURST`]
/// scheduler steps per PE, and the modeled wall clock advances by the
/// *maximum* per-PE cost of each round — the critical path a real 4-core
/// node would see. A PE's round cost is its burst steps charged at the
/// calibrated uniform slice cost (steps are identical spins by
/// construction, so counting them is immune to OS preemption noise)
/// plus the wall-timed steal-protocol or LB-migration work it actually
/// performed. All four arms share the clock, the skewed placement, and
/// the worker bodies, so the reported ratios isolate the policy.
fn shootout(
    name: &'static str,
    arm: Arm,
    workers: usize,
    yields: usize,
    spin: u32,
    slice_ns: u64,
) -> Scenario {
    let shared = pools(SHOOT_PES);
    let pes: Vec<Scheduler> = (0..SHOOT_PES)
        .map(|i| Scheduler::new(i, shared.clone(), SchedConfig::default()))
        .collect();
    let done = Rc::new(Cell::new(0u64));
    let mut tids = Vec::with_capacity(workers);
    // Current location of each worker; only the LB arms maintain it
    // (steals move threads behind the snapshot's back, but no arm both
    // steals and balances).
    let mut loc = Vec::with_capacity(workers);
    for i in 0..workers {
        let p = skew_place(i);
        let done = done.clone();
        let tid = pes[p]
            .spawn_with(StackFlavor::Isomalloc, STACK_LEN, move || {
                for _ in 0..yields {
                    spin_work(spin);
                    yield_now();
                }
                done.set(done.get() + 1);
            })
            .expect("spawn shootout worker");
        tids.push(tid);
        loc.push(p);
    }
    let mesh = shared.steal();
    let mut wall_ns = 0u64;
    let mut round = 0usize;
    while pes.iter().any(|s| s.thread_count() > 0) || mesh.in_flight() > 0 {
        let mut busy = [0u64; SHOOT_PES];
        match arm {
            Arm::NoSteal => {}
            Arm::Steal => {
                // One protocol cycle per round: publish loads, idle PEs
                // request, victims donate, thieves absorb — each leg
                // charged to the PE that does the work.
                for (i, s) in pes.iter().enumerate() {
                    s.publish_steal_load();
                    if s.thread_count() == 0 {
                        let t0 = Instant::now();
                        s.request_steal();
                        busy[i] += t0.elapsed().as_nanos() as u64;
                    }
                }
                for (i, s) in pes.iter().enumerate() {
                    if mesh.has_requests(i) {
                        let t0 = Instant::now();
                        s.donate_steals();
                        busy[i] += t0.elapsed().as_nanos() as u64;
                    }
                }
                for (i, s) in pes.iter().enumerate() {
                    if s.steal_inbox_len() > 0 {
                        let t0 = Instant::now();
                        s.absorb_steals();
                        busy[i] += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
            Arm::Lb(strat) => {
                if round > 0 && round.is_multiple_of(LB_EPOCH) {
                    // Trace-fed snapshot: the trace says every worker
                    // costs the same per round, so each live worker is
                    // one unit of load at its tracked location.
                    let objs: Vec<ObjLoad> = (0..workers)
                        .filter(|&i| pes[loc[i]].state(tids[i]).is_some())
                        .map(|i| ObjLoad {
                            id: i as u64,
                            pe: loc[i],
                            load: 1.0,
                            migratable: true,
                        })
                        .collect();
                    let stats = LbStats {
                        num_pes: SHOOT_PES,
                        objs,
                        background: Vec::new(),
                    };
                    for m in strat.decide(&stats) {
                        let i = m.obj as usize;
                        // Charged to the source PE: pack dominates, and
                        // on a real machine the destination overlaps the
                        // unpack with its own burst.
                        let t0 = Instant::now();
                        let moved = migrate_thread(&pes[m.from], &pes[m.to], tids[i]).is_ok();
                        busy[m.from] += t0.elapsed().as_nanos() as u64;
                        if moved {
                            loc[i] = m.to;
                        }
                    }
                }
            }
        }
        for (i, s) in pes.iter().enumerate() {
            let mut steps = 0u64;
            for _ in 0..SHOOT_BURST {
                if !s.step() {
                    break;
                }
                steps += 1;
            }
            busy[i] += steps * slice_ns;
        }
        wall_ns += busy.iter().max().copied().unwrap_or(0);
        round += 1;
    }
    assert_eq!(done.get(), workers as u64, "{name}: shootout lost workers");
    Scenario {
        name,
        flavor: "isomalloc",
        ops: workers as u64 * yields as u64,
        wall_ns: wall_ns.max(1),
    }
}

/// Parse `--flavors a,b,c` (names as in [`StackFlavor::name`]) into a
/// sweep list; absent or empty means all four.
fn flavor_sweep() -> Vec<StackFlavor> {
    let Some(spec) = arg_val("flavors") else {
        return StackFlavor::ALL.to_vec();
    };
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match StackFlavor::ALL.iter().find(|f| f.name() == part) {
            Some(f) => out.push(*f),
            None => {
                eprintln!(
                    "unknown flavor {part:?}; expected one of: {}",
                    StackFlavor::ALL.map(|f| f.name()).join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        StackFlavor::ALL.to_vec()
    } else {
        out
    }
}

/// Best-of-`reps` for one scenario: host noise (frequency scaling, cache
/// state, sibling load) only ever subtracts throughput, so the max over a
/// few passes is the stable estimator for a microbench this short.
fn best_of(reps: usize, mut run: impl FnMut() -> Scenario) -> Scenario {
    let mut best = run();
    for _ in 1..reps {
        let s = run();
        if s.ops_per_sec() > best.ops_per_sec() {
            best = s;
        }
    }
    best
}

fn main() {
    let fast = arg_flag("fast");
    let json_path = arg_val("json").unwrap_or_else(|| "BENCH_sched.json".into());
    let (w, default_reps) = if fast { (40, 1) } else { (250, 3) };
    let reps: usize = arg_val("reps")
        .map(|v| v.parse().expect("--reps takes a positive integer"))
        .unwrap_or(default_reps)
        .max(1);
    let sweep = flavor_sweep();

    let mut results: Vec<Scenario> = Vec::new();
    for &flavor in &sweep {
        results.push(best_of(reps, || ctx_switch(flavor, 16, w)));
    }
    for &flavor in &sweep {
        results.push(best_of(reps, || churn(flavor, 64, w)));
    }
    for &flavor in sweep.iter().filter(|f| f.migratable()) {
        results.push(best_of(reps, || migrate(flavor, 32, w)));
    }
    if arg_flag("steal") {
        let (workers, yields, spin) = if fast { (96, 48, 1024) } else { (256, 160, 2048) };
        let slice_ns = calibrate_slice_ns(spin);
        type ArmMk = fn() -> Arm;
        let arms: [(&'static str, ArmMk); 4] = [
            ("nosteal_skew", || Arm::NoSteal),
            ("steal_skew", || Arm::Steal),
            ("lb_rotate_skew", || Arm::Lb(&RotateLb)),
            ("lb_greedy_skew", || Arm::Lb(&GreedyLb)),
        ];
        for (name, mk) in arms {
            results.push(best_of(reps, || {
                shootout(name, mk(), workers, yields, spin, slice_ns)
            }));
        }
    }

    let mut t = Table::new(&["scenario", "flavor", "ops", "ns/op", "ops/sec", "speedup"]);
    for s in &results {
        t.row(vec![
            s.name.into(),
            s.flavor.into(),
            s.ops.to_string(),
            format!("{:.0}", s.ns_per_op()),
            format!("{:.0}", s.ops_per_sec()),
            baseline_of(s)
                .map(|b| format!("{:.2}x", s.ops_per_sec() / b))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print("sched_migrate: scheduler & migration fast-path micro-benchmarks");

    let mut json = String::from("{\n  \"bench\": \"sched_migrate\",\n  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let base = baseline_of(s);
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"flavor\": \"{}\", \"ops\": {}, \"wall_ns\": {}, \
             \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.1}, \"baseline_ops_per_sec\": {}, \
             \"speedup\": {}}}{}\n",
            s.name,
            s.flavor,
            s.ops,
            s.wall_ns,
            s.ns_per_op(),
            s.ops_per_sec(),
            base.map(|b| format!("{b:.1}")).unwrap_or_else(|| "null".into()),
            base.map(|b| format!("{:.3}", s.ops_per_sec() / b))
                .unwrap_or_else(|| "null".into()),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    // Makespan ratio of the skewed shootout: how much faster the node
    // clears the same work with stealing on (present only under --steal).
    let find = |n: &str| results.iter().find(|s| s.name == n);
    let steal_speedup = match (find("steal_skew"), find("nosteal_skew")) {
        (Some(st), Some(no)) => Some(no.wall_ns as f64 / st.wall_ns.max(1) as f64),
        _ => None,
    };
    json.push_str(&format!(
        "  ],\n  \"steal_speedup\": {}\n}}\n",
        steal_speedup
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "null".into())
    ));
    if let Some(x) = steal_speedup {
        println!("\nsteal_speedup (nosteal_skew / steal_skew makespan): {x:.2}x");
    }
    std::fs::write(&json_path, json).expect("write bench json");
    println!("\nwrote {json_path}");
}
