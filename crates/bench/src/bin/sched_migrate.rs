//! Scheduler & migration fast-path microbenchmarks: context-switch
//! latency, thread create/exit churn, and threads-migrated/sec for every
//! stack flavor.
//!
//! Writes `BENCH_sched.json` (ops/sec and ns/op per scenario, with the
//! pre-fast-path baseline and speedup where one was recorded).
//!
//! `--fast` shrinks every window (smoke mode); `--json PATH` overrides
//! the output path; `--flavors a,b` restricts the sweep to the named
//! flavors; `--reps N` sets the best-of-N pass count (noise control on
//! shared hosts; fast mode defaults to 1, full mode to 3).

use flows_bench::{arg_flag, arg_val, bench_pools, uthread_switch_bench, Table};
use flows_core::{suspend, SchedConfig, Scheduler, SharedPools, StackFlavor};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rates measured immediately before the slot-memory fast paths landed
/// (per-switch `MAP_FIXED` remaps through the single shared alias
/// window, per-tenancy slot teardown in isomalloc, eager whole-extent
/// commits), on this reproduction host: mean of three full runs of the
/// pre-change binary, interleaved with the post-change runs so both saw
/// the same host conditions. The earlier memory-alias migrate figure
/// (50.3 ops/s) was bogus — it predated the wire-format fix and timed an
/// error path — so the whole table was re-recorded rather than patching
/// one cell. Keyed (scenario, flavor) → ops/sec.
const BASELINE: &[(&str, &str, f64)] = &[
    ("ctx_switch", "standard", 6_286_328.0),
    ("ctx_switch", "stack-copy", 5_481_582.0),
    ("ctx_switch", "isomalloc", 6_175_205.0),
    ("ctx_switch", "memory-alias", 190_568.0),
    ("churn", "standard", 2_712_758.0),
    ("churn", "stack-copy", 2_762_403.0),
    ("churn", "isomalloc", 224_382.0),
    ("churn", "memory-alias", 97_091.0),
    ("migrate", "stack-copy", 1_235_413.0),
    ("migrate", "isomalloc", 163_671.0),
    ("migrate", "memory-alias", 255_708.0),
];

fn baseline_of(s: &Scenario) -> Option<f64> {
    BASELINE
        .iter()
        .find(|b| b.0 == s.name && b.1 == s.flavor && b.2 > 0.0)
        .map(|b| b.2)
}

struct Scenario {
    name: &'static str,
    flavor: &'static str,
    ops: u64,
    wall_ns: u64,
}

impl Scenario {
    fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

const STACK_LEN: usize = 32 * 1024;

fn pools(pes: usize) -> Arc<SharedPools> {
    bench_pools(pes, 1 << 20, 1 << 20, 512)
}

/// Context-switch latency: `flows` threads yield in a circle for a wall
/// window; ops = scheduler-counted switches.
fn ctx_switch(flavor: StackFlavor, flows: usize, window_ms: u64) -> Scenario {
    let (ns, switches) = uthread_switch_bench(flavor, flows, STACK_LEN, window_ms, pools(1));
    Scenario {
        name: "ctx_switch",
        flavor: flavor.name(),
        ops: switches,
        wall_ns: (ns * switches as f64) as u64,
    }
}

/// Thread create/exit churn: spawn a batch of trivial threads, run them
/// to completion, repeat for a wall window; ops = threads created+reaped.
fn churn(flavor: StackFlavor, batch: usize, window_ms: u64) -> Scenario {
    let shared = pools(1);
    let sched = Scheduler::new(0, shared, SchedConfig::default());
    let spawn_batch = |sched: &Scheduler| {
        for _ in 0..batch {
            sched
                .spawn_with(flavor, STACK_LEN, || {})
                .expect("spawn churn thread");
        }
        sched.run();
    };
    spawn_batch(&sched); // warmup: prime any caches
    let t0 = Instant::now();
    let window = Duration::from_millis(window_ms);
    let mut ops = 0u64;
    while t0.elapsed() < window {
        spawn_batch(&sched);
        ops += batch as u64;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(sched.thread_count(), 0, "churn left live threads");
    Scenario {
        name: "churn",
        flavor: flavor.name(),
        ops,
        wall_ns,
    }
}

/// Migration throughput: `threads` suspended workers bounce between two
/// PEs via the full pack → wire bytes → unpack path for a wall window;
/// ops = threads migrated. Afterwards every worker must still finish
/// correctly on whichever PE it ended up on.
fn migrate(flavor: StackFlavor, threads: usize, window_ms: u64) -> Scenario {
    let shared = pools(2);
    let pe: Vec<Scheduler> = (0..2)
        .map(|i| Scheduler::new(i, shared.clone(), SchedConfig::default()))
        .collect();
    let stop = Rc::new(Cell::new(false));
    let done = Rc::new(Cell::new(0u32));
    let mut tids = Vec::new();
    for _ in 0..threads {
        let stop = stop.clone();
        let done = done.clone();
        let tid = pe[0]
            .spawn_with(flavor, STACK_LEN, move || {
                while !stop.get() {
                    suspend(); // ---- migrations happen here ----
                }
                done.set(done.get() + 1);
            })
            .expect("spawn migration worker");
        tids.push(tid);
    }
    pe[0].run(); // everyone suspended, stacks live
    let mut src = 0usize;
    let hop = |src: usize, count: &mut u64| {
        let dst = 1 - src;
        for &tid in &tids {
            let packed = pe[src].pack_thread(tid).expect("pack");
            let bytes = packed.to_bytes();
            let arrived = flows_core::PackedThread::from_bytes(&bytes).expect("wire");
            pe[dst].unpack_thread(arrived).expect("unpack");
            *count += 1;
        }
    };
    let mut warm = 0u64;
    hop(src, &mut warm); // warmup round trip
    hop(1 - src, &mut warm);
    let t0 = Instant::now();
    let window = Duration::from_millis(window_ms);
    let mut ops = 0u64;
    while t0.elapsed() < window {
        hop(src, &mut ops);
        src = 1 - src;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    // The moved threads must still be intact: wake them where they sit.
    stop.set(true);
    for &tid in &tids {
        pe[src].awaken_tid(tid).expect("awaken after migration");
    }
    pe[src].run();
    assert_eq!(done.get(), threads as u32, "migrated threads lost work");
    Scenario {
        name: "migrate",
        flavor: flavor.name(),
        ops,
        wall_ns,
    }
}

/// Parse `--flavors a,b,c` (names as in [`StackFlavor::name`]) into a
/// sweep list; absent or empty means all four.
fn flavor_sweep() -> Vec<StackFlavor> {
    let Some(spec) = arg_val("flavors") else {
        return StackFlavor::ALL.to_vec();
    };
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match StackFlavor::ALL.iter().find(|f| f.name() == part) {
            Some(f) => out.push(*f),
            None => {
                eprintln!(
                    "unknown flavor {part:?}; expected one of: {}",
                    StackFlavor::ALL.map(|f| f.name()).join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        StackFlavor::ALL.to_vec()
    } else {
        out
    }
}

/// Best-of-`reps` for one scenario: host noise (frequency scaling, cache
/// state, sibling load) only ever subtracts throughput, so the max over a
/// few passes is the stable estimator for a microbench this short.
fn best_of(reps: usize, mut run: impl FnMut() -> Scenario) -> Scenario {
    let mut best = run();
    for _ in 1..reps {
        let s = run();
        if s.ops_per_sec() > best.ops_per_sec() {
            best = s;
        }
    }
    best
}

fn main() {
    let fast = arg_flag("fast");
    let json_path = arg_val("json").unwrap_or_else(|| "BENCH_sched.json".into());
    let (w, default_reps) = if fast { (40, 1) } else { (250, 3) };
    let reps: usize = arg_val("reps")
        .map(|v| v.parse().expect("--reps takes a positive integer"))
        .unwrap_or(default_reps)
        .max(1);
    let sweep = flavor_sweep();

    let mut results: Vec<Scenario> = Vec::new();
    for &flavor in &sweep {
        results.push(best_of(reps, || ctx_switch(flavor, 16, w)));
    }
    for &flavor in &sweep {
        results.push(best_of(reps, || churn(flavor, 64, w)));
    }
    for &flavor in sweep.iter().filter(|f| f.migratable()) {
        results.push(best_of(reps, || migrate(flavor, 32, w)));
    }

    let mut t = Table::new(&["scenario", "flavor", "ops", "ns/op", "ops/sec", "speedup"]);
    for s in &results {
        t.row(vec![
            s.name.into(),
            s.flavor.into(),
            s.ops.to_string(),
            format!("{:.0}", s.ns_per_op()),
            format!("{:.0}", s.ops_per_sec()),
            baseline_of(s)
                .map(|b| format!("{:.2}x", s.ops_per_sec() / b))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print("sched_migrate: scheduler & migration fast-path micro-benchmarks");

    let mut json = String::from("{\n  \"bench\": \"sched_migrate\",\n  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let base = baseline_of(s);
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"flavor\": \"{}\", \"ops\": {}, \"wall_ns\": {}, \
             \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.1}, \"baseline_ops_per_sec\": {}, \
             \"speedup\": {}}}{}\n",
            s.name,
            s.flavor,
            s.ops,
            s.wall_ns,
            s.ns_per_op(),
            s.ops_per_sec(),
            base.map(|b| format!("{b:.1}")).unwrap_or_else(|| "null".into()),
            base.map(|b| format!("{:.3}", s.ops_per_sec() / b))
                .unwrap_or_else(|| "null".into()),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write bench json");
    println!("\nwrote {json_path}");
}
