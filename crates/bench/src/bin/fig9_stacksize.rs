//! Figure 9: context-switch time vs stack size for the three migratable
//! thread techniques (stack-copy, isomalloc, memory-alias).
//!
//! Threads pin 8 KB – 8 MB of live stack (the paper used `alloca()`) and
//! then yield in a circle. Expected shape: stack-copy cost grows linearly
//! with live stack (unusable past ~20 KB); isomalloc is flat; memory
//! aliasing is a flat few µs (one mmap per switch), independent of stack.

use flows_bench::{arg_val, bench_pools, with_stack_bytes, Table};
use flows_core::{yield_now, SchedConfig, Scheduler, StackFlavor};
use std::cell::Cell;
use std::rc::Rc;

fn bench_flavor(
    flavor: StackFlavor,
    live_stack: usize,
    window_ms: u64,
) -> (f64, u64) {
    // Region/frame/slot sizes big enough for 8 MB live stacks + margin.
    let pools = bench_pools(1, 16 << 20, 32 << 20, 8);
    let sched = Scheduler::new(
        0,
        pools,
        SchedConfig {
            stack_len: 12 << 20,
            ..SchedConfig::default()
        },
    );
    let stop = Rc::new(Cell::new(false));
    for _ in 0..2 {
        let stop = stop.clone();
        sched
            .spawn(flavor, move || {
                with_stack_bytes(live_stack, || {
                    while !stop.get() {
                        yield_now();
                    }
                })
            })
            .expect("spawn");
    }
    for _ in 0..16 {
        sched.step();
    }
    let s0 = sched.stats().switches;
    let t0 = std::time::Instant::now();
    let window = std::time::Duration::from_millis(window_ms);
    while t0.elapsed() < window {
        for _ in 0..8 {
            sched.step();
        }
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    let switches = sched.stats().switches - s0;
    stop.set(true);
    sched.run();
    (elapsed as f64 / switches.max(1) as f64, switches)
}

fn main() {
    let window: u64 = arg_val("window-ms").and_then(|v| v.parse().ok()).unwrap_or(120);
    let sizes: &[usize] = &[
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
    ];
    let mut t = Table::new(&["stack bytes", "stack-copy ns", "isomalloc ns", "memory-alias ns"]);
    for &s in sizes {
        let (copy_ns, _) = bench_flavor(StackFlavor::StackCopy, s, window);
        let (iso_ns, _) = bench_flavor(StackFlavor::Isomalloc, s, window);
        let (alias_ns, _) = bench_flavor(StackFlavor::Alias, s, window);
        t.row(vec![
            s.to_string(),
            format!("{copy_ns:.0}"),
            format!("{iso_ns:.0}"),
            format!("{alias_ns:.0}"),
        ]);
    }
    t.print("Figure 9: context switch time vs live stack size (three migratable techniques)");
    println!(
        "\nexpected shape (paper): stack-copy grows ~linearly with live \
         stack and becomes unusable past ~20 KB; isomalloc is flat and \
         fastest; memory-alias is a flat mmap cost (~4 µs in 2006), \
         slightly growing, far below stack-copy for large stacks."
    );
}
