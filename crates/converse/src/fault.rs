//! Deterministic fault injection: transport faults (drop / duplicate /
//! delay / reorder) and PE faults (stall, crash).
//!
//! A [`FaultPlan`] is attached to a [`crate::MachineBuilder`] before the
//! machine starts. Every fault decision is a pure function of
//! `(seed, src, dest, link_seq, attempt)`, so a plan produces the *same*
//! fault schedule in both drive modes and across repeated runs — faults
//! are reproducible test inputs, not noise.
//!
//! Attaching a plan (even an all-zero one) switches every cross-PE link to
//! a reliable transport: per-link sequence numbers, cumulative acks,
//! timeout-based retransmission with exponential backoff, duplicate
//! suppression and in-order reassembly (see `link.rs`). Without a plan the
//! machine uses the raw lossless channels with zero protocol overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Crash PE `pe` once its virtual clock reaches `at_vtime_ns`. The PE
/// stops executing (messages to it are never delivered) and the run aborts
/// with [`crate::MachineReport::crashed`] set — recovery is the job of a
/// layer above (see `flows-ampi`'s checkpoint/restart driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeCrash {
    /// The PE that fails.
    pub pe: usize,
    /// Virtual time (ns) at which the failure triggers.
    pub at_vtime_ns: u64,
}

/// Stall PE `pe` for `for_steps` scheduler-loop iterations once its
/// virtual clock reaches `at_vtime_ns`: it delivers no messages and runs
/// no threads while stalled, then resumes. Models a transient hiccup
/// (OS preemption, memory pressure) rather than a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeStall {
    /// The PE that stalls.
    pub pe: usize,
    /// Virtual time (ns) at which the stall begins.
    pub at_vtime_ns: u64,
    /// Number of pump iterations the PE skips.
    pub for_steps: u64,
}

/// A deterministic, seeded schedule of faults to inject into a machine.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all per-packet fault decisions.
    pub seed: u64,
    /// Probability a data transmission is dropped (each attempt rolls
    /// independently, so retransmissions eventually get through).
    pub drop_prob: f64,
    /// Probability a data transmission is sent twice.
    pub dup_prob: f64,
    /// Probability a message's modeled arrival is delayed by `delay_ns`.
    pub delay_prob: f64,
    /// Extra modeled latency (ns) applied to delayed messages.
    pub delay_ns: u64,
    /// Probability a message is held back and sent after the *next*
    /// message to the same destination (link-level reordering).
    pub reorder_prob: f64,
    /// Scripted PE crashes.
    pub crashes: Vec<PeCrash>,
    /// Scripted PE stalls.
    pub stalls: Vec<PeStall>,
    /// Online recovery mode: a scripted crash no longer aborts the run.
    /// Survivors detect the failure with the phi-accrual detector, write
    /// off undeliverable traffic, and invoke the registered
    /// death-confirmed upcall (the AMPI layer's rollback/respawn
    /// protocol). Only supported under deterministic drive.
    pub online: bool,
    /// Virtual-time heartbeat period for the failure detector (active only
    /// when `online`).
    pub heartbeat_ns: u64,
    /// Phi threshold at which a silent peer becomes *suspected*.
    pub phi_suspect: f64,
    /// Phi threshold at which the recovery leader *confirms* a suspected
    /// peer dead and fences it.
    pub phi_confirm: f64,
    /// Buddy-replication degree k: each PE ships its checkpoint images to
    /// its next k live ring successors (consumed by the AMPI layer).
    pub replication: usize,
}

impl FaultPlan {
    /// A plan with the given seed and no faults. Attaching it still
    /// enables the reliable transport (useful to measure pure protocol
    /// overhead).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_ns: 0,
            reorder_prob: 0.0,
            crashes: Vec::new(),
            stalls: Vec::new(),
            online: false,
            heartbeat_ns: 0,
            phi_suspect: 4.0,
            phi_confirm: 8.0,
            replication: 1,
        }
    }

    /// Enable online recovery with buddy-replication degree `k`: crashes
    /// are detected and healed in place instead of aborting the run. Also
    /// arms the heartbeat clock with a default period if none was set.
    pub fn online_recovery(mut self, k: usize) -> Self {
        assert!(k >= 1, "replication degree must be at least 1");
        self.online = true;
        self.replication = k;
        if self.heartbeat_ns == 0 {
            self.heartbeat_ns = 100_000;
        }
        self
    }

    /// Set the failure-detector heartbeat period (virtual ns).
    pub fn heartbeat_every(mut self, ns: u64) -> Self {
        assert!(ns > 0, "heartbeat period must be positive");
        self.heartbeat_ns = ns;
        self
    }

    /// Set the phi-accrual suspicion and confirmation thresholds.
    pub fn phi_thresholds(mut self, suspect: f64, confirm: f64) -> Self {
        assert!(suspect > 0.0 && confirm >= suspect);
        self.phi_suspect = suspect;
        self.phi_confirm = confirm;
        self
    }

    /// Set the per-transmission drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        self.drop_prob = p;
        self
    }

    /// Set the per-transmission duplication probability.
    pub fn dup_prob(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Set the per-message delay probability and the delay amount.
    pub fn delay(mut self, p: f64, delay_ns: u64) -> Self {
        self.delay_prob = p;
        self.delay_ns = delay_ns;
        self
    }

    /// Set the per-message reorder probability.
    pub fn reorder_prob(mut self, p: f64) -> Self {
        self.reorder_prob = p;
        self
    }

    /// Script a PE crash at a virtual time.
    pub fn crash_pe(mut self, pe: usize, at_vtime_ns: u64) -> Self {
        self.crashes.push(PeCrash { pe, at_vtime_ns });
        self
    }

    /// Script a whole-process crash in a multi-process machine: every PE
    /// hosted by process `proc` (ranks are `pes_per_proc` wide) crashes at
    /// the same virtual time, and the surviving processes detect, write
    /// off, and heal the loss. Whole-process failure units need buddy
    /// images to land off-process: pair this with
    /// [`FaultPlan::online_recovery`]`(k)` where `k >= pes_per_proc`.
    pub fn crash_process(mut self, proc: usize, pes_per_proc: usize, at_vtime_ns: u64) -> Self {
        for pe in proc * pes_per_proc..(proc + 1) * pes_per_proc {
            self.crashes.push(PeCrash { pe, at_vtime_ns });
        }
        self
    }

    /// Script a PE stall at a virtual time.
    pub fn stall_pe(mut self, pe: usize, at_vtime_ns: u64, for_steps: u64) -> Self {
        self.stalls.push(PeStall {
            pe,
            at_vtime_ns,
            for_steps,
        });
        self
    }

    /// The scripted crash for `pe`, if any (first match wins).
    pub(crate) fn crash_for(&self, pe: usize) -> Option<&PeCrash> {
        self.crashes.iter().find(|c| c.pe == pe)
    }

    /// The scripted stall for `pe`, if any (first match wins).
    pub(crate) fn stall_for(&self, pe: usize) -> Option<&PeStall> {
        self.stalls.iter().find(|s| s.pe == pe)
    }

    /// Deterministic uniform roll in [0,1) for one fault decision.
    fn roll(&self, kind: u64, src: usize, dest: usize, seq: u64, attempt: u32) -> f64 {
        let mut x = self.seed
            ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (src as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ (dest as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        // splitmix64 finalizer: decorrelates the xor-mixed inputs.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(crate) fn drop_roll(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> bool {
        self.drop_prob > 0.0 && self.roll(1, src, dest, seq, attempt) < self.drop_prob
    }

    pub(crate) fn dup_roll(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> bool {
        self.dup_prob > 0.0 && self.roll(2, src, dest, seq, attempt) < self.dup_prob
    }

    pub(crate) fn delay_roll(&self, src: usize, dest: usize, seq: u64) -> bool {
        self.delay_prob > 0.0 && self.roll(3, src, dest, seq, 0) < self.delay_prob
    }

    pub(crate) fn reorder_roll(&self, src: usize, dest: usize, seq: u64) -> bool {
        self.reorder_prob > 0.0 && self.roll(4, src, dest, seq, 0) < self.reorder_prob
    }

    /// Deterministic retransmission jitter in [0,1): de-synchronizes the
    /// backoff clocks of senders that timed out together (e.g. everyone
    /// waiting on one stalled PE), so recovery is not a retransmit storm.
    pub(crate) fn jitter_roll(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> f64 {
        self.roll(5, src, dest, seq, attempt)
    }

    /// Heartbeats ride the same lossy wire as data: drop decisions reuse
    /// the plan's drop probability under an independent stream.
    pub(crate) fn hb_drop_roll(&self, src: usize, dest: usize, hb_seq: u64) -> bool {
        self.drop_prob > 0.0 && self.roll(6, src, dest, hb_seq, 0) < self.drop_prob
    }
}

/// Machine-wide fault/recovery counters (shared by all PEs, readable
/// after the run through [`crate::MachineReport::faults`]).
#[derive(Debug, Default)]
pub struct FaultStats {
    pub(crate) dropped: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) delayed: AtomicU64,
    pub(crate) reordered: AtomicU64,
    pub(crate) retransmits: AtomicU64,
    pub(crate) dup_dropped: AtomicU64,
    pub(crate) acks: AtomicU64,
    pub(crate) data_packets: AtomicU64,
    pub(crate) stalled_steps: AtomicU64,
    pub(crate) retransmits_capped: AtomicU64,
    pub(crate) heartbeats: AtomicU64,
    /// Logical messages written off as undeliverable because their sender
    /// or receiver is confirmed dead (online mode). The quiescence fixpoint
    /// becomes `sent == recv + written_off`.
    pub(crate) written_off: AtomicU64,
}

impl FaultStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_by(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// A plain-value snapshot of the counters.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dup_dropped: self.dup_dropped.load(Ordering::Relaxed),
            acks: self.acks.load(Ordering::Relaxed),
            data_packets: self.data_packets.load(Ordering::Relaxed),
            stalled_steps: self.stalled_steps.load(Ordering::Relaxed),
            retransmits_capped: self.retransmits_capped.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            written_off: self.written_off.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`FaultStats`] reported after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Data transmissions the injector discarded.
    pub dropped: u64,
    /// Data transmissions the injector sent twice.
    pub duplicated: u64,
    /// Messages whose modeled arrival was delayed.
    pub delayed: u64,
    /// Messages held back for link-level reordering.
    pub reordered: u64,
    /// Timeout-triggered retransmissions.
    pub retransmits: u64,
    /// Duplicate data packets suppressed at the receiver.
    pub dup_dropped: u64,
    /// Acknowledgement packets sent.
    pub acks: u64,
    /// Data packets physically enqueued (first sends + dups + retransmits
    /// that were not dropped).
    pub data_packets: u64,
    /// Pump iterations skipped by stalled PEs.
    pub stalled_steps: u64,
    /// Retransmissions scheduled after the exponential backoff hit its
    /// cap (the RTO stops doubling; see `link::RTO_ATTEMPT_CAP`).
    pub retransmits_capped: u64,
    /// Failure-detector heartbeats physically sent.
    pub heartbeats: u64,
    /// Logical messages written off against a confirmed-dead PE.
    pub written_off: u64,
}

impl FaultSummary {
    /// Total physical packets (data + acks): the message overhead a
    /// harness compares against the fault-free logical count.
    pub fn physical_packets(&self) -> u64 {
        self.data_packets + self.acks
    }

    /// Accumulate another summary (for multi-attempt recovery runs).
    pub fn accumulate(&mut self, other: &FaultSummary) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.reordered += other.reordered;
        self.retransmits += other.retransmits;
        self.dup_dropped += other.dup_dropped;
        self.acks += other.acks;
        self.data_packets += other.data_packets;
        self.stalled_steps += other.stalled_steps;
        self.retransmits_capped += other.retransmits_capped;
        self.heartbeats += other.heartbeats;
        self.written_off += other.written_off;
    }
}

/// One phase of the online-recovery state machine, as recorded on the
/// machine-wide recovery timeline ([`crate::MachineReport::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// A scripted (or fenced) PE stopped executing.
    Crash,
    /// The phi-accrual detector crossed the suspicion threshold.
    Suspect,
    /// A suspected PE's heartbeats resumed; suspicion withdrawn.
    Clear,
    /// The leader confirmed the death and fenced the PE.
    Confirm,
    /// A surviving PE rolled back to the committed generation.
    Rollback,
    /// An orphan rank of the dead PE was respawned on a survivor.
    Respawn,
    /// Recovery completed; normal work resumed.
    Resume,
}

impl RecoveryPhase {
    /// Stable short name (used by benches and the chaos harness).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::Crash => "crash",
            RecoveryPhase::Suspect => "suspect",
            RecoveryPhase::Clear => "clear",
            RecoveryPhase::Confirm => "confirm",
            RecoveryPhase::Rollback => "rollback",
            RecoveryPhase::Respawn => "respawn",
            RecoveryPhase::Resume => "resume",
        }
    }
}

/// One entry of the machine-wide recovery timeline. Timestamps are the
/// *observing* PE's virtual clock, so `Resume.vt - Suspect.vt` on the
/// leader is the protocol's modeled MTTR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Which phase.
    pub phase: RecoveryPhase,
    /// The PE that observed/drove the phase.
    pub pe: usize,
    /// The failed PE the phase concerns.
    pub dead: usize,
    /// Observer virtual time (ns).
    pub vt: u64,
    /// Phase-specific detail (phi*1000 for suspect/confirm, generation
    /// for rollback/respawn, epoch for resume).
    pub info: u64,
}

/// Shared handle to a plan plus the machine-wide counters.
#[derive(Debug, Clone)]
pub(crate) struct FaultCtx {
    pub plan: Arc<FaultPlan>,
    pub stats: Arc<FaultStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_distinct() {
        let p = FaultPlan::new(42).drop_prob(0.5);
        let a = p.drop_roll(0, 1, 7, 0);
        let b = p.drop_roll(0, 1, 7, 0);
        assert_eq!(a, b, "same inputs, same decision");
        // Different attempts must decorrelate or retransmits livelock.
        let outcomes: Vec<bool> = (0..64).map(|att| p.drop_roll(0, 1, 7, att)).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    fn roll_rate_tracks_probability() {
        let p = FaultPlan::new(7).drop_prob(0.25);
        let n = 10_000;
        let hits = (0..n).filter(|&s| p.drop_roll(2, 3, s, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let p = FaultPlan::new(9);
        assert!((0..1000).all(|s| !p.drop_roll(0, 1, s, 0)));
        assert!((0..1000).all(|s| !p.dup_roll(0, 1, s, 0)));
    }

    #[test]
    fn scripted_faults_lookup() {
        let p = FaultPlan::new(1).crash_pe(2, 5_000).stall_pe(1, 100, 8);
        assert_eq!(p.crash_for(2).unwrap().at_vtime_ns, 5_000);
        assert!(p.crash_for(0).is_none());
        assert_eq!(p.stall_for(1).unwrap().for_steps, 8);
    }

    #[test]
    fn summary_accumulates() {
        let s = FaultStats::default();
        FaultStats::bump(&s.dropped);
        FaultStats::bump(&s.acks);
        let mut total = s.summary();
        total.accumulate(&s.summary());
        assert_eq!(total.dropped, 2);
        assert_eq!(total.physical_packets(), 2);
    }
}
