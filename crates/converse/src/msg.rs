//! Messages, handlers and the network cost model.

use flows_core::Payload;

/// Index of a registered handler. Handler registration happens in the
/// [`crate::MachineBuilder`] *before* the machine starts, so every PE
/// shares the same table — exactly Converse's convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub(crate) usize);

/// A machine message: destination handler plus a byte payload.
///
/// The payload is a shared [`Payload`], so `Clone` — used by the reliable
/// link's retransmit table and the duplicate-fault injector — bumps a
/// refcount instead of copying the body.
#[derive(Debug, Clone)]
pub struct Message {
    /// The handler to invoke on the destination PE.
    pub handler: HandlerId,
    /// Payload bytes (PUP-packed by the layers above), shared by
    /// reference among every in-flight copy of the message.
    pub data: Payload,
    /// Sending PE.
    pub src_pe: usize,
    /// Sender's virtual clock at send time (nanoseconds).
    pub sent_vtime: u64,
}

/// The modeled interconnect: a fixed per-message latency plus a
/// per-byte cost. Defaults approximate a 2000s-era Myrinet-class network
/// (the paper's Tungsten testbed): 10 µs latency, 4 ns/byte (~250 MB/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message latency in nanoseconds.
    pub latency_ns: u64,
    /// Transfer cost per payload byte in nanoseconds.
    pub ns_per_byte: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel {
            latency_ns: 10_000,
            ns_per_byte: 4.0,
        }
    }
}

impl NetModel {
    /// An idealized zero-cost network (for tests that want pure logic).
    pub fn zero() -> NetModel {
        NetModel {
            latency_ns: 0,
            ns_per_byte: 0.0,
        }
    }

    /// Modeled arrival time of a message sent at `sent_vtime` carrying
    /// `bytes` bytes. Self-sends are free (delivered through the local
    /// queue in real Converse too).
    pub fn arrival(&self, sent_vtime: u64, bytes: usize, self_send: bool) -> u64 {
        if self_send {
            sent_vtime
        } else {
            sent_vtime + self.latency_ns + (bytes as f64 * self.ns_per_byte) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_model() {
        let n = NetModel {
            latency_ns: 1000,
            ns_per_byte: 2.0,
        };
        assert_eq!(n.arrival(500, 10, false), 500 + 1000 + 20);
        assert_eq!(n.arrival(500, 10, true), 500);
        let z = NetModel::zero();
        assert_eq!(z.arrival(7, 10_000, false), 7);
    }
}
