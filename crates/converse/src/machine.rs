//! Building and driving the machine: handler registration, the two drive
//! modes, and quiescence detection.

use crate::fault::{FaultCtx, FaultPlan, FaultStats, FaultSummary, RecoveryEvent};
use crate::link::Packet;
use crate::msg::{HandlerId, Message, NetModel};
use crate::pe::{DeathUpcall, Handler, Pe};
use crossbeam::channel::unbounded;
use crossbeam::sync::{Parker, Unparker};
use flows_core::{SchedConfig, SchedStats, Scheduler, SharedPools};
use flows_mem::IsoConfig;
use flows_sys::counters::SyscallCounts;
use flows_trace::{TraceRing, TraceSummary};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// How long an idle PE sleeps per park before re-checking timers. Packet
/// arrivals unpark it immediately; the timeout is only a safety net for
/// virtual-time retransmission deadlines.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Shared counters used for machine-wide quiescence detection (the
/// Converse QD analog): the machine is quiescent when every PE is idle and
/// every sent message has been received.
///
/// The sent/recv totals are updated in *batches*: each PE accumulates its
/// deltas in plain cells and flushes them (`Pe::flush_counters`) when it
/// enters the idle barrier — never on the per-message path. Because every
/// flush happens-before the PE's `idle` increment (all `SeqCst`), any
/// observer that sees `idle == num_pes` also sees every flush, so the
/// `sent == recv` fixpoint check remains exact.
#[derive(Debug)]
pub(crate) struct Hub {
    pub sent: AtomicU64,
    pub recv: AtomicU64,
    idle: AtomicUsize,
    done: AtomicBool,
    /// First PE to hit a scripted crash (`usize::MAX` = none). A crash
    /// aborts the run: quiescence can never be reached once a PE stops
    /// consuming its messages.
    crashed: AtomicUsize,
    /// One waker per PE in threaded mode (unset under deterministic
    /// drive): posting a packet unparks its destination.
    wakers: OnceLock<Vec<Unparker>>,
    /// PEs that physically stopped executing, as a bitmask (online mode;
    /// machine size is capped at 64 there). Shared state is used only to
    /// keep idle virtual clocks advancing — the protocol's *decisions*
    /// (suspect, confirm) flow through heartbeats alone.
    dead: AtomicU64,
    /// PEs the recovery leader has fenced (ordered to stop). A live
    /// (stalled) fenced PE converts itself to crashed at its next pump, so
    /// the failure model stays fail-stop.
    fenced: AtomicU64,
    /// PEs confirmed dead by the phi-accrual detector.
    confirmed: AtomicU64,
    /// Confirmed-dead PEs whose online recovery has completed.
    resolved: AtomicU64,
    /// Monotonic recovery-epoch allocator. Two leaders racing to start a
    /// recovery round (a crash confirmed during another PE's recovery)
    /// must obtain *distinct, ordered* epochs, or survivors could not tell
    /// which round supersedes which.
    epoch: AtomicU64,
    /// Final link-layer accounting published by each dying PE, keyed by
    /// PE id. Survivors read it to write off in-flight traffic exactly.
    morgue: Mutex<HashMap<usize, Morgue>>,
    /// Machine-wide recovery timeline (reported in `MachineReport`).
    timeline: Mutex<Vec<RecoveryEvent>>,
    /// Dead-PE pairs whose mutual in-flight traffic has been written off.
    pair_reaped: Mutex<Vec<(usize, usize)>>,
    /// First global PE id hosted by this process (0 unless the machine
    /// spans processes through a `flows_net::World`). Wakers and inject
    /// channels are local-length, indexed by `global_pe - base`.
    pub(crate) base: usize,
    /// Machine-wide sent total as declared by the quiescence leader
    /// (multi-process runs only; the local `sent` counter covers just
    /// this process's PEs).
    pub(crate) net_global_sent: AtomicU64,
}

/// The link-layer ledger a dying PE publishes so survivors can write off
/// exactly the logical messages that died with it: everything a survivor
/// sent that the deceased never delivered, and everything the deceased
/// assigned that the survivor will never deliver.
#[derive(Debug, Clone)]
pub(crate) struct Morgue {
    /// Per-source highest in-order sequence delivered at death.
    pub rx_cum: Vec<u64>,
    /// Per-destination highest sequence assigned at death.
    pub tx_last: Vec<u64>,
    /// Dead peers this PE had already reaped while alive (their mutual
    /// traffic is accounted; the leader must not write it off again).
    pub reaped_mask: u64,
}

impl Default for Hub {
    fn default() -> Self {
        Hub {
            sent: AtomicU64::new(0),
            recv: AtomicU64::new(0),
            idle: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            crashed: AtomicUsize::new(usize::MAX),
            wakers: OnceLock::new(),
            dead: AtomicU64::new(0),
            fenced: AtomicU64::new(0),
            confirmed: AtomicU64::new(0),
            resolved: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            morgue: Mutex::new(HashMap::new()),
            timeline: Mutex::new(Vec::new()),
            pair_reaped: Mutex::new(Vec::new()),
            base: 0,
            net_global_sent: AtomicU64::new(0),
        }
    }
}

impl Hub {
    /// Record a scripted crash and wake every drive loop so the run stops.
    pub(crate) fn record_crash(&self, pe: usize) {
        let _ = self
            .crashed
            .compare_exchange(usize::MAX, pe, Ordering::SeqCst, Ordering::SeqCst);
        self.done.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Record a crash in online mode: the run continues; survivors will
    /// detect, confirm and heal. The morgue entry must be complete before
    /// the dead bit is visible (it is — both sit behind SeqCst stores and
    /// the deterministic driver serializes PEs anyway).
    pub(crate) fn record_crash_online(&self, pe: usize, morgue: Morgue) {
        self.morgue.lock().unwrap().insert(pe, morgue);
        self.dead.fetch_or(1 << pe, Ordering::SeqCst);
    }

    /// Fence `pe`: order it to stop executing. Idempotent.
    pub(crate) fn fence(&self, pe: usize) {
        self.fenced.fetch_or(1 << pe, Ordering::SeqCst);
    }

    pub(crate) fn is_fenced(&self, pe: usize) -> bool {
        self.fenced.load(Ordering::SeqCst) & (1 << pe) != 0
    }

    /// Mark `pe` confirmed dead. Returns true exactly once (the caller
    /// that wins drives the death upcall).
    pub(crate) fn confirm(&self, pe: usize) -> bool {
        let prev = self.confirmed.fetch_or(1 << pe, Ordering::SeqCst);
        prev & (1 << pe) == 0
    }

    pub(crate) fn is_confirmed(&self, pe: usize) -> bool {
        self.confirmed.load(Ordering::SeqCst) & (1 << pe) != 0
    }

    pub(crate) fn confirmed_mask(&self) -> u64 {
        self.confirmed.load(Ordering::SeqCst)
    }

    pub(crate) fn resolve(&self, pe: usize) {
        self.resolved.fetch_or(1 << pe, Ordering::SeqCst);
    }

    /// Allocate the next recovery epoch (starts at 1; 0 means "never
    /// recovered" and is the epoch every message carries pre-failure).
    pub(crate) fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Any failure (physical, fenced or confirmed) whose recovery has not
    /// completed? While true the machine cannot be quiescent.
    pub(crate) fn unresolved(&self) -> bool {
        let failed = self.dead.load(Ordering::SeqCst)
            | self.fenced.load(Ordering::SeqCst)
            | self.confirmed.load(Ordering::SeqCst);
        failed & !self.resolved.load(Ordering::SeqCst) != 0
    }

    pub(crate) fn morgue_ready(&self, pe: usize) -> bool {
        self.morgue.lock().unwrap().contains_key(&pe)
    }

    pub(crate) fn morgue_get(&self, pe: usize) -> Option<Morgue> {
        self.morgue.lock().unwrap().get(&pe).cloned()
    }

    /// Write off traffic between two dead PEs exactly once per pair.
    /// Returns the number of logical messages written off (0 if the pair
    /// was already accounted or either PE had reaped the other in life).
    pub(crate) fn reap_pair(&self, a: usize, b: usize) -> u64 {
        let key = (a.min(b), a.max(b));
        let mut done = self.pair_reaped.lock().unwrap();
        if done.contains(&key) {
            return 0;
        }
        done.push(key);
        let morgues = self.morgue.lock().unwrap();
        let (Some(ma), Some(mb)) = (morgues.get(&a), morgues.get(&b)) else {
            return 0;
        };
        // If either reaped the other while still alive, both directions
        // were accounted then (write-off at reap, then write-off at send).
        if ma.reaped_mask & (1 << b) != 0 || mb.reaped_mask & (1 << a) != 0 {
            return 0;
        }
        (ma.tx_last[b] - mb.rx_cum[a]) + (mb.tx_last[a] - ma.rx_cum[b])
    }

    pub(crate) fn push_timeline(&self, ev: RecoveryEvent) {
        self.timeline.lock().unwrap().push(ev);
    }

    pub(crate) fn timeline_snapshot(&self) -> Vec<RecoveryEvent> {
        self.timeline.lock().unwrap().clone()
    }

    /// PEs that failed during the run (physically dead or confirmed).
    pub(crate) fn dead_list(&self) -> Vec<usize> {
        let mask = self.dead.load(Ordering::SeqCst) | self.confirmed.load(Ordering::SeqCst);
        (0..64).filter(|pe| mask & (1 << pe) != 0).collect()
    }

    /// Wake PE `dest` if it is parked (no-op under deterministic drive,
    /// and for destinations hosted by another process — their wake rides
    /// the transport doorbell instead).
    pub(crate) fn wake(&self, dest: usize) {
        if let Some(ws) = self.wakers.get() {
            let local = dest.wrapping_sub(self.base);
            if let Some(w) = ws.get(local) {
                w.unpark();
            }
        }
    }

    /// Number of local PEs currently announced at the idle barrier.
    pub(crate) fn idle_count(&self) -> usize {
        self.idle.load(Ordering::SeqCst)
    }

    /// Has the run been declared over (quiescence or crash abort)?
    pub(crate) fn done_flag(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Declare the run over and wake every parked PE (the comm thread's
    /// entry into the shutdown the drive loops normally own).
    pub(crate) fn set_done_and_wake(&self) {
        self.done.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Snapshot of the failure masks, for cross-process synchronization.
    pub(crate) fn masks(&self) -> (u64, u64, u64, u64) {
        (
            self.dead.load(Ordering::SeqCst),
            self.fenced.load(Ordering::SeqCst),
            self.confirmed.load(Ordering::SeqCst),
            self.resolved.load(Ordering::SeqCst),
        )
    }

    /// OR another process's failure masks into ours. Bits only ever
    /// accumulate, so the sync is idempotent and order-insensitive.
    /// Dead bits may land before the matching morgue record; everything
    /// that needs the record (reap, upcall) already gates on it.
    pub(crate) fn absorb_masks(&self, dead: u64, fenced: u64, confirmed: u64, resolved: u64) {
        self.dead.fetch_or(dead, Ordering::SeqCst);
        self.fenced.fetch_or(fenced, Ordering::SeqCst);
        self.confirmed.fetch_or(confirmed, Ordering::SeqCst);
        self.resolved.fetch_or(resolved, Ordering::SeqCst);
    }

    /// Wake every parked PE (crash abort / quiescence declaration).
    fn wake_all(&self) {
        if let Some(ws) = self.wakers.get() {
            for w in ws {
                w.unpark();
            }
        }
    }

    fn crashed_pe(&self) -> Option<usize> {
        match self.crashed.load(Ordering::SeqCst) {
            usize::MAX => None,
            pe => Some(pe),
        }
    }
}

/// Results of one machine run.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Final virtual clock of each PE — `max` is the modeled parallel
    /// completion time.
    pub pe_vtimes: Vec<u64>,
    /// Wall-clock duration of the run (host time; on a 1-core host this is
    /// roughly the *sum* of PE work, not the parallel time).
    pub wall_ns: u64,
    /// Scheduler counters per PE.
    pub sched_stats: Vec<SchedStats>,
    /// Total messages sent machine-wide.
    pub messages: u64,
    /// Handler invocations per PE (the dispatch-rate numerator; sums to
    /// `messages` on a clean, crash-free run).
    pub pe_delivered: Vec<u64>,
    /// Threads still suspended at quiescence per PE (should be 0 for a
    /// clean application; useful to detect lost wake-ups in tests).
    pub stranded_threads: Vec<usize>,
    /// Busy virtual time per PE (work only, no arrival waits) — the load
    /// balance picture.
    pub pe_busy: Vec<u64>,
    /// The PE that hit a scripted crash, if the run was aborted by one.
    /// A crashed run's other counters cover work up to the abort.
    pub crashed: Option<usize>,
    /// Fault-injection / recovery counters (present iff a
    /// [`FaultPlan`] was attached).
    pub faults: Option<FaultSummary>,
    /// Syscall counters per PE OS thread. In threaded mode each entry is
    /// that PE's exact delta over the run; under deterministic drive all
    /// PEs share one OS thread, so the machine-wide delta sits at index 0
    /// and the rest are zero.
    pub syscalls: Vec<SyscallCounts>,
    /// Projections-style trace reduction (present iff the machine was
    /// built with `.tracing(true)`).
    pub trace: Option<TraceSummary>,
    /// The raw per-PE event rings behind `trace`, for exporters
    /// (`flows_trace::chrome`) and custom analyses. Empty when tracing
    /// was off.
    pub trace_rings: Vec<Arc<TraceRing>>,
    /// Online-recovery timeline: every suspect/confirm/rollback/respawn/
    /// resume phase observed during the run, in order. Empty unless the
    /// fault plan enabled online recovery.
    pub recovery: Vec<RecoveryEvent>,
    /// PEs that failed during the run. Under online recovery the run
    /// still completes (`crashed` stays `None`); these are the healed
    /// casualties.
    pub dead_pes: Vec<usize>,
}

impl MachineReport {
    /// The modeled parallel completion time: max over PEs of virtual time.
    pub fn parallel_time_ns(&self) -> u64 {
        self.pe_vtimes.iter().copied().max().unwrap_or(0)
    }
}

/// Configures and launches a machine. Register all handlers before `run`.
pub struct MachineBuilder {
    num_pes: usize,
    sched_cfg: SchedConfig,
    net: NetModel,
    handlers: Vec<Handler>,
    shared: Option<Arc<SharedPools>>,
    slot_len: usize,
    slots_per_pe: usize,
    fault: Option<Arc<FaultPlan>>,
    modeled_time: bool,
    tracing: bool,
    trace_cap: usize,
    steal: bool,
    death_upcall: Option<DeathUpcall>,
    world: Option<Arc<flows_net::World>>,
}

impl MachineBuilder {
    /// A machine of `num_pes` PEs with default configuration.
    pub fn new(num_pes: usize) -> MachineBuilder {
        assert!(num_pes > 0, "a machine needs at least one PE");
        MachineBuilder {
            num_pes,
            sched_cfg: SchedConfig::default(),
            net: NetModel::default(),
            handlers: Vec::new(),
            shared: None,
            slot_len: 1 << 20,
            slots_per_pe: 1024,
            fault: None,
            modeled_time: false,
            tracing: false,
            trace_cap: 1 << 16,
            steal: false,
            death_upcall: None,
            world: None,
        }
    }

    /// Span this machine across the processes of a [`flows_net::World`]:
    /// this process hosts the `world.pes_per_proc()` PEs starting at
    /// `world.first_pe()`, and every other global PE is reached through
    /// the world's transport (a comm thread is spawned by [`Self::run`];
    /// the deterministic drive cannot cross processes). Every process
    /// must build an identical machine — same handlers in the same
    /// order, same fault plan, same options — and call `run` (SPMD).
    pub fn multiproc(mut self, world: Arc<flows_net::World>) -> Self {
        assert_eq!(
            world.num_pes(),
            self.num_pes,
            "the machine size must equal the world's procs × pes_per_proc"
        );
        self.world = Some(world);
        self
    }

    /// Enable intra-node work stealing: idle PEs pull chunks off the
    /// run-queue tails of busy ones through the shared steal mesh, after
    /// their spin phase and before parking. Off by default — placement
    /// then stays exactly where spawns and explicit migrations put it,
    /// which deterministic tests and the LB-only baselines rely on.
    pub fn work_stealing(mut self, yes: bool) -> Self {
        self.steal = yes;
        self
    }

    /// Record a Projections-style event trace: one ring per PE, reduced
    /// to `MachineReport::trace` at quiescence (the raw rings ride along
    /// in `trace_rings`). Turns the process-wide trace gate on for the
    /// run (and leaves it on — untraced machines carry no rings, so they
    /// record nothing either way).
    pub fn tracing(mut self, yes: bool) -> Self {
        self.tracing = yes;
        self
    }

    /// Events retained per PE ring (default 65536; oldest are overwritten
    /// first and counted exactly in the summary's `dropped`).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_cap = events;
        self
    }

    /// Advance virtual clocks by *modeled* costs only (`charge_ns` and the
    /// network model), never by measured host CPU time. Makes virtual
    /// time — and with it `crash_pe`-style virtual-time triggers — exactly
    /// reproducible across runs, at the price of vtimes no longer
    /// reflecting real compute.
    pub fn modeled_time(mut self, yes: bool) -> Self {
        self.modeled_time = yes;
        self
    }

    /// Attach a deterministic fault plan. This switches every cross-PE
    /// link to the reliable (ack/retransmit) transport and arms the plan's
    /// scripted PE faults.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        if plan.online {
            assert!(
                self.num_pes <= 64,
                "online recovery tracks PE liveness in a 64-bit mask"
            );
            assert!(plan.heartbeat_ns > 0, "online recovery needs heartbeats");
        }
        self.fault = Some(Arc::new(plan));
        self
    }

    /// Register the death-confirmed upcall for online recovery: invoked
    /// (once per failed PE, on the PE whose detector won the confirmation
    /// race) after the deceased's final link accounting is available. The
    /// layer above drives rollback/respawn from here; a machine without an
    /// upcall only detects and writes off.
    pub fn on_death_confirmed(
        mut self,
        f: impl Fn(&Pe, usize) + Send + Sync + 'static,
    ) -> Self {
        self.death_upcall = Some(Arc::new(f));
        self
    }

    /// Use a specific per-PE scheduler configuration.
    pub fn sched_config(mut self, cfg: SchedConfig) -> Self {
        self.sched_cfg = cfg;
        self
    }

    /// Use a specific network cost model.
    pub fn net_model(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Isomalloc layout knobs (slot bytes, slots per PE).
    pub fn iso_layout(mut self, slot_len: usize, slots_per_pe: usize) -> Self {
        self.slot_len = slot_len;
        self.slots_per_pe = slots_per_pe;
        self
    }

    /// Provide pre-built memory pools (to share across machines in tests).
    pub fn shared_pools(mut self, shared: Arc<SharedPools>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Register a message handler; returns its machine-wide id.
    pub fn handler(&mut self, f: impl Fn(&Pe, Message) + Send + Sync + 'static) -> HandlerId {
        self.handlers.push(Arc::new(f));
        HandlerId(self.handlers.len() - 1)
    }

    fn build_shared(&mut self) -> Arc<SharedPools> {
        if let Some(s) = &self.shared {
            return s.clone();
        }
        let mut iso = IsoConfig::for_pes(self.num_pes);
        if self.world.is_none() {
            iso.base = 0; // machines in one process must not fight over a base
        }
        // else: keep the fixed default base — every process of a
        // multi-process machine must map the isomalloc region at the same
        // virtual address, or migrated thread images (absolute slot
        // addresses) could not cross the process boundary.
        iso.slot_len = self.slot_len;
        iso.slots_per_pe = self.slots_per_pe;
        let pools = SharedPools::new(iso, 1 << 20).expect("machine memory pools");
        if self.world.is_some() {
            assert!(
                pools.region().at_fixed_base(),
                "multi-process machines need the isomalloc region at its fixed base"
            );
        }
        pools
    }

    #[allow(clippy::type_complexity)]
    fn make_seeds(
        &mut self,
    ) -> (
        Vec<PeSeed>,
        Arc<Hub>,
        Option<Arc<FaultStats>>,
        Vec<Arc<TraceRing>>,
        Vec<crossbeam::channel::Sender<Packet>>,
    ) {
        let shared = self.build_shared();
        let handlers = Arc::new(std::mem::take(&mut self.handlers));
        // A multi-process machine hosts only its world's slice of the PEs:
        // channels, wakers and trace rings are local-length, while ids,
        // link tables and failure masks stay global.
        let (base, local) = match &self.world {
            Some(w) => (w.first_pe(), w.pes_per_proc()),
            None => (0, self.num_pes),
        };
        let hub = Arc::new(Hub {
            base,
            ..Hub::default()
        });
        let fault = self.fault.clone().map(|plan| FaultCtx {
            plan,
            stats: Arc::new(FaultStats::default()),
        });
        let stats = fault.as_ref().map(|f| f.stats.clone());
        let rings: Vec<Arc<TraceRing>> = if self.tracing {
            flows_trace::set_enabled(true);
            (0..local)
                .map(|i| Arc::new(TraceRing::new(base + i, self.trace_cap)))
                .collect()
        } else {
            Vec::new()
        };
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..local).map(|_| unbounded()).unzip();
        let seeds = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| PeSeed {
                id: base + i,
                base,
                num_pes: self.num_pes,
                shared: shared.clone(),
                sched_cfg: self.sched_cfg.clone(),
                rx,
                txs: txs.clone(),
                handlers: handlers.clone(),
                hub: hub.clone(),
                net: self.net,
                fault: fault.clone(),
                modeled_time: self.modeled_time,
                steal: self.steal,
                ring: rings.get(i).cloned(),
                death_upcall: self.death_upcall.clone(),
                world: self.world.clone(),
            })
            .collect();
        (seeds, hub, stats, rings, txs)
    }

    /// Drive all PEs round-robin on the calling OS thread until
    /// quiescence. Deterministic given deterministic application code.
    pub fn run_deterministic(mut self, init: impl Fn(&Pe)) -> MachineReport {
        assert!(
            self.world.is_none(),
            "a multi-process machine needs its comm thread: use run()"
        );
        let online = self.fault.as_ref().is_some_and(|p| p.online);
        let (seeds, hub, stats, rings, _txs) = self.make_seeds();
        let pes: Vec<Pe> = seeds.into_iter().map(PeSeed::build).collect();
        let sc0 = flows_sys::counters::snapshot();
        let t0 = flows_sys::time::monotonic_ns();
        for pe in &pes {
            let prev = pe.enter();
            init(pe);
            pe.leave(prev);
        }
        // Bounded burst per turn: draining a PE completely would livelock
        // on cross-PE spin synchronization (threads that yield while
        // waiting for another PE's progress stay runnable forever). The
        // budget adapts per PE: a burst that pumps without delivering a
        // single message is just spin-yielding waiters, so its share of
        // the round-robin shrinks (and snaps back on the next delivery).
        const FULL_BURST: u32 = 64;
        let mut budgets = vec![FULL_BURST; pes.len()];
        'drive: loop {
            let mut progress = false;
            for (pe, budget) in pes.iter().zip(budgets.iter_mut()) {
                let prev = pe.enter();
                let delivered_before = pe.delivered();
                let mut pumped = false;
                for _ in 0..*budget {
                    if !pe.pump() {
                        break;
                    }
                    pumped = true;
                }
                pe.leave(prev);
                *budget = if pumped && pe.delivered() == delivered_before {
                    (*budget / 2).max(1)
                } else {
                    FULL_BURST
                };
                if pumped {
                    progress = true;
                }
                if !online && hub.crashed_pe().is_some() {
                    // A dead PE stops consuming messages: quiescence is
                    // unreachable, so abort and report the crash. Under
                    // online recovery the run continues — survivors
                    // detect, write the dead PE's traffic off, and heal.
                    break 'drive;
                }
            }
            if online && pes.iter().all(|p| p.crashed()) {
                // Total loss: every PE is dead (scripted crashes plus any
                // fenced stalls). Nobody is left to recover, so report the
                // wreckage instead of waiting for a heal that cannot come.
                break 'drive;
            }
            if !progress {
                // Batched quiescence accounting: fold every PE's local
                // deltas into the hub before the fixpoint comparison.
                for pe in &pes {
                    pe.flush_counters();
                }
                // Messages written off against confirmed-dead PEs were
                // sent but can never be received; the fixpoint accounts
                // for them. No quiescence while a failure is unhealed.
                let written_off = stats
                    .as_ref()
                    .map_or(0, |s| s.summary().written_off);
                if hub.sent.load(Ordering::SeqCst)
                    == hub.recv.load(Ordering::SeqCst) + written_off
                    && pes.iter().all(|p| !p.has_work())
                    && !hub.unresolved()
                {
                    break;
                }
            }
        }
        for pe in &pes {
            pe.flush_counters();
        }
        let wall_ns = flows_sys::time::monotonic_ns() - t0;
        // One OS thread drove every PE, so the syscall delta is
        // machine-wide; it sits at index 0 (see `MachineReport::syscalls`).
        let mut syscalls = vec![SyscallCounts::default(); pes.len()];
        syscalls[0] = flows_sys::counters::snapshot().since(&sc0);
        report(&pes, &hub, wall_ns, stats.as_deref(), syscalls, rings)
    }

    /// Drive each PE on its own OS thread until quiescence. Idle PEs park
    /// on a per-PE [`Parker`] and are woken by incoming packets (instead
    /// of spinning on `yield_now`).
    pub fn run(mut self, init: impl Fn(&Pe) + Send + Sync) -> MachineReport {
        let online = self.fault.as_ref().is_some_and(|p| p.online);
        let multiproc = self.world.is_some();
        assert!(
            !online || multiproc,
            "online recovery requires the deterministic drive mode \
             (or a multi-process world, whose comm thread owns quiescence)"
        );
        if multiproc {
            assert!(!self.steal, "work stealing cannot cross process boundaries");
        }
        if let (Some(w), Some(plan)) = (&self.world, &self.fault) {
            if plan.online && w.is_leader() {
                let leader_pes = w.first_pe()..w.first_pe() + w.pes_per_proc();
                assert!(
                    !leader_pes.clone().all(|p| plan.crash_for(p).is_some()),
                    "the lead process hosts the quiescence gather and the \
                     recovery leader; it cannot be scripted to fully crash"
                );
            }
        }
        if let Some(w) = &self.world {
            // Thread ids mint per-process but travel with packed images
            // across process boundaries (migration, recovery respawn);
            // partition the namespace so they can never collide.
            flows_core::seed_tid_namespace(w.rank());
        }
        let (seeds, hub, stats, rings, txs) = self.make_seeds();
        let num_pes = self.num_pes;
        let local_pes = seeds.len();
        let parkers: Vec<Parker> = (0..local_pes).map(|_| Parker::new()).collect();
        hub.wakers
            .set(parkers.iter().map(Parker::unparker).collect())
            .expect("fresh hub");
        // The comm thread outlives the PE scope on purpose: the leader's
        // finish handshake (DONE/GOODBYE) may still be draining while the
        // local PEs are already done.
        let pump = self.world.clone().map(|world| {
            let pump = crate::netpump::NetPump {
                world,
                hub: hub.clone(),
                txs,
                stats: stats.clone(),
                online,
                num_pes,
            };
            std::thread::Builder::new()
                .name("flows-netpump".into())
                .spawn(move || pump.run())
                .expect("spawn comm thread")
        });
        let t0 = flows_sys::time::monotonic_ns();
        let results: Vec<(u64, SchedStats, usize, u64, u64, SyscallCounts)> =
            std::thread::scope(|s| {
                let init = &init;
                let handles: Vec<_> = seeds
                    .into_iter()
                    .zip(parkers)
                    .map(|(seed, parker)| {
                        let hub = hub.clone();
                        s.spawn(move || {
                            // The Pe (and its !Send scheduler) is born on the
                            // OS thread that will drive it. Syscall counters
                            // are thread-local, so the delta below is exactly
                            // this PE's.
                            let sc0 = flows_sys::counters::snapshot();
                            let pe = seed.build();
                            pe.set_threaded();
                            let prev = pe.enter();
                            init(&pe);
                            drive_until_quiescent(&pe, &hub, local_pes, multiproc, &parker);
                            // Final flush so the report's totals are complete
                            // on every exit path (quiescence or crash abort).
                            pe.flush_counters();
                            pe.leave(prev);
                            (
                                pe.vtime_ns(),
                                pe.sched().stats(),
                                pe.sched().thread_count(),
                                pe.busy_ns(),
                                pe.delivered(),
                                flows_sys::counters::snapshot().since(&sc0),
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("PE thread")).collect()
            });
        if let Some(h) = pump {
            let _ = h.join();
        }
        let wall_ns = flows_sys::time::monotonic_ns() - t0;
        let syscalls: Vec<SyscallCounts> = results.iter().map(|r| r.5).collect();
        let trace = finish_trace(&rings, &syscalls);
        let messages = if multiproc {
            hub.net_global_sent.load(Ordering::SeqCst)
        } else {
            hub.sent.load(Ordering::SeqCst)
        };
        MachineReport {
            pe_vtimes: results.iter().map(|r| r.0).collect(),
            wall_ns,
            sched_stats: results.iter().map(|r| r.1).collect(),
            messages,
            pe_delivered: results.iter().map(|r| r.4).collect(),
            stranded_threads: results.iter().map(|r| r.2).collect(),
            pe_busy: results.iter().map(|r| r.3).collect(),
            crashed: hub.crashed_pe(),
            faults: stats.map(|s| s.summary()),
            syscalls,
            trace,
            trace_rings: rings,
            recovery: hub.timeline_snapshot(),
            dead_pes: hub.dead_list(),
        }
    }
}

/// Everything needed to build a [`Pe`]; unlike a Pe it is `Send`, so the
/// threaded drive mode can ship one seed to each PE's OS thread.
struct PeSeed {
    id: usize,
    num_pes: usize,
    base: usize,
    world: Option<Arc<flows_net::World>>,
    shared: Arc<SharedPools>,
    sched_cfg: SchedConfig,
    rx: crossbeam::channel::Receiver<Packet>,
    txs: Vec<crossbeam::channel::Sender<Packet>>,
    handlers: Arc<Vec<Handler>>,
    hub: Arc<Hub>,
    net: NetModel,
    fault: Option<FaultCtx>,
    modeled_time: bool,
    steal: bool,
    ring: Option<Arc<TraceRing>>,
    death_upcall: Option<DeathUpcall>,
}

impl PeSeed {
    fn build(self) -> Pe {
        // Pools are built machine-wide (global PE count) in every process
        // so isomalloc slot ranges agree across process boundaries.
        let pool = self.shared.payload_pool(self.id).clone();
        Pe::new(
            self.id,
            self.num_pes,
            self.base,
            self.world,
            Scheduler::new(self.id, self.shared, self.sched_cfg),
            self.rx,
            self.txs,
            self.handlers,
            self.hub,
            self.net,
            self.fault,
            self.modeled_time,
            self.steal,
            pool,
            self.ring,
            self.death_upcall,
        )
    }
}

/// Reduce the rings (if tracing was on) and fill the syscall-derived
/// fields the events alone cannot know.
fn finish_trace(rings: &[Arc<TraceRing>], syscalls: &[SyscallCounts]) -> Option<TraceSummary> {
    if rings.is_empty() {
        return None;
    }
    let mut sum = flows_trace::summarize(rings);
    for p in sum.pes.iter_mut() {
        if let Some(c) = syscalls.get(p.pe as usize) {
            p.remap = c.remap;
            p.syscalls_total = c.total();
        }
    }
    Some(sum)
}

fn report(
    pes: &[Pe],
    hub: &Hub,
    wall_ns: u64,
    stats: Option<&FaultStats>,
    syscalls: Vec<SyscallCounts>,
    rings: Vec<Arc<TraceRing>>,
) -> MachineReport {
    MachineReport {
        pe_vtimes: pes.iter().map(|p| p.vtime_ns()).collect(),
        wall_ns,
        sched_stats: pes.iter().map(|p| p.sched().stats()).collect(),
        messages: hub.sent.load(Ordering::SeqCst),
        pe_delivered: pes.iter().map(|p| p.delivered()).collect(),
        stranded_threads: pes.iter().map(|p| p.sched().thread_count()).collect(),
        pe_busy: pes.iter().map(|p| p.busy_ns()).collect(),
        crashed: hub.crashed_pe(),
        faults: stats.map(|s| s.summary()),
        trace: finish_trace(&rings, &syscalls),
        syscalls,
        trace_rings: rings,
        recovery: hub.timeline_snapshot(),
        dead_pes: hub.dead_list(),
    }
}

/// How many idle re-checks a PE spin-yields through before it actually
/// parks. Parking immediately costs a condvar wakeup (microseconds) per
/// message on a busy machine — fatal for tight message-passing loops on a
/// single-core host — while spinning forever burns a core on an idle one.
/// A short spin window keeps the hot path at yield cost and reserves the
/// parker for genuinely quiet PEs.
const IDLE_SPINS_BEFORE_PARK: u32 = 128;

/// The per-PE loop of threaded mode with distributed quiescence detection.
///
/// An idle PE flushes its batched counters *before* announcing itself at
/// the idle barrier (the ordering the exactness argument on [`Hub`] rests
/// on), then spin-yields briefly and finally parks until a packet arrives.
/// The park has a short timeout so virtual-time retransmission deadlines
/// are still noticed on an otherwise-silent machine.
fn drive_until_quiescent(pe: &Pe, hub: &Hub, num_pes: usize, multiproc: bool, parker: &Parker) {
    loop {
        if hub.done.load(Ordering::SeqCst) {
            // Another PE crashed (or quiescence was declared while we were
            // spinning on link recovery toward a dead PE): stop.
            return;
        }
        let mut progress = false;
        while pe.pump() {
            progress = true;
            if hub.done.load(Ordering::SeqCst) {
                return;
            }
        }
        if progress {
            continue;
        }
        // Enter the idle barrier: flush first, then announce idle.
        pe.flush_counters();
        hub.idle.fetch_add(1, Ordering::SeqCst);
        let mut spins = 0u32;
        loop {
            if hub.done.load(Ordering::SeqCst) {
                return;
            }
            if pe.has_work() {
                hub.idle.fetch_sub(1, Ordering::SeqCst);
                if !pe.has_local_work() {
                    // Work but nothing deliverable (waiting on an ack or a
                    // retransmit deadline): yield so the peer that owes us
                    // the packet gets the core — a pure-userspace re-pump
                    // would spin out the whole OS quantum on a loaded
                    // host. A freshly-arrived packet skips the yield and
                    // is pumped immediately.
                    std::thread::yield_now();
                }
                break;
            }
            if !multiproc
                && hub.idle.load(Ordering::SeqCst) == num_pes
                && hub.sent.load(Ordering::SeqCst) == hub.recv.load(Ordering::SeqCst)
                && pe.steal_in_flight() == 0
            {
                // Everyone idle, no message in flight, and no stolen
                // thread sitting in a steal inbox: quiescent. (A donation
                // is work the sent==recv comparison knows nothing about;
                // the donor increments the inbox length before it ever
                // announces idle, so seeing idle==num_pes here means
                // seeing the donation too.)
                hub.done.store(true, Ordering::SeqCst);
                hub.wake_all();
                return;
            }
            if spins < IDLE_SPINS_BEFORE_PARK {
                spins += 1;
                // Keep a steal request planted while spinning: on a
                // loaded host (or a single-core one) the spin phase can
                // outlast an entire victim burst, so waiting until the
                // park to ask for work would miss it completely. Cheap —
                // a relaxed scan plus one idempotent fetch_or.
                pe.steal_request();
                std::thread::yield_now();
            } else {
                // Last look before actually sleeping: refresh our steal
                // request at whoever is richest *now*. Without this, a
                // request consumed by an empty donation round — or aimed
                // at a victim that has since gone idle while another PE
                // got busy — would leave this PE parked with nobody
                // obligated to wake it: the classic lost-wakeup window.
                // (A donation that lands between the has_work check above
                // and the park is already safe: the donor's wake sets the
                // parker token first, so the park returns immediately.)
                pe.steal_request();
                parker.park_timeout(IDLE_PARK);
                if multiproc {
                    // Quiescence is the comm thread's call in a
                    // multi-process machine (it gathers every process's
                    // counters); a PE only reports idleness. Leave the
                    // barrier and re-pump so link maintenance — heartbeat
                    // schedules, retransmission deadlines, failure
                    // detection — keeps running while the machine waits
                    // on remote traffic.
                    hub.idle.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{send, with_pe};
    use flows_core::{suspend, yield_now, StackFlavor, ThreadId};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn deterministic_ring_passes_token() {
        // Each PE forwards an incrementing token around the ring 3 times.
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(4).net_model(NetModel::zero());
        let h = {
            let total = total.clone();
            mb.handler(move |pe, msg| {
                let hops = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
                total.fetch_add(1, Ordering::Relaxed);
                if hops > 0 {
                    pe.send(
                        (pe.id() + 1) % pe.num_pes(),
                        msg.handler,
                        (hops - 1).to_le_bytes().to_vec(),
                    );
                }
            })
        };
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 0 {
                pe.send(1, h, 12u64.to_le_bytes().to_vec());
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 13, "12 hops + initial");
        assert_eq!(rep.messages, 13);
        assert!(rep.stranded_threads.iter().all(|&n| n == 0));
    }

    #[test]
    fn threaded_mode_matches_deterministic_semantics() {
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(3);
        let h = {
            let total = total.clone();
            mb.handler(move |_pe, msg| {
                total.fetch_add(msg.data.len() as u64, Ordering::Relaxed);
            })
        };
        mb.run(move |pe| {
            for d in 0..pe.num_pes() {
                pe.send(d, h, vec![0; 10 * (pe.id() + 1)]);
            }
        });
        // PE i sends 3 messages of 10(i+1) bytes: total = 3*(10+20+30).
        assert_eq!(total.load(Ordering::Relaxed), 180);
    }

    #[test]
    fn threads_can_send_and_block_on_messages() {
        // A thread on PE0 suspends; a handler on PE1 bounces a reply that
        // awakens it.
        let done = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(2).net_model(NetModel::zero());
        // reply handler: awaken the thread named in the payload.
        let reply = mb.handler(move |pe, msg| {
            let tid = ThreadId(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
            pe.sched().awaken_tid(tid).unwrap();
        });
        // ping handler on PE1: send the tid back.
        let ping = mb.handler(move |pe, msg| {
            pe.send(msg.src_pe, reply, msg.data.clone());
        });
        let done2 = done.clone();
        mb.run_deterministic(move |pe| {
            if pe.id() == 0 {
                let done = done2.clone();
                pe.sched()
                    .spawn(StackFlavor::Isomalloc, move || {
                        let me = flows_core::current().unwrap();
                        send(1, ping, me.0.to_le_bytes().to_vec());
                        suspend(); // until the reply awakens us
                        done.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap();
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stealing_spreads_a_skewed_spawn_across_pes() {
        // Every thread lands on PE 0; with work stealing on, the other
        // PEs must pull chunks over the mesh and run them. Deterministic
        // drive, so the donate/absorb handshake is exercised without any
        // parker in the loop.
        let done = Arc::new(AtomicU64::new(0));
        let done2 = done.clone();
        let mut mb = MachineBuilder::new(4)
            .net_model(NetModel::zero())
            .work_stealing(true)
            .tracing(true);
        let _ = mb.handler(|_, _| {});
        let rep = mb.run_deterministic(move |pe| {
            if pe.id() == 0 {
                for _ in 0..48 {
                    let done = done2.clone();
                    pe.sched()
                        .spawn(StackFlavor::Isomalloc, move || {
                            for _ in 0..8 {
                                yield_now();
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        })
                        .unwrap();
                }
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 48, "every thread finished");
        assert_eq!(rep.stranded_threads, vec![0; 4], "none lost in transit");
        let stolen_in: u64 = rep.sched_stats[1..]
            .iter()
            .map(|s| s.migrations_in)
            .sum();
        assert!(stolen_in > 0, "idle PEs must have absorbed stolen threads");
        let t = rep.trace.as_ref().expect("tracing was on");
        let attempts: u64 = t.pes.iter().map(|p| p.steal_attempts).sum();
        let hits: u64 = t.pes.iter().map(|p| p.steal_hits).sum();
        assert!(attempts > 0, "thieves must have posted requests");
        assert_eq!(hits, stolen_in, "every absorbed thread traces a StealHit");
    }

    #[test]
    fn parked_thief_steals_work_that_appears_later() {
        // Lost-wakeup regression (threaded mode): PE 1 has nothing to do
        // and parks immediately — before PE 0 has any stealable work (the
        // spawner must run a while first). A parked thief whose request
        // went nowhere must refresh it before each park, or it would
        // sleep through the victim's entire burst in 200µs bites.
        let done = Arc::new(AtomicU64::new(0));
        let done2 = done.clone();
        let mut mb = MachineBuilder::new(2)
            .net_model(NetModel::zero())
            .work_stealing(true);
        let _ = mb.handler(|_, _| {});
        let rep = mb.run(move |pe| {
            if pe.id() == 0 {
                let done = done2.clone();
                pe.sched()
                    .spawn(StackFlavor::Isomalloc, move || {
                        // Let PE 1 reach its parker first.
                        for _ in 0..64 {
                            yield_now();
                        }
                        for _ in 0..32 {
                            let done = done.clone();
                            with_pe(|p| {
                                p.sched().spawn(StackFlavor::Isomalloc, move || {
                                    // Long enough that the burst spans
                                    // several park timeouts on PE 1.
                                    for _ in 0..256 {
                                        yield_now();
                                    }
                                    done.fetch_add(1, Ordering::Relaxed);
                                })
                            })
                            .unwrap();
                        }
                    })
                    .unwrap();
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 32);
        assert_eq!(rep.stranded_threads, vec![0; 2]);
        assert!(
            rep.sched_stats[1].migrations_in > 0,
            "the parked PE must wake and steal the late burst: {:?}",
            rep.sched_stats
        );
    }

    #[test]
    fn virtual_time_respects_message_latency() {
        let mut mb = MachineBuilder::new(2).net_model(NetModel {
            latency_ns: 1_000_000,
            ns_per_byte: 0.0,
        });
        let h = mb.handler(|_pe, _msg| {});
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 0 {
                pe.send(1, h, vec![1, 2, 3]);
            }
        });
        assert!(
            rep.pe_vtimes[1] >= 1_000_000,
            "receiver clock must include latency: {:?}",
            rep.pe_vtimes
        );
        assert!(rep.parallel_time_ns() >= 1_000_000);
    }

    #[test]
    fn charge_ns_advances_only_local_clock() {
        let mut mb = MachineBuilder::new(2).net_model(NetModel::zero());
        let _ = mb.handler(|_, _| {});
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 1 {
                pe.charge_ns(5_000_000);
            }
        });
        assert!(rep.pe_vtimes[1] >= 5_000_000);
        assert!(rep.pe_vtimes[0] < 5_000_000);
    }

    #[test]
    fn ext_slots_are_typed_and_per_pe() {
        #[derive(Default)]
        struct Counter(u64);
        let mut mb = MachineBuilder::new(2).net_model(NetModel::zero());
        let h = mb.handler(|pe, _msg| {
            pe.ext::<Counter, _>(|c| c.0 += 1);
        });
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let check = mb.handler(move |pe, _msg| {
            let v = pe.ext::<Counter, _>(|c| c.0);
            seen2.fetch_add(v, Ordering::Relaxed);
        });
        mb.run_deterministic(move |pe| {
            if pe.id() == 0 {
                pe.send(1, h, vec![]);
                pe.send(1, h, vec![]);
                pe.send(0, h, vec![]);
                pe.send(1, check, vec![]);
            }
        });
        // PE1 counted 2; PE0's counter (1) is separate.
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stranded_threads_are_reported() {
        let mut mb = MachineBuilder::new(1).net_model(NetModel::zero());
        let _ = mb.handler(|_, _| {});
        let rep = mb.run_deterministic(|pe| {
            pe.sched()
                .spawn(StackFlavor::Standard, || {
                    yield_now();
                    suspend(); // nobody will wake us
                })
                .unwrap();
        });
        assert_eq!(rep.stranded_threads, vec![1]);
    }

    #[test]
    fn with_pe_panics_outside_machine() {
        let r = std::panic::catch_unwind(|| with_pe(|p| p.id()));
        assert!(r.is_err());
    }

    /// The ring test's shape under fault injection: token still makes
    /// every hop exactly once despite drops, dups, delays and reordering.
    fn faulty_ring(plan: FaultPlan) -> (u64, MachineReport) {
        let total = Arc::new(AtomicU64::new(0));
        // Modeled time: virtual clocks advance only by modeled costs, so
        // retransmit/fault counts cannot wobble with host CPU contention.
        let mut mb = MachineBuilder::new(4).fault_plan(plan).modeled_time(true);
        let h = {
            let total = total.clone();
            mb.handler(move |pe, msg| {
                let hops = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
                total.fetch_add(1, Ordering::Relaxed);
                if hops > 0 {
                    pe.send(
                        (pe.id() + 1) % pe.num_pes(),
                        msg.handler,
                        (hops - 1).to_le_bytes().to_vec(),
                    );
                }
            })
        };
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 0 {
                pe.send(1, h, 40u64.to_le_bytes().to_vec());
            }
        });
        (total.load(Ordering::Relaxed), rep)
    }

    #[test]
    fn lossy_link_still_delivers_exactly_once() {
        let plan = FaultPlan::new(1234)
            .drop_prob(0.2)
            .dup_prob(0.2)
            .delay(0.2, 50_000)
            .reorder_prob(0.2);
        let (total, rep) = faulty_ring(plan);
        assert_eq!(total, 41, "40 hops + initial, each delivered once");
        assert_eq!(rep.messages, 41, "logical count unaffected by faults");
        let f = rep.faults.expect("fault stats present");
        assert!(f.dropped > 0, "plan injected drops: {f:?}");
        assert!(f.retransmits >= f.dropped, "every drop was repaired");
        assert!(f.acks > 0);
        assert!(rep.crashed.is_none());
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = || FaultPlan::new(99).drop_prob(0.15).dup_prob(0.1).reorder_prob(0.1);
        let (t1, r1) = faulty_ring(plan());
        let (t2, r2) = faulty_ring(plan());
        assert_eq!(t1, t2);
        assert_eq!(r1.faults, r2.faults, "same seed, same fault schedule");
        assert_eq!(r1.messages, r2.messages);
    }

    #[test]
    fn attached_plan_without_faults_is_transparent() {
        let (total, rep) = faulty_ring(FaultPlan::new(5));
        assert_eq!(total, 41);
        let f = rep.faults.unwrap();
        assert_eq!(f.dropped + f.duplicated + f.reordered + f.delayed, 0);
        assert!(f.acks > 0, "reliable transport still acks");
    }

    #[test]
    fn scripted_crash_aborts_the_run() {
        let plan = FaultPlan::new(7).crash_pe(2, 0);
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(4).fault_plan(plan);
        let h = {
            let total = total.clone();
            mb.handler(move |_pe, _msg| {
                total.fetch_add(1, Ordering::Relaxed);
            })
        };
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 0 {
                for d in 0..pe.num_pes() {
                    pe.send(d, h, vec![]);
                }
            }
        });
        assert_eq!(rep.crashed, Some(2));
        // PE2 never ran its handler; the rest may or may not have before
        // the abort, but never more than their own message.
        assert!(total.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn scripted_crash_aborts_threaded_mode() {
        let plan = FaultPlan::new(7).crash_pe(1, 0);
        let mut mb = MachineBuilder::new(3).fault_plan(plan);
        let h = mb.handler(|_pe, _msg| {});
        let rep = mb.run(|pe| {
            if pe.id() == 0 {
                for d in 0..pe.num_pes() {
                    pe.send(d, h, vec![]);
                }
            }
        });
        assert_eq!(rep.crashed, Some(1));
    }

    #[test]
    fn stall_delays_but_run_completes() {
        let plan = FaultPlan::new(3).stall_pe(1, 0, 50);
        let (total, rep) = faulty_ring(plan);
        assert_eq!(total, 41);
        let f = rep.faults.unwrap();
        assert!(f.stalled_steps >= 50, "stall consumed its steps: {f:?}");
        assert!(rep.crashed.is_none());
    }

    /// One online-mode run: ring traffic, PE 2 crashes mid-flight, the
    /// phi-accrual detector suspects and confirms it, the leader's death
    /// upcall drives a reap/ack mini-protocol across the survivors, and
    /// the machine quiesces WITHOUT tearing the world down. Returns the
    /// logical-delivery total and the report.
    fn online_crash_run(seed: u64) -> (u64, MachineReport) {
        use crate::fault::RecoveryPhase;
        let plan = FaultPlan::new(seed).crash_pe(2, 150_000).online_recovery(1);
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(4).fault_plan(plan).modeled_time(true);
        let work = {
            let total = total.clone();
            mb.handler(move |pe, msg| {
                total.fetch_add(1, Ordering::Relaxed);
                let hops = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
                if hops > 0 {
                    pe.charge_ns(20_000);
                    pe.send(
                        (pe.id() + 1) % pe.num_pes(),
                        msg.handler,
                        (hops - 1).to_le_bytes().to_vec(),
                    );
                }
            })
        };
        // Survivor acks back to the leader; the last ack resolves the
        // recovery so the machine may quiesce again.
        let acks = Arc::new(AtomicU64::new(0));
        let ack_h = {
            let acks = acks.clone();
            mb.handler(move |pe, msg| {
                let dead = msg.data[0] as usize;
                let got = acks.fetch_add(1, Ordering::Relaxed) + 1;
                let live =
                    pe.num_pes() as u64 - u64::from(pe.confirmed_dead_mask().count_ones());
                if got == live - 1 {
                    pe.mark_recovery_resolved(dead, 1);
                }
            })
        };
        // Non-leader survivors: write the dead PE's links off, poke the
        // corpse once (exercises the written-off-at-source path), ack.
        let reap_h = mb.handler(move |pe, msg| {
            let dead = msg.data[0] as usize;
            pe.reap_dead(dead);
            pe.send(dead, msg.handler, vec![msg.data[0]]);
            pe.send(msg.src_pe, ack_h, vec![msg.data[0]]);
        });
        let mb = mb.on_death_confirmed(move |pe, dead| {
            pe.reap_dead(dead);
            pe.note_recovery(RecoveryPhase::Rollback, dead, 0);
            for d in 0..pe.num_pes() {
                if d != pe.id() && !pe.is_confirmed_dead(d) {
                    pe.send(d, reap_h, vec![dead as u8]);
                }
            }
        });
        let rep = mb.run_deterministic(|pe| {
            if pe.id() == 0 {
                pe.send(1, work, 200u64.to_le_bytes().to_vec());
            }
        });
        (total.load(Ordering::Relaxed), rep)
    }

    #[test]
    fn online_crash_is_detected_confirmed_and_healed() {
        use crate::fault::RecoveryPhase;
        let (total, rep) = online_crash_run(21);
        // The run completed (this test returning at all is the headline:
        // quiescence was re-established around the corpse) and was never
        // aborted the legacy way.
        assert!(rep.crashed.is_none(), "online mode must not abort");
        assert_eq!(rep.dead_pes, vec![2]);
        assert!(
            total < 201,
            "the token died with PE 2, the ring cannot finish"
        );
        let f = rep.faults.unwrap();
        assert!(f.heartbeats > 0, "failure detection ran: {f:?}");
        assert!(
            f.written_off >= 2,
            "corpse pokes + in-flight losses written off: {f:?}"
        );
        // The recovery timeline tells the whole story, in causal order.
        let find = |ph: RecoveryPhase| rep.recovery.iter().find(|e| e.phase == ph);
        let crash = find(RecoveryPhase::Crash).expect("crash recorded");
        let suspect = find(RecoveryPhase::Suspect).expect("suspicion raised");
        let confirm = find(RecoveryPhase::Confirm).expect("death confirmed");
        let resume = find(RecoveryPhase::Resume).expect("recovery resolved");
        assert_eq!(crash.dead, 2);
        assert_eq!(suspect.dead, 2);
        assert_eq!(confirm.dead, 2);
        assert_eq!(resume.dead, 2);
        assert!(suspect.pe != 2, "a survivor raised the suspicion");
        assert!(
            suspect.vt <= confirm.vt && confirm.vt <= resume.vt,
            "suspect -> confirm -> resume in virtual-time order: {:?}",
            rep.recovery
        );
        // No live PE was ever confirmed dead (no false STONITH).
        assert!(rep
            .recovery
            .iter()
            .filter(|e| e.phase == RecoveryPhase::Confirm)
            .all(|e| e.dead == 2));
    }

    #[test]
    fn online_detection_is_deterministic() {
        let (t1, r1) = online_crash_run(77);
        let (t2, r2) = online_crash_run(77);
        assert_eq!(t1, t2);
        assert_eq!(r1.recovery, r2.recovery, "same seed, same timeline");
        assert_eq!(r1.faults, r2.faults);
        assert_eq!(r1.dead_pes, r2.dead_pes);
    }

    #[test]
    fn online_stall_is_suspected_then_cleared_not_killed() {
        use crate::fault::RecoveryPhase;
        // PE 1 goes silent for 600 pump iterations but is NOT dead. With a
        // sky-high confirm threshold the detector may suspect it, must
        // clear the suspicion when heartbeats resume, and must never
        // fence/kill it; the ring still completes exactly.
        let plan = FaultPlan::new(9)
            .stall_pe(1, 0, 600)
            .online_recovery(1)
            .phi_thresholds(2.0, 1e12);
        let (total, rep) = faulty_ring(plan);
        assert_eq!(total, 41, "every hop still delivered exactly once");
        assert!(rep.crashed.is_none());
        assert!(rep.dead_pes.is_empty(), "a stall is not a death");
        let f = rep.faults.unwrap();
        assert!(f.stalled_steps >= 600);
        assert!(
            f.retransmits_capped > 0,
            "the long stall pushed RTO backoff to its cap: {f:?}"
        );
        let suspects: Vec<_> = rep
            .recovery
            .iter()
            .filter(|e| e.phase == RecoveryPhase::Suspect && e.dead == 1)
            .collect();
        let clears: Vec<_> = rep
            .recovery
            .iter()
            .filter(|e| e.phase == RecoveryPhase::Clear && e.dead == 1)
            .collect();
        assert!(!suspects.is_empty(), "the stall drew suspicion");
        assert!(
            clears.len() >= suspects.len().min(1),
            "suspicion was withdrawn when heartbeats resumed: {:?}",
            rep.recovery
        );
        assert!(rep
            .recovery
            .iter()
            .all(|e| e.phase != RecoveryPhase::Confirm));
    }

    #[test]
    fn batched_counters_detect_exact_fixpoint_under_faults() {
        // Per-message quiescence accounting is buffered in PE-local cells
        // and flushed to the hub only at idle entry; the fixpoint must
        // still be the exact logical sent==recv point. Retransmits and
        // duplicates from the fault layer must not leak into the totals.
        let plan = FaultPlan::new(4242)
            .drop_prob(0.25)
            .dup_prob(0.2)
            .reorder_prob(0.15);
        let (total, rep) = faulty_ring(plan);
        assert_eq!(total, 41);
        assert_eq!(rep.messages, 41, "batched sent-counter total is exact");
        assert_eq!(
            rep.pe_delivered.iter().sum::<u64>(),
            41,
            "dispatch counters agree: {:?}",
            rep.pe_delivered
        );
        assert!(rep.faults.unwrap().dropped > 0, "faults actually fired");
    }

    #[test]
    fn threaded_batched_counters_are_complete_at_quiescence() {
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(3).fault_plan(FaultPlan::new(77).drop_prob(0.15));
        let h = {
            let total = total.clone();
            mb.handler(move |_pe, _msg| {
                total.fetch_add(1, Ordering::Relaxed);
            })
        };
        let rep = mb.run(move |pe| {
            for d in 0..pe.num_pes() {
                for _ in 0..10 {
                    pe.send(d, h, vec![1, 2, 3]);
                }
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 90);
        assert_eq!(rep.messages, 90, "no message counted twice or missed");
        assert_eq!(rep.pe_delivered.iter().sum::<u64>(), 90);
    }

    #[test]
    fn pooled_buffers_cross_threads_and_return_home() {
        // A ping-pong where every hop is packed into a pooled buffer: the
        // receiving PE (a different OS thread under run()) drops each
        // delivered payload, which must hand the bytes back to the
        // *origin* PE's pool in time for its next hop — so the steady
        // state recycles instead of allocating.
        let shared = flows_core::SharedPools::new_for_tests();
        let hops = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(2)
            .net_model(NetModel::zero())
            .shared_pools(shared.clone());
        let h = {
            let hops = hops.clone();
            mb.handler(move |pe, msg| {
                let n = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
                hops.fetch_add(1, Ordering::Relaxed);
                if n > 0 {
                    let mut buf = pe.payload_buf();
                    buf.extend_from_slice(&(n - 1).to_le_bytes());
                    pe.send(msg.src_pe, msg.handler, buf.freeze());
                }
            })
        };
        let rep = mb.run(move |pe| {
            if pe.id() == 0 {
                let mut buf = pe.payload_buf();
                buf.extend_from_slice(&200u64.to_le_bytes());
                pe.send(1, h, buf.freeze());
            }
        });
        assert_eq!(hops.load(Ordering::Relaxed), 201);
        assert_eq!(rep.pe_delivered.iter().sum::<u64>(), 201);
        for pe in 0..2 {
            let s = shared.payload_pool(pe).stats();
            assert!(s.returns > 0, "pe{pe}: buffers came back cross-thread: {s:?}");
            assert!(s.reuses > 10, "pe{pe}: steady state recycled: {s:?}");
            assert!(s.allocs < 10, "pe{pe}: far fewer allocs than hops: {s:?}");
        }
    }

    #[test]
    fn threaded_mode_survives_lossy_links() {
        let plan = FaultPlan::new(21).drop_prob(0.2).dup_prob(0.1);
        let total = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(3).fault_plan(plan);
        let h = {
            let total = total.clone();
            mb.handler(move |_pe, msg| {
                total.fetch_add(msg.data.len() as u64, Ordering::Relaxed);
            })
        };
        let rep = mb.run(move |pe| {
            for d in 0..pe.num_pes() {
                pe.send(d, h, vec![0; 10 * (pe.id() + 1)]);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 180, "exactly-once despite loss");
        assert!(rep.faults.unwrap().dropped > 0);
    }
}
