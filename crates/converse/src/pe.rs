//! One processing element: message pump + thread scheduler + virtual clock.

use crate::machine::Hub;
use crate::msg::{HandlerId, Message, NetModel};
use crossbeam::channel::{Receiver, Sender};
use flows_core::Scheduler;
use flows_sys::time::thread_cpu_ns;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) type Handler = Arc<dyn Fn(&Pe, Message) + Send + Sync>;

thread_local! {
    static CURRENT_PE: Cell<*const Pe> = const { Cell::new(std::ptr::null()) };
}

/// A processing element of the simulated machine. All methods take `&self`
/// (interior mutability), so code running inside handlers *and* inside
/// user-level threads can reach its services through [`with_pe`] and the
/// crate-level free functions without aliasing `&mut`.
pub struct Pe {
    id: usize,
    num_pes: usize,
    sched: Scheduler,
    rx: Receiver<Message>,
    txs: Vec<Sender<Message>>,
    handlers: Arc<Vec<Handler>>,
    hub: Arc<Hub>,
    net: NetModel,
    vtime: Cell<u64>,
    busy: Cell<u64>,
    local_q: RefCell<VecDeque<Message>>,
    exts: RefCell<HashMap<TypeId, Box<dyn Any>>>,
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("id", &self.id)
            .field("vtime_ns", &self.vtime.get())
            .field("sched", &self.sched)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
impl Pe {
    pub(crate) fn new(
        id: usize,
        num_pes: usize,
        sched: Scheduler,
        rx: Receiver<Message>,
        txs: Vec<Sender<Message>>,
        handlers: Arc<Vec<Handler>>,
        hub: Arc<Hub>,
        net: NetModel,
    ) -> Pe {
        Pe {
            id,
            num_pes,
            sched,
            rx,
            txs,
            handlers,
            hub,
            net,
            vtime: Cell::new(0),
            busy: Cell::new(0),
            local_q: RefCell::new(VecDeque::new()),
            exts: RefCell::new(HashMap::new()),
        }
    }

    /// This PE's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Machine size.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The PE's thread scheduler.
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// Current virtual time in nanoseconds (see crate docs).
    pub fn vtime_ns(&self) -> u64 {
        self.vtime.get()
    }

    /// Advance the virtual clock by an explicit modeled cost (counted as
    /// busy time).
    pub fn charge_ns(&self, ns: u64) {
        self.vtime.set(self.vtime.get() + ns);
        self.busy.set(self.busy.get() + ns);
    }

    /// Accumulated *busy* virtual time: work charged on this PE, excluding
    /// waits imposed by message arrival times. `vtime - busy` is how long
    /// the PE's clock sat waiting on the critical path.
    pub fn busy_ns(&self) -> u64 {
        self.busy.get()
    }

    /// Send `data` to `handler` on PE `dest`. Never blocks; self-sends go
    /// through the local queue.
    pub fn send(&self, dest: usize, handler: HandlerId, data: Vec<u8>) {
        assert!(dest < self.num_pes, "send to PE {dest} of {}", self.num_pes);
        let msg = Message {
            handler,
            data,
            src_pe: self.id,
            sent_vtime: self.vtime.get(),
        };
        self.hub.sent.fetch_add(1, Ordering::SeqCst);
        if dest == self.id {
            self.local_q.borrow_mut().push_back(msg);
        } else {
            // Unbounded channel: send can only fail if the PE is gone,
            // which means the machine is shutting down.
            let _ = self.txs[dest].send(msg);
        }
    }

    /// Access (creating on first use) a typed per-PE extension slot. The
    /// comm/chare/AMPI layers keep their tables here. The closure must not
    /// suspend the calling thread (the borrow is checked at runtime).
    pub fn ext<T: Any + Default, R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut exts = self.exts.borrow_mut();
        let slot = exts
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()));
        f(slot.downcast_mut::<T>().expect("ext type"))
    }

    /// Deliver one pending message, if any. Returns whether one was
    /// processed.
    fn deliver_one(&self) -> bool {
        let msg = {
            let local = self.local_q.borrow_mut().pop_front();
            match local {
                Some(m) => Some(m),
                None => self.rx.try_recv().ok(),
            }
        };
        let Some(msg) = msg else { return false };
        self.hub.recv.fetch_add(1, Ordering::SeqCst);
        // Virtual clock: the message cannot be processed before it arrives.
        let arrival = self
            .net
            .arrival(msg.sent_vtime, msg.data.len(), msg.src_pe == self.id);
        self.vtime.set(self.vtime.get().max(arrival));
        let handler = self
            .handlers
            .get(msg.handler.0)
            .unwrap_or_else(|| panic!("unregistered handler {:?}", msg.handler))
            .clone();
        handler(self, msg);
        true
    }

    /// One scheduler-loop iteration: deliver pending messages, then run
    /// one thread burst. Returns whether any progress was made.
    /// The wall time spent is charged to the virtual clock.
    pub fn pump(&self) -> bool {
        // CPU time (see flows_sys::time::thread_cpu_ns): virtual time must
        // charge this PE's own work, not host preemption.
        let t0 = thread_cpu_ns();
        let mut progress = false;
        // Drain a bounded batch of messages so threads stay responsive.
        for _ in 0..64 {
            if !self.deliver_one() {
                break;
            }
            progress = true;
        }
        if self.sched.step() {
            progress = true;
        }
        if progress {
            self.charge_ns(thread_cpu_ns().saturating_sub(t0));
        }
        progress
    }

    /// Is there any local work (messages or runnable threads)?
    pub fn has_work(&self) -> bool {
        !self.local_q.borrow().is_empty() || !self.rx.is_empty() || self.sched.runnable() > 0
    }

    pub(crate) fn enter(&self) -> *const Pe {
        CURRENT_PE.with(|c| c.replace(self as *const Pe))
    }

    pub(crate) fn leave(&self, prev: *const Pe) {
        CURRENT_PE.with(|c| c.set(prev));
    }
}

/// Run `f` with the PE that is driving the calling code (handler or
/// user-level thread). Panics outside a machine.
pub fn with_pe<R>(f: impl FnOnce(&Pe) -> R) -> R {
    let p = CURRENT_PE.with(|c| c.get());
    assert!(
        !p.is_null(),
        "not running on a PE (use MachineBuilder::run / run_deterministic)"
    );
    // SAFETY: the pointer is installed by Pe::enter for exactly the span
    // the PE is being driven on this OS thread; Pe methods take &self.
    f(unsafe { &*p })
}

/// Like [`with_pe`] but returns `None` outside a machine.
pub fn try_with_pe<R>(f: impl FnOnce(&Pe) -> R) -> Option<R> {
    let p = CURRENT_PE.with(|c| c.get());
    if p.is_null() {
        return None;
    }
    // SAFETY: as in with_pe.
    Some(f(unsafe { &*p }))
}

/// The calling PE's index.
pub fn my_pe() -> usize {
    with_pe(|p| p.id())
}

/// Machine size.
pub fn num_pes() -> usize {
    with_pe(|p| p.num_pes())
}

/// Send a message from whatever context is running on this PE.
pub fn send(dest: usize, handler: HandlerId, data: Vec<u8>) {
    with_pe(|p| p.send(dest, handler, data))
}

/// Current virtual time of the calling PE.
pub fn vtime_ns() -> u64 {
    with_pe(|p| p.vtime_ns())
}

/// Charge modeled work to the calling PE's virtual clock.
pub fn charge_ns(ns: u64) {
    with_pe(|p| p.charge_ns(ns))
}
