//! One processing element: message pump + thread scheduler + virtual clock.

use crate::fault::{FaultCtx, FaultStats, RecoveryEvent, RecoveryPhase};
use crate::link::{rto_ns, LinkTable, Packet, PacketBody, RxOutcome, Unacked, RTO_ATTEMPT_CAP};
use crate::machine::{Hub, Morgue};
use crate::msg::{HandlerId, Message, NetModel};
use crossbeam::channel::{Receiver, Sender};
use flows_core::{Payload, PayloadBuf, PayloadPool, Scheduler};
use flows_sys::time::thread_cpu_ns;
use flows_trace::{emit, EventKind, TraceRing};
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) type Handler = Arc<dyn Fn(&Pe, Message) + Send + Sync>;

/// The death-confirmed upcall (see `MachineBuilder::on_death_confirmed`).
pub(crate) type DeathUpcall = Arc<dyn Fn(&Pe, usize) + Send + Sync>;

/// Phi-accrual scale factor: phi = elapsed / (mean * ln 10), i.e. phi is
/// the negative decimal log of the probability the peer is alive under an
/// exponential inter-arrival model. phi 4 ≈ 9.2 mean intervals of
/// silence, phi 8 ≈ 18.4 — far beyond any plausible loss burst.
const PHI_SCALE: f64 = std::f64::consts::LOG10_E;

/// Per-peer failure-detector state (online mode only).
#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    /// Local virtual time of the last heartbeat from this peer (0 = the
    /// detector has not started observing it yet).
    last_vt: u64,
    /// EWMA of observed heartbeat inter-arrival times (ns), floored at
    /// half the heartbeat period so a post-stall burst of queued
    /// heartbeats cannot collapse the threshold.
    mean_ns: f64,
    /// Currently above the suspicion threshold?
    suspected: bool,
    /// Virtual time the current suspicion started (hysteresis anchor: a
    /// confirm needs at least one heartbeat period of *additional*
    /// silence, so one stale evaluation can never convict on its own).
    suspect_vt: u64,
}

thread_local! {
    static CURRENT_PE: Cell<*const Pe> = const { Cell::new(std::ptr::null()) };
}

/// Consecutive idle pumps before an otherwise-idle PE jumps its virtual
/// clock to the next retransmission deadline. In threaded mode this gives
/// in-flight acks a few spins to arrive before we burn a retransmit.
const IDLE_PUMPS_BEFORE_RETX_JUMP: u32 = 8;

/// In threaded mode an idle pump is a handful of atomic loads, so a pump
/// count measures nothing about real waiting: a peer's reply travels at
/// OS-scheduling speed (microseconds to milliseconds on a loaded host).
/// Require this much *wall-clock* silence on top of the pump count before
/// jumping the virtual clock to a retransmission deadline, or a fast
/// sender storms the wire with spurious retransmits.
const RETX_WALL_QUIET_NS: u64 = 200_000;

/// How many cross-PE packets one pump pulls off the channel per lock
/// acquisition (see `Receiver::try_recv_batch`).
const RX_BATCH: usize = 64;

/// A processing element of the simulated machine. All methods take `&self`
/// (interior mutability), so code running inside handlers *and* inside
/// user-level threads can reach its services through [`with_pe`] and the
/// crate-level free functions without aliasing `&mut`.
pub struct Pe {
    id: usize,
    num_pes: usize,
    /// Global id of this process's first PE (0 in a single-process
    /// machine). `txs` is indexed by `dest - base`.
    base: usize,
    /// The multi-process world, when this machine spans processes.
    /// Destinations outside `base..base + txs.len()` route through it.
    world: Option<Arc<flows_net::World>>,
    sched: Scheduler,
    rx: Receiver<Packet>,
    txs: Vec<Sender<Packet>>,
    handlers: Arc<Vec<Handler>>,
    hub: Arc<Hub>,
    net: NetModel,
    fault: Option<FaultCtx>,
    modeled_time: bool,
    /// Intra-node work stealing enabled (`MachineBuilder::work_stealing`):
    /// idle PEs pull run-queue tails off busy ones through the shared
    /// steal mesh instead of waiting for an explicit migration.
    steal: bool,
    vtime: Cell<u64>,
    busy: Cell<u64>,
    local_q: RefCell<VecDeque<Message>>,
    /// Cross-PE packets drained from `rx` in batches, awaiting delivery.
    pending: RefCell<VecDeque<Packet>>,
    links: RefCell<LinkTable>,
    stall_left: Cell<u64>,
    stall_fired: Cell<bool>,
    crashed: Cell<bool>,
    idle_pumps: Cell<u32>,
    /// Driven by `MachineBuilder::run` (one OS thread per PE)?
    threaded: Cell<bool>,
    /// Wall clock at which the current idle streak crossed the pump
    /// threshold (threaded retransmit gate).
    idle_wall_start: Cell<u64>,
    /// This PE's payload recycling pool (from `SharedPools`).
    pool: Arc<PayloadPool>,
    /// Quiescence deltas accumulated locally and flushed to the hub only
    /// at idle entry — no machine-global atomics on the per-message path.
    local_sent: Cell<u64>,
    local_recv: Cell<u64>,
    /// Cumulative handler invocations (the bench's dispatch-rate counter).
    delivered: Cell<u64>,
    /// This PE's trace event ring when the machine was built with
    /// `.tracing(true)`. Installed as the OS thread's current ring for
    /// exactly the `enter()`..`leave()` span.
    ring: Option<Arc<TraceRing>>,
    /// The ring that was current before `enter()` (restored by `leave()`,
    /// which keeps nested machines from cross-recording).
    prev_ring: Cell<*const TraceRing>,
    exts: RefCell<HashMap<TypeId, Box<dyn Any>>>,
    /// Phi-accrual detector state per peer (empty unless the plan enables
    /// online recovery).
    det: RefCell<Vec<PeerHealth>>,
    /// Virtual time of the last detector evaluation (0 = never). A large
    /// gap means the *observer* went silent, not its peers.
    det_eval_vt: Cell<u64>,
    /// Virtual time of the next heartbeat emission (0 = not armed yet).
    next_hb: Cell<u64>,
    /// Heartbeats emitted so far (drives the deterministic drop stream).
    hb_seq: Cell<u64>,
    /// Mask of dead peers whose links this PE has written off.
    reaped: Cell<u64>,
    /// Mask of peers this PE confirmed dead and still owes an upcall for
    /// (fires once the deceased's morgue record is published).
    upcall_pending: Cell<u64>,
    death_upcall: Option<DeathUpcall>,
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("id", &self.id)
            .field("vtime_ns", &self.vtime.get())
            .field("sched", &self.sched)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
impl Pe {
    pub(crate) fn new(
        id: usize,
        num_pes: usize,
        base: usize,
        world: Option<Arc<flows_net::World>>,
        sched: Scheduler,
        rx: Receiver<Packet>,
        txs: Vec<Sender<Packet>>,
        handlers: Arc<Vec<Handler>>,
        hub: Arc<Hub>,
        net: NetModel,
        fault: Option<FaultCtx>,
        modeled_time: bool,
        steal: bool,
        pool: Arc<PayloadPool>,
        ring: Option<Arc<TraceRing>>,
        death_upcall: Option<DeathUpcall>,
    ) -> Pe {
        let online = fault.as_ref().is_some_and(|c| c.plan.online);
        let hb_period = fault.as_ref().map_or(0, |c| c.plan.heartbeat_ns);
        let det = if online {
            vec![
                PeerHealth {
                    last_vt: 0,
                    mean_ns: hb_period.max(1) as f64,
                    suspected: false,
                    suspect_vt: 0,
                };
                num_pes
            ]
        } else {
            Vec::new()
        };
        Pe {
            id,
            num_pes,
            base,
            world,
            sched,
            rx,
            txs,
            handlers,
            hub,
            net,
            fault,
            modeled_time,
            steal,
            vtime: Cell::new(0),
            busy: Cell::new(0),
            local_q: RefCell::new(VecDeque::new()),
            pending: RefCell::new(VecDeque::new()),
            links: RefCell::new(LinkTable::new(num_pes)),
            stall_left: Cell::new(0),
            stall_fired: Cell::new(false),
            crashed: Cell::new(false),
            idle_pumps: Cell::new(0),
            threaded: Cell::new(false),
            idle_wall_start: Cell::new(0),
            pool,
            local_sent: Cell::new(0),
            local_recv: Cell::new(0),
            delivered: Cell::new(0),
            ring,
            prev_ring: Cell::new(std::ptr::null()),
            exts: RefCell::new(HashMap::new()),
            det: RefCell::new(det),
            det_eval_vt: Cell::new(0),
            next_hb: Cell::new(0),
            hb_seq: Cell::new(0),
            reaped: Cell::new(0),
            upcall_pending: Cell::new(0),
            death_upcall,
        }
    }

    /// Is this machine running the online-recovery protocol?
    fn online(&self) -> bool {
        self.fault.as_ref().is_some_and(|c| c.plan.online)
    }

    /// The attached fault plan, if any (layers above read the online
    /// flag, replication degree and heartbeat period from here).
    pub fn fault_plan(&self) -> Option<&crate::fault::FaultPlan> {
        self.fault.as_ref().map(|c| &*c.plan)
    }

    /// Bitmask of peers confirmed dead by the failure detector. The comm
    /// and AMPI layers use it to remap roots/homes off dead PEs.
    pub fn confirmed_dead_mask(&self) -> u64 {
        self.hub.confirmed_mask()
    }

    /// Has `pe` been confirmed dead?
    pub fn is_confirmed_dead(&self, pe: usize) -> bool {
        self.hub.is_confirmed(pe)
    }

    /// Mark this PE as driven by threaded mode (enables the wall-clock
    /// retransmit gate; see `RETX_WALL_QUIET_NS`).
    pub(crate) fn set_threaded(&self) {
        self.threaded.set(true);
    }

    /// This PE's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Machine size.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The PE's thread scheduler.
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// Current virtual time in nanoseconds (see crate docs).
    pub fn vtime_ns(&self) -> u64 {
        self.vtime.get()
    }

    /// Advance the virtual clock by an explicit modeled cost (counted as
    /// busy time).
    pub fn charge_ns(&self, ns: u64) {
        self.vtime.set(self.vtime.get() + ns);
        self.busy.set(self.busy.get() + ns);
    }

    /// Accumulated *busy* virtual time: work charged on this PE, excluding
    /// waits imposed by message arrival times. `vtime - busy` is how long
    /// the PE's clock sat waiting on the critical path.
    pub fn busy_ns(&self) -> u64 {
        self.busy.get()
    }

    /// Whether this PE has hit a scripted crash (a dead PE does nothing).
    pub fn crashed(&self) -> bool {
        self.crashed.get()
    }

    /// Handler invocations on this PE so far (the dispatch-rate counter).
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// An empty payload writer drawn from this PE's recycling pool.
    /// Build the message body in it, then [`PayloadBuf::freeze`] (or just
    /// pass it to [`Pe::send`]) — steady state, no allocation.
    pub fn payload_buf(&self) -> PayloadBuf {
        self.pool.buf()
    }

    /// Like [`Pe::payload_buf`] with a minimum capacity.
    pub fn payload_buf_with_capacity(&self, cap: usize) -> PayloadBuf {
        self.pool.buf_with_capacity(cap)
    }

    /// PUP-pack `v` into a pooled payload (the layers above use this to
    /// build wire messages without a fresh allocation per send).
    pub fn pack_payload<T: flows_pup::Pup + ?Sized>(&self, v: &mut T) -> Payload {
        let mut buf = self.pool.buf();
        flows_pup::pack_into(v, buf.vec_mut());
        buf.freeze()
    }

    /// This PE's payload pool (stats are used by benches and tests).
    pub fn payload_pool(&self) -> &Arc<PayloadPool> {
        &self.pool
    }

    /// Push one packet onto `dest`'s channel and wake it if it is parked.
    /// In a multi-process machine, destinations hosted by another process
    /// go out through the transport instead.
    fn post(&self, dest: usize, pkt: Packet) {
        let local = dest.wrapping_sub(self.base);
        if let Some(tx) = self.txs.get(local) {
            // Unbounded channel: send can only fail if the PE is gone,
            // which means the machine is shutting down.
            let _ = tx.send(pkt);
            self.hub.wake(dest);
        } else {
            let world = self
                .world
                .as_ref()
                .expect("non-local destination without a multi-process world");
            crate::netpump::send_packet(world, dest, pkt);
        }
    }

    /// Flush locally batched quiescence deltas to the hub counters.
    /// Called at idle entry (and before any quiescence check), so the
    /// global sent==recv comparison stays exact without per-message RMWs.
    pub(crate) fn flush_counters(&self) {
        let s = self.local_sent.replace(0);
        if s != 0 {
            self.hub.sent.fetch_add(s, Ordering::SeqCst);
        }
        let r = self.local_recv.replace(0);
        if r != 0 {
            self.hub.recv.fetch_add(r, Ordering::SeqCst);
        }
    }

    /// Send `data` to `handler` on PE `dest`. Never blocks; self-sends go
    /// through the local queue and never enter the (possibly faulty) link
    /// layer. Accepts anything payload-like: a [`Payload`] or pooled
    /// [`PayloadBuf`] (zero-copy), a `Vec<u8>`, or a byte slice/array.
    pub fn send(&self, dest: usize, handler: HandlerId, data: impl Into<Payload>) {
        assert!(dest < self.num_pes, "send to PE {dest} of {}", self.num_pes);
        let msg = Message {
            handler,
            data: data.into(),
            src_pe: self.id,
            sent_vtime: self.vtime.get(),
        };
        self.local_sent.set(self.local_sent.get() + 1);
        emit(
            EventKind::MsgSend,
            dest as u64,
            msg.data.len() as u64,
            handler.0 as u64,
        );
        if dest == self.id {
            self.local_q.borrow_mut().push_back(msg);
        } else if let Some(ctx) = &self.fault {
            if self.links.borrow().tx[dest].dead {
                // Peer confirmed dead and the link reaped: count the
                // logical send and write it off at the source so the
                // quiescence fixpoint stays exact.
                FaultStats::bump_by(&ctx.stats.written_off, 1);
                return;
            }
            self.link_send(dest, msg);
        } else {
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data { seq: 0, msg },
                },
            );
        }
    }

    /// Enqueue a message on the reliable link to `dest`, applying the
    /// fault plan's delay / reorder decisions and recording the packet for
    /// retransmission until acked.
    fn link_send(&self, dest: usize, mut msg: Message) {
        let ctx = self.fault.as_ref().expect("link_send without plan");
        let mut links = self.links.borrow_mut();
        let tx = &mut links.tx[dest];
        let seq = tx.assign_seq();
        if ctx.plan.delay_roll(self.id, dest, seq) {
            msg.sent_vtime += ctx.plan.delay_ns;
            FaultStats::bump(&ctx.stats.delayed);
        }
        tx.unacked.insert(
            seq,
            Unacked {
                msg: msg.clone(),
                deadline: self.vtime.get()
                    + rto_ns(
                        self.net.latency_ns,
                        ctx.plan.delay_ns,
                        0,
                        ctx.plan.jitter_roll(self.id, dest, seq, 0),
                    ),
                attempt: 0,
            },
        );
        if tx.pocket.is_none() && ctx.plan.reorder_roll(self.id, dest, seq) {
            // Hold this packet back; it goes out after the next send to
            // the same destination (or at the next pump).
            tx.pocket = Some((seq, msg));
            FaultStats::bump(&ctx.stats.reordered);
            return;
        }
        let pocketed = tx.pocket.take();
        self.transmit(dest, seq, &msg, 0);
        if let Some((pseq, pmsg)) = pocketed {
            // Flushed after its successor: the links observes them swapped.
            self.transmit(dest, pseq, &pmsg, 0);
        }
    }

    /// Physically enqueue one data packet, rolling drop/duplicate faults.
    /// The clones here share the payload (`Message::clone` bumps an `Arc`),
    /// so retransmissions and injected duplicates never copy the body.
    fn transmit(&self, dest: usize, seq: u64, msg: &Message, attempt: u32) {
        let ctx = self.fault.as_ref().expect("transmit without plan");
        if ctx.plan.drop_roll(self.id, dest, seq, attempt) {
            FaultStats::bump(&ctx.stats.dropped);
            emit(EventKind::FaultDrop, dest as u64, seq, attempt as u64);
        } else {
            FaultStats::bump(&ctx.stats.data_packets);
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data {
                        seq,
                        msg: msg.clone(),
                    },
                },
            );
        }
        if ctx.plan.dup_roll(self.id, dest, seq, attempt) {
            FaultStats::bump(&ctx.stats.duplicated);
            FaultStats::bump(&ctx.stats.data_packets);
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data {
                        seq,
                        msg: msg.clone(),
                    },
                },
            );
        }
    }

    /// Access (creating on first use) a typed per-PE extension slot. The
    /// comm/chare/AMPI layers keep their tables here. The closure must not
    /// suspend the calling thread (the borrow is checked at runtime).
    pub fn ext<T: Any + Default, R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut exts = self.exts.borrow_mut();
        let slot = exts
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()));
        f(slot.downcast_mut::<T>().expect("ext type"))
    }

    /// Count a logical receive and run the message's handler.
    fn deliver_msg(&self, msg: Message) {
        self.local_recv.set(self.local_recv.get() + 1);
        self.delivered.set(self.delivered.get() + 1);
        emit(
            EventKind::MsgRecv,
            msg.src_pe as u64,
            msg.data.len() as u64,
            msg.handler.0 as u64,
        );
        // Virtual clock: the message cannot be processed before it arrives.
        let arrival = self
            .net
            .arrival(msg.sent_vtime, msg.data.len(), msg.src_pe == self.id);
        self.vtime.set(self.vtime.get().max(arrival));
        // Dispatch through a borrow: the handler table is frozen at build
        // time, so no per-delivery Arc refcount traffic.
        let handler = self
            .handlers
            .get(msg.handler.0)
            .unwrap_or_else(|| panic!("unregistered handler {:?}", msg.handler));
        handler(self, msg);
    }

    /// Deliver one pending message or protocol packet, if any. Returns
    /// whether one was processed. Cross-PE packets are drained from the
    /// channel a batch at a time (one lock round trip per batch).
    fn deliver_one(&self) -> bool {
        let local = self.local_q.borrow_mut().pop_front();
        if let Some(msg) = local {
            self.deliver_msg(msg);
            return true;
        }
        loop {
            let pkt = {
                let mut pending = self.pending.borrow_mut();
                // `is_empty` is a lock-free length probe: an idle pump
                // costs one atomic load, not a mutex round trip.
                if pending.is_empty() && !self.rx.is_empty() {
                    self.rx.try_recv_batch(&mut pending, RX_BATCH);
                }
                pending.pop_front()
            };
            let Some(pkt) = pkt else {
                return false;
            };
            match pkt.body {
                PacketBody::Data { seq: 0, msg } => self.deliver_msg(msg),
                PacketBody::Data { seq, msg } => self.link_recv(pkt.src, seq, msg),
                PacketBody::Ack { cum } => {
                    self.links.borrow_mut().tx[pkt.src].ack_through(cum);
                }
                PacketBody::Heartbeat { vt, .. } => {
                    // Heartbeats are protocol-invisible: they update the
                    // detector but count as neither progress nor delivery,
                    // or an idle machine trading heartbeats could never
                    // quiesce. Keep draining for a real packet.
                    self.note_heartbeat(pkt.src, vt);
                    continue;
                }
            }
            return true;
        }
    }

    /// Sequenced data packet from `src`: dedupe, reassemble in order,
    /// deliver what is ready, and send a cumulative ack.
    fn link_recv(&self, src: usize, seq: u64, msg: Message) {
        let ctx = self.fault.as_ref().expect("sequenced packet without plan");
        let (ready, cum) = {
            let mut links = self.links.borrow_mut();
            let rx = &mut links.rx[src];
            let ready = match rx.offer(seq, msg) {
                RxOutcome::Deliver(v) => v,
                RxOutcome::Duplicate => {
                    FaultStats::bump(&ctx.stats.dup_dropped);
                    Vec::new()
                }
                RxOutcome::Parked => Vec::new(),
                RxOutcome::Dead => {
                    // Straggler from a reaped peer: already written off;
                    // drop without delivery or ack.
                    return;
                }
            };
            (ready, rx.cum_ack())
        };
        // Ack every data packet (acks are cheap and idempotent); a dropped
        // or stale sender state is repaired by the next retransmission.
        FaultStats::bump(&ctx.stats.acks);
        self.post(
            src,
            Packet {
                src: self.id,
                body: PacketBody::Ack { cum },
            },
        );
        for m in ready {
            self.deliver_msg(m);
        }
    }

    /// Flush any pocketed (reorder-held) packets and retransmit everything
    /// whose deadline has passed. When the PE has been idle for a while and
    /// only timers remain, jump the virtual clock to the earliest deadline
    /// so recovery makes progress in both drive modes. Returns whether any
    /// packet moved.
    fn link_maintain(&self, other_progress: bool) -> bool {
        let ctx = match &self.fault {
            Some(c) => c,
            None => return false,
        };
        let mut moved = false;
        // Flush pockets: a reorder hold lasts at most one pump.
        let pockets: Vec<(usize, u64, Message)> = {
            let mut links = self.links.borrow_mut();
            links
                .tx
                .iter_mut()
                .enumerate()
                .filter_map(|(d, t)| t.pocket.take().map(|(s, m)| (d, s, m)))
                .collect()
        };
        for (dest, seq, msg) in pockets {
            self.transmit(dest, seq, &msg, 0);
            moved = true;
        }
        if !other_progress && !moved {
            let idle = self.idle_pumps.get() + 1;
            self.idle_pumps.set(idle);
            if idle == IDLE_PUMPS_BEFORE_RETX_JUMP && self.threaded.get() {
                self.idle_wall_start.set(flows_sys::time::monotonic_ns());
            }
            if idle >= IDLE_PUMPS_BEFORE_RETX_JUMP && !self.has_local_work() {
                let quiet = !self.threaded.get()
                    || flows_sys::time::monotonic_ns()
                        .saturating_sub(self.idle_wall_start.get())
                        >= RETX_WALL_QUIET_NS;
                if quiet {
                    let mut jump = self.links.borrow().min_deadline();
                    // While a failure is being detected or healed, the
                    // heartbeat schedule is also a legitimate clock source
                    // — without it a fully-blocked machine (no unacked
                    // data) would never accrue the silence that drives
                    // suspicion. Gated on an unresolved failure so a
                    // healthy idle machine still quiesces.
                    if self.hb_clock_armed() {
                        let nh = self.next_hb.get();
                        if nh > 0 {
                            jump = Some(jump.map_or(nh, |d| d.min(nh)));
                        }
                    }
                    if let Some(d) = jump {
                        if d > self.vtime.get() {
                            self.vtime.set(d);
                        }
                    }
                }
            }
        } else {
            self.idle_pumps.set(0);
        }
        // Heartbeats and the phi-accrual failure detector ride the fault
        // clock; none of it counts as progress.
        if ctx.plan.online && !self.crashed.get() {
            self.heartbeat_maintain(ctx);
            self.detector_maintain(ctx);
            self.upcall_maintain(ctx);
        }
        // Retransmit everything due at the (possibly advanced) clock.
        let now = self.vtime.get();
        let due: Vec<(usize, u64, Message, u32)> = {
            let mut links = self.links.borrow_mut();
            let mut due = Vec::new();
            for (dest, tx) in links.tx.iter_mut().enumerate() {
                for (&seq, u) in tx.unacked.iter_mut() {
                    if u.deadline <= now {
                        u.attempt += 1;
                        if u.attempt > RTO_ATTEMPT_CAP {
                            FaultStats::bump(&ctx.stats.retransmits_capped);
                        }
                        u.deadline = now
                            + rto_ns(
                                self.net.latency_ns,
                                ctx.plan.delay_ns,
                                u.attempt,
                                ctx.plan.jitter_roll(self.id, dest, seq, u.attempt),
                            );
                        due.push((dest, seq, u.msg.clone(), u.attempt));
                    }
                }
            }
            due
        };
        for (dest, seq, msg, attempt) in due {
            FaultStats::bump(&ctx.stats.retransmits);
            emit(EventKind::FaultRetransmit, dest as u64, seq, attempt as u64);
            self.transmit(dest, seq, &msg, attempt);
            moved = true;
        }
        moved
    }

    /// Is the heartbeat schedule currently a clock source for idle jumps?
    /// Only while a failure is unresolved or a peer is under suspicion —
    /// a healthy idle machine must not keep its own clocks (and wires)
    /// alive trading heartbeats, or it would never quiesce.
    fn hb_clock_armed(&self) -> bool {
        if !self.online() || self.crashed.get() {
            return false;
        }
        self.hub.unresolved() || self.det.borrow().iter().any(|p| p.suspected)
    }

    /// Emit one heartbeat round if the period elapsed. Heartbeats are
    /// unsequenced, unacked, and invisible to the logical message counts;
    /// they share the plan's drop probability (an independent stream), so
    /// the detector sees the same lossy wire the data does.
    fn heartbeat_maintain(&self, ctx: &FaultCtx) {
        let period = ctx.plan.heartbeat_ns;
        if period == 0 {
            return;
        }
        let now = self.vtime.get();
        if self.next_hb.get() == 0 {
            self.next_hb.set(now + period);
            return;
        }
        if now < self.next_hb.get() {
            return;
        }
        self.next_hb.set(now + period);
        let hb = self.hb_seq.get() + 1;
        self.hb_seq.set(hb);
        for d in 0..self.num_pes {
            if d == self.id || self.hub.is_confirmed(d) {
                continue;
            }
            if ctx.plan.hb_drop_roll(self.id, d, hb) {
                continue;
            }
            FaultStats::bump(&ctx.stats.heartbeats);
            self.post(
                d,
                Packet {
                    src: self.id,
                    body: PacketBody::Heartbeat { hb_seq: hb, vt: now },
                },
            );
        }
    }

    /// Record a heartbeat arrival from `src`: update the inter-arrival
    /// EWMA and withdraw any active suspicion. In threaded machines the
    /// sender's clock also drags ours forward (Lamport-style): every PE
    /// idle-jumps its clock independently, and without the sync a fast
    /// observer would read its own clock advance as the peer's silence.
    fn note_heartbeat(&self, src: usize, sender_vt: u64) {
        if self.det.borrow().is_empty() || self.crashed.get() {
            return;
        }
        if self.threaded.get() && sender_vt > self.vtime.get() {
            self.vtime.set(sender_vt);
        }
        let now = self.vtime.get().max(1);
        let period = self.fault.as_ref().map_or(1, |c| c.plan.heartbeat_ns) as f64;
        let mut cleared = None;
        {
            let mut det = self.det.borrow_mut();
            let ph = &mut det[src];
            if ph.last_vt != 0 {
                let dt = now.saturating_sub(ph.last_vt) as f64;
                ph.mean_ns = (0.8 * ph.mean_ns + 0.2 * dt).max(period * 0.5);
            }
            let silence = now.saturating_sub(ph.last_vt);
            ph.last_vt = now;
            if ph.suspected {
                ph.suspected = false;
                cleared = Some(silence);
            }
        }
        if let Some(silence) = cleared {
            emit(EventKind::FtClear, src as u64, silence, 0);
            self.hub.push_timeline(RecoveryEvent {
                phase: RecoveryPhase::Clear,
                pe: self.id,
                dead: src,
                vt: now,
                info: silence,
            });
        }
    }

    /// Phi-accrual evaluation: suspect silent peers, and — if this PE is
    /// the recovery leader for a suspect whose phi crossed the confirm
    /// threshold — confirm the death and fence the peer. The leader for a
    /// failure is the lowest PE this observer does not itself consider
    /// failed, so leadership survives the leader's own death.
    fn detector_maintain(&self, ctx: &FaultCtx) {
        let now = self.vtime.get();
        let period = ctx.plan.heartbeat_ns.max(1);
        let last_eval = self.det_eval_vt.get();
        self.det_eval_vt.set(now);
        if last_eval != 0 && now.saturating_sub(last_eval) > 4 * period {
            // The observer itself went dark (a recovery-protocol stint, a
            // stall, a long thread burst): its silence measurements
            // conflate each peer's absence with its own deafness, and one
            // stale evaluation must never convict a live peer. Re-arm the
            // observation windows and judge only fresh silence.
            let mut det = self.det.borrow_mut();
            for p in det.iter_mut() {
                if p.last_vt != 0 {
                    p.last_vt = now;
                }
            }
            return;
        }
        let confirmed = self.hub.confirmed_mask();
        let mut to_confirm: Vec<(usize, f64)> = Vec::new();
        {
            let mut det = self.det.borrow_mut();
            for p in 0..self.num_pes {
                if p == self.id || confirmed & (1 << p) != 0 {
                    continue;
                }
                let ph = &mut det[p];
                if ph.last_vt == 0 {
                    // First observation: treat "now" as a pseudo-heartbeat
                    // so silence is measured from when we started looking.
                    ph.last_vt = now.max(1);
                    continue;
                }
                let elapsed = now.saturating_sub(ph.last_vt);
                let phi = PHI_SCALE * elapsed as f64 / ph.mean_ns;
                if !ph.suspected && phi >= ctx.plan.phi_suspect {
                    ph.suspected = true;
                    ph.suspect_vt = now;
                    emit(
                        EventKind::FtSuspect,
                        p as u64,
                        (phi * 1000.0) as u64,
                        elapsed,
                    );
                    self.hub.push_timeline(RecoveryEvent {
                        phase: RecoveryPhase::Suspect,
                        pe: self.id,
                        dead: p,
                        vt: now,
                        info: (phi * 1000.0) as u64,
                    });
                }
                if ph.suspected
                    && phi >= ctx.plan.phi_confirm
                    && now.saturating_sub(ph.suspect_vt) >= period
                {
                    to_confirm.push((p, phi));
                }
            }
            for &(p, phi) in &to_confirm {
                // Leader check under the same detector snapshot.
                let leader = (0..self.num_pes).find(|&i| {
                    i != p && confirmed & (1 << i) == 0 && !det[i].suspected
                });
                if leader != Some(self.id) {
                    continue;
                }
                if self.hub.confirm(p) {
                    self.hub.fence(p);
                    emit(EventKind::FtConfirm, p as u64, (phi * 1000.0) as u64, 0);
                    self.hub.push_timeline(RecoveryEvent {
                        phase: RecoveryPhase::Confirm,
                        pe: self.id,
                        dead: p,
                        vt: now,
                        info: (phi * 1000.0) as u64,
                    });
                    self.upcall_pending
                        .set(self.upcall_pending.get() | 1 << p);
                }
            }
        }
    }

    /// Fire the death upcall for confirmed peers once their morgue record
    /// is published (a fenced-but-live peer publishes it at its next
    /// pump). Also settles traffic between the newly dead and any earlier
    /// casualties, which no survivor's own links account for.
    fn upcall_maintain(&self, ctx: &FaultCtx) {
        let mut pending = self.upcall_pending.get();
        if pending == 0 {
            return;
        }
        for p in 0..self.num_pes {
            if pending & (1 << p) == 0 || !self.hub.morgue_ready(p) {
                continue;
            }
            pending &= !(1 << p);
            self.upcall_pending.set(pending);
            for q in 0..self.num_pes {
                if q != p && self.hub.is_confirmed(q) && self.hub.morgue_ready(q) {
                    let lost = self.hub.reap_pair(p, q);
                    FaultStats::bump_by(&ctx.stats.written_off, lost);
                }
            }
            if let Some(cb) = &self.death_upcall {
                let cb = cb.clone();
                cb(self, p);
            }
        }
    }

    /// Write off this PE's links to a confirmed-dead peer using the
    /// deceased's published morgue record: everything we assigned that it
    /// never delivered, plus everything it assigned that we will never
    /// deliver (stragglers still in our channel are dropped on sight).
    /// Idempotent; called by every survivor when it learns of the death.
    pub fn reap_dead(&self, dead: usize) {
        let Some(ctx) = &self.fault else { return };
        if dead == self.id || self.reaped.get() & (1 << dead) != 0 {
            return;
        }
        let morgue = self
            .hub
            .morgue_get(dead)
            .expect("reap_dead before the deceased published its morgue");
        let mut links = self.links.borrow_mut();
        let tx = &mut links.tx[dead];
        let undelivered_out = tx.last_assigned() - morgue.rx_cum[self.id];
        tx.unacked.clear();
        tx.pocket = None;
        tx.dead = true;
        let rx = &mut links.rx[dead];
        let undelivered_in = morgue.tx_last[self.id] - rx.cum_ack();
        rx.reap();
        drop(links);
        FaultStats::bump_by(&ctx.stats.written_off, undelivered_out + undelivered_in);
        self.reaped.set(self.reaped.get() | 1 << dead);
    }

    /// Append a phase to the machine-wide recovery timeline (the AMPI
    /// layer records rollback/respawn/resume through this).
    pub fn note_recovery(&self, phase: RecoveryPhase, dead: usize, info: u64) {
        self.hub.push_timeline(RecoveryEvent {
            phase,
            pe: self.id,
            dead,
            vt: self.vtime.get(),
            info,
        });
    }

    /// Allocate a machine-wide unique, monotonically increasing recovery
    /// epoch. The recovery leader calls this once per round it starts;
    /// survivors adopt the largest epoch they have seen and drop traffic
    /// stamped with an older one (the rollback-boundary replay guard).
    pub fn alloc_recovery_epoch(&self) -> u64 {
        self.hub.next_epoch()
    }

    /// Declare the online recovery for `dead` complete: the machine may
    /// quiesce again. Called by the recovery driver (leader) after the
    /// resume barrier; also records the Resume phase.
    pub fn mark_recovery_resolved(&self, dead: usize, epoch: u64) {
        emit(EventKind::FtResume, dead as u64, epoch, 0);
        self.note_recovery(RecoveryPhase::Resume, dead, epoch);
        self.hub.resolve(dead);
    }

    /// Check scripted PE faults. Returns `true` if the PE must skip this
    /// pump iteration (crashed or stalled).
    /// Fail-stop this PE. Under the legacy (offline) fault model this
    /// simply records the crash so the driver can abort and restart the
    /// world. Under online recovery the PE additionally publishes a
    /// *morgue record* — per-peer cumulative-receive and last-assigned
    /// sequence counters — from which every survivor computes, exactly,
    /// how many logical messages died with it; those are written off so
    /// quiescence can be re-established without the dead PE's counters.
    fn die(&self, ctx: &FaultCtx) {
        self.crashed.set(true);
        emit(EventKind::FaultCrash, self.id as u64, 0, 0);
        if !ctx.plan.online {
            self.hub.record_crash(self.id);
            return;
        }
        // Self-sends queued locally die with us: counted as sent, never
        // received.
        let lost_local = self.local_q.borrow().len() as u64;
        self.local_q.borrow_mut().clear();
        FaultStats::bump_by(&ctx.stats.written_off, lost_local);
        // A dead node's memory vanishes: reclaim every user-level thread
        // so their shared-pool resources (isomalloc slots, alias frames)
        // are free for the recovery protocol to re-instate the threads'
        // committed images on surviving PEs.
        let reclaimed = self.sched.discard_all() as u64;
        self.flush_counters();
        let links = self.links.borrow();
        let morgue = Morgue {
            rx_cum: links.rx.iter().map(|r| r.cum_ack()).collect(),
            tx_last: links.tx.iter().map(|t| t.last_assigned()).collect(),
            reaped_mask: self.reaped.get(),
        };
        drop(links);
        self.hub.push_timeline(RecoveryEvent {
            phase: RecoveryPhase::Crash,
            pe: self.id,
            dead: self.id,
            vt: self.vtime.get(),
            info: reclaimed,
        });
        self.hub.record_crash_online(self.id, morgue);
    }

    fn fault_gate(&self) -> bool {
        let ctx = match &self.fault {
            Some(c) => c,
            None => return false,
        };
        if self.crashed.get() {
            return true;
        }
        if ctx.plan.online && self.hub.is_fenced(self.id) {
            // STONITH: the recovery leader confirmed us dead (e.g. a stall
            // that outlived the confirm threshold). Convert to a real
            // crash so the failure model stays fail-stop — we must not
            // wake back up half-recovered-around.
            self.die(ctx);
            return true;
        }
        if let Some(c) = ctx.plan.crash_for(self.id) {
            if self.vtime.get() >= c.at_vtime_ns {
                self.die(ctx);
                return true;
            }
        }
        if self.stall_left.get() > 0 {
            self.stall_left.set(self.stall_left.get() - 1);
            FaultStats::bump(&ctx.stats.stalled_steps);
            return true;
        }
        if !self.stall_fired.get() {
            if let Some(s) = ctx.plan.stall_for(self.id) {
                if self.vtime.get() >= s.at_vtime_ns {
                    self.stall_fired.set(true);
                    self.stall_left.set(s.for_steps);
                    FaultStats::bump(&ctx.stats.stalled_steps);
                    emit(EventKind::FaultStall, self.id as u64, s.for_steps, 0);
                    return true;
                }
            }
        }
        false
    }

    /// One scheduler-loop iteration: deliver pending messages, then run
    /// one thread burst. Returns whether any progress was made.
    /// The wall time spent is charged to the virtual clock.
    pub fn pump(&self) -> bool {
        if self.fault_gate() {
            return false;
        }
        // CPU time (see flows_sys::time::thread_cpu_ns): virtual time must
        // charge this PE's own work, not host preemption. Under modeled
        // time the clock never reads the host, so skip the syscall — it
        // would otherwise dominate an idle pump.
        let t0 = if self.modeled_time { 0 } else { thread_cpu_ns() };
        // Victim half of work stealing, at the pump boundary so the
        // per-switch hot path inside `step` stays untouched: publish our
        // load and service any pending requests. `donate_steals` bails on
        // one relaxed load when nobody is asking.
        if self.steal {
            self.sched.publish_steal_load();
            let mut woken = self.sched.donate_steals();
            while woken != 0 {
                let t = woken.trailing_zeros() as usize;
                woken &= woken - 1;
                self.hub.wake(t);
            }
        }
        let mut progress = false;
        // Drain a bounded batch of messages so threads stay responsive.
        for _ in 0..64 {
            if !self.deliver_one() {
                break;
            }
            progress = true;
        }
        if self.sched.step() {
            progress = true;
        }
        // Under modeled time (reproducible fault runs) only explicit
        // charges and network arrivals move the clock.
        if progress && !self.modeled_time {
            self.charge_ns(thread_cpu_ns().saturating_sub(t0));
        }
        if self.link_maintain(progress) {
            progress = true;
        }
        if !progress {
            // Thief half of work stealing: an idle pump absorbs any
            // donation that has landed (work! the next pump runs it) or
            // posts a request at the richest victim. Safe here — this PE
            // is not announced at the idle barrier while pumping.
            if self.steal && self.sched.try_steal() > 0 {
                progress = true;
            }
        }
        if !progress {
            // Idle: drain deferred slot-memory reclaim (warm alias windows,
            // cached isomalloc slabs) while nothing is runnable. No-op —
            // and syscall-free — when the reclaim lists are empty.
            self.sched.flush_reclaim();
        }
        progress
    }

    /// Local work only: queued messages, runnable threads, or stolen
    /// threads parked in our steal inbox awaiting absorption.
    pub(crate) fn has_local_work(&self) -> bool {
        !self.local_q.borrow().is_empty()
            || !self.pending.borrow().is_empty()
            || !self.rx.is_empty()
            || self.sched.runnable() > 0
            || (self.steal && self.sched.steal_inbox_len() > 0)
    }

    /// Barrier-safe steal request refresh (see `drive_until_quiescent`'s
    /// pre-park re-check): posts/refreshes a request at the currently
    /// richest victim without moving any thread. No-op when stealing is
    /// off.
    pub(crate) fn steal_request(&self) {
        if self.steal {
            self.sched.request_steal();
        }
    }

    /// Packed threads in flight through the steal mesh, machine-wide.
    /// The threaded quiescence fixpoint must see zero: a donation sitting
    /// in some inbox is work no `sent == recv` comparison knows about.
    pub(crate) fn steal_in_flight(&self) -> usize {
        if self.steal {
            self.sched.shared().steal().in_flight()
        } else {
            0
        }
    }

    /// Is there any local work (messages, runnable threads, unfinished
    /// link-layer recovery, or an in-progress stall)? A crashed PE has no
    /// work — the machine driver aborts instead of waiting on it.
    pub fn has_work(&self) -> bool {
        if self.crashed.get() {
            return false;
        }
        self.has_local_work() || self.stall_left.get() > 0 || self.links.borrow().in_flight()
    }

    pub(crate) fn enter(&self) -> *const Pe {
        // SAFETY: `self.ring` (an Arc) outlives the enter..leave span.
        let prev = unsafe { flows_trace::swap_current(flows_trace::ring_ptr(self.ring.as_ref())) };
        self.prev_ring.set(prev);
        CURRENT_PE.with(|c| c.replace(self as *const Pe))
    }

    pub(crate) fn leave(&self, prev: *const Pe) {
        // SAFETY: restoring the pointer that was current before enter().
        unsafe { flows_trace::swap_current(self.prev_ring.get()) };
        CURRENT_PE.with(|c| c.set(prev));
    }
}

/// Run `f` with the PE that is driving the calling code (handler or
/// user-level thread). Panics outside a machine.
pub fn with_pe<R>(f: impl FnOnce(&Pe) -> R) -> R {
    let p = CURRENT_PE.with(|c| c.get());
    assert!(
        !p.is_null(),
        "not running on a PE (use MachineBuilder::run / run_deterministic)"
    );
    // SAFETY: the pointer is installed by Pe::enter for exactly the span
    // the PE is being driven on this OS thread; Pe methods take &self.
    f(unsafe { &*p })
}

/// Like [`with_pe`] but returns `None` outside a machine.
pub fn try_with_pe<R>(f: impl FnOnce(&Pe) -> R) -> Option<R> {
    let p = CURRENT_PE.with(|c| c.get());
    if p.is_null() {
        return None;
    }
    // SAFETY: as in with_pe.
    Some(f(unsafe { &*p }))
}

/// The calling PE's index.
pub fn my_pe() -> usize {
    with_pe(|p| p.id())
}

/// Machine size.
pub fn num_pes() -> usize {
    with_pe(|p| p.num_pes())
}

/// Send a message from whatever context is running on this PE.
pub fn send(dest: usize, handler: HandlerId, data: impl Into<Payload>) {
    with_pe(|p| p.send(dest, handler, data))
}

/// A pooled payload writer from the calling PE's pool.
pub fn payload_buf() -> PayloadBuf {
    with_pe(|p| p.payload_buf())
}

/// Current virtual time of the calling PE.
pub fn vtime_ns() -> u64 {
    with_pe(|p| p.vtime_ns())
}

/// Charge modeled work to the calling PE's virtual clock.
pub fn charge_ns(ns: u64) {
    with_pe(|p| p.charge_ns(ns))
}
