//! One processing element: message pump + thread scheduler + virtual clock.

use crate::fault::{FaultCtx, FaultStats};
use crate::link::{rto_ns, LinkTable, Packet, PacketBody, RxOutcome, Unacked};
use crate::machine::Hub;
use crate::msg::{HandlerId, Message, NetModel};
use crossbeam::channel::{Receiver, Sender};
use flows_core::{Payload, PayloadBuf, PayloadPool, Scheduler};
use flows_sys::time::thread_cpu_ns;
use flows_trace::{emit, EventKind, TraceRing};
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) type Handler = Arc<dyn Fn(&Pe, Message) + Send + Sync>;

thread_local! {
    static CURRENT_PE: Cell<*const Pe> = const { Cell::new(std::ptr::null()) };
}

/// Consecutive idle pumps before an otherwise-idle PE jumps its virtual
/// clock to the next retransmission deadline. In threaded mode this gives
/// in-flight acks a few spins to arrive before we burn a retransmit.
const IDLE_PUMPS_BEFORE_RETX_JUMP: u32 = 8;

/// In threaded mode an idle pump is a handful of atomic loads, so a pump
/// count measures nothing about real waiting: a peer's reply travels at
/// OS-scheduling speed (microseconds to milliseconds on a loaded host).
/// Require this much *wall-clock* silence on top of the pump count before
/// jumping the virtual clock to a retransmission deadline, or a fast
/// sender storms the wire with spurious retransmits.
const RETX_WALL_QUIET_NS: u64 = 200_000;

/// How many cross-PE packets one pump pulls off the channel per lock
/// acquisition (see `Receiver::try_recv_batch`).
const RX_BATCH: usize = 64;

/// A processing element of the simulated machine. All methods take `&self`
/// (interior mutability), so code running inside handlers *and* inside
/// user-level threads can reach its services through [`with_pe`] and the
/// crate-level free functions without aliasing `&mut`.
pub struct Pe {
    id: usize,
    num_pes: usize,
    sched: Scheduler,
    rx: Receiver<Packet>,
    txs: Vec<Sender<Packet>>,
    handlers: Arc<Vec<Handler>>,
    hub: Arc<Hub>,
    net: NetModel,
    fault: Option<FaultCtx>,
    modeled_time: bool,
    vtime: Cell<u64>,
    busy: Cell<u64>,
    local_q: RefCell<VecDeque<Message>>,
    /// Cross-PE packets drained from `rx` in batches, awaiting delivery.
    pending: RefCell<VecDeque<Packet>>,
    links: RefCell<LinkTable>,
    stall_left: Cell<u64>,
    stall_fired: Cell<bool>,
    crashed: Cell<bool>,
    idle_pumps: Cell<u32>,
    /// Driven by `MachineBuilder::run` (one OS thread per PE)?
    threaded: Cell<bool>,
    /// Wall clock at which the current idle streak crossed the pump
    /// threshold (threaded retransmit gate).
    idle_wall_start: Cell<u64>,
    /// This PE's payload recycling pool (from `SharedPools`).
    pool: Arc<PayloadPool>,
    /// Quiescence deltas accumulated locally and flushed to the hub only
    /// at idle entry — no machine-global atomics on the per-message path.
    local_sent: Cell<u64>,
    local_recv: Cell<u64>,
    /// Cumulative handler invocations (the bench's dispatch-rate counter).
    delivered: Cell<u64>,
    /// This PE's trace event ring when the machine was built with
    /// `.tracing(true)`. Installed as the OS thread's current ring for
    /// exactly the `enter()`..`leave()` span.
    ring: Option<Arc<TraceRing>>,
    /// The ring that was current before `enter()` (restored by `leave()`,
    /// which keeps nested machines from cross-recording).
    prev_ring: Cell<*const TraceRing>,
    exts: RefCell<HashMap<TypeId, Box<dyn Any>>>,
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("id", &self.id)
            .field("vtime_ns", &self.vtime.get())
            .field("sched", &self.sched)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
impl Pe {
    pub(crate) fn new(
        id: usize,
        num_pes: usize,
        sched: Scheduler,
        rx: Receiver<Packet>,
        txs: Vec<Sender<Packet>>,
        handlers: Arc<Vec<Handler>>,
        hub: Arc<Hub>,
        net: NetModel,
        fault: Option<FaultCtx>,
        modeled_time: bool,
        pool: Arc<PayloadPool>,
        ring: Option<Arc<TraceRing>>,
    ) -> Pe {
        Pe {
            id,
            num_pes,
            sched,
            rx,
            txs,
            handlers,
            hub,
            net,
            fault,
            modeled_time,
            vtime: Cell::new(0),
            busy: Cell::new(0),
            local_q: RefCell::new(VecDeque::new()),
            pending: RefCell::new(VecDeque::new()),
            links: RefCell::new(LinkTable::new(num_pes)),
            stall_left: Cell::new(0),
            stall_fired: Cell::new(false),
            crashed: Cell::new(false),
            idle_pumps: Cell::new(0),
            threaded: Cell::new(false),
            idle_wall_start: Cell::new(0),
            pool,
            local_sent: Cell::new(0),
            local_recv: Cell::new(0),
            delivered: Cell::new(0),
            ring,
            prev_ring: Cell::new(std::ptr::null()),
            exts: RefCell::new(HashMap::new()),
        }
    }

    /// Mark this PE as driven by threaded mode (enables the wall-clock
    /// retransmit gate; see `RETX_WALL_QUIET_NS`).
    pub(crate) fn set_threaded(&self) {
        self.threaded.set(true);
    }

    /// This PE's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Machine size.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The PE's thread scheduler.
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// Current virtual time in nanoseconds (see crate docs).
    pub fn vtime_ns(&self) -> u64 {
        self.vtime.get()
    }

    /// Advance the virtual clock by an explicit modeled cost (counted as
    /// busy time).
    pub fn charge_ns(&self, ns: u64) {
        self.vtime.set(self.vtime.get() + ns);
        self.busy.set(self.busy.get() + ns);
    }

    /// Accumulated *busy* virtual time: work charged on this PE, excluding
    /// waits imposed by message arrival times. `vtime - busy` is how long
    /// the PE's clock sat waiting on the critical path.
    pub fn busy_ns(&self) -> u64 {
        self.busy.get()
    }

    /// Whether this PE has hit a scripted crash (a dead PE does nothing).
    pub fn crashed(&self) -> bool {
        self.crashed.get()
    }

    /// Handler invocations on this PE so far (the dispatch-rate counter).
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// An empty payload writer drawn from this PE's recycling pool.
    /// Build the message body in it, then [`PayloadBuf::freeze`] (or just
    /// pass it to [`Pe::send`]) — steady state, no allocation.
    pub fn payload_buf(&self) -> PayloadBuf {
        self.pool.buf()
    }

    /// Like [`Pe::payload_buf`] with a minimum capacity.
    pub fn payload_buf_with_capacity(&self, cap: usize) -> PayloadBuf {
        self.pool.buf_with_capacity(cap)
    }

    /// PUP-pack `v` into a pooled payload (the layers above use this to
    /// build wire messages without a fresh allocation per send).
    pub fn pack_payload<T: flows_pup::Pup + ?Sized>(&self, v: &mut T) -> Payload {
        let mut buf = self.pool.buf();
        flows_pup::pack_into(v, buf.vec_mut());
        buf.freeze()
    }

    /// This PE's payload pool (stats are used by benches and tests).
    pub fn payload_pool(&self) -> &Arc<PayloadPool> {
        &self.pool
    }

    /// Push one packet onto `dest`'s channel and wake it if it is parked.
    fn post(&self, dest: usize, pkt: Packet) {
        // Unbounded channel: send can only fail if the PE is gone,
        // which means the machine is shutting down.
        let _ = self.txs[dest].send(pkt);
        self.hub.wake(dest);
    }

    /// Flush locally batched quiescence deltas to the hub counters.
    /// Called at idle entry (and before any quiescence check), so the
    /// global sent==recv comparison stays exact without per-message RMWs.
    pub(crate) fn flush_counters(&self) {
        let s = self.local_sent.replace(0);
        if s != 0 {
            self.hub.sent.fetch_add(s, Ordering::SeqCst);
        }
        let r = self.local_recv.replace(0);
        if r != 0 {
            self.hub.recv.fetch_add(r, Ordering::SeqCst);
        }
    }

    /// Send `data` to `handler` on PE `dest`. Never blocks; self-sends go
    /// through the local queue and never enter the (possibly faulty) link
    /// layer. Accepts anything payload-like: a [`Payload`] or pooled
    /// [`PayloadBuf`] (zero-copy), a `Vec<u8>`, or a byte slice/array.
    pub fn send(&self, dest: usize, handler: HandlerId, data: impl Into<Payload>) {
        assert!(dest < self.num_pes, "send to PE {dest} of {}", self.num_pes);
        let msg = Message {
            handler,
            data: data.into(),
            src_pe: self.id,
            sent_vtime: self.vtime.get(),
        };
        self.local_sent.set(self.local_sent.get() + 1);
        emit(
            EventKind::MsgSend,
            dest as u64,
            msg.data.len() as u64,
            handler.0 as u64,
        );
        if dest == self.id {
            self.local_q.borrow_mut().push_back(msg);
        } else if self.fault.is_some() {
            self.link_send(dest, msg);
        } else {
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data { seq: 0, msg },
                },
            );
        }
    }

    /// Enqueue a message on the reliable link to `dest`, applying the
    /// fault plan's delay / reorder decisions and recording the packet for
    /// retransmission until acked.
    fn link_send(&self, dest: usize, mut msg: Message) {
        let ctx = self.fault.as_ref().expect("link_send without plan");
        let mut links = self.links.borrow_mut();
        let tx = &mut links.tx[dest];
        let seq = tx.assign_seq();
        if ctx.plan.delay_roll(self.id, dest, seq) {
            msg.sent_vtime += ctx.plan.delay_ns;
            FaultStats::bump(&ctx.stats.delayed);
        }
        tx.unacked.insert(
            seq,
            Unacked {
                msg: msg.clone(),
                deadline: self.vtime.get() + rto_ns(self.net.latency_ns, ctx.plan.delay_ns, 0),
                attempt: 0,
            },
        );
        if tx.pocket.is_none() && ctx.plan.reorder_roll(self.id, dest, seq) {
            // Hold this packet back; it goes out after the next send to
            // the same destination (or at the next pump).
            tx.pocket = Some((seq, msg));
            FaultStats::bump(&ctx.stats.reordered);
            return;
        }
        let pocketed = tx.pocket.take();
        self.transmit(dest, seq, &msg, 0);
        if let Some((pseq, pmsg)) = pocketed {
            // Flushed after its successor: the links observes them swapped.
            self.transmit(dest, pseq, &pmsg, 0);
        }
    }

    /// Physically enqueue one data packet, rolling drop/duplicate faults.
    /// The clones here share the payload (`Message::clone` bumps an `Arc`),
    /// so retransmissions and injected duplicates never copy the body.
    fn transmit(&self, dest: usize, seq: u64, msg: &Message, attempt: u32) {
        let ctx = self.fault.as_ref().expect("transmit without plan");
        if ctx.plan.drop_roll(self.id, dest, seq, attempt) {
            FaultStats::bump(&ctx.stats.dropped);
            emit(EventKind::FaultDrop, dest as u64, seq, attempt as u64);
        } else {
            FaultStats::bump(&ctx.stats.data_packets);
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data {
                        seq,
                        msg: msg.clone(),
                    },
                },
            );
        }
        if ctx.plan.dup_roll(self.id, dest, seq, attempt) {
            FaultStats::bump(&ctx.stats.duplicated);
            FaultStats::bump(&ctx.stats.data_packets);
            self.post(
                dest,
                Packet {
                    src: self.id,
                    body: PacketBody::Data {
                        seq,
                        msg: msg.clone(),
                    },
                },
            );
        }
    }

    /// Access (creating on first use) a typed per-PE extension slot. The
    /// comm/chare/AMPI layers keep their tables here. The closure must not
    /// suspend the calling thread (the borrow is checked at runtime).
    pub fn ext<T: Any + Default, R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut exts = self.exts.borrow_mut();
        let slot = exts
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()));
        f(slot.downcast_mut::<T>().expect("ext type"))
    }

    /// Count a logical receive and run the message's handler.
    fn deliver_msg(&self, msg: Message) {
        self.local_recv.set(self.local_recv.get() + 1);
        self.delivered.set(self.delivered.get() + 1);
        emit(
            EventKind::MsgRecv,
            msg.src_pe as u64,
            msg.data.len() as u64,
            msg.handler.0 as u64,
        );
        // Virtual clock: the message cannot be processed before it arrives.
        let arrival = self
            .net
            .arrival(msg.sent_vtime, msg.data.len(), msg.src_pe == self.id);
        self.vtime.set(self.vtime.get().max(arrival));
        // Dispatch through a borrow: the handler table is frozen at build
        // time, so no per-delivery Arc refcount traffic.
        let handler = self
            .handlers
            .get(msg.handler.0)
            .unwrap_or_else(|| panic!("unregistered handler {:?}", msg.handler));
        handler(self, msg);
    }

    /// Deliver one pending message or protocol packet, if any. Returns
    /// whether one was processed. Cross-PE packets are drained from the
    /// channel a batch at a time (one lock round trip per batch).
    fn deliver_one(&self) -> bool {
        let local = self.local_q.borrow_mut().pop_front();
        if let Some(msg) = local {
            self.deliver_msg(msg);
            return true;
        }
        let pkt = {
            let mut pending = self.pending.borrow_mut();
            // `is_empty` is a lock-free length probe: an idle pump costs
            // one atomic load, not a mutex round trip.
            if pending.is_empty() && !self.rx.is_empty() {
                self.rx.try_recv_batch(&mut pending, RX_BATCH);
            }
            pending.pop_front()
        };
        let Some(pkt) = pkt else {
            return false;
        };
        match pkt.body {
            PacketBody::Data { seq: 0, msg } => self.deliver_msg(msg),
            PacketBody::Data { seq, msg } => self.link_recv(pkt.src, seq, msg),
            PacketBody::Ack { cum } => {
                self.links.borrow_mut().tx[pkt.src].ack_through(cum);
            }
        }
        true
    }

    /// Sequenced data packet from `src`: dedupe, reassemble in order,
    /// deliver what is ready, and send a cumulative ack.
    fn link_recv(&self, src: usize, seq: u64, msg: Message) {
        let ctx = self.fault.as_ref().expect("sequenced packet without plan");
        let (ready, cum) = {
            let mut links = self.links.borrow_mut();
            let rx = &mut links.rx[src];
            let ready = match rx.offer(seq, msg) {
                RxOutcome::Deliver(v) => v,
                RxOutcome::Duplicate => {
                    FaultStats::bump(&ctx.stats.dup_dropped);
                    Vec::new()
                }
                RxOutcome::Parked => Vec::new(),
            };
            (ready, rx.cum_ack())
        };
        // Ack every data packet (acks are cheap and idempotent); a dropped
        // or stale sender state is repaired by the next retransmission.
        FaultStats::bump(&ctx.stats.acks);
        self.post(
            src,
            Packet {
                src: self.id,
                body: PacketBody::Ack { cum },
            },
        );
        for m in ready {
            self.deliver_msg(m);
        }
    }

    /// Flush any pocketed (reorder-held) packets and retransmit everything
    /// whose deadline has passed. When the PE has been idle for a while and
    /// only timers remain, jump the virtual clock to the earliest deadline
    /// so recovery makes progress in both drive modes. Returns whether any
    /// packet moved.
    fn link_maintain(&self, other_progress: bool) -> bool {
        let ctx = match &self.fault {
            Some(c) => c,
            None => return false,
        };
        let mut moved = false;
        // Flush pockets: a reorder hold lasts at most one pump.
        let pockets: Vec<(usize, u64, Message)> = {
            let mut links = self.links.borrow_mut();
            links
                .tx
                .iter_mut()
                .enumerate()
                .filter_map(|(d, t)| t.pocket.take().map(|(s, m)| (d, s, m)))
                .collect()
        };
        for (dest, seq, msg) in pockets {
            self.transmit(dest, seq, &msg, 0);
            moved = true;
        }
        if !other_progress && !moved {
            let idle = self.idle_pumps.get() + 1;
            self.idle_pumps.set(idle);
            if idle == IDLE_PUMPS_BEFORE_RETX_JUMP && self.threaded.get() {
                self.idle_wall_start.set(flows_sys::time::monotonic_ns());
            }
            if idle >= IDLE_PUMPS_BEFORE_RETX_JUMP && !self.has_local_work() {
                let quiet = !self.threaded.get()
                    || flows_sys::time::monotonic_ns()
                        .saturating_sub(self.idle_wall_start.get())
                        >= RETX_WALL_QUIET_NS;
                if quiet {
                    let jump = self.links.borrow().min_deadline();
                    if let Some(d) = jump {
                        if d > self.vtime.get() {
                            self.vtime.set(d);
                        }
                    }
                }
            }
        } else {
            self.idle_pumps.set(0);
        }
        // Retransmit everything due at the (possibly advanced) clock.
        let now = self.vtime.get();
        let due: Vec<(usize, u64, Message, u32)> = {
            let mut links = self.links.borrow_mut();
            let mut due = Vec::new();
            for (dest, tx) in links.tx.iter_mut().enumerate() {
                for (&seq, u) in tx.unacked.iter_mut() {
                    if u.deadline <= now {
                        u.attempt += 1;
                        u.deadline =
                            now + rto_ns(self.net.latency_ns, ctx.plan.delay_ns, u.attempt);
                        due.push((dest, seq, u.msg.clone(), u.attempt));
                    }
                }
            }
            due
        };
        for (dest, seq, msg, attempt) in due {
            FaultStats::bump(&ctx.stats.retransmits);
            emit(EventKind::FaultRetransmit, dest as u64, seq, attempt as u64);
            self.transmit(dest, seq, &msg, attempt);
            moved = true;
        }
        moved
    }

    /// Check scripted PE faults. Returns `true` if the PE must skip this
    /// pump iteration (crashed or stalled).
    fn fault_gate(&self) -> bool {
        let ctx = match &self.fault {
            Some(c) => c,
            None => return false,
        };
        if self.crashed.get() {
            return true;
        }
        if let Some(c) = ctx.plan.crash_for(self.id) {
            if self.vtime.get() >= c.at_vtime_ns {
                self.crashed.set(true);
                self.hub.record_crash(self.id);
                emit(EventKind::FaultCrash, self.id as u64, 0, 0);
                return true;
            }
        }
        if self.stall_left.get() > 0 {
            self.stall_left.set(self.stall_left.get() - 1);
            FaultStats::bump(&ctx.stats.stalled_steps);
            return true;
        }
        if !self.stall_fired.get() {
            if let Some(s) = ctx.plan.stall_for(self.id) {
                if self.vtime.get() >= s.at_vtime_ns {
                    self.stall_fired.set(true);
                    self.stall_left.set(s.for_steps);
                    FaultStats::bump(&ctx.stats.stalled_steps);
                    emit(EventKind::FaultStall, self.id as u64, s.for_steps, 0);
                    return true;
                }
            }
        }
        false
    }

    /// One scheduler-loop iteration: deliver pending messages, then run
    /// one thread burst. Returns whether any progress was made.
    /// The wall time spent is charged to the virtual clock.
    pub fn pump(&self) -> bool {
        if self.fault_gate() {
            return false;
        }
        // CPU time (see flows_sys::time::thread_cpu_ns): virtual time must
        // charge this PE's own work, not host preemption. Under modeled
        // time the clock never reads the host, so skip the syscall — it
        // would otherwise dominate an idle pump.
        let t0 = if self.modeled_time { 0 } else { thread_cpu_ns() };
        let mut progress = false;
        // Drain a bounded batch of messages so threads stay responsive.
        for _ in 0..64 {
            if !self.deliver_one() {
                break;
            }
            progress = true;
        }
        if self.sched.step() {
            progress = true;
        }
        // Under modeled time (reproducible fault runs) only explicit
        // charges and network arrivals move the clock.
        if progress && !self.modeled_time {
            self.charge_ns(thread_cpu_ns().saturating_sub(t0));
        }
        if self.link_maintain(progress) {
            progress = true;
        }
        progress
    }

    /// Local work only: queued messages or runnable threads.
    pub(crate) fn has_local_work(&self) -> bool {
        !self.local_q.borrow().is_empty()
            || !self.pending.borrow().is_empty()
            || !self.rx.is_empty()
            || self.sched.runnable() > 0
    }

    /// Is there any local work (messages, runnable threads, unfinished
    /// link-layer recovery, or an in-progress stall)? A crashed PE has no
    /// work — the machine driver aborts instead of waiting on it.
    pub fn has_work(&self) -> bool {
        if self.crashed.get() {
            return false;
        }
        self.has_local_work() || self.stall_left.get() > 0 || self.links.borrow().in_flight()
    }

    pub(crate) fn enter(&self) -> *const Pe {
        // SAFETY: `self.ring` (an Arc) outlives the enter..leave span.
        let prev = unsafe { flows_trace::swap_current(flows_trace::ring_ptr(self.ring.as_ref())) };
        self.prev_ring.set(prev);
        CURRENT_PE.with(|c| c.replace(self as *const Pe))
    }

    pub(crate) fn leave(&self, prev: *const Pe) {
        // SAFETY: restoring the pointer that was current before enter().
        unsafe { flows_trace::swap_current(self.prev_ring.get()) };
        CURRENT_PE.with(|c| c.set(prev));
    }
}

/// Run `f` with the PE that is driving the calling code (handler or
/// user-level thread). Panics outside a machine.
pub fn with_pe<R>(f: impl FnOnce(&Pe) -> R) -> R {
    let p = CURRENT_PE.with(|c| c.get());
    assert!(
        !p.is_null(),
        "not running on a PE (use MachineBuilder::run / run_deterministic)"
    );
    // SAFETY: the pointer is installed by Pe::enter for exactly the span
    // the PE is being driven on this OS thread; Pe methods take &self.
    f(unsafe { &*p })
}

/// Like [`with_pe`] but returns `None` outside a machine.
pub fn try_with_pe<R>(f: impl FnOnce(&Pe) -> R) -> Option<R> {
    let p = CURRENT_PE.with(|c| c.get());
    if p.is_null() {
        return None;
    }
    // SAFETY: as in with_pe.
    Some(f(unsafe { &*p }))
}

/// The calling PE's index.
pub fn my_pe() -> usize {
    with_pe(|p| p.id())
}

/// Machine size.
pub fn num_pes() -> usize {
    with_pe(|p| p.num_pes())
}

/// Send a message from whatever context is running on this PE.
pub fn send(dest: usize, handler: HandlerId, data: impl Into<Payload>) {
    with_pe(|p| p.send(dest, handler, data))
}

/// A pooled payload writer from the calling PE's pool.
pub fn payload_buf() -> PayloadBuf {
    with_pe(|p| p.payload_buf())
}

/// Current virtual time of the calling PE.
pub fn vtime_ns() -> u64 {
    with_pe(|p| p.vtime_ns())
}

/// Charge modeled work to the calling PE's virtual clock.
pub fn charge_ns(ns: u64) {
    with_pe(|p| p.charge_ns(ns))
}
