//! The comm thread: bridges in-process packet channels and the
//! `flows-net` transport so one machine can span `N processes × M PEs`.
//!
//! Each process runs exactly one comm thread (spawned by
//! `MachineBuilder::run` when a [`flows_net::World`] is attached). The
//! thread owns two jobs:
//!
//! * **The packet pump.** PEs post to remote destinations through
//!   [`send_packet`], which encodes a link-layer [`Packet`] as a
//!   [`Frame`] (the link protocol — sequence numbers, cumulative acks,
//!   heartbeats — runs end-to-end between global PEs and never notices
//!   the boundary). Inbound frames are decoded and injected into the
//!   destination PE's local channel.
//!
//! * **The machine protocols.** Quiescence detection becomes a
//!   leader-driven double gather (children report `STATS`, the leader
//!   probes a stable fixpoint twice before declaring `DONE`); failure
//!   masks are synchronized with `MASKS` broadcasts; a process whose
//!   PEs all hit scripted crashes broadcasts its `MORGUE` records and a
//!   `PROC_DEAD` notice, then exits cleanly so the leader can reap it.
//!
//! Scope: recovery *decisions* (confirm, epoch allocation, dead-pair
//! write-off) run on the process hosting the recovery-leader PE; mask
//! sync makes the outcome visible everywhere. The scripted-crash plans
//! supported across processes are whole-process crashes with the
//! survivors' recovery leader on the lead process.

use crate::fault::FaultStats;
use crate::link::{Packet, PacketBody};
use crate::machine::{Hub, Morgue};
use crate::msg::{HandlerId, Message};
use crossbeam::channel::Sender;
use flows_net::{ctrl, Frame, FrameKind, World};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the comm thread parks between drain rounds when the wire is
/// silent. Arrivals cut it short on backends with doorbells.
const PUMP_PARK: Duration = Duration::from_micros(500);

/// How long the leader waits for children's `GOODBYE`s after `DONE`.
const GOODBYE_TIMEOUT: Duration = Duration::from_secs(10);

/// Encode one link-layer packet and ship it to the process hosting the
/// global PE `dest`. Called by `Pe::post` for non-local destinations —
/// from any PE thread, concurrently with the comm thread.
pub(crate) fn send_packet(world: &World, dest: usize, pkt: Packet) {
    let frame = match pkt.body {
        PacketBody::Data { seq, msg } => Frame::data(
            pkt.src as u32,
            dest as u32,
            seq,
            msg.handler.0 as u64,
            msg.sent_vtime,
            msg.data,
        ),
        PacketBody::Ack { cum } => Frame::ack(pkt.src as u32, dest as u32, cum),
        PacketBody::Heartbeat { hb_seq, vt } => {
            Frame::heartbeat(pkt.src as u32, dest as u32, hb_seq, vt)
        }
    };
    world.send(world.proc_of_pe(dest), &frame);
}

/// Decode a non-control frame back into the packet the sender posted.
// flows-wire: handles net-frame
fn packet_of(f: Frame) -> Packet {
    let src = f.src_pe as usize;
    let body = match f.kind {
        FrameKind::Data => PacketBody::Data {
            seq: f.a,
            msg: Message {
                handler: HandlerId(f.b as usize),
                data: f.body,
                src_pe: src,
                sent_vtime: f.c,
            },
        },
        FrameKind::Ack => PacketBody::Ack { cum: f.a },
        FrameKind::Heartbeat => PacketBody::Heartbeat { hb_seq: f.a, vt: f.b },
        FrameKind::Ctrl => unreachable!("control frames are consumed by the comm thread"),
    };
    Packet { src, body }
}

/// Serialize a morgue record (all vectors are global-length):
/// `[rx_cum × n][tx_last × n][reaped_mask]`, little-endian u64s.
fn encode_morgue(m: &Morgue) -> Vec<u8> {
    let mut out = Vec::with_capacity((m.rx_cum.len() + m.tx_last.len() + 1) * 8);
    for v in m.rx_cum.iter().chain(m.tx_last.iter()) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&m.reaped_mask.to_le_bytes());
    out
}

fn decode_morgue(body: &[u8], num_pes: usize) -> Option<Morgue> {
    if body.len() != (2 * num_pes + 1) * 8 {
        return None;
    }
    let u64_at = |i: usize| u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap());
    Some(Morgue {
        rx_cum: (0..num_pes).map(u64_at).collect(),
        tx_last: (0..num_pes).map(|i| u64_at(num_pes + i)).collect(),
        reaped_mask: u64_at(2 * num_pes),
    })
}

/// Everything the comm thread needs; built by `MachineBuilder::run`.
pub(crate) struct NetPump {
    pub world: Arc<World>,
    pub hub: Arc<Hub>,
    /// Local PEs' inject channels, indexed by `global_pe - base`.
    pub txs: Vec<Sender<Packet>>,
    pub stats: Option<Arc<FaultStats>>,
    pub online: bool,
    pub num_pes: usize,
}

/// One process's quiescence-gather row on the leader.
#[derive(Clone, Copy, Default)]
struct ProcRow {
    sent: u64,
    recv: u64,
    written_off: u64,
    idle: bool,
    unresolved: bool,
    /// Probe round this row last echoed (0 = never probed).
    round: u64,
    /// Process announced PROC_DEAD; its counters are frozen.
    dead: bool,
    /// Process sent GOODBYE (only during the finish wait).
    departed: bool,
}

impl NetPump {
    fn base(&self) -> usize {
        self.world.first_pe()
    }

    fn local(&self) -> usize {
        self.world.pes_per_proc()
    }

    /// Bitmask of this process's global PE ids (online mode caps the
    /// machine at 64 PEs, so the mask math is exact).
    fn local_mask(&self) -> u64 {
        (((1u128 << self.local()) - 1) << self.base()) as u64
    }

    /// Inject one decoded packet into its destination PE's channel.
    fn inject(&self, f: Frame) {
        let dst = f.dst_pe as usize;
        let local = dst.wrapping_sub(self.base());
        if local >= self.txs.len() {
            return; // misrouted frame; drop rather than poison a channel
        }
        let _ = self.txs[local].send(packet_of(f));
        self.hub.wake(dst);
    }

    fn local_written_off(&self) -> u64 {
        self.stats.as_ref().map_or(0, |s| s.summary().written_off)
    }

    /// This process's own gather row, sampled from the hub.
    fn own_row(&self) -> ProcRow {
        ProcRow {
            sent: self.hub.sent.load(Ordering::SeqCst),
            recv: self.hub.recv.load(Ordering::SeqCst),
            written_off: self.local_written_off(),
            idle: self.hub.idle_count() == self.local(),
            unresolved: self.hub.unresolved(),
            round: 0,
            dead: false,
            departed: false,
        }
    }

    fn stats_frame(&self, round: u64) -> Frame {
        let row = self.own_row();
        let (dead, fenced, confirmed, resolved) = self.hub.masks();
        let mut body = Vec::with_capacity(1 + 5 * 8);
        body.push(u8::from(row.idle) | (u8::from(row.unresolved) << 1));
        for v in [row.written_off, dead, fenced, confirmed, resolved] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        Frame::control(
            ctrl::STATS,
            self.world.rank() as u32,
            row.sent,
            row.recv,
            round,
            body.into(),
        )
    }

    /// Absorb a STATS frame into the sender's row (leader side).
    fn absorb_stats(&self, rows: &mut [ProcRow], f: &Frame) {
        let proc = f.src_pe as usize;
        if proc >= rows.len() || rows[proc].dead {
            return;
        }
        let b = f.body.as_slice();
        if b.len() != 1 + 5 * 8 {
            return;
        }
        let u64_at =
            |o: usize| u64::from_le_bytes(b[1 + o * 8..1 + o * 8 + 8].try_into().unwrap());
        rows[proc] = ProcRow {
            sent: f.a,
            recv: f.b,
            written_off: u64_at(0),
            idle: b[0] & 1 != 0,
            unresolved: b[0] & 2 != 0,
            round: f.c,
            dead: false,
            departed: rows[proc].departed,
        };
        self.hub.absorb_masks(u64_at(1), u64_at(2), u64_at(3), u64_at(4));
    }

    /// A morgue notice from a dying remote PE: record the crash exactly
    /// as the local `die()` path would, so detection/write-off/upcall
    /// machinery runs unchanged on survivors.
    fn absorb_morgue(&self, f: &Frame) {
        let pe = f.a as usize;
        if pe >= self.num_pes || self.hub.morgue_ready(pe) {
            return;
        }
        if let Some(m) = decode_morgue(f.body.as_slice(), self.num_pes) {
            self.hub.record_crash_online(pe, m);
        }
    }

    fn absorb_masks_frame(&self, f: &Frame) {
        let fenced = f
            .body
            .as_slice()
            .get(..8)
            .map_or(0, |b| u64::from_le_bytes(b.try_into().unwrap()));
        self.hub.absorb_masks(f.a, fenced, f.b, f.c);
    }

    /// All of this process's PEs have hit their scripted crashes: publish
    /// every local morgue to the survivors, report the frozen counters to
    /// the leader, and take the whole process down cleanly (exit code 0 —
    /// the *machine-level* failure was scripted, the process did its job).
    fn announce_proc_death(&self) {
        let me = self.world.rank();
        for pe in self.base()..self.base() + self.local() {
            let Some(m) = self.hub.morgue_get(pe) else { continue };
            let f = Frame::control(
                ctrl::MORGUE,
                me as u32,
                pe as u64,
                0,
                0,
                encode_morgue(&m).into(),
            );
            for p in 0..self.world.procs() {
                if p != me {
                    self.world.send(p, &f);
                }
            }
        }
        let woff = self.local_written_off();
        self.world.send(
            0,
            &Frame::control(
                ctrl::PROC_DEAD,
                me as u32,
                me as u64,
                self.hub.sent.load(Ordering::SeqCst),
                self.hub.recv.load(Ordering::SeqCst),
                woff.to_le_bytes().to_vec().into(),
            ),
        );
        self.hub.set_done_and_wake();
    }

    /// The child-process comm loop: pump frames, answer probes, report
    /// state changes, exit on DONE (or on whole-process death).
    // flows-wire: handles net-ctrl
    fn run_child(self) {
        let me = self.world.rank();
        let mut last_sent: Option<(u64, u64, u64, bool, bool)> = None;
        // Highest probe round this process has answered. Every STATS frame
        // carries it — "I have seen probe N" is monotone state, not a
        // one-shot reply. If a state-change report could carry round 0 it
        // would overwrite the leader's record of our reply, and a wave
        // whose counters then stopped moving would wait forever for a
        // re-reply nothing will ever trigger.
        let mut seen_round: u64 = 0;
        loop {
            while let Some((_, f)) = self.world.try_recv() {
                match f.kind {
                    FrameKind::Ctrl => match f.ctrl {
                        ctrl::MORGUE => self.absorb_morgue(&f),
                        ctrl::MASKS => self.absorb_masks_frame(&f),
                        ctrl::PROBE => {
                            seen_round = seen_round.max(f.a);
                            self.world.send(0, &self.stats_frame(seen_round));
                        }
                        ctrl::DONE => {
                            self.hub.net_global_sent.store(f.a, Ordering::SeqCst);
                            self.hub.set_done_and_wake();
                            self.world.send(
                                0,
                                &Frame::control(
                                    ctrl::GOODBYE,
                                    me as u32,
                                    me as u64,
                                    0,
                                    0,
                                    flows_core::Payload::empty(),
                                ),
                            );
                            return;
                        }
                        _ => {}
                    },
                    _ => self.inject(f),
                }
            }
            if self.hub.done_flag() {
                // A local abort (legacy crash path) without a DONE: say
                // goodbye so the leader's finish wait does not time out.
                self.world.send(
                    0,
                    &Frame::control(
                        ctrl::GOODBYE,
                        me as u32,
                        me as u64,
                        0,
                        0,
                        flows_core::Payload::empty(),
                    ),
                );
                return;
            }
            if self.online {
                let (dead, _, _, _) = self.hub.masks();
                if dead & self.local_mask() == self.local_mask() {
                    self.announce_proc_death();
                    return;
                }
            }
            let row = self.own_row();
            let state = (row.sent, row.recv, row.written_off, row.idle, row.unresolved);
            if last_sent != Some(state) {
                last_sent = Some(state);
                self.world.send(0, &self.stats_frame(seen_round));
            }
            self.world.park(PUMP_PARK);
        }
    }

    /// The leader comm loop: gather rows, double-probe the fixpoint,
    /// declare quiescence, then collect goodbyes.
    // flows-wire: handles net-ctrl
    fn run_leader(self) {
        let procs = self.world.procs();
        let mut rows = vec![ProcRow::default(); procs];
        let mut round: u64 = 0;
        let mut snapshot: Option<(u64, u64, u64)> = None;
        let mut last_masks = (0u64, 0u64, 0u64, 0u64);
        loop {
            while let Some((_, f)) = self.world.try_recv() {
                match f.kind {
                    FrameKind::Ctrl => match f.ctrl {
                        ctrl::STATS => self.absorb_stats(&mut rows, &f),
                        ctrl::MORGUE => self.absorb_morgue(&f),
                        ctrl::PROC_DEAD => {
                            let proc = f.a as usize;
                            if proc < procs && !rows[proc].dead {
                                let woff = f.body.as_slice().get(..8).map_or(0, |b| {
                                    u64::from_le_bytes(b.try_into().unwrap())
                                });
                                // Frozen final counters; a dead process's
                                // failures are the survivors' to resolve,
                                // so it gathers as idle and resolved.
                                rows[proc] = ProcRow {
                                    sent: f.b,
                                    recv: f.c,
                                    written_off: woff,
                                    idle: true,
                                    unresolved: false,
                                    round: u64::MAX,
                                    dead: true,
                                    departed: true,
                                };
                                self.world.mark_proc_dead(proc);
                            }
                        }
                        _ => {}
                    },
                    _ => self.inject(f),
                }
            }
            if self.hub.done_flag() {
                // Declared below on a previous iteration — unreachable —
                // or a legacy crash abort: finish either way.
                self.finish(&rows, self.hub.sent.load(Ordering::SeqCst));
                return;
            }
            rows[0] = self.own_row();
            let masks = self.hub.masks();
            if masks != last_masks {
                last_masks = masks;
                let (dead, fenced, confirmed, resolved) = masks;
                let f = Frame::control(
                    ctrl::MASKS,
                    0,
                    dead,
                    confirmed,
                    resolved,
                    fenced.to_le_bytes().to_vec().into(),
                );
                for (p, row) in rows.iter().enumerate().skip(1) {
                    if !row.dead {
                        self.world.send(p, &f);
                    }
                }
            }
            match self.fixpoint(&rows) {
                None => snapshot = None,
                Some(sums) => {
                    let replied = rows
                        .iter()
                        .skip(1)
                        .all(|r| r.dead || r.round >= round.max(1));
                    match snapshot {
                        Some(prev) if replied && prev == sums => {
                            // Second wave saw the identical balanced
                            // fixpoint: quiescent machine-wide.
                            let global_sent = sums.0;
                            self.hub.net_global_sent.store(global_sent, Ordering::SeqCst);
                            self.hub.set_done_and_wake();
                            self.finish(&rows, global_sent);
                            return;
                        }
                        Some(prev) if replied => {
                            // Moved under the probe: start a fresh wave.
                            let _ = prev;
                            snapshot = None;
                        }
                        Some(prev) if prev != sums => {
                            // The ledger moved while replies were still
                            // outstanding — this wave's snapshot is moot,
                            // and an unanswered stale wave must not be
                            // waited out (the traffic that moved the sums
                            // may have been the machine's last).
                            snapshot = None;
                        }
                        Some(_) => {} // waiting for probe replies
                        None => {
                            round += 1;
                            snapshot = Some(sums);
                            let f = Frame::control(
                                ctrl::PROBE,
                                0,
                                round,
                                0,
                                0,
                                flows_core::Payload::empty(),
                            );
                            for (p, row) in rows.iter().enumerate().skip(1) {
                                if !row.dead {
                                    self.world.send(p, &f);
                                }
                            }
                        }
                    }
                }
            }
            self.world.park(PUMP_PARK);
        }
    }

    /// Balanced-and-idle check over the gather rows. `Some((Σsent, Σrecv,
    /// Σwritten_off))` when every live process is idle with no unresolved
    /// failure and the global ledger balances.
    fn fixpoint(&self, rows: &[ProcRow]) -> Option<(u64, u64, u64)> {
        if rows.iter().any(|r| !r.idle || r.unresolved) {
            return None;
        }
        let sent: u64 = rows.iter().map(|r| r.sent).sum();
        let recv: u64 = rows.iter().map(|r| r.recv).sum();
        let woff: u64 = rows.iter().map(|r| r.written_off).sum();
        (sent == recv + woff).then_some((sent, recv, woff))
    }

    /// Broadcast DONE and wait for every live child's GOODBYE so no child
    /// is still mid-drain when the leader tears the session down.
    // flows-wire: handles net-ctrl
    fn finish(&self, rows: &[ProcRow], global_sent: u64) {
        let mut pending: Vec<bool> = rows.iter().map(|r| !r.departed).collect();
        pending[0] = false;
        let done = Frame::control(
            ctrl::DONE,
            0,
            global_sent,
            0,
            0,
            flows_core::Payload::empty(),
        );
        for (p, wait) in pending.iter().enumerate() {
            if *wait {
                self.world.send(p, &done);
            }
        }
        let deadline = Instant::now() + GOODBYE_TIMEOUT;
        while pending.iter().any(|w| *w) && Instant::now() < deadline {
            while let Some((_, f)) = self.world.try_recv() {
                if f.kind == FrameKind::Ctrl && f.ctrl == ctrl::GOODBYE {
                    if let Some(w) = pending.get_mut(f.a as usize) {
                        *w = false;
                    }
                }
            }
            self.world.park(PUMP_PARK);
        }
    }

    /// The comm-thread entry point.
    pub(crate) fn run(self) {
        if self.world.is_leader() {
            self.run_leader();
        } else {
            self.run_child();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morgue_codec_round_trips() {
        let m = Morgue {
            rx_cum: vec![1, 2, 3, 4],
            tx_last: vec![9, 8, 7, 6],
            reaped_mask: 0b1010,
        };
        let wire = encode_morgue(&m);
        let back = decode_morgue(&wire, 4).expect("well-formed");
        assert_eq!(back.rx_cum, m.rx_cum);
        assert_eq!(back.tx_last, m.tx_last);
        assert_eq!(back.reaped_mask, m.reaped_mask);
        assert!(decode_morgue(&wire, 5).is_none(), "length is validated");
    }

    #[test]
    fn packet_codec_preserves_link_fields() {
        let body: flows_core::Payload = vec![7u8; 90].into();
        let f = Frame::data(3, 6, 42, 5, 1_000, body.clone());
        let pkt = packet_of(f);
        assert_eq!(pkt.src, 3);
        match pkt.body {
            PacketBody::Data { seq, msg } => {
                assert_eq!(seq, 42);
                assert_eq!(msg.handler, HandlerId(5));
                assert_eq!(msg.src_pe, 3);
                assert_eq!(msg.sent_vtime, 1_000);
                assert_eq!(msg.data, body);
            }
            other => panic!("wrong body: {other:?}"),
        }
        match packet_of(Frame::ack(1, 2, 17)).body {
            PacketBody::Ack { cum } => assert_eq!(cum, 17),
            other => panic!("wrong body: {other:?}"),
        }
        match packet_of(Frame::heartbeat(1, 2, 9, 5_000)).body {
            PacketBody::Heartbeat { hb_seq, vt } => {
                assert_eq!(hb_seq, 9);
                assert_eq!(vt, 5_000);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }
}
