//! # flows-converse — the machine runtime (Converse analog)
//!
//! The paper's runtime substrate (§2.4, refs [23], [24]): a *machine* of
//! `num_pes` PEs (processing elements), each with a message queue and a
//! user-level thread scheduler, driven by a per-PE scheduler loop that
//! alternates between delivering network messages to registered
//! *handlers* and running ready threads.
//!
//! Because the reproduction host is a single-core box, the machine
//! supports two drive modes with identical semantics:
//!
//! * [`MachineBuilder::run`] — one OS thread per PE (true concurrency,
//!   used by benches);
//! * [`MachineBuilder::run_deterministic`] — all PEs stepped round-robin
//!   by one OS thread (used by tests and proptest).
//!
//! **Virtual time.** Parallel wall-clock speedup cannot be observed on one
//! core, so each PE carries a virtual clock: it advances by the measured
//! wall time of the PE's own work (handlers + thread bursts), and message
//! delivery imposes `max(local, send_time + latency + len/bandwidth)`.
//! The maximum PE clock at quiescence is the *modeled parallel completion
//! time* reported by the Figure 11/12 harnesses (see DESIGN.md §2).
//!
//! ```
//! use flows_converse::{MachineBuilder, send, my_pe, num_pes};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let hits = Arc::new(AtomicU64::new(0));
//! let mut mb = MachineBuilder::new(2);
//! let h = {
//!     let hits = hits.clone();
//!     mb.handler(move |_pe, msg| {
//!         hits.fetch_add(msg.data[0] as u64, Ordering::Relaxed);
//!     })
//! };
//! mb.run_deterministic(move |pe| {
//!     if pe.id() == 0 {
//!         for dest in 0..num_pes() {
//!             send(dest, h, vec![5]);
//!         }
//!     }
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 10);
//! ```

#![warn(missing_docs)]

pub mod fault;
mod link;
pub mod machine;
pub mod msg;
mod netpump;
pub mod pe;

pub use fault::{FaultPlan, FaultSummary, PeCrash, PeStall, RecoveryEvent, RecoveryPhase};
pub use flows_core::{Payload, PayloadBuf, PayloadPool};
pub use flows_trace::{TraceRing, TraceSummary};
pub use machine::{MachineBuilder, MachineReport};
pub use msg::{HandlerId, Message, NetModel};
pub use pe::{charge_ns, my_pe, num_pes, payload_buf, send, vtime_ns, with_pe, Pe};
