//! Reliable cross-PE links: per-link sequence numbers, cumulative acks,
//! timeout retransmission with exponential backoff, duplicate suppression
//! and in-order reassembly.
//!
//! The protocol is active only when a [`crate::FaultPlan`] is attached;
//! otherwise packets carry `seq == 0` and pass straight through (the
//! channels themselves are lossless). Self-sends never enter the link
//! layer.
//!
//! Accounting invariant: the machine-wide quiescence counters (`Hub::sent`
//! / `Hub::recv`) count *logical* messages — one increment per `send`,
//! one per handler invocation. Retransmissions, duplicates and acks are
//! protocol-internal and tracked in [`crate::FaultStats`] instead, so
//! quiescence detection is oblivious to the fault layer. While a sender
//! holds unacked packets it reports "has work", which keeps both drive
//! modes alive until every loss has been repaired.

use crate::msg::Message;
use std::collections::BTreeMap;

/// What actually travels on the inter-PE channels.
#[derive(Debug)]
pub(crate) struct Packet {
    pub src: usize,
    pub body: PacketBody,
}

#[derive(Debug)]
pub(crate) enum PacketBody {
    /// An application message. `seq == 0` means "no protocol" (no fault
    /// plan attached); sequenced links start at 1.
    Data { seq: u64, msg: Message },
    /// Cumulative acknowledgement: every seq `<= cum` has been received.
    Ack { cum: u64 },
    /// Failure-detector heartbeat (online mode only). Unsequenced and
    /// unacked: a lost heartbeat *is* the signal. Never counted in the
    /// logical sent/recv totals. The round counter is carried for wire
    /// debugging only; receivers timestamp arrival and ignore it. `vt` is
    /// the sender's virtual clock at emission: threaded machines advance
    /// their clocks independently (each PE idle-jumps along its own
    /// schedule), so receivers Lamport-sync to it — without that, one
    /// observer's clock can race ahead of a live peer's heartbeat
    /// production and convict it of a silence that never happened.
    Heartbeat {
        #[allow(dead_code)]
        hb_seq: u64,
        vt: u64,
    },
}

/// A packet awaiting acknowledgement on a sender.
#[derive(Debug)]
pub(crate) struct Unacked {
    pub msg: Message,
    /// Virtual time at which a retransmission is due.
    pub deadline: u64,
    /// Transmission attempts so far (0 = initial send).
    pub attempt: u32,
}

/// Sender-side state for one outgoing link.
#[derive(Debug, Default)]
pub(crate) struct TxLink {
    /// Next sequence number to assign (first is 1).
    next_seq: u64,
    /// In-flight packets by sequence number.
    pub unacked: BTreeMap<u64, Unacked>,
    /// One packet held back to reorder behind the next send.
    pub pocket: Option<(u64, Message)>,
    /// Peer is confirmed dead and this link reaped: further sends are
    /// written off at the source instead of entering the protocol.
    pub dead: bool,
}

impl TxLink {
    pub fn assign_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Highest sequence number assigned so far (0 = none). Published in a
    /// crashing PE's morgue record so survivors can write off exactly the
    /// messages that died in flight.
    pub fn last_assigned(&self) -> u64 {
        self.next_seq
    }

    /// Drop everything acknowledged by a cumulative ack.
    pub fn ack_through(&mut self, cum: u64) {
        self.unacked = self.unacked.split_off(&(cum + 1));
        if let Some((seq, _)) = &self.pocket {
            if *seq <= cum {
                // Can't happen in a sane peer (it never saw the pocketed
                // packet), but be safe: treat as acked.
                self.pocket = None;
            }
        }
    }
}

/// Receiver-side state for one incoming link.
#[derive(Debug)]
pub(crate) struct RxLink {
    /// Next in-order sequence number we are waiting for.
    next_expected: u64,
    /// Out-of-order packets parked until the gap fills.
    ooo: BTreeMap<u64, Message>,
    /// Peer is confirmed dead and this link reaped: stragglers still in
    /// the channel were already written off and must not be delivered.
    pub dead: bool,
}

impl Default for RxLink {
    fn default() -> Self {
        RxLink {
            next_expected: 1,
            ooo: BTreeMap::new(),
            dead: false,
        }
    }
}

/// Outcome of offering a received data packet to an [`RxLink`].
pub(crate) enum RxOutcome {
    /// Deliver these messages (the packet plus any unblocked stragglers),
    /// in order.
    Deliver(Vec<Message>),
    /// Duplicate — already delivered or already parked; drop it.
    Duplicate,
    /// Out of order — parked until the gap fills.
    Parked,
    /// The sender is confirmed dead and the link reaped: the straggler was
    /// written off and is dropped without delivery or ack.
    Dead,
}

impl RxLink {
    /// Cumulative ack value: highest in-order seq received.
    pub fn cum_ack(&self) -> u64 {
        self.next_expected - 1
    }

    /// Write the link off after its peer's death: parked stragglers are
    /// dropped (they are inside the written-off window) and every later
    /// packet is refused.
    pub fn reap(&mut self) {
        self.dead = true;
        self.ooo.clear();
    }

    pub fn offer(&mut self, seq: u64, msg: Message) -> RxOutcome {
        if self.dead {
            return RxOutcome::Dead;
        }
        if seq < self.next_expected {
            return RxOutcome::Duplicate;
        }
        if seq > self.next_expected {
            return if self.ooo.insert(seq, msg).is_some() {
                RxOutcome::Duplicate
            } else {
                RxOutcome::Parked
            };
        }
        let mut ready = vec![msg];
        self.next_expected += 1;
        while let Some(m) = self.ooo.remove(&self.next_expected) {
            ready.push(m);
            self.next_expected += 1;
        }
        RxOutcome::Deliver(ready)
    }
}

/// Per-PE link table: one tx and one rx endpoint per peer.
#[derive(Debug, Default)]
pub(crate) struct LinkTable {
    pub tx: Vec<TxLink>,
    pub rx: Vec<RxLink>,
}

impl LinkTable {
    pub fn new(num_pes: usize) -> LinkTable {
        LinkTable {
            tx: (0..num_pes).map(|_| TxLink::default()).collect(),
            rx: (0..num_pes).map(|_| RxLink::default()).collect(),
        }
    }

    /// Any packet awaiting ack or pocketed anywhere?
    pub fn in_flight(&self) -> bool {
        self.tx
            .iter()
            .any(|t| !t.unacked.is_empty() || t.pocket.is_some())
    }

    /// Earliest retransmission deadline across all links, if any.
    pub fn min_deadline(&self) -> Option<u64> {
        self.tx
            .iter()
            .flat_map(|t| t.unacked.values().map(|u| u.deadline))
            .min()
    }
}

/// Attempts after which the exponential backoff stops doubling. A capped
/// RTO keeps probing a stalled-then-recovered peer at a bounded cadence
/// (instead of backing off into minutes of virtual silence) and bounds
/// idle virtual-time jumps; retransmissions scheduled at the cap are
/// counted in [`crate::FaultSummary::retransmits_capped`].
pub(crate) const RTO_ATTEMPT_CAP: u32 = 6;

/// Fraction of the backed-off RTO added as deterministic jitter.
const RTO_JITTER_FRAC: f64 = 0.25;

/// Retransmission timeout for a given attempt: a few network latencies
/// plus any injected delay, doubling per attempt up to
/// [`RTO_ATTEMPT_CAP`], plus up to 25% seeded jitter. `jitter` is a
/// deterministic uniform draw in [0,1) from the fault plan
/// (`FaultPlan::jitter_roll`), so senders whose timers expired together —
/// e.g. everyone blocked on one stalled PE — come back de-synchronized
/// instead of as a retransmit storm.
pub(crate) fn rto_ns(base_latency_ns: u64, delay_ns: u64, attempt: u32, jitter: f64) -> u64 {
    let base = 4 * base_latency_ns.max(1_000) + 2 * delay_ns + 50_000;
    let backed = base.saturating_mul(1u64 << attempt.min(RTO_ATTEMPT_CAP));
    backed.saturating_add((backed as f64 * RTO_JITTER_FRAC * jitter) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::HandlerId;

    fn msg(tag: u8) -> Message {
        Message {
            handler: HandlerId(0),
            data: vec![tag].into(),
            src_pe: 0,
            sent_vtime: 0,
        }
    }

    #[test]
    fn rx_orders_and_dedupes() {
        let mut rx = RxLink::default();
        // 2 arrives first: parked.
        assert!(matches!(rx.offer(2, msg(2)), RxOutcome::Parked));
        assert_eq!(rx.cum_ack(), 0);
        // duplicate of 2: dropped.
        assert!(matches!(rx.offer(2, msg(2)), RxOutcome::Duplicate));
        // 1 arrives: both released in order.
        match rx.offer(1, msg(1)) {
            RxOutcome::Deliver(v) => {
                assert_eq!(v.iter().map(|m| m.data[0]).collect::<Vec<_>>(), vec![1, 2])
            }
            _ => panic!("expected delivery"),
        }
        assert_eq!(rx.cum_ack(), 2);
        // stale retransmit of 1: dropped.
        assert!(matches!(rx.offer(1, msg(1)), RxOutcome::Duplicate));
    }

    #[test]
    fn tx_acks_cumulatively() {
        let mut tx = TxLink::default();
        for _ in 0..3 {
            let s = tx.assign_seq();
            tx.unacked.insert(
                s,
                Unacked {
                    msg: msg(s as u8),
                    deadline: 100,
                    attempt: 0,
                },
            );
        }
        assert_eq!(tx.unacked.len(), 3);
        tx.ack_through(2);
        assert_eq!(tx.unacked.len(), 1);
        assert!(tx.unacked.contains_key(&3));
        tx.ack_through(3);
        assert!(tx.unacked.is_empty());
    }

    #[test]
    fn rto_backs_off_and_caps() {
        let r0 = rto_ns(10_000, 0, 0, 0.0);
        let r1 = rto_ns(10_000, 0, 1, 0.0);
        assert_eq!(r1, 2 * r0);
        assert_eq!(
            rto_ns(10_000, 0, RTO_ATTEMPT_CAP, 0.0),
            rto_ns(10_000, 0, 63, 0.0),
            "backoff stops doubling at the cap"
        );
        assert!(rto_ns(10_000, 0, RTO_ATTEMPT_CAP, 0.0) < rto_ns(10_000, 0, 10, 0.0) * 2);
    }

    #[test]
    fn rto_jitter_is_bounded_and_monotone() {
        let base = rto_ns(10_000, 0, 3, 0.0);
        for j in [0.0, 0.25, 0.5, 0.999] {
            let r = rto_ns(10_000, 0, 3, j);
            assert!(r >= base, "jitter never shortens the timeout");
            assert!(
                r <= base + base / 4 + 1,
                "jitter bounded by 25%: {r} vs {base}"
            );
        }
    }

    #[test]
    fn link_table_tracks_flight() {
        let mut lt = LinkTable::new(2);
        assert!(!lt.in_flight());
        assert_eq!(lt.min_deadline(), None);
        let s = lt.tx[1].assign_seq();
        lt.tx[1].unacked.insert(
            s,
            Unacked {
                msg: msg(0),
                deadline: 77,
                attempt: 0,
            },
        );
        assert!(lt.in_flight());
        assert_eq!(lt.min_deadline(), Some(77));
    }
}
