//! One converse machine spanning OS processes: 2 procs × 2 PEs run the
//! unchanged pingpong and ring programs over both flows-net backends,
//! and the shared-memory backend delivers remote message bodies as
//! zero-copy views of the shared arena.
//!
//! The leader tests re-execute this binary as rank 1 (`mp_child`
//! below); every process runs the identical SPMD `exercise` body, so
//! handler ids agree machine-wide.

use flows_converse::{MachineBuilder, NetModel};
use flows_net::{child_rank, Backend, TopologySpec, World};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PROCS: usize = 2;
const PES: usize = 2;
/// Pingpong exchanges between PE 0 (proc 0) and PE 2 (proc 1).
const HOPS: u64 = 200;
/// Ring hops (token visits `RING_HOPS` successive PEs).
const RING_HOPS: u64 = 4 * 25;
/// Body size: comfortably past the inline-payload threshold, so a
/// zero-copy shm delivery is observable as an extern pointer.
const BODY: usize = 256;

fn fill(hops: u64) -> Vec<u8> {
    let mut v = vec![0xA5u8; BODY];
    v[..8].copy_from_slice(&hops.to_le_bytes());
    v
}

fn hops_of(data: &[u8]) -> u64 {
    u64::from_le_bytes(data[..8].try_into().unwrap())
}

/// The SPMD body every process runs: build the machine, wire the two
/// programs, drive to quiescence, check the global ledger.
fn exercise(world: Arc<World>) {
    let num = world.num_pes();
    let my_proc = world.rank();
    let shm = world.shm_range();
    let is_shm = world.backend() == Backend::Shm;
    let remote_views = Arc::new(AtomicU64::new(0));

    let mut mb = MachineBuilder::new(num)
        .net_model(NetModel::zero())
        .multiproc(world.clone());

    // Shared by both handlers: validate the body and (on shm) prove the
    // bytes of a cross-process message still live in the shared arena.
    let check = {
        let world = world.clone();
        let remote_views = remote_views.clone();
        move |msg: &flows_converse::Message| {
            assert_eq!(msg.data.len(), BODY);
            assert!(msg.data[8..].iter().all(|&b| b == 0xA5), "body intact");
            if world.proc_of_pe(msg.src_pe) != my_proc {
                if let Some((lo, hi)) = shm {
                    let p = msg.data.as_slice().as_ptr() as usize;
                    assert!(
                        lo <= p && p + BODY <= hi,
                        "remote shm body must be a view of the shared arena \
                         ({p:#x} not in {lo:#x}..{hi:#x})"
                    );
                    remote_views.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    };

    let pingpong = {
        let check = check.clone();
        mb.handler(move |pe, msg| {
            check(&msg);
            let hops = hops_of(&msg.data);
            if hops > 0 {
                pe.send(msg.src_pe, msg.handler, fill(hops - 1));
            }
        })
    };
    let ring = {
        let check = check.clone();
        mb.handler(move |pe, msg| {
            check(&msg);
            let hops = hops_of(&msg.data);
            if hops > 0 {
                let next = (pe.id() + 1) % pe.num_pes();
                pe.send(next, msg.handler, fill(hops - 1));
            }
        })
    };

    let report = mb.run(move |pe| {
        if pe.id() == 0 {
            // Cross-process pingpong: proc 0's PE 0 <-> proc 1's PE 2.
            pe.send(PES, pingpong, fill(HOPS));
            // Ring around every PE of every process.
            pe.send(1 % pe.num_pes(), ring, fill(RING_HOPS));
        }
    });

    // DONE carries the leader's global sent count; every process must
    // agree on it, and it is exactly the two programs' traffic.
    assert_eq!(
        report.messages,
        (HOPS + 1) + (RING_HOPS + 1),
        "global message ledger balances across processes"
    );
    if is_shm {
        assert!(
            remote_views.load(Ordering::Relaxed) > 0,
            "cross-process shm deliveries observed"
        );
        assert_eq!(
            flows_net::body_copies(),
            0,
            "shm backend stages no body copies intra-host"
        );
    }
}

/// Child-process body (not a test of its own: returns immediately when
/// the file runs without a flows-net environment).
#[test]
fn mp_child() {
    if child_rank().is_none() {
        return;
    }
    let world = flows_net::attach_from_env().expect("child attach");
    exercise(world);
}

fn lead(backend: Backend) {
    let world = TopologySpec::new(PROCS, PES)
        .backend(backend)
        .child_args(["mp_child", "--exact", "--nocapture"])
        .launch()
        .expect("launch");
    exercise(world.clone());
    world.shutdown().expect("children exited clean");
}

#[test]
fn shm_machine_runs_pingpong_and_ring() {
    lead(Backend::Shm);
}

#[test]
fn uds_machine_runs_pingpong_and_ring() {
    lead(Backend::Uds);
}
