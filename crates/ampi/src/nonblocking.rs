//! Nonblocking point-to-point (`MPI_Isend`/`MPI_Irecv`) and the richer
//! collectives (`bcast`, `scatter`, `alltoall`) built over the sequenced
//! point-to-point layer.
//!
//! Sends are eager in AMPI (the payload leaves immediately and is
//! buffered at the receiver), so an isend's request is born complete —
//! the interesting half is `irecv`, which posts a match and lets the rank
//! keep computing until `wait`.

use crate::world::{with_rank_box, Wait};
use crate::Ampi;

/// Tag space reserved for the collectives in this module; user tags must
/// stay below it.
pub const RESERVED_TAG_BASE: u64 = 1 << 62;

/// A pending nonblocking operation.
#[derive(Debug)]
pub struct Request {
    kind: ReqKind,
}

#[derive(Debug)]
enum ReqKind {
    /// Eager send: complete at creation.
    Send,
    /// Posted receive, possibly already satisfied by `test`.
    Recv {
        src: Option<usize>,
        tag: Option<u64>,
        got: Option<(usize, u64, Vec<u8>)>,
    },
}

impl Request {
    /// Is the operation complete? (`MPI_Test` without retrieving data —
    /// use [`Ampi::test`] to also claim a matched message.)
    pub fn is_complete(&self) -> bool {
        match &self.kind {
            ReqKind::Send => true,
            ReqKind::Recv { got, .. } => got.is_some(),
        }
    }
}

impl Ampi {
    /// Nonblocking send (`MPI_Isend`). Eager: the returned request is
    /// already complete; it exists so code can be written in the
    /// post-then-waitall style.
    pub fn isend(&mut self, dest: usize, tag: u64, data: Vec<u8>) -> Request {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is in the reserved range");
        self.send(dest, tag, data);
        Request {
            kind: ReqKind::Send,
        }
    }

    /// Nonblocking receive (`MPI_Irecv`): posts a match; complete it with
    /// [`Ampi::test`] or [`Ampi::wait`].
    pub fn irecv(&self, src: Option<usize>, tag: Option<u64>) -> Request {
        Request {
            kind: ReqKind::Recv { src, tag, got: None },
        }
    }

    /// Try to complete a request without blocking (`MPI_Test`). Returns
    /// whether it is complete afterwards.
    pub fn test(&self, req: &mut Request) -> bool {
        match &mut req.kind {
            ReqKind::Send => true,
            ReqKind::Recv { got: Some(_), .. } => true,
            ReqKind::Recv { src, tag, got } => {
                let want_src = src.map(|s| s as u64);
                let want_tag = *tag;
                let hit = with_rank_box(self.rank() as u64, |b| {
                    let pos = b.mailbox.iter().position(|m| {
                        want_src.is_none_or(|s| s == m.src)
                            && want_tag.is_none_or(|t| t == m.tag)
                    });
                    pos.map(|i| {
                        let m = b.mailbox.remove(i).expect("found above");
                        (m.src as usize, m.tag, m.data.into_vec())
                    })
                });
                *got = hit;
                got.is_some()
            }
        }
    }

    /// Block until the request completes (`MPI_Wait`). For receives,
    /// returns `(source, tag, payload)`; for sends, `None`.
    pub fn wait(&self, mut req: Request) -> Option<(usize, u64, Vec<u8>)> {
        loop {
            if self.test(&mut req) {
                return match req.kind {
                    ReqKind::Send => None,
                    ReqKind::Recv { got, .. } => got,
                };
            }
            // Park exactly like a blocking recv so delivery wakes us.
            let (src, tag) = match &req.kind {
                ReqKind::Recv { src, tag, .. } => (src.map(|s| s as u64), *tag),
                ReqKind::Send => unreachable!("sends always test complete"),
            };
            with_rank_box(self.rank() as u64, |b| {
                b.wait = Wait::Recv { src, tag };
            });
            flows_core::suspend();
        }
    }

    /// Wait for every request (`MPI_Waitall`), returning receive payloads
    /// in order.
    pub fn waitall(&self, reqs: Vec<Request>) -> Vec<Option<(usize, u64, Vec<u8>)>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    fn next_reserved_tag(&mut self) -> u64 {
        // Collectives are called in the same order by every rank (MPI
        // requirement), so a per-rank counter lines up machine-wide.
        self.p2p_coll_seq += 1;
        RESERVED_TAG_BASE + self.p2p_coll_seq
    }

    /// Broadcast from `root` (`MPI_Bcast`): every rank returns the root's
    /// payload.
    pub fn bcast(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        // Root contributes its payload to a gather; everyone picks the
        // root's (and only) block. Cost is O(P) messages through the
        // reduction root — fine at AMPI's rank counts here.
        let mine = if self.rank() == root { data } else { Vec::new() };
        self.allgather_bytes(mine)
    }

    /// Scatter from `root` (`MPI_Scatter`): rank `i` receives
    /// `chunks[i]`. Non-roots pass `None`.
    pub fn scatter(&mut self, root: usize, chunks: Option<Vec<Vec<u8>>>) -> Vec<u8> {
        let tag = self.next_reserved_tag();
        if self.rank() == root {
            let chunks = chunks.expect("root must provide the chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            let mut mine = Vec::new();
            for (dest, chunk) in chunks.into_iter().enumerate() {
                if dest == self.rank() {
                    mine = chunk;
                } else {
                    self.send(dest, tag, chunk);
                }
            }
            mine
        } else {
            assert!(chunks.is_none(), "only the root provides chunks");
            let (_, _, data) = self.recv(Some(root), Some(tag));
            data
        }
    }

    /// All-to-all personalized exchange (`MPI_Alltoall`): sends
    /// `parts[j]` to rank `j`, returns the blocks received, indexed by
    /// source rank.
    pub fn alltoall(&mut self, parts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(parts.len(), self.size(), "one part per rank");
        let tag = self.next_reserved_tag();
        let me = self.rank();
        let mut out: Vec<Option<Vec<u8>>> = (0..self.size()).map(|_| None).collect();
        for (dest, part) in parts.into_iter().enumerate() {
            if dest == me {
                out[me] = Some(part);
            } else {
                self.send(dest, tag, part);
            }
        }
        for _ in 0..self.size() - 1 {
            let (src, _, data) = self.recv(None, Some(tag));
            assert!(out[src].is_none(), "duplicate alltoall block from {src}");
            out[src] = Some(data);
        }
        out.into_iter().map(|b| b.expect("all blocks arrived")).collect()
    }
}
