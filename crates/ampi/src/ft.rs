//! Checkpoint-based fault tolerance for AMPI worlds.
//!
//! The paper's migration machinery gives checkpointing for free: packing a
//! rank for a checkpoint is *exactly* packing it for migration (§4.5) —
//! the destination is stable storage instead of another PE. This module
//! adds the driver around that observation:
//!
//! * [`Ampi::checkpoint`](crate::Ampi::checkpoint) is a collective; when
//!   every rank has reached it, each rank is packed, its image stored in a
//!   process-global generation store, and the rank resumes;
//! * a generation **commits** only once all `size` rank images of one
//!   checkpoint sequence are present — a crash mid-checkpoint falls back
//!   to the previous committed generation, keeping the cut consistent;
//! * [`run_world_ft`] drives a world under a
//!   [`FaultPlan`](flows_converse::FaultPlan): when a scripted PE crash
//!   aborts an attempt, the machine is rebuilt with one PE fewer (the
//!   paper's "restart on a different number of processors", §4.5), the
//!   last committed generation is restored with the dead PE's ranks
//!   redistributed — block mapping refined by the world's LB strategy fed
//!   with measured loads — and the run continues to completion.
//!
//! **Matched-boundary requirement.** `checkpoint()` snapshots each rank's
//! thread, mailbox and sequence state, but not messages still in flight in
//! the network. Call it only at an application point where every send has
//! been received (e.g. an iteration boundary after all ghost exchanges) —
//! the same rule real AMPI imposes on `MPI_Migrate`-style checkpoints.
//! State outside rank threads (globals, host-side accumulators) is *not*
//! rolled back; keep external side effects idempotent under re-execution.

use crate::world::{next_world_id, run_attempt, AmpiOptions};
use flows_converse::{FaultPlan, FaultSummary, MachineReport};
use flows_core::SharedPools;
use flows_mem::IsoConfig;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

/// One rank's checkpoint image: the pup'd `RankMove` (packed thread +
/// mailbox + sequence state) plus its measured load at pack time, used to
/// rebalance placement on restart.
pub(crate) struct Snapshot {
    pub move_bytes: Vec<u8>,
    pub load_ns: u64,
}

/// Per-world checkpoint generations.
struct WorldCkpts {
    size: usize,
    /// Incomplete generations: seq → (rank → image).
    pending: BTreeMap<u64, HashMap<u64, Snapshot>>,
    /// The newest generation with all `size` rank images.
    committed: Option<(u64, Arc<HashMap<u64, Snapshot>>)>,
}

static STORE: OnceLock<Mutex<HashMap<u64, WorldCkpts>>> = OnceLock::new();

fn store() -> &'static Mutex<HashMap<u64, WorldCkpts>> {
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Deposit one rank's image for generation `seq`; commit the generation
/// when it is complete. Called from the PE that hosts the rank.
pub(crate) fn store_snapshot(
    world: u64,
    seq: u64,
    rank: u64,
    size: usize,
    move_bytes: Vec<u8>,
    load_ns: u64,
) {
    let mut g = store().lock().expect("checkpoint store poisoned");
    let w = g.entry(world).or_insert_with(|| WorldCkpts {
        size,
        pending: BTreeMap::new(),
        committed: None,
    });
    w.size = size;
    let generation = w.pending.entry(seq).or_default();
    generation.insert(rank, Snapshot { move_bytes, load_ns });
    if generation.len() == w.size {
        let full = w.pending.remove(&seq).expect("generation just completed");
        // Older partial generations can never complete once a newer one
        // has — drop them.
        w.pending = w.pending.split_off(&seq);
        w.committed = Some((seq, Arc::new(full)));
    }
}

/// The newest committed generation of `world`, if any.
pub(crate) fn committed_generation(world: u64) -> Option<(u64, Arc<HashMap<u64, Snapshot>>)> {
    let g = store().lock().expect("checkpoint store poisoned");
    g.get(&world).and_then(|w| w.committed.clone())
}

/// Forget everything stored for `world` (run finished).
pub(crate) fn clear_world(world: u64) {
    store().lock().expect("checkpoint store poisoned").remove(&world);
}

/// What a fault-tolerant run went through to finish.
#[derive(Debug)]
pub struct FtReport {
    /// The machine report of the final (successful) attempt.
    pub report: MachineReport,
    /// Checkpoint restarts taken (= PE crashes survived).
    pub restarts: usize,
    /// PEs the final attempt ran on (initial PEs minus crashes).
    pub pes_used: usize,
    /// PEs that crashed, in order.
    pub crashed_pes: Vec<usize>,
    /// Fault-injection and recovery counters accumulated over every
    /// attempt (`None` components of aborted attempts included).
    pub faults: FaultSummary,
    /// Logical messages sent, accumulated over every attempt — compare
    /// with the final attempt's `report.messages` to see the work a crash
    /// threw away, and with `faults.physical_packets()` for the protocol
    /// overhead.
    pub total_messages: u64,
    /// Online recovery rounds completed in place (crashes healed without
    /// tearing the machine down). Always 0 for offline restart plans.
    pub recoveries: usize,
}

/// Run `main` as every rank of a fresh AMPI world under `plan`, surviving
/// the plan's scripted PE crashes by checkpoint restart.
///
/// Every attempt reuses one isomalloc region (checkpoint images embed
/// absolute slot addresses) and one world id (so routed object ids and
/// reduction tags stay stable). A crash before the first committed
/// checkpoint restarts the world from scratch on the surviving PEs. The
/// machine degrades: each crash permanently removes one PE.
///
/// Panics if every PE has crashed, or if fewer PEs remain than the
/// one-rank-per-PE minimum requires.
pub fn run_world_ft(
    opts: AmpiOptions,
    plan: FaultPlan,
    main: impl Fn(&mut crate::Ampi) + Send + Sync + 'static,
) -> FtReport {
    assert!(opts.ranks > 0 && opts.pes > 0);
    let world = next_world_id();
    let main: Arc<dyn Fn(&mut crate::Ampi) + Send + Sync> = Arc::new(main);

    // Build the machine memory substrate once, outside the attempt loop.
    let mut iso = IsoConfig::for_pes(opts.pes);
    iso.base = 0;
    iso.slot_len = opts.slot_len;
    iso.slots_per_pe = (opts.ranks / opts.pes + 2) * 2;

    if plan.online {
        // Online recovery: ONE machine, crashes healed in place. The
        // survivors roll back to buddy-replicated images and re-spawn the
        // dead PE's ranks through the normal migration unpack path — no
        // restart loop, no world teardown.
        assert!(
            opts.modeled_time,
            "online recovery requires modeled time (deterministic replay)"
        );
        // Any single PE may end up hosting every rank after repeated
        // crashes; size the isomalloc region for that worst case.
        iso.slots_per_pe = (opts.ranks + 2) * 2;
        if opts.multiproc.is_some() {
            // Keep the fixed default base: checkpoint images embed
            // absolute slot addresses, and a respawn on another process
            // adopts the slot at the identical virtual address.
            iso.base = flows_mem::DEFAULT_BASE;
        }
        let shared = SharedPools::new(iso, 1 << 20).expect("ft memory pools");
        if opts.multiproc.is_some() {
            assert!(
                shared.region().at_fixed_base(),
                "multi-process recovery needs the isomalloc region at its fixed base"
            );
        }
        let report = run_attempt(world, &opts, opts.pes, Some(shared), Some(plan), None, &main);
        assert!(
            report.crashed.is_none(),
            "online recovery must heal crashes, not abort the attempt"
        );
        clear_world(world);
        let mut resume_epochs: Vec<u64> = report
            .recovery
            .iter()
            .filter(|e| e.phase == flows_converse::RecoveryPhase::Resume)
            .map(|e| e.info)
            .collect();
        resume_epochs.sort_unstable();
        resume_epochs.dedup();
        let faults = report.faults.unwrap_or_default();
        let total_messages = report.messages;
        let crashed_pes = report.dead_pes.clone();
        return FtReport {
            report,
            restarts: 0,
            pes_used: opts.pes,
            crashed_pes,
            faults,
            total_messages,
            recoveries: resume_epochs.len(),
        };
    }

    let shared = SharedPools::new(iso, 1 << 20).expect("ft memory pools");
    let mut plan = plan;
    let mut pes_now = opts.pes;
    let mut restarts = 0usize;
    let mut crashed_pes = Vec::new();
    let mut faults = FaultSummary::default();
    let mut total_messages = 0u64;
    loop {
        let restore = committed_generation(world).map(|(_, snaps)| snaps);
        let report = run_attempt(
            world,
            &opts,
            pes_now,
            Some(shared.clone()),
            Some(plan.clone()),
            restore,
            &main,
        );
        if let Some(f) = &report.faults {
            faults.accumulate(f);
        }
        total_messages += report.messages;
        match report.crashed {
            None => {
                clear_world(world);
                return FtReport {
                    report,
                    restarts,
                    pes_used: pes_now,
                    crashed_pes,
                    faults,
                    total_messages,
                    recoveries: 0,
                };
            }
            Some(dead) => {
                // Consume the scripted crash: PE ids compact on restart,
                // so a surviving entry for this id would fire again.
                plan.crashes.retain(|c| c.pe != dead);
                crashed_pes.push(dead);
                assert!(pes_now > 1, "every PE has crashed; nothing left to restart on");
                pes_now -= 1;
                assert!(
                    opts.ranks >= pes_now,
                    "fewer PEs than the one-rank-per-PE minimum"
                );
                restarts += 1;
            }
        }
    }
}
