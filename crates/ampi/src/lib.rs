//! # flows-ampi — Adaptive MPI
//!
//! The paper's AMPI (§4.1, §4.5, refs [15][16]): an MPI-like programming
//! interface whose "processes" are migratable user-level threads. Because
//! each rank is an isomalloc thread (§3.4.2), the runtime can move ranks
//! between PEs at `migrate()` points for measurement-based load balancing
//! — with many more ranks than PEs, overloaded PEs shed work to idle ones,
//! which is exactly the Figure 12 experiment.
//!
//! ```
//! use flows_ampi::{run_world, AmpiOptions};
//!
//! let report = run_world(AmpiOptions::new(4, 2), |ampi| {
//!     // Classic ring: rank r sends to r+1, receives from r-1.
//!     let next = (ampi.rank() + 1) % ampi.size();
//!     ampi.send(next, 7, vec![ampi.rank() as u8]);
//!     let (src, tag, data) = ampi.recv(None, Some(7));
//!     assert_eq!(tag, 7);
//!     assert_eq!(data[0] as usize, src);
//!     ampi.barrier();
//! });
//! assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
//! ```
//!
//! Blocking calls (`recv`, `barrier`, `allreduce_*`, `migrate`) suspend
//! the calling user-level thread and let the PE run other ranks — the
//! §2.3 answer to the blocking problem that kernel threads solve with far
//! heavier machinery.

#![warn(missing_docs)]

pub mod ft;
pub mod nonblocking;
pub mod proto;
pub(crate) mod recover;
pub mod world;

pub use ft::{run_world_ft, FtReport};
pub use nonblocking::{Request, RESERVED_TAG_BASE};
pub use world::{lb_batch_messages, pe_of_rank, run_world, AmpiOptions};

use crate::proto::{LoadReport, RankWire, PORT_AMPI};
use crate::world::{contribute_now, obj_of, tag_ckpt, tag_coll, tag_lb, with_rank_box, Wait};
use flows_comm::ReduceOp;
use flows_core::suspend;

/// Per-rank handle passed to the world's main function. Lives on the
/// rank's own (migratable) stack, so its sequence counters travel with
/// the rank.
#[derive(Debug)]
pub struct Ampi {
    world: u64,
    rank: usize,
    size: usize,
    coll_seq: u64,
    lb_seq: u64,
    ckpt_seq: u64,
    /// Counter for the reserved tags of the pt2pt-based collectives.
    pub(crate) p2p_coll_seq: u64,
}

// KEEP THIS STRUCT HEAP-FREE. `Ampi` lives on the rank's migratable stack,
// so plain scalar fields are captured by checkpoint/migration images — but
// anything that spills to the process heap (Vec, HashMap, Box) is NOT: a
// rollback would restore a checkpoint-cut stack whose pointers alias live,
// post-cut (or freed) allocations. Per-destination send sequences used to
// live here as a HashMap and wedged every post-rollback replay one
// sequence ahead of its receivers; they now live in the rank's `RankBox`
// (explicitly pup'd with the image). Mutable cross-checkpoint state
// belongs either inline here or in the RankBox.

impl Ampi {
    pub(crate) fn new(world: u64, rank: usize, size: usize) -> Ampi {
        Ampi {
            world,
            rank,
            size,
            coll_seq: 0,
            lb_seq: 0,
            ckpt_seq: 0,
            p2p_coll_seq: 0,
        }
    }

    /// This rank's index (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The PE this rank is currently executing on (changes across
    /// [`Ampi::migrate`]).
    pub fn current_pe(&self) -> usize {
        flows_converse::my_pe()
    }

    /// Asynchronous-eager send (`MPI_Send` with buffering semantics):
    /// never blocks; the payload is routed to wherever `dest` lives.
    pub fn send(&mut self, dest: usize, tag: u64, data: Vec<u8>) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        debug_assert!(
            tag <= crate::nonblocking::RESERVED_TAG_BASE + (1 << 32),
            "tag out of range"
        );
        // The per-destination sequence lives in the rank's box (pup'd with
        // the checkpoint image), so a rollback rewinds it with the rest of
        // the rank — see the note on the `Ampi` struct.
        let this_seq = with_rank_box(self.rank as u64, |b| {
            let seq = b.send_seq.entry(dest as u64).or_insert(0);
            let v = *seq;
            *seq += 1;
            v
        });
        let mut w = RankWire {
            kind: 0,
            a: self.rank as u64,
            b: tag,
            seq: this_seq,
        };
        let obj = obj_of(self.world, dest as u64);
        flows_converse::with_pe(|pe| {
            // Header + raw tail into one pooled buffer — the only copy of
            // the user bytes on the whole send path.
            let wire = crate::proto::frame(pe, &mut w, &data);
            flows_comm::route(pe, obj, PORT_AMPI, wire)
        });
    }

    /// Blocking receive (`MPI_Recv`): `None` matches any source / any tag.
    /// Returns `(source, tag, payload)`. Suspends the rank's thread while
    /// waiting, letting other ranks on this PE run.
    pub fn recv(&self, src: Option<usize>, tag: Option<u64>) -> (usize, u64, Vec<u8>) {
        let want_src = src.map(|s| s as u64);
        loop {
            let hit = with_rank_box(self.rank as u64, |b| {
                let pos = b.mailbox.iter().position(|m| {
                    want_src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag)
                });
                match pos {
                    Some(i) => {
                        let m = b.mailbox.remove(i).expect("found above");
                        Some((m.src as usize, m.tag, m.data.into_vec()))
                    }
                    None => {
                        b.wait = Wait::Recv {
                            src: want_src,
                            tag,
                        };
                        None
                    }
                }
            });
            match hit {
                Some(r) => return r,
                None => suspend(),
            }
        }
    }

    /// Send then receive (`MPI_Sendrecv`).
    pub fn sendrecv(
        &mut self,
        dest: usize,
        send_tag: u64,
        data: Vec<u8>,
        src: Option<usize>,
        recv_tag: Option<u64>,
    ) -> (usize, u64, Vec<u8>) {
        self.send(dest, send_tag, data);
        self.recv(src, recv_tag)
    }

    fn collective(&mut self, op: ReduceOp, data: Vec<u8>) -> Vec<u8> {
        self.coll_seq += 1;
        let seq = self.coll_seq;
        with_rank_box(self.rank as u64, |b| {
            b.coll_result = None;
            b.wait = Wait::Coll { seq };
        });
        contribute_now(
            self.world,
            tag_coll(self.world),
            seq,
            self.rank as u64,
            op,
            self.size,
            data,
        );
        suspend();
        with_rank_box(self.rank as u64, |b| b.coll_result.take())
            .expect("collective completed without a result")
            .into_vec()
    }

    /// Barrier across all ranks (`MPI_Barrier`).
    pub fn barrier(&mut self) {
        let _ = self.collective(ReduceOp::SumU64, Vec::new());
    }

    /// Elementwise allreduce over `f64` vectors (`MPI_Allreduce`). `op`
    /// must be one of the f64 reduce ops.
    pub fn allreduce_f64(&mut self, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        assert!(matches!(
            op,
            ReduceOp::SumF64 | ReduceOp::MaxF64 | ReduceOp::MinF64
        ));
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend(v.to_le_bytes());
        }
        let out = self.collective(op, bytes);
        out.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Elementwise sum-allreduce over `u64` vectors.
    pub fn allreduce_u64_sum(&mut self, vals: &[u64]) -> Vec<u64> {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend(v.to_le_bytes());
        }
        let out = self.collective(ReduceOp::SumU64, bytes);
        out.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Allgather of one `f64` per rank, in rank order (`MPI_Allgather`).
    pub fn allgather_f64(&mut self, v: f64) -> Vec<f64> {
        let out = self.collective(ReduceOp::Concat, v.to_le_bytes().to_vec());
        out.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Allgather of raw byte blocks (caller frames them; blocks are
    /// concatenated in rank order).
    pub fn allgather_bytes(&mut self, data: Vec<u8>) -> Vec<u8> {
        self.collective(ReduceOp::Concat, data)
    }

    /// The load-balancing point (`AMPI_Migrate`): a collective at which
    /// every rank reports its measured load; the configured strategy
    /// decides; ranks ordered to move are packed (isomalloc byte copy,
    /// §3.4.2), shipped, and resume transparently on their new PE.
    pub fn migrate(&mut self) {
        self.lb_seq += 1;
        let seq = self.lb_seq;
        let mut report = LoadReport {
            rank: self.rank as u64,
            pe: flows_converse::my_pe() as u64,
            load_ns: flows_core::current_load_ns().unwrap_or(0),
        };
        with_rank_box(self.rank as u64, |b| b.wait = Wait::Lb { seq });
        contribute_now(
            self.world,
            tag_lb(self.world),
            seq,
            self.rank as u64,
            ReduceOp::Concat,
            self.size,
            flows_pup::to_bytes(&mut report),
        );
        suspend();
        // Resumed — possibly on a different PE; nothing else to do, which
        // is the whole point.
    }

    /// Coordinated checkpoint (`AMPI_Checkpoint`): a collective at which
    /// every rank is packed exactly as a migration would pack it, with the
    /// images held in a process-global generation store. Under
    /// [`run_world_ft`] a PE crash rolls the world back to the last
    /// *committed* generation (all ranks present) and restarts on the
    /// surviving PEs.
    ///
    /// Call this only at a matched communication boundary — a point where
    /// every message sent has been received (an iteration boundary after
    /// all ghost exchanges, for example). Messages still in flight are not
    /// part of any rank's image and would be lost by a rollback.
    pub fn checkpoint(&mut self) {
        self.ckpt_seq += 1;
        let seq = self.ckpt_seq;
        with_rank_box(self.rank as u64, |b| b.wait = Wait::Ckpt { seq });
        contribute_now(
            self.world,
            tag_ckpt(self.world),
            seq,
            self.rank as u64,
            ReduceOp::SumU64,
            self.size,
            Vec::new(),
        );
        suspend();
        // Resumed — either right after the snapshot was taken, or (after a
        // crash) from the restored image, possibly on a different PE.
    }

    /// Virtual wall-clock seconds of the current PE (`MPI_Wtime` on the
    /// modeled machine; see flows-converse on virtual time).
    pub fn wtime(&self) -> f64 {
        flows_converse::vtime_ns() as f64 * 1e-9
    }

    /// Charge modeled work to the PE's virtual clock (for workloads that
    /// model rather than burn CPU).
    pub fn charge_ns(&self, ns: u64) {
        flows_converse::charge_ns(ns);
    }

    /// Allocate from this rank's migratable heap (the paper's
    /// thread-context `malloc` override).
    pub fn malloc(&self, size: usize) -> Option<*mut u8> {
        flows_core::iso_malloc(size)
    }

    /// Free a pointer from [`Ampi::malloc`].
    pub fn free(&self, ptr: *mut u8) -> bool {
        flows_core::iso_free(ptr)
    }

    pub(crate) fn finish(&self) {
        crate::world::note_finished(self.rank as u64);
    }
}
