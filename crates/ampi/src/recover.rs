//! Online recovery: in-memory buddy checkpoints and in-place healing.
//!
//! Instead of tearing the world down after a crash (the offline
//! checkpoint-restart loop in `ft.rs`), online mode keeps the surviving
//! PEs' schedulers alive and heals around the failure:
//!
//! * **Buddy replication.** Every checkpoint generation a PE deposits its
//!   local rank images on an in-memory *shelf* and ships them — framed
//!   with the checkpoint magic + FNV-1a checksum (`flows_core::
//!   frame_payload`) — to its next `k` live ring successors. A generation
//!   is *committed* (optimistically) once every owner has all its buddy
//!   acks and the commit coordinator has seen deposits covering every
//!   rank.
//! * **Failure detection.** The converse layer's phi-accrual detector
//!   confirms a silent PE dead, fences it, and invokes the
//!   death-confirmed upcall on the confirming PE — the *recovery leader*.
//! * **Recovery protocol.** The leader allocates a fresh machine-wide
//!   *recovery epoch* and drives START → INVENTORY → PLAN → PLAN_DONE →
//!   RESUME. On START every survivor rolls back: it discards all rank
//!   threads, purges pending reductions and dead locations, adopts the
//!   epoch (all epoch-stamped traffic from before the rollback is dropped
//!   on sight from here on) and reports its checksum-valid shelf holdings.
//!   The leader picks the newest generation with full rank coverage —
//!   falling back to older generations when copies are missing or
//!   corrupt, and to a from-scratch restart when none survives — and
//!   broadcasts a holder-constrained respawn assignment. Survivors unpack
//!   their assigned ranks through the normal migration path (suspended:
//!   admission stays paused), re-replicate the adopted images to new
//!   buddies, and report done. On RESUME every rank is awakened and the
//!   machine quiesces normally — no scheduler was ever torn down.
//!
//! A crash *during* recovery confirms on some survivor, which starts a
//! round with a larger epoch covering every unhealed death; the stale
//! round's messages are dropped everywhere and its partial state is
//! re-rolled-back by the new START.

use crate::proto::{ctl, CtlMsg, RankMove, RepHead, RepRec};
use crate::world::{obj_of, pe_of_rank, AmpiState, RankBox, WorldMeta};
use flows_converse::{HandlerId, MachineBuilder, Message, Pe, RecoveryPhase};
use flows_core::{frame_payload, unframe_payload, PackedThread, ThreadId, ThreadState};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

static CTL_HANDLER: OnceLock<HandlerId> = OnceLock::new();
static REP_HANDLER: OnceLock<HandlerId> = OnceLock::new();

/// Marks a shelf holding as *owned* (the rank lived on the holder at
/// deposit time) in inventory pairs.
pub(crate) const OWN_BIT: u64 = 1 << 63;

/// Fixed key whose live mapping picks the commit coordinator.
const CTL_KEY: u64 = 0;

/// One shelved checkpoint image: the framed (checksummed) `RankMove`
/// bytes plus the rank's measured load at pack time.
struct Replica {
    frame: Vec<u8>,
    load_ns: u64,
    /// The rank lived on this PE when the image was taken (or was adopted
    /// here by a recovery plan) — owners respawn their ranks in place.
    own: bool,
}

/// Leader-side state of one recovery round.
struct LeaderState {
    epoch: u64,
    dead_mask: u64,
    live_mask: u64,
    inventories: BTreeMap<usize, Vec<(u64, u64)>>,
    plan_done: u64,
    genp1: u64,
}

#[derive(Default)]
pub(crate) struct RecoverState {
    /// generation → rank → replica (own deposits and buddy copies).
    shelf: BTreeMap<u64, HashMap<u64, Replica>>,
    /// Steady-state replication: generation → (acks outstanding, own rank
    /// count to report in the commit vote).
    await_acks: HashMap<u64, (usize, u64)>,
    /// Recovery re-replication acks outstanding (purpose-1).
    rec_acks: usize,
    /// Commit coordinator: generation → (voter mask, rank-count sum).
    votes: HashMap<u64, (u64, u64)>,
    /// Latest globally-committed generation + 1 (0 = none yet).
    committed_p1: u64,
    /// Largest recovery epoch seen; traffic stamped older is stale.
    epoch: u64,
    /// Idempotency guards: last epoch each phase ran at.
    rolled_back: u64,
    planned: u64,
    resumed: u64,
    /// Dead PEs whose recovery has completed (they stay fenced forever).
    healed: u64,
    /// Ranks to spawn from scratch at RESUME (no generation survived).
    scratch: Vec<u64>,
    /// Leader this PE's PLAN_DONE goes to.
    plan_leader: usize,
    leader: Option<LeaderState>,
    /// Replica frames rejected by checksum validation.
    invalid_replicas: u64,
}

/// Register the recovery control + replication handlers. Must occupy the
/// same handler slots in every machine of the process (same pattern as
/// the AMPI world handlers).
pub(crate) fn register(mb: &mut MachineBuilder) {
    let ctl = mb.handler(on_ctl);
    let stored = *CTL_HANDLER.get_or_init(|| ctl);
    assert_eq!(stored, ctl, "AMPI must occupy the same handler slot in every machine");
    let rep = mb.handler(on_replica);
    let stored = *REP_HANDLER.get_or_init(|| rep);
    assert_eq!(stored, rep, "AMPI must occupy the same handler slot in every machine");
}

fn ctl_handler() -> HandlerId {
    *CTL_HANDLER.get().expect("recovery handlers registered")
}

fn rep_handler() -> HandlerId {
    *REP_HANDLER.get().expect("recovery handlers registered")
}

/// This PE's `k` buddies: the next `k` ring successors not in `dead_mask`.
pub(crate) fn buddies_of(me: usize, n: usize, k: usize, dead_mask: u64) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..n {
        let c = (me + i) % n;
        if dead_mask & (1 << c) == 0 {
            out.push(c);
            if out.len() == k {
                break;
            }
        }
    }
    out
}

/// Pick the rollback generation and respawn assignment from the
/// survivors' inventories (pairs of `(gen, rank | OWN_BIT)`): the newest
/// generation where every rank has at least one valid holder, each rank
/// assigned to its owner when the owner survives, otherwise to the
/// least-loaded holder. Pure — property-tested below. `None` means no
/// complete generation survives (restart from scratch).
pub(crate) fn best_gen(
    size: usize,
    inventories: &BTreeMap<usize, Vec<(u64, u64)>>,
) -> Option<(u64, Vec<(u64, u64)>)> {
    let mut gens: BTreeMap<u64, HashMap<u64, Vec<(bool, usize)>>> = BTreeMap::new();
    for (&pe, holdings) in inventories {
        for &(gen, coded) in holdings {
            let rank = coded & !OWN_BIT;
            let own = coded & OWN_BIT != 0;
            gens.entry(gen).or_default().entry(rank).or_default().push((own, pe));
        }
    }
    for (&gen, ranks) in gens.iter().rev() {
        if !(0..size as u64).all(|r| ranks.contains_key(&r)) {
            continue;
        }
        let mut assigned: HashMap<usize, usize> = HashMap::new();
        let mut assign = Vec::with_capacity(size);
        let mut orphans: Vec<u64> = Vec::new();
        for r in 0..size as u64 {
            let mut holders = ranks[&r].clone();
            holders.sort_unstable();
            // Owner-held ranks respawn in place (no image moves, survivor
            // placement is undisturbed).
            if let Some(&(_, pe)) = holders.iter().find(|&&(own, _)| own) {
                assign.push((r, pe as u64));
                *assigned.entry(pe).or_default() += 1;
            } else {
                orphans.push(r);
            }
        }
        // Orphans (the dead PE's ranks) go to the least-loaded holder;
        // ties break on PE id so every survivor computes the same plan.
        for r in orphans {
            let mut holders: Vec<usize> = ranks[&r].iter().map(|&(_, pe)| pe).collect();
            holders.sort_unstable();
            holders.dedup();
            let pe = *holders
                .iter()
                .min_by_key(|&&pe| (assigned.get(&pe).copied().unwrap_or(0), pe))
                .expect("coverage checked");
            assign.push((r, pe as u64));
            *assigned.entry(pe).or_default() += 1;
        }
        assign.sort_unstable();
        return Some((gen, assign));
    }
    None
}

// ---------------------------------------------------------------------
// Healthy path: shelf deposits, buddy replication, commit votes.
// ---------------------------------------------------------------------

/// Deposit one local rank's framed image for generation `gen` (called
/// from the checkpoint snapshot path in online mode).
pub(crate) fn deposit_checkpoint(pe: &Pe, rank: u64, gen: u64, move_bytes: Vec<u8>, load_ns: u64) {
    let frame = frame_payload(&move_bytes);
    pe.ext::<RecoverState, _>(|rs| {
        rs.shelf.entry(gen).or_default().insert(rank, Replica { frame, load_ns, own: true });
    });
}

/// All local ranks have deposited generation `gen`: ship the images to
/// this PE's buddies; once every buddy acks, vote for the commit.
pub(crate) fn finalize_generation(pe: &Pe, meta: &Arc<WorldMeta>, gen: u64) {
    let k = pe.fault_plan().map(|p| p.replication).unwrap_or(1);
    let buddies = buddies_of(pe.id(), pe.num_pes(), k, pe.confirmed_dead_mask());
    let (epoch, own): (u64, Vec<(u64, u64, Vec<u8>)>) = pe.ext::<RecoverState, _>(|rs| {
        let mut own: Vec<(u64, u64, Vec<u8>)> = rs
            .shelf
            .get(&gen)
            .map(|g| {
                g.iter()
                    .filter(|(_, rep)| rep.own)
                    .map(|(&r, rep)| (r, rep.load_ns, rep.frame.clone()))
                    .collect()
            })
            .unwrap_or_default();
        own.sort_unstable_by_key(|e| e.0);
        if !buddies.is_empty() && !own.is_empty() {
            rs.await_acks.insert(gen, (buddies.len(), own.len() as u64));
        }
        (rs.epoch, own)
    });
    if buddies.is_empty() || own.is_empty() {
        cast_vote(pe, gen, epoch, own.len() as u64);
        return;
    }
    let wire = build_rep_batch(pe, meta.world, gen, epoch, 0, &own);
    for b in &buddies {
        pe.send(*b, rep_handler(), wire.clone());
    }
}

fn build_rep_batch(
    pe: &Pe,
    world: u64,
    gen: u64,
    epoch: u64,
    purpose: u8,
    images: &[(u64, u64, Vec<u8>)],
) -> flows_converse::Payload {
    let mut head = RepHead {
        world,
        owner: pe.id() as u64,
        gen,
        epoch,
        purpose,
        count: images.len() as u64,
    };
    let cap: usize = images.iter().map(|(_, _, f)| f.len() + 64).sum();
    let mut buf = pe.payload_buf_with_capacity(64 + cap);
    flows_pup::pack_into(&mut head, buf.vec_mut());
    for (r, load_ns, frame) in images {
        let mut rec = RepRec { rank: *r, load_ns: *load_ns, len: frame.len() as u64 };
        flows_pup::pack_into(&mut rec, buf.vec_mut());
        buf.extend_from_slice(frame);
    }
    buf.freeze()
}

/// A buddy-replication batch arrives: validate every frame's checksum
/// before shelving it (corruption is detected *here*, not at recovery
/// time), then ack the owner.
pub(crate) fn on_replica(pe: &Pe, msg: Message) {
    let (h, mut off): (RepHead, usize) =
        flows_pup::from_bytes_prefix(&msg.data).expect("replica head");
    let stale = pe.ext::<RecoverState, _>(|rs| h.epoch < rs.epoch);
    if stale {
        return;
    }
    for _ in 0..h.count {
        let (rec, used): (RepRec, usize) =
            flows_pup::from_bytes_prefix(&msg.data[off..]).expect("replica record");
        off += used;
        let frame = &msg.data[off..off + rec.len as usize];
        off += rec.len as usize;
        let valid = unframe_payload(frame).is_ok();
        pe.ext::<RecoverState, _>(|rs| {
            if valid {
                rs.shelf.entry(h.gen).or_default().insert(
                    rec.rank,
                    Replica { frame: frame.to_vec(), load_ns: rec.load_ns, own: false },
                );
            } else {
                rs.invalid_replicas += 1;
            }
        });
    }
    debug_assert_eq!(off, msg.data.len(), "trailing bytes in replica batch");
    let mut ack = CtlMsg {
        kind: ctl::ACK,
        epoch: h.epoch,
        a: h.gen,
        b: h.purpose as u64,
        pairs: Vec::new(),
    };
    pe.send(h.owner as usize, ctl_handler(), pe.pack_payload(&mut ack));
}

fn cast_vote(pe: &Pe, gen: u64, epoch: u64, count: u64) {
    let coord = flows_comm::live_root_of(pe, CTL_KEY);
    if coord == pe.id() {
        on_vote(pe, pe.id(), gen, count);
    } else {
        let mut m = CtlMsg { kind: ctl::VOTE, epoch, a: gen, b: count, pairs: Vec::new() };
        pe.send(coord, ctl_handler(), pe.pack_payload(&mut m));
    }
}

/// Commit coordinator: a generation commits once the voters' rank counts
/// cover the whole world (rank ownership is disjoint across PEs at the
/// cut, so the sum reaching `size` means every image is replicated).
fn on_vote(pe: &Pe, from: usize, gen: u64, count: u64) {
    let size = pe
        .ext::<AmpiState, _>(|st| st.meta.as_ref().map(|m| m.size))
        .expect("world meta") as u64;
    let commit = pe.ext::<RecoverState, _>(|rs| {
        let v = rs.votes.entry(gen).or_insert((0, 0));
        if v.0 & (1 << from) != 0 {
            return None;
        }
        v.0 |= 1 << from;
        v.1 += count;
        if v.1 >= size {
            rs.votes.remove(&gen);
            Some(rs.epoch)
        } else {
            None
        }
    });
    let Some(epoch) = commit else { return };
    let dead = pe.confirmed_dead_mask();
    let mut m = CtlMsg { kind: ctl::COMMIT, epoch, a: gen, b: 0, pairs: Vec::new() };
    let wire = pe.pack_payload(&mut m);
    for d in 0..pe.num_pes() {
        if d != pe.id() && dead & (1 << d) == 0 {
            pe.send(d, ctl_handler(), wire.clone());
        }
    }
    on_commit(pe, gen);
}

/// A commit marker: advance the committed watermark and prune the shelf,
/// keeping the committed generation plus one older as the corruption
/// fallback. The marker is an optimization hint only — recovery picks its
/// rollback target from inventory-verified availability, never from this.
fn on_commit(pe: &Pe, gen: u64) {
    pe.ext::<RecoverState, _>(|rs| {
        if gen + 1 > rs.committed_p1 {
            rs.committed_p1 = gen + 1;
            rs.shelf.retain(|&g, _| g + 1 >= gen);
            rs.await_acks.retain(|&g, _| g > gen);
            rs.votes.retain(|&g, _| g > gen);
        }
    });
}

// ---------------------------------------------------------------------
// Recovery rounds.
// ---------------------------------------------------------------------

/// Death-confirmed upcall (runs on the PE whose phi detector won the
/// confirmation): become the recovery leader and start a round covering
/// every confirmed-but-unhealed death.
pub(crate) fn on_death_confirmed(pe: &Pe, _dead: usize) {
    start_round(pe);
}

fn start_round(pe: &Pe) {
    let healed = pe.ext::<RecoverState, _>(|rs| rs.healed);
    let all = (1u64 << pe.num_pes()) - 1;
    let confirmed = pe.confirmed_dead_mask() & all;
    let dead_mask = confirmed & !healed;
    if dead_mask == 0 {
        return;
    }
    let live_mask = all & !confirmed;
    let epoch = pe.alloc_recovery_epoch();
    pe.ext::<RecoverState, _>(|rs| {
        rs.leader = Some(LeaderState {
            epoch,
            dead_mask,
            live_mask,
            inventories: BTreeMap::new(),
            plan_done: 0,
            genp1: 0,
        });
    });
    let mut m = CtlMsg { kind: ctl::START, epoch, a: dead_mask, b: 0, pairs: Vec::new() };
    let wire = pe.pack_payload(&mut m);
    for d in 0..pe.num_pes() {
        if d != pe.id() && live_mask & (1 << d) != 0 {
            pe.send(d, ctl_handler(), wire.clone());
        }
    }
    handle_start(pe, pe.id(), epoch, dead_mask);
}

/// Roll this PE back: adopt the round's epoch (everything stamped older
/// is dropped from here on), write off the dead, discard every rank
/// thread and its routed registration, purge half-gathered reductions,
/// and report the checksum-valid shelf inventory to the leader.
fn handle_start(pe: &Pe, leader: usize, epoch: u64, dead_mask: u64) {
    let stale = pe.ext::<RecoverState, _>(|rs| {
        if epoch <= rs.rolled_back || epoch < rs.epoch {
            return true;
        }
        rs.epoch = epoch;
        rs.rolled_back = epoch;
        // A smaller-epoch round is superseded — including one this PE led.
        if rs.leader.as_ref().is_some_and(|l| l.epoch < epoch) {
            rs.leader = None;
        }
        rs.scratch.clear();
        rs.await_acks.clear();
        rs.votes.clear();
        rs.rec_acks = 0;
        false
    });
    if stale {
        return;
    }
    flows_comm::set_comm_epoch(pe, epoch);
    for d in 0..pe.num_pes() {
        if dead_mask & (1 << d) != 0 {
            pe.reap_dead(d);
            flows_comm::purge_dead_locations(pe, d);
        }
    }
    // Half-gathered reductions embed pre-rollback data (e.g. LB reports
    // naming dead placements); every participant re-contributes after the
    // rollback, so drop the streams wholesale.
    flows_comm::purge_pending(pe);
    // Every running rank stack is post-cut state now; the shelf images
    // are authoritative. Handlers run on the PE pump, so no rank thread
    // is current here.
    let (meta, boxes) = pe.ext::<AmpiState, _>(|st| {
        let meta = st.meta.clone().expect("world meta");
        let mut boxes: Vec<(u64, ThreadId)> =
            st.ranks.iter().map(|(&r, b)| (r, b.tid)).collect();
        boxes.sort_unstable_by_key(|e| e.0);
        st.ranks.clear();
        (meta, boxes)
    });
    for (_, tid) in &boxes {
        pe.sched().discard_thread(*tid).expect("discard rank at rollback");
    }
    for r in 0..meta.size as u64 {
        flows_comm::evict_obj(pe, obj_of(meta.world, r));
    }
    let lowest_dead = lowest_bit(dead_mask);
    let (cp1, pairs) = build_inventory(pe);
    flows_trace::emit(flows_trace::EventKind::FtRollback, lowest_dead as u64, cp1, epoch);
    pe.note_recovery(RecoveryPhase::Rollback, lowest_dead, cp1);
    if leader == pe.id() {
        record_inventory(pe, pe.id(), pairs);
    } else {
        let mut m = CtlMsg { kind: ctl::INVENTORY, epoch, a: pe.id() as u64, b: cp1, pairs };
        pe.send(leader, ctl_handler(), pe.pack_payload(&mut m));
    }
}

fn lowest_bit(mask: u64) -> usize {
    mask.trailing_zeros() as usize % 64
}

/// Walk the shelf, dropping any holding whose frame fails its checksum
/// (the corruption-fallback point: a bad buddy copy simply vanishes from
/// the inventory, and `best_gen` falls back to another holder or an older
/// generation). Returns `(committed+1, (gen, rank|OWN_BIT) pairs)`.
fn build_inventory(pe: &Pe) -> (u64, Vec<(u64, u64)>) {
    pe.ext::<RecoverState, _>(|rs| {
        let mut pairs = Vec::new();
        let mut dropped = 0u64;
        for (&gen, ranks) in rs.shelf.iter_mut() {
            ranks.retain(|&r, rep| {
                if unframe_payload(&rep.frame).is_ok() {
                    pairs.push((gen, r | if rep.own { OWN_BIT } else { 0 }));
                    true
                } else {
                    dropped += 1;
                    false
                }
            });
        }
        rs.invalid_replicas += dropped;
        // Shelf buckets are HashMaps; sort so the inventory wire bytes
        // (and everything downstream of them) are run-to-run stable.
        pairs.sort_unstable();
        (rs.committed_p1, pairs)
    })
}

/// Leader: collect inventories; once every live PE reported, compute the
/// rollback generation + respawn assignment and broadcast the plan.
fn record_inventory(pe: &Pe, from: usize, pairs: Vec<(u64, u64)>) {
    let ready = pe.ext::<RecoverState, _>(|rs| {
        let l = rs.leader.as_mut()?;
        l.inventories.insert(from, pairs);
        if l.inventories.len() == l.live_mask.count_ones() as usize {
            Some((l.epoch, l.dead_mask, l.live_mask, std::mem::take(&mut l.inventories)))
        } else {
            None
        }
    });
    let Some((epoch, dead_mask, live_mask, inventories)) = ready else { return };
    let size = pe
        .ext::<AmpiState, _>(|st| st.meta.as_ref().map(|m| m.size))
        .expect("world meta");
    let (genp1, assign) = match best_gen(size, &inventories) {
        Some((g, assign)) => (g + 1, assign),
        None => {
            // No complete generation survives anywhere: restart every
            // rank from scratch, block-mapped over the live PEs.
            let live: Vec<usize> =
                (0..pe.num_pes()).filter(|&p| live_mask & (1 << p) != 0).collect();
            let assign = (0..size as u64)
                .map(|r| (r, live[pe_of_rank(r as usize, size, live.len())] as u64))
                .collect();
            (0, assign)
        }
    };
    pe.ext::<RecoverState, _>(|rs| {
        if let Some(l) = rs.leader.as_mut() {
            l.genp1 = genp1;
        }
    });
    let mut m = CtlMsg { kind: ctl::PLAN, epoch, a: genp1, b: dead_mask, pairs: assign.clone() };
    let wire = pe.pack_payload(&mut m);
    for d in 0..pe.num_pes() {
        if d != pe.id() && live_mask & (1 << d) != 0 {
            pe.send(d, ctl_handler(), wire.clone());
        }
    }
    apply_plan(pe, pe.id(), epoch, genp1, dead_mask, &assign);
}

/// Apply the leader's plan: unpack my assigned ranks from the shelf
/// through the normal migration path — but *suspended* (admission stays
/// paused until RESUME) — and re-replicate the adopted images to new
/// buddies. `genp1 == 0` means scratch restart (spawning is deferred to
/// RESUME, since fresh threads are runnable immediately).
fn apply_plan(pe: &Pe, leader: usize, epoch: u64, genp1: u64, dead_mask: u64, assign: &[(u64, u64)]) {
    let proceed = pe.ext::<RecoverState, _>(|rs| {
        if epoch < rs.epoch || rs.planned >= epoch {
            return false;
        }
        rs.planned = epoch;
        rs.plan_leader = leader;
        if genp1 > 0 {
            rs.committed_p1 = genp1;
            // Generations newer than the rollback target are post-cut
            // state: no survivor may ever fall back to them.
            rs.shelf.retain(|&g, _| g < genp1);
        }
        true
    });
    if !proceed {
        return;
    }
    let me = pe.id() as u64;
    let mine: Vec<u64> = assign.iter().filter(|&&(_, p)| p == me).map(|&(r, _)| r).collect();
    if genp1 == 0 {
        pe.ext::<RecoverState, _>(|rs| rs.scratch = mine);
        plan_done(pe, epoch, leader);
        return;
    }
    let g = genp1 - 1;
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("world meta");
    let lowest_dead = lowest_bit(dead_mask);
    let mut adopted: Vec<(u64, u64, Vec<u8>)> = Vec::new();
    for &rank in &mine {
        let (frame, load_ns) = pe.ext::<RecoverState, _>(|rs| {
            let rep = rs
                .shelf
                .get(&g)
                .and_then(|gens| gens.get(&rank))
                .expect("assigned rank must be on the assignee's shelf");
            (rep.frame.clone(), rep.load_ns)
        });
        let bytes = unframe_payload(&frame).expect("inventory-validated frame");
        let mv: RankMove = flows_pup::from_bytes(bytes).expect("replica wire");
        let packed = PackedThread::from_bytes(&mv.thread).expect("replica thread");
        let tid = pe.sched().unpack_thread(packed).expect("respawn rank");
        let mut bx = RankBox::new(tid);
        bx.mailbox = mv.mailbox.into();
        bx.next_seq = mv.next_seq.into_iter().collect();
        bx.send_seq = mv.send_seq.into_iter().collect();
        bx.stashed = mv
            .stashed
            .into_iter()
            .map(|(src, seq, tag, data)| ((src, seq), (tag, data)))
            .collect();
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.insert(rank, bx);
        });
        flows_comm::migrate_obj_in(pe, obj_of(meta.world, rank));
        pe.sched().reset_load_tid(tid);
        flows_trace::emit(flows_trace::EventKind::FtRespawn, rank, lowest_dead as u64, g);
        adopted.push((rank, load_ns, frame));
    }
    // Ownership moves with the assignment: future inventories must report
    // the adopter as the in-place respawn site.
    pe.ext::<RecoverState, _>(|rs| {
        if let Some(gens) = rs.shelf.get_mut(&g) {
            for (r, rep) in gens.iter_mut() {
                rep.own = mine.contains(r);
            }
        }
    });
    if !mine.is_empty() {
        pe.note_recovery(RecoveryPhase::Respawn, lowest_dead, g);
    }
    let k = pe.fault_plan().map(|p| p.replication).unwrap_or(1);
    let buddies = buddies_of(pe.id(), pe.num_pes(), k, pe.confirmed_dead_mask() | dead_mask);
    if adopted.is_empty() || buddies.is_empty() {
        plan_done(pe, epoch, leader);
        return;
    }
    pe.ext::<RecoverState, _>(|rs| rs.rec_acks = buddies.len());
    let wire = build_rep_batch(pe, meta.world, g, epoch, 1, &adopted);
    for b in &buddies {
        pe.send(*b, rep_handler(), wire.clone());
    }
}

fn plan_done(pe: &Pe, epoch: u64, leader: usize) {
    if leader == pe.id() {
        record_plan_done(pe, pe.id());
    } else {
        let mut m = CtlMsg { kind: ctl::PLAN_DONE, epoch, a: pe.id() as u64, b: 0, pairs: Vec::new() };
        pe.send(leader, ctl_handler(), pe.pack_payload(&mut m));
    }
}

/// Leader: once every live PE is respawned and re-replicated, broadcast
/// RESUME, resolve the deaths, and — if another failure was confirmed
/// while this round ran — immediately drive the next round.
fn record_plan_done(pe: &Pe, from: usize) {
    let ready = pe.ext::<RecoverState, _>(|rs| {
        let l = rs.leader.as_mut()?;
        l.plan_done |= 1 << from;
        if l.plan_done & l.live_mask == l.live_mask {
            Some((l.epoch, l.genp1, l.dead_mask, l.live_mask))
        } else {
            None
        }
    });
    let Some((epoch, genp1, dead_mask, live_mask)) = ready else { return };
    let mut m = CtlMsg { kind: ctl::RESUME, epoch, a: genp1, b: dead_mask, pairs: Vec::new() };
    let wire = pe.pack_payload(&mut m);
    for d in 0..pe.num_pes() {
        if d != pe.id() && live_mask & (1 << d) != 0 {
            pe.send(d, ctl_handler(), wire.clone());
        }
    }
    apply_resume(pe, epoch, genp1, dead_mask);
    for dd in 0..pe.num_pes() {
        if dead_mask & (1 << dd) != 0 {
            pe.mark_recovery_resolved(dd, epoch);
        }
    }
    let healed = pe.ext::<RecoverState, _>(|rs| rs.healed);
    let all = (1u64 << pe.num_pes()) - 1;
    if pe.confirmed_dead_mask() & all & !healed != 0 {
        start_round(pe);
    }
}

/// Un-pause admission: spawn any scratch ranks, then wake every
/// respawned rank inside the `checkpoint()` it was packed in.
fn apply_resume(pe: &Pe, epoch: u64, _genp1: u64, dead_mask: u64) {
    let work = pe.ext::<RecoverState, _>(|rs| {
        if epoch < rs.epoch || rs.resumed >= epoch {
            return None;
        }
        rs.resumed = epoch;
        rs.healed |= dead_mask;
        if rs.leader.as_ref().is_some_and(|l| l.epoch == epoch) {
            rs.leader = None;
        }
        Some(std::mem::take(&mut rs.scratch))
    });
    let Some(mut scratch) = work else { return };
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("world meta");
    scratch.sort_unstable();
    for rank in scratch {
        crate::world::spawn_rank(pe, &meta, rank);
    }
    // Awaken in rank order: HashMap iteration order would leak into the
    // scheduler queue and jitter post-recovery event timing run-to-run.
    let mut tids: Vec<(u64, ThreadId)> =
        pe.ext::<AmpiState, _>(|st| st.ranks.iter().map(|(&r, b)| (r, b.tid)).collect());
    tids.sort_unstable_by_key(|e| e.0);
    for (_, tid) in tids {
        if pe.sched().state(tid) == Some(ThreadState::Suspended) {
            pe.sched().awaken_tid(tid).expect("awaken respawned rank");
        }
    }
}

/// Recovery control-plane dispatcher (see [`ctl`] for the kinds).
// flows-wire: handles ampi-ctl
pub(crate) fn on_ctl(pe: &Pe, msg: Message) {
    let m: CtlMsg = flows_pup::from_bytes(&msg.data).expect("ctl wire");
    if m.kind != ctl::START {
        // START carries the *new* epoch; everything else from an older
        // epoch is pre-rollback traffic.
        let stale = pe.ext::<RecoverState, _>(|rs| m.epoch < rs.epoch);
        if stale {
            return;
        }
    }
    match m.kind {
        ctl::COMMIT => on_commit(pe, m.a),
        ctl::ACK => on_ack(pe, m.a, m.b),
        ctl::START => handle_start(pe, msg.src_pe, m.epoch, m.a),
        ctl::INVENTORY => record_inventory(pe, m.a as usize, m.pairs),
        ctl::PLAN => apply_plan(pe, msg.src_pe, m.epoch, m.a, m.b, &m.pairs),
        ctl::PLAN_DONE => record_plan_done(pe, m.a as usize),
        ctl::RESUME => apply_resume(pe, m.epoch, m.a, m.b),
        ctl::VOTE => on_vote(pe, msg.src_pe, m.a, m.b),
        k => panic!("bad recovery control kind {k}"),
    }
}

fn on_ack(pe: &Pe, gen: u64, purpose: u64) {
    if purpose == 0 {
        let vote = pe.ext::<RecoverState, _>(|rs| match rs.await_acks.get_mut(&gen) {
            Some(e) => {
                e.0 -= 1;
                if e.0 == 0 {
                    let n = e.1;
                    rs.await_acks.remove(&gen);
                    Some((rs.epoch, n))
                } else {
                    None
                }
            }
            None => None,
        });
        if let Some((epoch, n)) = vote {
            cast_vote(pe, gen, epoch, n);
        }
    } else {
        let done = pe.ext::<RecoverState, _>(|rs| {
            if rs.rec_acks > 0 {
                rs.rec_acks -= 1;
                if rs.rec_acks == 0 {
                    Some((rs.epoch, rs.plan_leader))
                } else {
                    None
                }
            } else {
                None
            }
        });
        if let Some((epoch, leader)) = done {
            plan_done(pe, epoch, leader);
        }
    }
}

/// Buddy-replica frames rejected by checksum validation on this PE.
#[allow(dead_code)]
pub(crate) fn invalid_replicas(pe: &Pe) -> u64 {
    pe.ext::<RecoverState, _>(|rs| rs.invalid_replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(entries: &[(usize, &[(u64, u64)])]) -> BTreeMap<usize, Vec<(u64, u64)>> {
        entries.iter().map(|&(pe, hs)| (pe, hs.to_vec())).collect()
    }

    #[test]
    fn buddies_skip_the_dead_and_wrap() {
        assert_eq!(buddies_of(2, 4, 1, 0), vec![3]);
        assert_eq!(buddies_of(3, 4, 2, 0), vec![0, 1]);
        // PE 3 dead: 2's first buddy wraps to 0.
        assert_eq!(buddies_of(2, 4, 1, 1 << 3), vec![0]);
        // Everyone else dead: no buddies.
        assert_eq!(buddies_of(1, 4, 2, 0b1101), vec![]);
    }

    #[test]
    fn best_gen_prefers_newest_complete_generation() {
        let o = OWN_BIT;
        // Gen 3 is missing rank 1 everywhere; gen 2 is complete.
        let inventories = inv(&[
            (0, &[(3, o), (2, o), (2, 1)]),
            (1, &[(2, 1 | o), (2, 0)]),
        ]);
        let (g, assign) = best_gen(2, &inventories).expect("gen 2 complete");
        assert_eq!(g, 2);
        // Owners keep their ranks in place.
        assert_eq!(assign, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn best_gen_spreads_orphans_over_holders() {
        let o = OWN_BIT;
        // PE 2 died; its ranks 2 and 3 have buddy copies on 0 and 1.
        let inventories = inv(&[
            (0, &[(1, o), (1, 2), (1, 3)]),
            (1, &[(1, 1 | o), (1, 2), (1, 3)]),
        ]);
        let (g, assign) = best_gen(4, &inventories).expect("complete");
        assert_eq!(g, 1);
        // One orphan each: the greedy assignment balances.
        let to0 = assign.iter().filter(|&&(_, p)| p == 0).count();
        let to1 = assign.iter().filter(|&&(_, p)| p == 1).count();
        assert_eq!((to0, to1), (2, 2), "{assign:?}");
    }

    #[test]
    fn best_gen_none_when_a_rank_is_lost() {
        let inventories = inv(&[(0, &[(5, OWN_BIT)])]);
        assert!(best_gen(2, &inventories).is_none());
    }

    #[test]
    fn assignment_is_deterministic_across_leaders() {
        let o = OWN_BIT;
        let a = inv(&[
            (0, &[(4, o), (4, 2), (4, 5)]),
            (1, &[(4, 1 | o), (4, 3 | o), (4, 2), (4, 5)]),
            (3, &[(4, 4 | o), (4, 5), (4, 2)]),
        ]);
        let r1 = best_gen(6, &a).unwrap();
        let r2 = best_gen(6, &a).unwrap();
        assert_eq!(r1, r2);
        // Every rank assigned exactly once, only to holders.
        let (_, assign) = r1;
        let mut ranks: Vec<u64> = assign.iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }
}
