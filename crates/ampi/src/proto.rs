//! Wire formats of the AMPI layer.

#![allow(missing_docs)] // field meanings documented on each struct

use flows_comm::Port;
use flows_pup::pup_fields;

/// The comm-layer port AMPI rank traffic travels on.
pub const PORT_AMPI: Port = 1;

/// Payload routed to a rank. `kind` selects the interpretation:
/// * 0 — point-to-point message: `a` = source rank, `b` = tag, `seq` =
///   per-(source, destination) sequence number enforcing MPI's
///   non-overtaking guarantee even when forwarding paths race during
///   migration;
/// * 1 — collective result: `a` = collective sequence number;
/// * 2 — load-balance decision: `a` = LB sequence, `b` = destination PE;
/// * 3 — checkpoint command: `a` = checkpoint sequence; the rank packs
///   itself into the generation store and resumes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RankWire {
    pub kind: u8,
    pub a: u64,
    pub b: u64,
    pub seq: u64,
    pub data: Vec<u8>,
}
pup_fields!(RankWire { kind, a, b, seq, data });

/// One parked point-to-point message.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MailEntry {
    pub src: u64,
    pub tag: u64,
    pub data: Vec<u8>,
}
pup_fields!(MailEntry { src, tag, data });

/// A rank in transit between PEs: the packed thread plus the runtime
/// state that lives outside the thread's own memory — its mailbox and the
/// per-sender in-order delivery state.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RankMove {
    pub world: u64,
    pub rank: u64,
    pub thread: Vec<u8>,
    pub mailbox: Vec<MailEntry>,
    /// Next expected per-sender sequence numbers: (src, seq) pairs.
    pub next_seq: Vec<(u64, u64)>,
    /// Out-of-order messages held back: (src, seq, tag, data).
    pub stashed: Vec<(u64, u64, u64, Vec<u8>)>,
}
pup_fields!(RankMove {
    world,
    rank,
    thread,
    mailbox,
    next_seq,
    stashed
});

/// One rank's measured load, contributed to the LB reduction.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct LoadReport {
    pub rank: u64,
    pub pe: u64,
    pub load_ns: u64,
}
pup_fields!(LoadReport { rank, pe, load_ns });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_round_trip() {
        let mut w = RankWire {
            kind: 2,
            a: 5,
            b: 7,
            seq: 9,
            data: vec![1, 2, 3],
        };
        let bytes = flows_pup::to_bytes(&mut w);
        assert_eq!(flows_pup::from_bytes::<RankWire>(&bytes).unwrap(), w);

        let mut mv = RankMove {
            world: 1,
            rank: 3,
            thread: vec![9; 100],
            mailbox: vec![MailEntry {
                src: 0,
                tag: 42,
                data: vec![7],
            }],
            next_seq: vec![(0, 3)],
            stashed: vec![(0, 5, 42, vec![8])],
        };
        let bytes = flows_pup::to_bytes(&mut mv);
        assert_eq!(flows_pup::from_bytes::<RankMove>(&bytes).unwrap(), mv);
    }
}
