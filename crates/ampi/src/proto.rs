//! Wire formats of the AMPI layer.

#![allow(missing_docs)] // field meanings documented on each struct

use flows_comm::Port;
use flows_converse::{Payload, Pe};
use flows_pup::pup_fields;

/// The comm-layer port AMPI rank traffic travels on.
pub const PORT_AMPI: Port = 1;

/// Header of a payload routed to a rank. The wire format is this header
/// pup'd as a fixed-size prefix followed by the raw message bytes — the
/// receive path parses the prefix and takes the tail as a zero-copy
/// [`Payload`] slice (no unpack copy of the user data). `kind` selects
/// the interpretation:
/// * 0 — point-to-point message: `a` = source rank, `b` = tag, `seq` =
///   per-(source, destination) sequence number enforcing MPI's
///   non-overtaking guarantee even when forwarding paths race during
///   migration;
/// * 1 — collective result: `a` = collective sequence number;
/// * 2 — load-balance decision: `a` = LB sequence, `b` = destination PE;
/// * 3 — checkpoint command: `a` = checkpoint sequence; the rank packs
///   itself into the generation store and resumes.
// flows-image: root
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RankWire {
    pub kind: u8,
    pub a: u64,
    pub b: u64,
    pub seq: u64,
}
pup_fields!(RankWire { kind, a, b, seq });

/// Frame a rank wire: header prefix packed into a pooled buffer, message
/// bytes appended as the raw tail. The inverse of
/// `from_bytes_prefix::<RankWire>` + `payload.slice_from(used)`.
pub(crate) fn frame(pe: &Pe, hdr: &mut RankWire, data: &[u8]) -> Payload {
    // Header is 25 fixed bytes (u8 + 3×u64).
    let mut buf = pe.payload_buf_with_capacity(25 + data.len());
    flows_pup::pack_into(hdr, buf.vec_mut());
    buf.extend_from_slice(data);
    buf.freeze()
}

/// One parked point-to-point message. `data` shares the arrival buffer
/// (an Arc slice), so parking mail copies nothing.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MailEntry {
    pub src: u64,
    pub tag: u64,
    pub data: Payload,
}
pup_fields!(MailEntry { src, tag, data });

/// A rank in transit between PEs: the packed thread plus the runtime
/// state that lives outside the thread's own memory — its mailbox and the
/// per-sender in-order delivery state.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RankMove {
    pub world: u64,
    pub rank: u64,
    /// Sender's recovery epoch. A move that was in flight when a rollback
    /// struck carries *post-checkpoint* thread state and must be dropped,
    /// never unpacked (the shelf copy is the authoritative image).
    pub epoch: u64,
    pub thread: Vec<u8>,
    pub mailbox: Vec<MailEntry>,
    /// Next expected per-sender sequence numbers: (src, seq) pairs.
    pub next_seq: Vec<(u64, u64)>,
    /// Next outgoing per-destination sequence numbers: (dest, seq) pairs.
    /// Sender-side protocol state lives here — NOT in rank-private heap
    /// memory — precisely so a rollback restores it to the checkpoint cut
    /// along with the rest of the image.
    pub send_seq: Vec<(u64, u64)>,
    /// Out-of-order messages held back: (src, seq, tag, data).
    pub stashed: Vec<(u64, u64, u64, Payload)>,
}
pup_fields!(RankMove {
    world,
    rank,
    epoch,
    thread,
    mailbox,
    next_seq,
    send_seq,
    stashed
});

/// The LB plan for one source PE: every rank living there paired with its
/// destination PE. The reduction root sends ONE plan per source PE
/// (instead of one decision wire per rank); the source wakes its stayers
/// and packs its movers locally.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PlanMsg {
    pub world: u64,
    /// LB epoch sequence number.
    pub seq: u64,
    /// Sender's recovery epoch; a plan computed before a rollback embeds
    /// stale placement and is dropped by the receiver.
    pub epoch: u64,
    /// (rank, destination PE), sorted by rank for deterministic handling.
    pub entries: Vec<(u64, u64)>,
}
pup_fields!(PlanMsg {
    world,
    seq,
    epoch,
    entries
});

/// Header of a batched migration message: all the ranks one LB epoch moves
/// between one (source, destination) PE pair ride a single wire message.
/// `count` records follow, each a pup'd [`MoveRec`] immediately followed
/// by that rank's raw `PackedThread` wire bytes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BatchHead {
    pub world: u64,
    /// Sender's recovery epoch (same rationale as [`RankMove::epoch`]).
    pub epoch: u64,
    pub count: u64,
}
pup_fields!(BatchHead { world, epoch, count });

/// Per-rank record inside a batch: the runtime state living outside the
/// thread's own memory (cf. [`RankMove`], which additionally carries the
/// thread image inline for the checkpoint store).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MoveRec {
    pub rank: u64,
    pub mailbox: Vec<MailEntry>,
    pub next_seq: Vec<(u64, u64)>,
    pub send_seq: Vec<(u64, u64)>,
    pub stashed: Vec<(u64, u64, u64, Payload)>,
}
pup_fields!(MoveRec {
    rank,
    mailbox,
    next_seq,
    send_seq,
    stashed
});

/// Header of a buddy-replication batch: all of one owner PE's rank images
/// for one checkpoint generation, shipped to a buddy in a single wire
/// message. `count` records follow, each a pup'd [`RepRec`] immediately
/// followed by that rank's framed checkpoint image
/// (`flows_core::frame_payload` bytes — magic + version + length + FNV-1a
/// checksum around the `RankMove` wire form, validated on receipt and
/// again before any recovery unpack).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RepHead {
    pub world: u64,
    /// PE whose checkpoint this is (the shelf key on the buddy).
    pub owner: u64,
    /// Checkpoint generation being replicated.
    pub gen: u64,
    /// Sender's recovery epoch at replication time.
    pub epoch: u64,
    /// 0 = steady-state replication (after a local checkpoint deposit);
    /// 1 = recovery re-replication (respawned ranks acquiring new buddies).
    pub purpose: u8,
    pub count: u64,
}
pup_fields!(RepHead {
    world,
    owner,
    gen,
    epoch,
    purpose,
    count
});

/// Per-rank record inside a replication batch.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RepRec {
    pub rank: u64,
    /// Accumulated load at pack time, restored into the scheduler on
    /// recovery unpack so LB keeps working across a rollback.
    pub load_ns: u64,
    /// Byte length of the framed image that follows this record.
    pub len: u64,
}
pup_fields!(RepRec { rank, load_ns, len });

/// Message kinds of the recovery control plane ([`CtlMsg::kind`]).
// flows-wire: defines ampi-ctl
pub mod ctl {
    /// Coordinator → all; generation `a` is globally committed.
    pub const COMMIT: u8 = 0;
    /// Buddy → owner; replica batch for generation `a` stored (`b`
    /// echoes the batch's `purpose`).
    pub const ACK: u8 = 1;
    /// Leader → all live; begin recovery round `epoch` for the dead-PE
    /// set `a` (bitmask).
    pub const START: u8 = 2;
    /// Survivor `a` → leader; `b` = its committed generation, `pairs` =
    /// (gen, rank | OWN_BIT) for every checksum-valid shelf holding.
    pub const INVENTORY: u8 = 3;
    /// Leader → all live; roll back to generation `a - 1` (`a == 0`
    /// means scratch restart), dead mask `b`, `pairs` = the full
    /// (rank, assigned PE) respawn map.
    pub const PLAN: u8 = 4;
    /// Survivor `a` → leader; its assigned ranks are respawned and
    /// re-replicated.
    pub const PLAN_DONE: u8 = 5;
    /// Leader → all live; recovery round `epoch` is complete, generation
    /// `a` is the new baseline, dead mask `b` is healed.
    pub const RESUME: u8 = 6;
    /// Owner → coordinator; all of `a`'s deposits and buddy acks for
    /// generation `a` are in (commit barrier input).
    pub const VOTE: u8 = 7;
}

/// Recovery control-plane message. One struct, one converse handler;
/// [`ctl`] names the `kind` values and documents each interpretation
/// (fields unused by a kind are zero).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CtlMsg {
    pub kind: u8,
    /// Recovery epoch this message belongs to (0 for pre-failure commit
    /// traffic); stale epochs are dropped on receipt.
    pub epoch: u64,
    pub a: u64,
    pub b: u64,
    pub pairs: Vec<(u64, u64)>,
}
pup_fields!(CtlMsg {
    kind,
    epoch,
    a,
    b,
    pairs
});

/// One rank's measured load, contributed to the LB reduction.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct LoadReport {
    pub rank: u64,
    pub pe: u64,
    pub load_ns: u64,
}
pup_fields!(LoadReport { rank, pe, load_ns });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_round_trip() {
        let mut w = RankWire {
            kind: 2,
            a: 5,
            b: 7,
            seq: 9,
        };
        let bytes = flows_pup::to_bytes(&mut w);
        assert_eq!(flows_pup::from_bytes::<RankWire>(&bytes).unwrap(), w);
        // The header is a fixed-size prefix: a tail of raw message bytes
        // must survive a prefix parse untouched.
        let mut framed = bytes.clone();
        framed.extend_from_slice(&[1, 2, 3]);
        let (back, used) = flows_pup::from_bytes_prefix::<RankWire>(&framed).unwrap();
        assert_eq!(back, w);
        assert_eq!(&framed[used..], &[1, 2, 3]);

        let mut mv = RankMove {
            world: 1,
            rank: 3,
            epoch: 2,
            thread: vec![9; 100],
            mailbox: vec![MailEntry {
                src: 0,
                tag: 42,
                data: vec![7].into(),
            }],
            next_seq: vec![(0, 3)],
            send_seq: vec![(4, 6)],
            stashed: vec![(0, 5, 42, vec![8].into())],
        };
        let bytes = flows_pup::to_bytes(&mut mv);
        assert_eq!(flows_pup::from_bytes::<RankMove>(&bytes).unwrap(), mv);
    }
}
