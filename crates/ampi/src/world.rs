//! The AMPI world: rank placement, message delivery, collectives and the
//! measurement-based load-balancing epoch.

use crate::proto::{LoadReport, MailEntry, RankMove, RankWire, PORT_AMPI};
use flows_comm::{CommLayer, ObjId, ReduceOp};
use flows_converse::{MachineBuilder, MachineReport, Message, NetModel, Pe};
use flows_core::{SchedConfig, StackFlavor, ThreadId, ThreadState};
use flows_lb::{LbStats, LbStrategy, NullLb, ObjLoad};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static NEXT_WORLD: AtomicU64 = AtomicU64::new(1);
static MOVE_HANDLER: OnceLock<flows_converse::HandlerId> = OnceLock::new();

#[allow(missing_docs)]
/// What a rank's thread is currently blocked on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Wait {
    None,
    Recv {
        src: Option<u64>,
        tag: Option<u64>,
    },
    Coll {
        seq: u64,
    },
    Lb {
        seq: u64,
    },
}

pub(crate) struct RankBox {
    pub tid: ThreadId,
    pub mailbox: VecDeque<MailEntry>,
    pub wait: Wait,
    pub coll_result: Option<Vec<u8>>,
    /// Next expected sequence number per source rank (MPI non-overtaking).
    pub next_seq: HashMap<u64, u64>,
    /// Messages that arrived ahead of their sequence, keyed (src, seq).
    pub stashed: BTreeMap<(u64, u64), (u64, Vec<u8>)>,
}

impl RankBox {
    fn new(tid: ThreadId) -> RankBox {
        RankBox {
            tid,
            mailbox: VecDeque::new(),
            wait: Wait::None,
            coll_result: None,
            next_seq: HashMap::new(),
            stashed: BTreeMap::new(),
        }
    }

    /// Admit a point-to-point message in per-sender order: append it (and
    /// any unblocked stashed successors) to the mailbox, or stash it.
    fn admit(&mut self, src: u64, seq: u64, tag: u64, data: Vec<u8>) {
        let expect = self.next_seq.entry(src).or_insert(0);
        if seq == *expect {
            *expect += 1;
            self.mailbox.push_back(MailEntry { src, tag, data });
            // Drain consecutive stashed messages from this source.
            while let Some((t, d)) = self.stashed.remove(&(src, *self.next_seq.get(&src).expect("just set"))) {
                *self.next_seq.get_mut(&src).expect("just set") += 1;
                self.mailbox.push_back(MailEntry { src, tag: t, data: d });
            }
        } else {
            assert!(seq > *expect, "duplicate point-to-point message");
            self.stashed.insert((src, seq), (tag, data));
        }
    }

    /// Does any mailbox entry match the current Recv wait?
    fn wait_satisfied(&self) -> bool {
        if let Wait::Recv { src, tag } = &self.wait {
            self.mailbox
                .iter()
                .any(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag))
        } else {
            false
        }
    }
}

#[derive(Default)]
pub(crate) struct AmpiState {
    pub meta: Option<Arc<WorldMeta>>,
    pub ranks: HashMap<u64, RankBox>,
    /// Ranks that finished on this PE (diagnostics).
    pub finished: u64,
    /// Migrations executed from this PE.
    pub moves_out: u64,
}

/// World-wide constants every PE knows.
#[allow(missing_docs)]
pub struct WorldMeta {
    pub world: u64,
    pub size: usize,
    pub strategy: Arc<dyn LbStrategy + Send + Sync>,
}

impl std::fmt::Debug for WorldMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldMeta")
            .field("world", &self.world)
            .field("size", &self.size)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

/// The routed object id of rank `r` of world `w`.
pub(crate) fn obj_of(world: u64, rank: u64) -> ObjId {
    ObjId((world << 32) | rank)
}

pub(crate) fn tag_coll(world: u64) -> u64 {
    world << 1
}

pub(crate) fn tag_lb(world: u64) -> u64 {
    (world << 1) | 1
}

/// Block mapping of ranks onto PEs (AMPI's default).
pub fn pe_of_rank(rank: usize, ranks: usize, pes: usize) -> usize {
    rank * pes / ranks
}

/// Options for an AMPI run.
#[derive(Clone)]
pub struct AmpiOptions {
    /// Number of AMPI ranks (virtual processors).
    pub ranks: usize,
    /// Number of PEs (physical processors of the simulated machine).
    pub pes: usize,
    /// The load balancer invoked at `migrate()` points.
    pub strategy: Arc<dyn LbStrategy + Send + Sync>,
    /// Interconnect model.
    pub net: NetModel,
    /// Drive PEs on real OS threads (`false` = deterministic round-robin).
    pub threaded: bool,
    /// Committed stack bytes per rank thread.
    pub stack_len: usize,
    /// Isomalloc slot bytes per rank thread (stack + heap).
    pub slot_len: usize,
}

impl AmpiOptions {
    /// `ranks` ranks over `pes` PEs, defaults elsewhere.
    pub fn new(ranks: usize, pes: usize) -> AmpiOptions {
        AmpiOptions {
            ranks,
            pes,
            strategy: Arc::new(NullLb),
            net: NetModel::default(),
            threaded: false,
            stack_len: 64 * 1024,
            slot_len: 1 << 20,
        }
    }

    /// Use a specific LB strategy.
    pub fn with_strategy(mut self, s: Arc<dyn LbStrategy + Send + Sync>) -> Self {
        self.strategy = s;
        self
    }

    /// Use a specific network model.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Threaded drive mode.
    pub fn threaded(mut self, yes: bool) -> Self {
        self.threaded = yes;
        self
    }
}

/// Run `main` as every rank of a fresh AMPI world. Returns the machine
/// report (virtual times, scheduler stats) for the harnesses.
pub fn run_world(
    opts: AmpiOptions,
    main: impl Fn(&mut crate::Ampi) + Send + Sync + 'static,
) -> MachineReport {
    assert!(opts.ranks > 0 && opts.pes > 0);
    assert!(
        opts.ranks >= opts.pes,
        "AMPI needs at least one rank per PE (got {} ranks on {} PEs)",
        opts.ranks,
        opts.pes
    );
    let world = NEXT_WORLD.fetch_add(1, Ordering::Relaxed);
    let meta = Arc::new(WorldMeta {
        world,
        size: opts.ranks,
        strategy: opts.strategy.clone(),
    });
    let main: Arc<dyn Fn(&mut crate::Ampi) + Send + Sync> = Arc::new(main);

    let mut mb = MachineBuilder::new(opts.pes)
        .net_model(opts.net)
        .iso_layout(opts.slot_len, (opts.ranks / opts.pes + 2) * 2)
        .sched_config(SchedConfig {
            stack_len: opts.stack_len,
            ..SchedConfig::default()
        });
    let _ = CommLayer::register(&mut mb);
    let mv = mb.handler(on_rank_move);
    let stored = *MOVE_HANDLER.get_or_init(|| mv);
    assert_eq!(stored, mv, "AMPI must occupy the same handler slot in every machine");

    let opts2 = opts.clone();
    let init = move |pe: &Pe| {
        init_pe(pe, &meta, &opts2, &main);
    };
    if opts.threaded {
        mb.run(init)
    } else {
        mb.run_deterministic(init)
    }
}

fn init_pe(
    pe: &Pe,
    meta: &Arc<WorldMeta>,
    opts: &AmpiOptions,
    main: &Arc<dyn Fn(&mut crate::Ampi) + Send + Sync>,
) {
    pe.ext::<AmpiState, _>(|st| st.meta = Some(meta.clone()));
    flows_comm::set_delivery(pe, PORT_AMPI, deliver);
    let meta_for_sink = meta.clone();
    flows_comm::set_reduction_sink(pe, move |pe, red| on_reduction(pe, &meta_for_sink, red));

    for rank in 0..opts.ranks {
        if pe_of_rank(rank, opts.ranks, opts.pes) != pe.id() {
            continue;
        }
        let main = main.clone();
        let world = meta.world;
        let size = meta.size;
        let tid = pe
            .sched()
            .spawn(StackFlavor::Isomalloc, move || {
                let mut ampi = crate::Ampi::new(world, rank, size);
                main(&mut ampi);
                ampi.finish();
            })
            .expect("spawn rank thread");
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.insert(rank as u64, RankBox::new(tid));
        });
        flows_comm::register_obj(pe, obj_of(meta.world, rank as u64));
    }
}

/// Routed delivery to a rank living on this PE.
fn deliver(pe: &Pe, obj: ObjId, payload: Vec<u8>) {
    let w: RankWire = flows_pup::from_bytes(&payload).expect("rank wire");
    let rank = obj.0 & 0xFFFF_FFFF;
    match w.kind {
        0 => {
            // Point-to-point: admit in per-sender order, wake a matching
            // waiter.
            let wake = pe.ext::<AmpiState, _>(|st| {
                let b = st.ranks.get_mut(&rank).expect("mail for missing rank");
                b.admit(w.a, w.seq, w.b, w.data);
                if b.wait_satisfied() {
                    b.wait = Wait::None;
                    Some(b.tid)
                } else {
                    None
                }
            });
            if let Some(tid) = wake {
                pe.sched().awaken_tid(tid).expect("awaken recv");
            }
        }
        1 => {
            // Collective result.
            let wake = pe.ext::<AmpiState, _>(|st| {
                let b = st.ranks.get_mut(&rank).expect("result for missing rank");
                b.coll_result = Some(w.data);
                if matches!(b.wait, Wait::Coll { seq } if seq == w.a) {
                    b.wait = Wait::None;
                    Some(b.tid)
                } else {
                    None
                }
            });
            if let Some(tid) = wake {
                pe.sched().awaken_tid(tid).expect("awaken collective");
            }
        }
        2 => on_lb_decision(pe, rank, w.a, w.b as usize),
        k => panic!("bad rank wire kind {k}"),
    }
}

/// Reduction completions: collectives broadcast their result to every
/// rank; the LB reduction runs the strategy and broadcasts decisions.
fn on_reduction(pe: &Pe, meta: &Arc<WorldMeta>, red: flows_comm::Reduction) {
    if red.tag == tag_coll(meta.world) {
        for r in 0..meta.size as u64 {
            let mut w = RankWire {
                kind: 1,
                a: red.seq,
                b: 0,
                seq: 0,
                data: red.data.clone(),
            };
            flows_comm::route(
                pe,
                obj_of(meta.world, r),
                PORT_AMPI,
                flows_pup::to_bytes(&mut w),
            );
        }
    } else if red.tag == tag_lb(meta.world) {
        // Decode the gathered load reports.
        let mut reports = Vec::with_capacity(meta.size);
        let mut rest = &red.data[..];
        while !rest.is_empty() {
            let (rep, used): (LoadReport, usize) =
                flows_pup::from_bytes_prefix(rest).expect("load report");
            reports.push(rep);
            rest = &rest[used..];
        }
        let stats = LbStats {
            num_pes: pe.num_pes(),
            objs: reports
                .iter()
                .map(|r| ObjLoad {
                    id: r.rank,
                    pe: r.pe as usize,
                    load: r.load_ns as f64 * 1e-9,
                    migratable: true,
                })
                .collect(),
            background: Vec::new(),
        };
        if std::env::var_os("FLOWS_LB_DEBUG").is_some() {
            let mut objs = stats.objs.clone();
            objs.sort_by_key(|o| o.id);
            eprintln!("[lb] seq {} loads:", red.seq);
            for o in &objs {
                eprintln!("[lb]   rank {:3} pe {} load {:.4}s", o.id, o.pe, o.load);
            }
        }
        let migs = meta.strategy.decide(&stats);
        if std::env::var_os("FLOWS_LB_DEBUG").is_some() {
            eprintln!("[lb] decisions: {migs:?}");
        }
        let dest_of: HashMap<u64, usize> = migs.iter().map(|m| (m.obj, m.to)).collect();
        for rep in &reports {
            let dest = dest_of.get(&rep.rank).copied().unwrap_or(rep.pe as usize);
            let mut w = RankWire {
                kind: 2,
                a: red.seq,
                b: dest as u64,
                seq: 0,
                data: Vec::new(),
            };
            flows_comm::route(
                pe,
                obj_of(meta.world, rep.rank),
                PORT_AMPI,
                flows_pup::to_bytes(&mut w),
            );
        }
    } else {
        panic!("reduction for unknown tag {}", red.tag);
    }
}

/// A decision arrived for a rank suspended in `migrate()`.
fn on_lb_decision(pe: &Pe, rank: u64, seq: u64, dest: usize) {
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("meta");
    if dest == pe.id() {
        // Staying: wake the rank, roll its load epoch.
        let tid = pe.ext::<AmpiState, _>(|st| {
            let b = st.ranks.get_mut(&rank).expect("decision for missing rank");
            assert!(
                matches!(b.wait, Wait::Lb { seq: s } if s == seq),
                "rank {rank} got an LB decision it was not waiting for"
            );
            b.wait = Wait::None;
            b.tid
        });
        pe.sched().reset_load_tid(tid);
        pe.sched().awaken_tid(tid).expect("awaken stayer");
        return;
    }
    // Moving: pack the thread and its mailbox, ship, forward the location.
    let bx = pe.ext::<AmpiState, _>(|st| {
        st.moves_out += 1;
        st.ranks.remove(&rank).expect("decision for missing rank")
    });
    assert_eq!(
        pe.sched().state(bx.tid),
        Some(ThreadState::Suspended),
        "rank {rank} must be suspended at its migrate() point"
    );
    let packed = pe.sched().pack_thread(bx.tid).expect("pack rank thread");
    flows_comm::migrate_obj_out(pe, obj_of(meta.world, rank), dest);
    let mut mv = RankMove {
        world: meta.world,
        rank,
        thread: packed.to_bytes(),
        mailbox: bx.mailbox.into_iter().collect(),
        next_seq: bx.next_seq.into_iter().collect(),
        stashed: bx
            .stashed
            .into_iter()
            .map(|((src, seq), (tag, data))| (src, seq, tag, data))
            .collect(),
    };
    pe.send(
        dest,
        *MOVE_HANDLER.get().expect("registered"),
        flows_pup::to_bytes(&mut mv),
    );
}

/// A migrated rank arrives.
fn on_rank_move(pe: &Pe, msg: Message) {
    let mv: RankMove = flows_pup::from_bytes(&msg.data).expect("rank move wire");
    let packed = flows_core::PackedThread::from_bytes(&mv.thread).expect("packed thread");
    let tid = pe.sched().unpack_thread(packed).expect("unpack rank thread");
    let mut bx = RankBox::new(tid);
    bx.mailbox = mv.mailbox.into();
    bx.next_seq = mv.next_seq.into_iter().collect();
    bx.stashed = mv
        .stashed
        .into_iter()
        .map(|(src, seq, tag, data)| ((src, seq), (tag, data)))
        .collect();
    pe.ext::<AmpiState, _>(|st| {
        st.ranks.insert(mv.rank, bx);
    });
    flows_comm::migrate_obj_in(pe, obj_of(mv.world, mv.rank));
    pe.sched().reset_load_tid(tid);
    pe.sched().awaken_tid(tid).expect("awaken migrated rank");
}

/// Internal accessors used by the `Ampi` handle (crate-private).
pub(crate) fn with_rank_box<R>(rank: u64, f: impl FnOnce(&mut RankBox) -> R) -> R {
    flows_converse::with_pe(|pe| {
        pe.ext::<AmpiState, _>(|st| {
            f(st.ranks.get_mut(&rank).expect("rank box on current PE"))
        })
    })
}

pub(crate) fn note_finished(rank: u64) {
    flows_converse::with_pe(|pe| {
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.remove(&rank);
            st.finished += 1;
        });
    });
}

pub(crate) fn contribute_now(world: u64, tag: u64, seq: u64, rank: u64, op: ReduceOp, size: usize, data: Vec<u8>) {
    let _ = world;
    flows_converse::with_pe(|pe| {
        flows_comm::contribute(pe, tag, seq, rank, op, size as u64, data)
    });
}
