//! The AMPI world: rank placement, message delivery, collectives and the
//! measurement-based load-balancing epoch.

use crate::proto::{
    frame, BatchHead, LoadReport, MailEntry, MoveRec, PlanMsg, RankMove, RankWire, PORT_AMPI,
};
use flows_comm::{CommLayer, ObjId, ReduceOp};
use flows_converse::{MachineBuilder, MachineReport, Message, NetModel, Payload, Pe};
use flows_core::{SchedConfig, StackFlavor, ThreadId, ThreadState};
use flows_lb::{LbStats, LbStrategy, NullLb, ObjLoad};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static NEXT_WORLD: AtomicU64 = AtomicU64::new(1);
static MOVE_HANDLER: OnceLock<flows_converse::HandlerId> = OnceLock::new();
static PLAN_HANDLER: OnceLock<flows_converse::HandlerId> = OnceLock::new();
static BATCH_HANDLER: OnceLock<flows_converse::HandlerId> = OnceLock::new();

/// Batched-migration wire messages sent by LB epochs (process-global,
/// cumulative).
static LB_BATCH_MSGS: AtomicU64 = AtomicU64::new(0);

/// Cumulative count of batched-migration wire messages this process has
/// sent — diagnostics for tests and benches.
#[doc(hidden)]
pub fn lb_batch_messages() -> u64 {
    LB_BATCH_MSGS.load(Ordering::Relaxed)
}

#[allow(missing_docs)]
/// What a rank's thread is currently blocked on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Wait {
    None,
    Recv {
        src: Option<u64>,
        tag: Option<u64>,
    },
    Coll {
        seq: u64,
    },
    Lb {
        seq: u64,
    },
    Ckpt {
        seq: u64,
    },
}

pub(crate) struct RankBox {
    pub tid: ThreadId,
    pub mailbox: VecDeque<MailEntry>,
    pub wait: Wait,
    pub coll_result: Option<Payload>,
    /// Next expected sequence number per source rank (MPI non-overtaking).
    // flowslint::allow(migration-image-closure): the map itself never
    // crosses a process boundary — pack_rank() drains it into the sorted
    // `RankMove.next_seq` Vec<(u64, u64)> pairs and unpack rebuilds it,
    // so the image carries the counters, not the randomized buckets.
    pub next_seq: HashMap<u64, u64>,
    /// Next outgoing sequence number per destination rank. Lives here —
    /// not inside the rank's [`crate::Ampi`] handle — because the handle's
    /// heap spill (HashMap buckets) would sit on the *process* heap, which
    /// a checkpoint image does not capture: a rollback would then resume a
    /// checkpoint-cut stack against live post-cut counters and every
    /// replayed send would run one sequence ahead of its receiver. In the
    /// box, the counters ride the explicit RankMove pup like `next_seq`.
    // flowslint::allow(migration-image-closure): same contract as
    // `next_seq` — explicitly converted to sorted pairs in RankMove at
    // pack time (the PR 6 fix this rule now enforces).
    pub send_seq: HashMap<u64, u64>,
    /// Messages that arrived ahead of their sequence, keyed (src, seq).
    pub stashed: BTreeMap<(u64, u64), (u64, Payload)>,
}

impl RankBox {
    pub(crate) fn new(tid: ThreadId) -> RankBox {
        RankBox {
            tid,
            mailbox: VecDeque::new(),
            wait: Wait::None,
            coll_result: None,
            next_seq: HashMap::new(),
            send_seq: HashMap::new(),
            stashed: BTreeMap::new(),
        }
    }

    /// Admit a point-to-point message in per-sender order: append it (and
    /// any unblocked stashed successors) to the mailbox, or stash it.
    /// `data` still shares the arrival buffer — parking is copy-free.
    fn admit(&mut self, src: u64, seq: u64, tag: u64, data: Payload) {
        let expect = self.next_seq.entry(src).or_insert(0);
        if seq == *expect {
            *expect += 1;
            self.mailbox.push_back(MailEntry { src, tag, data });
            // Drain consecutive stashed messages from this source.
            while let Some((t, d)) = self.stashed.remove(&(src, *self.next_seq.get(&src).expect("just set"))) {
                *self.next_seq.get_mut(&src).expect("just set") += 1;
                self.mailbox.push_back(MailEntry { src, tag: t, data: d });
            }
        } else if seq > *expect {
            self.stashed.insert((src, seq), (tag, data));
        }
        // seq < expect: a duplicate of a message already admitted (a
        // retransmission raced its ack, or a forwarding path replayed the
        // send). The per-sender sequence makes delivery idempotent — drop
        // it silently. A repeat of a stashed seq overwrites with identical
        // bytes, which is equally harmless.
    }

    /// Does any mailbox entry match the current Recv wait?
    fn wait_satisfied(&self) -> bool {
        if let Wait::Recv { src, tag } = &self.wait {
            self.mailbox
                .iter()
                .any(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag))
        } else {
            false
        }
    }
}

#[derive(Default)]
pub(crate) struct AmpiState {
    pub meta: Option<Arc<WorldMeta>>,
    pub ranks: HashMap<u64, RankBox>,
    /// Ranks that finished on this PE (diagnostics).
    pub finished: u64,
    /// Migrations executed from this PE.
    pub moves_out: u64,
}

/// World-wide constants every PE knows.
#[allow(missing_docs)]
pub struct WorldMeta {
    pub world: u64,
    pub size: usize,
    pub strategy: Arc<dyn LbStrategy + Send + Sync>,
    /// The rank main function — kept here so the online-recovery driver
    /// can respawn ranks from scratch when no checkpoint generation
    /// survives a failure.
    pub main: Arc<dyn Fn(&mut crate::Ampi) + Send + Sync>,
    /// Whether this world spans processes (rank images may be respawned
    /// in a process other than the one that spawned them).
    pub multiproc: bool,
}

impl std::fmt::Debug for WorldMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldMeta")
            .field("world", &self.world)
            .field("size", &self.size)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

/// The routed object id of rank `r`. Comm state is per-machine and each
/// machine hosts exactly one world, so the id deliberately omits the world:
/// homes (`id % num_pes`) and reduction roots must not depend on the
/// process-global world counter, or two identical runs in one process
/// would route differently — breaking replay determinism.
pub(crate) fn obj_of(_world: u64, rank: u64) -> ObjId {
    ObjId(rank)
}

pub(crate) fn tag_coll(_world: u64) -> u64 {
    0
}

pub(crate) fn tag_lb(_world: u64) -> u64 {
    1
}

pub(crate) fn tag_ckpt(_world: u64) -> u64 {
    2
}

/// Block mapping of ranks onto PEs (AMPI's default).
pub fn pe_of_rank(rank: usize, ranks: usize, pes: usize) -> usize {
    rank * pes / ranks
}

/// Options for an AMPI run.
#[derive(Clone)]
pub struct AmpiOptions {
    /// Number of AMPI ranks (virtual processors).
    pub ranks: usize,
    /// Number of PEs (physical processors of the simulated machine).
    pub pes: usize,
    /// The load balancer invoked at `migrate()` points.
    pub strategy: Arc<dyn LbStrategy + Send + Sync>,
    /// Interconnect model.
    pub net: NetModel,
    /// Drive PEs on real OS threads (`false` = deterministic round-robin).
    pub threaded: bool,
    /// Advance virtual clocks by modeled costs only (no measured host
    /// CPU) — required for exactly-reproducible fault-injection runs.
    pub modeled_time: bool,
    /// Committed stack bytes per rank thread.
    pub stack_len: usize,
    /// Isomalloc slot bytes per rank thread (stack + heap).
    pub slot_len: usize,
    /// Transport-fault plan injected into the machine. `run_world` rejects
    /// plans with scripted PE crashes (no recovery driver) — use
    /// [`crate::run_world_ft`] for those.
    pub faults: Option<flows_converse::FaultPlan>,
    /// Record a Projections-style event trace (see
    /// `MachineBuilder::tracing`); the reduction and raw rings ride in the
    /// returned `MachineReport`.
    pub tracing: bool,
    /// Span OS processes: this process drives the world's slice of the
    /// PEs and the rest live in sibling processes reached through the
    /// flows-net transport. Forces the threaded drive mode.
    pub multiproc: Option<Arc<flows_net::World>>,
}

impl AmpiOptions {
    /// `ranks` ranks over `pes` PEs, defaults elsewhere.
    pub fn new(ranks: usize, pes: usize) -> AmpiOptions {
        AmpiOptions {
            ranks,
            pes,
            strategy: Arc::new(NullLb),
            net: NetModel::default(),
            threaded: false,
            modeled_time: false,
            stack_len: 64 * 1024,
            slot_len: 1 << 20,
            faults: None,
            tracing: false,
            multiproc: None,
        }
    }

    /// Use a specific LB strategy.
    pub fn with_strategy(mut self, s: Arc<dyn LbStrategy + Send + Sync>) -> Self {
        self.strategy = s;
        self
    }

    /// Use a specific network model.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Threaded drive mode.
    pub fn threaded(mut self, yes: bool) -> Self {
        self.threaded = yes;
        self
    }

    /// Modeled-cost-only virtual time (reproducible fault runs).
    pub fn modeled_time(mut self, yes: bool) -> Self {
        self.modeled_time = yes;
        self
    }

    /// Inject transport faults (drop/duplicate/delay/reorder) into the
    /// run. Crash-free plans only; see [`crate::run_world_ft`] for crashes.
    pub fn with_faults(mut self, plan: flows_converse::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Record a Projections-style event trace of the run.
    pub fn tracing(mut self, yes: bool) -> Self {
        self.tracing = yes;
        self
    }

    /// Run this world across the processes of a [`flows_net::World`]
    /// (the machine spans `procs × pes_per_proc` PEs; `pes` must equal
    /// that product).
    pub fn multiproc(mut self, world: Arc<flows_net::World>) -> Self {
        self.multiproc = Some(world);
        self
    }
}

/// Run `main` as every rank of a fresh AMPI world. Returns the machine
/// report (virtual times, scheduler stats) for the harnesses.
pub fn run_world(
    opts: AmpiOptions,
    main: impl Fn(&mut crate::Ampi) + Send + Sync + 'static,
) -> MachineReport {
    let world = NEXT_WORLD.fetch_add(1, Ordering::Relaxed);
    let pes = opts.pes;
    let plan = opts.faults.clone();
    if let Some(p) = &plan {
        assert!(
            p.crashes.is_empty(),
            "run_world has no recovery driver — script PE crashes via run_world_ft"
        );
    }
    let main: Arc<dyn Fn(&mut crate::Ampi) + Send + Sync> = Arc::new(main);
    let report = run_attempt(world, &opts, pes, None, plan, None, &main);
    // Applications may call checkpoint() even without a fault plan; drop
    // whatever the store accumulated for this world.
    crate::ft::clear_world(world);
    report
}

pub(crate) fn next_world_id() -> u64 {
    NEXT_WORLD.fetch_add(1, Ordering::Relaxed)
}

/// One machine launch of world `world` on `pes` PEs. `run_world` calls
/// this once; the fault-tolerant driver ([`crate::run_world_ft`]) calls it
/// repeatedly — reusing the world id and memory pools across attempts and
/// passing the last committed checkpoint generation as `restore`.
pub(crate) fn run_attempt(
    world: u64,
    opts: &AmpiOptions,
    pes: usize,
    shared: Option<Arc<flows_core::SharedPools>>,
    plan: Option<flows_converse::FaultPlan>,
    restore: Option<Arc<HashMap<u64, crate::ft::Snapshot>>>,
    main: &Arc<dyn Fn(&mut crate::Ampi) + Send + Sync>,
) -> MachineReport {
    assert!(opts.ranks > 0 && pes > 0);
    assert!(
        opts.ranks >= pes,
        "AMPI needs at least one rank per PE (got {} ranks on {} PEs)",
        opts.ranks,
        pes
    );
    let meta = Arc::new(WorldMeta {
        world,
        size: opts.ranks,
        strategy: opts.strategy.clone(),
        main: main.clone(),
        multiproc: opts.multiproc.is_some(),
    });

    let mut mb = MachineBuilder::new(pes)
        .net_model(opts.net)
        .modeled_time(opts.modeled_time)
        .tracing(opts.tracing)
        .sched_config(SchedConfig {
            stack_len: opts.stack_len,
            ..SchedConfig::default()
        });
    mb = match shared {
        // Restart attempts must see the same isomalloc region: checkpoint
        // images embed absolute slot addresses.
        Some(s) => mb.shared_pools(s),
        None => mb.iso_layout(opts.slot_len, (opts.ranks / pes + 2) * 2),
    };
    if let Some(p) = &plan {
        mb = mb.fault_plan(p.clone());
    }
    let _ = CommLayer::register(&mut mb);
    let mv = mb.handler(on_rank_move);
    let stored = *MOVE_HANDLER.get_or_init(|| mv);
    assert_eq!(stored, mv, "AMPI must occupy the same handler slot in every machine");
    let pl = mb.handler(on_lb_plan);
    let stored = *PLAN_HANDLER.get_or_init(|| pl);
    assert_eq!(stored, pl, "AMPI must occupy the same handler slot in every machine");
    let bt = mb.handler(on_move_batch);
    let stored = *BATCH_HANDLER.get_or_init(|| bt);
    assert_eq!(stored, bt, "AMPI must occupy the same handler slot in every machine");
    crate::recover::register(&mut mb);
    if plan.as_ref().is_some_and(|p| p.online) {
        mb = mb.on_death_confirmed(crate::recover::on_death_confirmed);
    }

    if let Some(w) = &opts.multiproc {
        mb = mb.multiproc(w.clone());
    }

    let placement = restore
        .as_ref()
        .map(|snaps| Arc::new(place_restored(snaps, pes, &meta)));
    let opts2 = opts.clone();
    // A multi-process machine has no deterministic round-robin mode: the
    // comm thread and the transport are inherently concurrent.
    let threaded = opts.threaded || opts.multiproc.is_some();
    let init = move |pe: &Pe| match (&restore, &placement) {
        (Some(snaps), Some(place)) => restore_pe(pe, &meta, snaps, place),
        _ => init_pe(pe, &meta, &opts2, pes),
    };
    if threaded {
        mb.run(init)
    } else {
        mb.run_deterministic(init)
    }
}

fn init_pe(pe: &Pe, meta: &Arc<WorldMeta>, opts: &AmpiOptions, pes: usize) {
    pe.ext::<AmpiState, _>(|st| st.meta = Some(meta.clone()));
    flows_comm::set_delivery(pe, PORT_AMPI, deliver);
    let meta_for_sink = meta.clone();
    flows_comm::set_reduction_sink(pe, move |pe, red| on_reduction(pe, &meta_for_sink, red));

    for rank in 0..opts.ranks {
        if pe_of_rank(rank, opts.ranks, pes) != pe.id() {
            continue;
        }
        spawn_rank(pe, meta, rank as u64);
    }
}

/// Spawn rank `rank`'s main thread fresh on this PE and register its
/// routed object (initial placement and scratch recovery respawn).
pub(crate) fn spawn_rank(pe: &Pe, meta: &Arc<WorldMeta>, rank: u64) {
    // The clone rides the rank's own stack (the entry trampoline moves it
    // there), but its refcount cell is on the spawning process's heap. In
    // a multi-process world a rank respawned in another process after a
    // cross-process recovery must not decrement through that stale
    // pointer, so the count is leaked instead (one word per rank spawn,
    // reclaimed at process exit). Cross-process worlds additionally
    // require a capture-free `main` (a plain `fn`): a closure's
    // environment lives behind this pointer and would be read, not just
    // dropped.
    let mut main = std::mem::ManuallyDrop::new(meta.main.clone());
    let multiproc = meta.multiproc;
    let world = meta.world;
    let size = meta.size;
    let tid = pe
        .sched()
        .spawn(StackFlavor::Isomalloc, move || {
            let mut ampi = crate::Ampi::new(world, rank as usize, size);
            main(&mut ampi);
            ampi.finish();
            if !multiproc {
                // Single-process machine: the refcount cell is in this
                // process; release the clone normally so user closures
                // (and what they capture) are dropped at world end.
                // SAFETY: `main` is not used again.
                unsafe { std::mem::ManuallyDrop::drop(&mut main) };
            }
        })
        .expect("spawn rank thread");
    pe.ext::<AmpiState, _>(|st| {
        st.ranks.insert(rank, RankBox::new(tid));
    });
    flows_comm::register_obj(pe, obj_of(meta.world, rank));
}

/// Place the restored ranks of a checkpoint generation over `pes` PEs:
/// block mapping refined by the world's LB strategy fed with each rank's
/// measured load at pack time — the post-failure rebalance.
fn place_restored(
    snaps: &HashMap<u64, crate::ft::Snapshot>,
    pes: usize,
    meta: &WorldMeta,
) -> HashMap<u64, usize> {
    let ranks = meta.size;
    let mut place: HashMap<u64, usize> = snaps
        .keys()
        .map(|&r| (r, pe_of_rank(r as usize, ranks, pes)))
        .collect();
    // Feed the strategy in rank order: snapshot map iteration order must
    // not leak into tie-breaking, or restarts stop being deterministic.
    let mut objs: Vec<ObjLoad> = snaps
        .iter()
        .map(|(&r, s)| ObjLoad {
            id: r,
            pe: place[&r],
            load: s.load_ns as f64 * 1e-9,
            migratable: true,
        })
        .collect();
    objs.sort_by_key(|o| o.id);
    let stats = LbStats {
        num_pes: pes,
        objs,
        background: Vec::new(),
    };
    for m in meta.strategy.decide(&stats) {
        if m.to < pes {
            place.insert(m.obj, m.to);
        }
    }
    place
}

/// Bring a checkpoint generation back to life on this PE: unpack every
/// rank placed here, rebuild its runtime box, announce its location, and
/// wake it inside the `checkpoint()` call it suspended in.
fn restore_pe(
    pe: &Pe,
    meta: &Arc<WorldMeta>,
    snaps: &HashMap<u64, crate::ft::Snapshot>,
    place: &HashMap<u64, usize>,
) {
    pe.ext::<AmpiState, _>(|st| st.meta = Some(meta.clone()));
    flows_comm::set_delivery(pe, PORT_AMPI, deliver);
    let meta_for_sink = meta.clone();
    flows_comm::set_reduction_sink(pe, move |pe, red| on_reduction(pe, &meta_for_sink, red));

    let mut mine: Vec<u64> = place
        .iter()
        .filter(|&(_, &dest)| dest == pe.id())
        .map(|(&r, _)| r)
        .collect();
    mine.sort_unstable(); // deterministic restore order
    for rank in mine {
        let snap = snaps.get(&rank).expect("snapshot for placed rank");
        let mv: RankMove =
            flows_pup::from_bytes(&snap.move_bytes).expect("checkpoint snapshot wire");
        let packed =
            flows_core::PackedThread::from_bytes(&mv.thread).expect("checkpointed thread");
        let tid = pe.sched().unpack_thread(packed).expect("restore rank thread");
        let mut bx = RankBox::new(tid);
        bx.mailbox = mv.mailbox.into();
        bx.next_seq = mv.next_seq.into_iter().collect();
        bx.send_seq = mv.send_seq.into_iter().collect();
        bx.stashed = mv
            .stashed
            .into_iter()
            .map(|(src, seq, tag, data)| ((src, seq), (tag, data)))
            .collect();
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.insert(rank, bx);
        });
        flows_comm::register_obj(pe, obj_of(meta.world, rank));
        pe.sched().reset_load_tid(tid);
        pe.sched().awaken_tid(tid).expect("awaken restored rank");
    }
}

/// Routed delivery to a rank living on this PE. The payload is a pup'd
/// [`RankWire`] header followed by the raw message bytes; the tail is
/// sliced off as an Arc-backed sub-payload, so the user data reaches the
/// mailbox without being copied out of the arrival buffer.
fn deliver(pe: &Pe, obj: ObjId, payload: Payload) {
    let (w, used): (RankWire, usize) =
        flows_pup::from_bytes_prefix(&payload).expect("rank wire");
    let data = payload.slice_from(used);
    let rank = obj.0 & 0xFFFF_FFFF;
    // Runtime commands (collective results, LB decisions, checkpoint
    // orders) stamp the sender's recovery epoch in `seq`; one computed
    // before a rollback targets a cut that no longer exists and must be
    // dropped. Point-to-point mail (kind 0) instead relies on per-sender
    // rank sequence numbers: deterministic replay from the restored cut
    // regenerates byte-identical copies, which `admit` de-duplicates.
    if matches!(w.kind, 1..=3) && w.seq != flows_comm::comm_epoch(pe) {
        return;
    }
    match w.kind {
        0 => {
            // Point-to-point: admit in per-sender order, wake a matching
            // waiter.
            let wake = pe.ext::<AmpiState, _>(|st| {
                let b = st.ranks.get_mut(&rank).expect("mail for missing rank");
                b.admit(w.a, w.seq, w.b, data);
                if b.wait_satisfied() {
                    b.wait = Wait::None;
                    Some(b.tid)
                } else {
                    None
                }
            });
            if let Some(tid) = wake {
                pe.sched().awaken_tid(tid).expect("awaken recv");
            }
        }
        1 => {
            // Collective result.
            let wake = pe.ext::<AmpiState, _>(|st| {
                let b = st.ranks.get_mut(&rank).expect("result for missing rank");
                b.coll_result = Some(data);
                if matches!(b.wait, Wait::Coll { seq } if seq == w.a) {
                    b.wait = Wait::None;
                    Some(b.tid)
                } else {
                    None
                }
            });
            if let Some(tid) = wake {
                pe.sched().awaken_tid(tid).expect("awaken collective");
            }
        }
        2 => on_lb_decision(pe, rank, w.a, w.b as usize),
        3 => on_ckpt_snapshot(pe, rank, w.a),
        k => panic!("bad rank wire kind {k}"),
    }
}

/// A checkpoint command arrived for a rank suspended in `checkpoint()`:
/// pack the rank exactly as a migration would, store the image in the
/// process-global checkpoint store (our "stable storage"), then unpack it
/// in place and let it keep running — a checkpoint *is* a migration whose
/// destination is disk (§4.5).
fn on_ckpt_snapshot(pe: &Pe, rank: u64, seq: u64) {
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("meta");
    let (tid, mailbox, next_seq, send_seq, stashed) = pe.ext::<AmpiState, _>(|st| {
        let b = st.ranks.get_mut(&rank).expect("checkpoint for missing rank");
        assert!(
            matches!(b.wait, Wait::Ckpt { seq: s } if s == seq),
            "rank {rank} got a checkpoint command it was not waiting for"
        );
        (
            b.tid,
            b.mailbox.clone(),
            b.next_seq.clone(),
            b.send_seq.clone(),
            b.stashed.clone(),
        )
    });
    assert_eq!(
        pe.sched().state(tid),
        Some(ThreadState::Suspended),
        "rank {rank} must be suspended at its checkpoint() point"
    );
    let packed = pe.sched().pack_thread(tid).expect("pack rank for checkpoint");
    flows_trace::emit(
        flows_trace::EventKind::Checkpoint,
        rank,
        seq,
        packed.payload_len() as u64,
    );
    let load_ns = packed.load_ns();
    let mut mv = RankMove {
        world: meta.world,
        rank,
        epoch: flows_comm::comm_epoch(pe),
        thread: packed.to_bytes(),
        mailbox: mailbox.into_iter().collect(),
        next_seq: next_seq.into_iter().collect(),
        send_seq: send_seq.into_iter().collect(),
        stashed: stashed
            .into_iter()
            .map(|((src, sq), (tag, data))| (src, sq, tag, data))
            .collect(),
    };
    let online = pe.fault_plan().is_some_and(|p| p.online);
    if online {
        // Online mode: the image goes to the in-memory shelf (own copy)
        // and later over the wire to buddy PEs — no process-global store.
        crate::recover::deposit_checkpoint(pe, rank, seq, flows_pup::to_bytes(&mut mv), load_ns);
    } else {
        crate::ft::store_snapshot(
            meta.world,
            seq,
            rank,
            meta.size,
            flows_pup::to_bytes(&mut mv),
            load_ns,
        );
    }
    let back = pe.sched().unpack_thread(packed).expect("unpack after checkpoint");
    debug_assert_eq!(back, tid);
    pe.ext::<AmpiState, _>(|st| {
        st.ranks.get_mut(&rank).expect("rank survives snapshot").wait = Wait::None;
    });
    pe.sched().awaken_tid(tid).expect("awaken checkpointed rank");
    if online {
        // Last local rank through its snapshot? Then this PE's slice of
        // generation `seq` is complete: replicate it to the buddies and
        // vote for the global commit.
        let pending = pe.ext::<AmpiState, _>(|st| {
            st.ranks
                .values()
                .any(|b| matches!(b.wait, Wait::Ckpt { seq: s } if s == seq))
        });
        if !pending {
            crate::recover::finalize_generation(pe, &meta, seq);
        }
    }
}

/// Reduction completions: collectives broadcast their result to every
/// rank; the LB reduction runs the strategy and broadcasts decisions.
fn on_reduction(pe: &Pe, meta: &Arc<WorldMeta>, red: flows_comm::Reduction) {
    if red.tag == tag_coll(meta.world) {
        // The result wire is identical for every rank: frame it once and
        // hand each route an Arc clone of the same buffer.
        let mut w = RankWire {
            kind: 1,
            a: red.seq,
            b: 0,
            seq: flows_comm::comm_epoch(pe),
        };
        let wire = frame(pe, &mut w, &red.data);
        for r in 0..meta.size as u64 {
            flows_comm::route(pe, obj_of(meta.world, r), PORT_AMPI, wire.clone());
        }
    } else if red.tag == tag_ckpt(meta.world) {
        // Every rank reached its checkpoint() call — a coordinated
        // consistent cut. Order each rank, wherever it currently lives, to
        // snapshot itself.
        let mut w = RankWire {
            kind: 3,
            a: red.seq,
            b: 0,
            seq: flows_comm::comm_epoch(pe),
        };
        let wire = frame(pe, &mut w, &[]);
        for r in 0..meta.size as u64 {
            flows_comm::route(pe, obj_of(meta.world, r), PORT_AMPI, wire.clone());
        }
    } else if red.tag == tag_lb(meta.world) {
        // Decode the gathered load reports.
        let mut reports = Vec::with_capacity(meta.size);
        let mut rest = &red.data[..];
        while !rest.is_empty() {
            let (rep, used): (LoadReport, usize) =
                flows_pup::from_bytes_prefix(rest).expect("load report");
            reports.push(rep);
            rest = &rest[used..];
        }
        let stats = LbStats {
            num_pes: pe.num_pes(),
            objs: reports
                .iter()
                .map(|r| ObjLoad {
                    id: r.rank,
                    pe: r.pe as usize,
                    load: r.load_ns as f64 * 1e-9,
                    migratable: true,
                })
                .collect(),
            background: Vec::new(),
        };
        if std::env::var_os("FLOWS_LB_DEBUG").is_some() {
            let mut objs = stats.objs.clone();
            objs.sort_by_key(|o| o.id);
            eprintln!("[lb] seq {} loads:", red.seq);
            for o in &objs {
                eprintln!("[lb]   rank {:3} pe {} load {:.4}s", o.id, o.pe, o.load);
            }
        }
        let migs = meta.strategy.decide(&stats);
        if std::env::var_os("FLOWS_LB_DEBUG").is_some() {
            eprintln!("[lb] decisions: {migs:?}");
        }
        flows_trace::emit(
            flows_trace::EventKind::LbEpoch,
            red.seq,
            migs.len() as u64,
            reports.len() as u64,
        );
        let dest_of: HashMap<u64, usize> = migs.iter().map(|m| (m.obj, m.to)).collect();
        // One plan message per source PE instead of one decision wire per
        // rank. Every reporting rank is suspended in migrate(), so the PE
        // it reported from is where it still lives.
        let mut plans: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
        for rep in &reports {
            let dest = dest_of.get(&rep.rank).copied().unwrap_or(rep.pe as usize);
            plans
                .entry(rep.pe as usize)
                .or_default()
                .push((rep.rank, dest as u64));
        }
        for (src, mut entries) in plans {
            entries.sort_unstable(); // deterministic handling order
            let mut p = PlanMsg {
                world: meta.world,
                seq: red.seq,
                epoch: flows_comm::comm_epoch(pe),
                entries,
            };
            pe.send(
                src,
                *PLAN_HANDLER.get().expect("registered"),
                pe.pack_payload(&mut p),
            );
        }
    } else {
        panic!("reduction for unknown tag {}", red.tag);
    }
}

/// A decision arrived for a rank suspended in `migrate()`.
fn on_lb_decision(pe: &Pe, rank: u64, seq: u64, dest: usize) {
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("meta");
    if dest == pe.id() {
        // Staying: wake the rank, roll its load epoch.
        let tid = pe.ext::<AmpiState, _>(|st| {
            let b = st.ranks.get_mut(&rank).expect("decision for missing rank");
            assert!(
                matches!(b.wait, Wait::Lb { seq: s } if s == seq),
                "rank {rank} got an LB decision it was not waiting for"
            );
            b.wait = Wait::None;
            b.tid
        });
        pe.sched().reset_load_tid(tid);
        pe.sched().awaken_tid(tid).expect("awaken stayer");
        return;
    }
    // Moving: pack the thread and its mailbox, ship, forward the location.
    let bx = pe.ext::<AmpiState, _>(|st| {
        st.moves_out += 1;
        st.ranks.remove(&rank).expect("decision for missing rank")
    });
    assert_eq!(
        pe.sched().state(bx.tid),
        Some(ThreadState::Suspended),
        "rank {rank} must be suspended at its migrate() point"
    );
    let packed = pe.sched().pack_thread(bx.tid).expect("pack rank thread");
    flows_comm::migrate_obj_out(pe, obj_of(meta.world, rank), dest);
    let mut mv = RankMove {
        world: meta.world,
        rank,
        epoch: flows_comm::comm_epoch(pe),
        thread: packed.to_bytes(),
        mailbox: bx.mailbox.into_iter().collect(),
        next_seq: bx.next_seq.into_iter().collect(),
        send_seq: bx.send_seq.into_iter().collect(),
        stashed: bx
            .stashed
            .into_iter()
            .map(|((src, seq), (tag, data))| (src, seq, tag, data))
            .collect(),
    };
    pe.send(
        dest,
        *MOVE_HANDLER.get().expect("registered"),
        pe.pack_payload(&mut mv),
    );
}

/// This PE's slice of an LB plan arrived: wake the stayers; pack the
/// movers and ship them, with every mover bound for the same destination
/// sharing ONE wire message — a pup'd [`BatchHead`] followed by `count`
/// ([`MoveRec`], raw `PackedThread` bytes) records.
fn on_lb_plan(pe: &Pe, msg: Message) {
    let plan: PlanMsg = flows_pup::from_bytes(&msg.data).expect("lb plan wire");
    if plan.epoch != flows_comm::comm_epoch(pe) {
        return; // plan computed against a pre-rollback placement
    }
    let meta = pe.ext::<AmpiState, _>(|st| st.meta.clone()).expect("meta");
    debug_assert_eq!(plan.world, meta.world);
    let mut batches: BTreeMap<usize, Vec<(MoveRec, flows_core::PackedThread)>> = BTreeMap::new();
    for &(rank, dest) in &plan.entries {
        let dest = dest as usize;
        if dest == pe.id() {
            // Staying: wake the rank, roll its load epoch.
            let tid = pe.ext::<AmpiState, _>(|st| {
                let b = st.ranks.get_mut(&rank).expect("plan for missing rank");
                assert!(
                    matches!(b.wait, Wait::Lb { seq: s } if s == plan.seq),
                    "rank {rank} got an LB plan it was not waiting for"
                );
                b.wait = Wait::None;
                b.tid
            });
            pe.sched().reset_load_tid(tid);
            pe.sched().awaken_tid(tid).expect("awaken stayer");
            continue;
        }
        // Moving: pack the thread and its runtime state, queue it on the
        // destination's batch.
        let bx = pe.ext::<AmpiState, _>(|st| {
            st.moves_out += 1;
            st.ranks.remove(&rank).expect("plan for missing rank")
        });
        assert_eq!(
            pe.sched().state(bx.tid),
            Some(ThreadState::Suspended),
            "rank {rank} must be suspended at its migrate() point"
        );
        let packed = pe.sched().pack_thread(bx.tid).expect("pack rank thread");
        flows_comm::migrate_obj_out(pe, obj_of(meta.world, rank), dest);
        let rec = MoveRec {
            rank,
            mailbox: bx.mailbox.into_iter().collect(),
            next_seq: bx.next_seq.into_iter().collect(),
            send_seq: bx.send_seq.into_iter().collect(),
            stashed: bx
                .stashed
                .into_iter()
                .map(|((src, seq), (tag, data))| (src, seq, tag, data))
                .collect(),
        };
        batches.entry(dest).or_default().push((rec, packed));
    }
    for (dest, movers) in batches {
        let mut head = BatchHead {
            world: meta.world,
            epoch: flows_comm::comm_epoch(pe),
            count: movers.len() as u64,
        };
        let cap = movers.iter().map(|(_, p)| p.payload_len() + 256).sum::<usize>();
        let mut buf = pe.payload_buf_with_capacity(32 + cap);
        flows_pup::pack_into(&mut head, buf.vec_mut());
        for (mut rec, packed) in movers {
            flows_pup::pack_into(&mut rec, buf.vec_mut());
            packed.pack_into(buf.vec_mut());
        }
        LB_BATCH_MSGS.fetch_add(1, Ordering::Relaxed);
        pe.send(dest, *BATCH_HANDLER.get().expect("registered"), buf.freeze());
    }
}

/// A batch of migrated ranks arrives: parse the records sequentially —
/// each thread image lands as a zero-copy slice of the arrival buffer.
fn on_move_batch(pe: &Pe, msg: Message) {
    let (head, mut off): (BatchHead, usize) =
        flows_pup::from_bytes_prefix(&msg.data).expect("batch head");
    if head.epoch != flows_comm::comm_epoch(pe) {
        return; // in-flight movers carry post-rollback-cut state; shelf wins
    }
    for _ in 0..head.count {
        let (rec, used): (MoveRec, usize) =
            flows_pup::from_bytes_prefix(&msg.data[off..]).expect("move rec");
        off += used;
        let (packed, consumed) =
            flows_core::PackedThread::from_payload(&msg.data, off).expect("batched thread");
        off += consumed;
        let tid = pe.sched().unpack_thread(packed).expect("unpack batched rank");
        let mut bx = RankBox::new(tid);
        bx.mailbox = rec.mailbox.into();
        bx.next_seq = rec.next_seq.into_iter().collect();
        bx.send_seq = rec.send_seq.into_iter().collect();
        bx.stashed = rec
            .stashed
            .into_iter()
            .map(|(src, seq, tag, data)| ((src, seq), (tag, data)))
            .collect();
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.insert(rec.rank, bx);
        });
        flows_comm::migrate_obj_in(pe, obj_of(head.world, rec.rank));
        pe.sched().reset_load_tid(tid);
        pe.sched().awaken_tid(tid).expect("awaken migrated rank");
    }
    debug_assert_eq!(off, msg.data.len(), "trailing bytes in migration batch");
}

/// A migrated rank arrives.
fn on_rank_move(pe: &Pe, msg: Message) {
    let mv: RankMove = flows_pup::from_bytes(&msg.data).expect("rank move wire");
    if mv.epoch != flows_comm::comm_epoch(pe) {
        return; // in-flight mover from before the rollback; shelf wins
    }
    let packed = flows_core::PackedThread::from_bytes(&mv.thread).expect("packed thread");
    let tid = pe.sched().unpack_thread(packed).expect("unpack rank thread");
    let mut bx = RankBox::new(tid);
    bx.mailbox = mv.mailbox.into();
    bx.next_seq = mv.next_seq.into_iter().collect();
    bx.send_seq = mv.send_seq.into_iter().collect();
    bx.stashed = mv
        .stashed
        .into_iter()
        .map(|(src, seq, tag, data)| ((src, seq), (tag, data)))
        .collect();
    pe.ext::<AmpiState, _>(|st| {
        st.ranks.insert(mv.rank, bx);
    });
    flows_comm::migrate_obj_in(pe, obj_of(mv.world, mv.rank));
    pe.sched().reset_load_tid(tid);
    pe.sched().awaken_tid(tid).expect("awaken migrated rank");
}

/// Internal accessors used by the `Ampi` handle (crate-private).
pub(crate) fn with_rank_box<R>(rank: u64, f: impl FnOnce(&mut RankBox) -> R) -> R {
    flows_converse::with_pe(|pe| {
        pe.ext::<AmpiState, _>(|st| {
            f(st.ranks.get_mut(&rank).expect("rank box on current PE"))
        })
    })
}

pub(crate) fn note_finished(rank: u64) {
    flows_converse::with_pe(|pe| {
        pe.ext::<AmpiState, _>(|st| {
            st.ranks.remove(&rank);
            st.finished += 1;
        });
    });
}

pub(crate) fn contribute_now(world: u64, tag: u64, seq: u64, rank: u64, op: ReduceOp, size: usize, data: Vec<u8>) {
    let _ = world;
    flows_converse::with_pe(|pe| {
        flows_comm::contribute(pe, tag, seq, rank, op, size as u64, data)
    });
}
