//! Online recovery: buddy-replicated in-memory checkpoints, phi-accrual
//! failure detection, and in-place rollback/respawn — the machine heals a
//! PE death WITHOUT tearing the world down and restarting.

use flows_ampi::{run_world, run_world_ft, AmpiOptions, FtReport};
use flows_converse::{FaultPlan, NetModel, RecoveryPhase};
use flows_lb::GreedyLb;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-rank result store (insert-overwrite keyed by rank, idempotent under
/// post-rollback re-execution).
type Results = Arc<Mutex<HashMap<usize, (u64, usize)>>>;

/// Same iterative ring exchange as the offline fault tests: per-iteration
/// work, a checkpoint at every matched communication boundary.
fn ring_workload(iters: usize, results: Results) -> impl Fn(&mut flows_ampi::Ampi) + Send + Sync {
    move |ampi| {
        let me = ampi.rank();
        let n = ampi.size();
        let mut check: u64 = me as u64 + 1;
        for it in 0..iters {
            let next = (me + 1) % n;
            ampi.send(next, 7, check.to_le_bytes().to_vec());
            // Scope the received buffer so it is freed before checkpoint():
            // heap allocations held across the cut are not part of the
            // image, and a rollback would replay their drop.
            let (src, got) = {
                let (src, _, data) = ampi.recv(Some((me + n - 1) % n), Some(7));
                (src, u64::from_le_bytes(data[..8].try_into().unwrap()))
            };
            check = check
                .wrapping_mul(1_000_003)
                .wrapping_add(got)
                .wrapping_add((it * n + src) as u64);
            ampi.charge_ns(50_000 + 20_000 * me as u64);
            ampi.checkpoint();
        }
        let total = ampi.allreduce_u64_sum(&[check]);
        results
            .lock()
            .unwrap()
            .insert(me, (total[0], ampi.current_pe()));
    }
}

fn opts(ranks: usize, pes: usize) -> AmpiOptions {
    AmpiOptions::new(ranks, pes)
        .with_net(NetModel::default())
        .with_strategy(Arc::new(GreedyLb))
        .modeled_time(true)
}

const RANKS: usize = 8;
const PES: usize = 4;
const ITERS: usize = 10;

fn fault_free_results() -> HashMap<usize, (u64, usize)> {
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    run_world(opts(RANKS, PES), ring_workload(ITERS, results.clone()));
    let map = results.lock().unwrap().clone();
    map
}

fn online_run(plan: FaultPlan) -> (FtReport, HashMap<usize, (u64, usize)>) {
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    let ft = run_world_ft(opts(RANKS, PES), plan, ring_workload(ITERS, results.clone()));
    let map = results.lock().unwrap().clone();
    (ft, map)
}

fn phases_of(ft: &FtReport) -> Vec<RecoveryPhase> {
    ft.report.recovery.iter().map(|e| e.phase).collect()
}

#[test]
fn single_crash_heals_in_place() {
    let clean = fault_free_results();
    assert_eq!(clean.len(), RANKS);

    // vt 2_000_000 lands after generations 1 and 2 have committed (one
    // checkpoint round trip is ~1M ns of modeled time), so the rollback
    // exercises the buddy shelf rather than a from-scratch restart.
    let plan = FaultPlan::new(0x0F11)
        .online_recovery(1)
        .crash_pe(2, 2_000_000);
    let (ft, got) = online_run(plan);

    // The machine was never torn down: zero restarts, a single attempt's
    // report, and the full PE count (the dead PE's scheduler simply went
    // quiet — survivors kept theirs).
    assert_eq!(ft.restarts, 0, "online recovery must not restart the world");
    assert_eq!(ft.recoveries, 1, "one crash, one recovery round");
    assert_eq!(ft.crashed_pes, vec![2]);
    assert_eq!(ft.pes_used, PES);
    assert_eq!(ft.report.dead_pes, vec![2]);

    // Bit-identical results vs the fault-free run, for every rank.
    for r in 0..RANKS {
        assert_eq!(
            got[&r].0, clean[&r].0,
            "rank {r} checksum differs after online recovery"
        );
        assert_ne!(got[&r].1, 2, "rank {r} finished on the dead PE");
    }

    // The timeline walks the protocol: detection, confirmation, rollback,
    // respawn of the dead PE's ranks, resume.
    let phases = phases_of(&ft);
    for want in [
        RecoveryPhase::Crash,
        RecoveryPhase::Suspect,
        RecoveryPhase::Confirm,
        RecoveryPhase::Rollback,
        RecoveryPhase::Respawn,
        RecoveryPhase::Resume,
    ] {
        assert!(phases.contains(&want), "missing {want:?} in {phases:?}");
    }
    // Every decisive phase concerns the scripted victim. (Survivors may be
    // transiently *suspected* while they are busy replaying — the detector
    // must clear those without ever confirming them.)
    for e in &ft.report.recovery {
        if !matches!(e.phase, RecoveryPhase::Suspect | RecoveryPhase::Clear) {
            assert_eq!(e.dead, 2, "{:?} names PE {}, not the victim", e.phase, e.dead);
        }
    }
    let confirmed: Vec<usize> = ft
        .report
        .recovery
        .iter()
        .filter(|e| e.phase == RecoveryPhase::Confirm)
        .map(|e| e.dead)
        .collect();
    assert_eq!(confirmed, vec![2], "only the victim is ever confirmed dead");
    // Any suspicion of a live PE was withdrawn by a matching Clear.
    for e in ft.report.recovery.iter().filter(|e| e.phase == RecoveryPhase::Suspect) {
        if e.dead != 2 {
            assert!(
                ft.report
                    .recovery
                    .iter()
                    .any(|c| c.phase == RecoveryPhase::Clear && c.pe == e.pe && c.dead == e.dead),
                "suspicion of live PE {} on PE {} was never cleared",
                e.dead,
                e.pe
            );
        }
    }
    // Rollbacks on every survivor.
    let rollback_pes: Vec<usize> = ft
        .report
        .recovery
        .iter()
        .filter(|e| e.phase == RecoveryPhase::Rollback)
        .map(|e| e.pe)
        .collect();
    assert_eq!(rollback_pes.len(), PES - 1, "all survivors rolled back");
    // MTTR is well-defined: resume strictly after the first suspicion.
    let suspect_vt = ft
        .report
        .recovery
        .iter()
        .find(|e| e.phase == RecoveryPhase::Suspect)
        .unwrap()
        .vt;
    let resume_vt = ft
        .report
        .recovery
        .iter()
        .rev()
        .find(|e| e.phase == RecoveryPhase::Resume)
        .unwrap()
        .vt;
    assert!(resume_vt > suspect_vt);
}

#[test]
fn two_sequential_crashes_heal_with_degree_two_replication() {
    let clean = fault_free_results();
    // The second death is scripted well after the first recovery resumes
    // (~8.5M), mid-replay: two full, non-overlapping recovery rounds, the
    // second served by images re-replicated during the first.
    let plan = FaultPlan::new(0x0F22)
        .online_recovery(2)
        .crash_pe(3, 2_000_000)
        .crash_pe(1, 10_000_000);
    let (ft, got) = online_run(plan);

    assert_eq!(ft.restarts, 0);
    assert_eq!(ft.recoveries, 2, "two crashes, two recovery rounds");
    assert_eq!(ft.pes_used, PES);
    let mut dead = ft.crashed_pes.clone();
    dead.sort_unstable();
    assert_eq!(dead, vec![1, 3]);

    for r in 0..RANKS {
        assert_eq!(
            got[&r].0, clean[&r].0,
            "rank {r} checksum differs after two online recoveries"
        );
        assert!(
            got[&r].1 != 1 && got[&r].1 != 3,
            "rank {r} finished on a dead PE"
        );
    }
}

#[test]
fn crash_during_recovery_is_superseded_and_healed() {
    let clean = fault_free_results();

    // Calibrate: run the single-crash scenario once and read the recovery
    // window off the timeline, then script a second death inside it.
    let probe = FaultPlan::new(0x0F33)
        .online_recovery(2)
        .crash_pe(2, 2_000_000);
    let (ft0, _) = online_run(probe);
    let suspect_vt = ft0
        .report
        .recovery
        .iter()
        .find(|e| e.phase == RecoveryPhase::Suspect)
        .unwrap()
        .vt;
    let resume_vt = ft0
        .report
        .recovery
        .iter()
        .find(|e| e.phase == RecoveryPhase::Resume)
        .unwrap()
        .vt;
    assert!(resume_vt > suspect_vt);
    let mid = suspect_vt + (resume_vt - suspect_vt) / 2;

    let plan = FaultPlan::new(0x0F33)
        .online_recovery(2)
        .crash_pe(2, 2_000_000)
        .crash_pe(0, mid);
    let (ft, got) = online_run(plan);

    assert_eq!(ft.restarts, 0);
    let mut dead = ft.crashed_pes.clone();
    dead.sort_unstable();
    assert_eq!(dead, vec![0, 2]);
    assert!(
        ft.recoveries >= 1,
        "at least one completed recovery round healed both deaths"
    );
    for r in 0..RANKS {
        assert_eq!(
            got[&r].0, clean[&r].0,
            "rank {r} checksum differs after crash-during-recovery"
        );
        assert!(
            got[&r].1 != 0 && got[&r].1 != 2,
            "rank {r} finished on a dead PE"
        );
    }
}

#[test]
fn stall_is_suspected_then_cleared_without_rollback() {
    let clean = fault_free_results();
    // A long-but-finite stall: phi crosses the suspect threshold, then the
    // heartbeats resume before confirmation — a slow PE, not a dead one.
    let plan = FaultPlan::new(0x0F44)
        .online_recovery(1)
        .phi_thresholds(2.0, 1e9)
        .stall_pe(1, 300_000, 4_000);
    let (ft, got) = online_run(plan);

    assert_eq!(ft.restarts, 0);
    assert_eq!(ft.recoveries, 0, "a stall must not trigger recovery");
    assert!(ft.crashed_pes.is_empty());
    let phases = phases_of(&ft);
    assert!(
        phases.contains(&RecoveryPhase::Suspect),
        "the stall was long enough to raise suspicion: {phases:?}"
    );
    assert!(
        phases.contains(&RecoveryPhase::Clear),
        "suspicion was withdrawn when heartbeats resumed: {phases:?}"
    );
    assert!(
        !phases.contains(&RecoveryPhase::Rollback),
        "no rollback for a slow PE: {phases:?}"
    );
    for r in 0..RANKS {
        assert_eq!(got[&r].0, clean[&r].0, "rank {r} checksum differs");
    }
}

#[test]
fn online_recovery_is_deterministic() {
    let plan = || {
        FaultPlan::new(0x0F55)
            .online_recovery(2)
            .drop_prob(0.02)
            .crash_pe(3, 300_000)
            .crash_pe(1, 900_000)
    };
    let (ft1, got1) = online_run(plan());
    let (ft2, got2) = online_run(plan());
    assert_eq!(got1, got2, "rank results must replay exactly");
    assert_eq!(ft1.recoveries, ft2.recoveries);
    assert_eq!(ft1.crashed_pes, ft2.crashed_pes);
    assert_eq!(ft1.report.pe_vtimes, ft2.report.pe_vtimes);
    assert_eq!(ft1.report.recovery, ft2.report.recovery);
    assert_eq!(ft1.total_messages, ft2.total_messages);
}

#[test]
fn recovery_phases_appear_in_chrome_trace() {
    let plan = FaultPlan::new(0x0F66)
        .online_recovery(1)
        .crash_pe(2, 2_000_000);
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    let ft = run_world_ft(
        opts(RANKS, PES).tracing(true),
        plan,
        ring_workload(ITERS, results.clone()),
    );
    assert_eq!(ft.restarts, 0);
    let json = flows_trace::chrome::chrome_trace_json(&ft.report.trace_rings);
    // Recovery phases are first-class trace events...
    for name in ["ft_rollback", "ft_respawn", "ft_resume"] {
        assert!(json.contains(name), "missing {name} in chrome trace");
    }
    assert!(json.contains("recovery"), "recovery category missing");
    // ...and the pre-crash history survived in the same rings (the world
    // was never torn down): checkpoint events from before the crash are
    // still present alongside the recovery timeline.
    assert!(
        json.contains("checkpoint"),
        "pre-crash checkpoint events lost from trace rings"
    );
}
