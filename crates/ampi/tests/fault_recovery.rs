//! Fault-tolerant AMPI: coordinated checkpointing, PE-crash recovery by
//! checkpoint restart on fewer PEs, and determinism of the whole story
//! under the seeded fault plan.

use flows_ampi::{run_world, run_world_ft, AmpiOptions, FtReport};
use flows_converse::{FaultPlan, NetModel};
use flows_lb::GreedyLb;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-rank result store. Insert-overwrite keyed by rank, so a rank that
/// re-executes its tail after a rollback records the same value instead of
/// double-counting — the idempotency rule `checkpoint()` documents.
type Results = Arc<Mutex<HashMap<usize, (u64, usize)>>>;

/// An iterative ring exchange with per-iteration work and a checkpoint at
/// every iteration boundary (a matched communication boundary: every rank
/// has received the one message sent to it before it can pass the
/// checkpoint collective).
fn ring_workload(iters: usize, results: Results) -> impl Fn(&mut flows_ampi::Ampi) + Send + Sync {
    move |ampi| {
        let me = ampi.rank();
        let n = ampi.size();
        let mut check: u64 = me as u64 + 1;
        for it in 0..iters {
            let next = (me + 1) % n;
            ampi.send(next, 7, check.to_le_bytes().to_vec());
            let (src, _, data) = ampi.recv(Some((me + n - 1) % n), Some(7));
            let got = u64::from_le_bytes(data[..8].try_into().unwrap());
            check = check
                .wrapping_mul(1_000_003)
                .wrapping_add(got)
                .wrapping_add((it * n + src) as u64);
            // Skewed modeled work so the post-crash rebalance has a real
            // load picture to act on.
            ampi.charge_ns(50_000 + 20_000 * me as u64);
            ampi.checkpoint();
        }
        let total = ampi.allreduce_u64_sum(&[check]);
        results
            .lock()
            .unwrap()
            .insert(me, (total[0], ampi.current_pe()));
    }
}

fn opts(ranks: usize, pes: usize) -> AmpiOptions {
    AmpiOptions::new(ranks, pes)
        .with_net(NetModel::default())
        .with_strategy(Arc::new(GreedyLb))
        // Virtual time from modeled costs only, so the scripted crash
        // lands at the same schedule point every run.
        .modeled_time(true)
}

const RANKS: usize = 8;
const PES: usize = 4;
const ITERS: usize = 10;

fn fault_free_results() -> HashMap<usize, (u64, usize)> {
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    run_world(opts(RANKS, PES), ring_workload(ITERS, results.clone()));
    // Clone out rather than try_unwrap: threads killed by a crash are
    // reclaimed without unwinding, so their Arc clones never drop.
    let map = results.lock().unwrap().clone();
    map
}

fn faulty_run(plan: FaultPlan) -> (FtReport, HashMap<usize, (u64, usize)>) {
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    let ft = run_world_ft(opts(RANKS, PES), plan, ring_workload(ITERS, results.clone()));
    let map = results.lock().unwrap().clone();
    (ft, map)
}

#[test]
fn crash_recovers_from_checkpoint_and_rebalances() {
    let clean = fault_free_results();
    assert_eq!(clean.len(), RANKS);

    // Lossy links plus a PE death mid-run.
    let plan = FaultPlan::new(0xFA17)
        .drop_prob(0.02)
        .dup_prob(0.02)
        .crash_pe(2, 400_000);
    let (ft, got) = faulty_run(plan);

    assert_eq!(ft.restarts, 1, "one crash, one restart");
    assert_eq!(ft.crashed_pes, vec![2]);
    assert_eq!(ft.pes_used, PES - 1, "the machine degraded to fewer PEs");
    assert!(ft.faults.dropped > 0, "the plan actually dropped packets");
    assert!(
        ft.faults.retransmits >= ft.faults.dropped,
        "every drop was repaired"
    );
    assert!(
        ft.total_messages > ft.report.messages,
        "the crash threw away work that total_messages still counts"
    );

    // Results identical to the fault-free run, for every rank.
    for r in 0..RANKS {
        assert_eq!(
            got[&r].0, clean[&r].0,
            "rank {r} checksum differs after recovery"
        );
    }
    // Every rank finished on a surviving PE, and all survivors host work
    // (8 ranks over 3 PEs cannot leave one empty under a block map).
    let mut pes_seen = [0usize; PES];
    for r in 0..RANKS {
        let pe = got[&r].1;
        assert!(pe < PES - 1, "rank {r} finished on dead-range PE {pe}");
        pes_seen[pe] += 1;
    }
    assert!(
        pes_seen[..PES - 1].iter().all(|&c| c > 0),
        "restored ranks spread over all survivors: {pes_seen:?}"
    );
}

#[test]
fn recovery_is_deterministic() {
    let plan = || {
        FaultPlan::new(0xFA17)
            .drop_prob(0.02)
            .dup_prob(0.02)
            .crash_pe(2, 400_000)
    };
    let (ft1, got1) = faulty_run(plan());
    let (ft2, got2) = faulty_run(plan());
    assert_eq!(got1, got2, "rank results must replay exactly");
    assert_eq!(ft1.restarts, ft2.restarts);
    assert_eq!(ft1.crashed_pes, ft2.crashed_pes);
    assert_eq!(ft1.total_messages, ft2.total_messages);
    assert_eq!(ft1.report.pe_vtimes, ft2.report.pe_vtimes);
    assert_eq!(ft1.faults.dropped, ft2.faults.dropped);
    assert_eq!(ft1.faults.retransmits, ft2.faults.retransmits);
}

#[test]
fn crash_before_any_checkpoint_restarts_from_scratch() {
    let clean = fault_free_results();
    // PE 1 dies almost immediately — before the first generation commits.
    let plan = FaultPlan::new(7).crash_pe(1, 1_000);
    let (ft, got) = faulty_run(plan);
    assert_eq!(ft.restarts, 1);
    assert_eq!(ft.pes_used, PES - 1);
    for r in 0..RANKS {
        assert_eq!(got[&r].0, clean[&r].0, "rank {r} checksum differs");
    }
}

#[test]
fn two_crashes_degrade_twice() {
    let clean = fault_free_results();
    let plan = FaultPlan::new(99)
        .crash_pe(3, 300_000)
        .crash_pe(1, 700_000);
    let (ft, got) = faulty_run(plan);
    assert_eq!(ft.restarts, 2, "two scripted crashes, two restarts");
    assert_eq!(ft.pes_used, PES - 2);
    for r in 0..RANKS {
        assert_eq!(got[&r].0, clean[&r].0, "rank {r} checksum differs");
    }
}

#[test]
fn checkpoint_without_faults_is_transparent() {
    // checkpoint() under plain run_world: snapshots are taken and thrown
    // away; results match a run that never checkpoints.
    let with_ckpt = fault_free_results();
    let results: Results = Arc::new(Mutex::new(HashMap::new()));
    run_world(opts(RANKS, PES), {
        let results = results.clone();
        move |ampi| {
            let me = ampi.rank();
            let n = ampi.size();
            let mut check: u64 = me as u64 + 1;
            for it in 0..ITERS {
                let next = (me + 1) % n;
                ampi.send(next, 7, check.to_le_bytes().to_vec());
                let (src, _, data) = ampi.recv(Some((me + n - 1) % n), Some(7));
                let got = u64::from_le_bytes(data[..8].try_into().unwrap());
                check = check
                    .wrapping_mul(1_000_003)
                    .wrapping_add(got)
                    .wrapping_add((it * n + src) as u64);
                ampi.charge_ns(50_000 + 20_000 * me as u64);
                ampi.barrier(); // same collective count, no snapshot
            }
            let total = ampi.allreduce_u64_sum(&[check]);
            results.lock().unwrap().insert(me, (total[0], 0));
        }
    });
    let without = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    for r in 0..RANKS {
        assert_eq!(with_ckpt[&r].0, without[&r].0);
    }
}
