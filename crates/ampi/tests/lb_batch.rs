//! Batched LB migration: all ranks an epoch moves between one
//! (source, destination) PE pair must share a single wire message, and
//! every thread must resume intact on the other side.
//!
//! This file holds exactly one test: `lb_batch_messages()` is a
//! process-global cumulative counter, so concurrent tests in the same
//! binary would race the delta measurement.

use flows_ampi::{run_world, AmpiOptions};
use flows_converse::NetModel;
use flows_lb::{GreedyLb, LbStats, LbStrategy, Migration};
use std::sync::{Arc, Mutex};

/// Fixed plan: evacuate every migratable object on PE 0 to PE 1.
struct EvacuatePe0;

impl LbStrategy for EvacuatePe0 {
    fn name(&self) -> &'static str {
        "evacuate-pe0"
    }
    fn decide(&self, stats: &LbStats) -> Vec<Migration> {
        stats
            .objs
            .iter()
            .filter(|o| o.migratable && o.pe == 0)
            .map(|o| Migration {
                obj: o.id,
                from: o.pe,
                to: 1,
            })
            .collect()
    }
}

#[test]
fn epoch_moves_share_one_wire_message_per_pe_pair() {
    // 6 ranks over 2 PEs: ranks 0–2 live on PE 0, ranks 3–5 on PE 1. The
    // strategy moves all three PE-0 ranks to PE 1 — one (0, 1) pair, so
    // exactly ONE batched wire message regardless of mover count.
    let before = flows_ampi::lb_batch_messages();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    let report = run_world(
        AmpiOptions::new(6, 2)
            .with_net(NetModel::zero())
            .with_strategy(Arc::new(EvacuatePe0)),
        move |ampi| {
            let rank = ampi.rank();
            let src_pe = ampi.current_pe();
            // Mail parked before the move must ride the batch (or chase
            // the rank) and still match afterwards.
            ampi.send(rank, 77, vec![rank as u8; 5]);
            // Stack and isomalloc-heap state that must survive
            // byte-for-byte.
            let mut acc: Vec<u64> = (0..64).map(|i| i + rank as u64).collect();
            let heap = ampi.malloc(128).expect("iso heap");
            // SAFETY: fresh 128-byte allocation.
            unsafe { std::ptr::write_bytes(heap, rank as u8, 128) };

            ampi.migrate();

            let dst_pe = ampi.current_pe();
            acc.iter_mut().for_each(|v| *v += 1);
            // SAFETY: the heap block migrated with the thread (same
            // address — isomalloc).
            unsafe {
                assert_eq!(*heap, rank as u8);
                assert_eq!(*heap.add(127), rank as u8);
            }
            assert!(ampi.free(heap));
            let (src, tag, data) = ampi.recv(Some(rank), Some(77));
            assert_eq!((src, tag), (rank, 77));
            assert_eq!(data, vec![rank as u8; 5]);
            let sum: u64 = acc.iter().sum();
            assert_eq!(sum, (0..64).map(|i| i + rank as u64 + 1).sum::<u64>());
            s2.lock().unwrap().push((rank, src_pe, dst_pe));
        },
    );
    assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 6, "every rank finished");
    for &(rank, src_pe, dst_pe) in seen.iter() {
        if rank < 3 {
            assert_eq!((src_pe, dst_pe), (0, 1), "rank {rank} evacuated");
        } else {
            assert_eq!((src_pe, dst_pe), (1, 1), "rank {rank} stayed");
        }
    }
    assert_eq!(
        flows_ampi::lb_batch_messages() - before,
        1,
        "three movers to one destination must share one wire message"
    );

    // Smoke the batched path under a real strategy too: GreedyLb over a
    // wider machine, everything still resumes and finishes.
    let report = run_world(
        AmpiOptions::new(8, 4)
            .with_net(NetModel::zero())
            .with_strategy(Arc::new(GreedyLb)),
        |ampi| {
            let r = ampi.rank() as u64;
            let mut v: Vec<u64> = (0..32).map(|i| i * r).collect();
            ampi.migrate();
            v.push(r);
            assert_eq!(v.iter().sum::<u64>(), (0..32).map(|i| i * r).sum::<u64>() + r);
            let total = ampi.allreduce_u64_sum(&[r]);
            assert_eq!(total, vec![28]);
        },
    );
    assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
}
