//! AMPI semantics: point-to-point ordering/matching, collectives, and —
//! the paper's centerpiece — transparent rank migration under load
//! balancing.

use flows_ampi::{run_world, AmpiOptions};
use flows_comm::ReduceOp;
use flows_converse::NetModel;
use flows_lb::{GreedyLb, RotateLb};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn opts(ranks: usize, pes: usize) -> AmpiOptions {
    AmpiOptions::new(ranks, pes).with_net(NetModel::zero())
}

#[test]
fn ring_passes_payloads() {
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    let report = run_world(opts(6, 3), move |ampi| {
        let next = (ampi.rank() + 1) % ampi.size();
        ampi.send(next, 1, vec![ampi.rank() as u8; 3]);
        let (src, tag, data) = ampi.recv(None, Some(1));
        assert_eq!(tag, 1);
        assert_eq!(src, (ampi.rank() + ampi.size() - 1) % ampi.size());
        assert_eq!(data, vec![src as u8; 3]);
        s2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(sum.load(Ordering::Relaxed), 6);
    assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
}

#[test]
fn tag_and_source_matching_is_selective() {
    run_world(opts(2, 2), |ampi| {
        if ampi.rank() == 0 {
            // Send in a deliberately confusing order.
            ampi.send(1, 30, vec![30]);
            ampi.send(1, 10, vec![10]);
            ampi.send(1, 20, vec![20]);
        } else {
            // Receive by specific tags, out of arrival order.
            let (_, t, d) = ampi.recv(Some(0), Some(10));
            assert_eq!((t, d[0]), (10, 10));
            let (_, t, d) = ampi.recv(Some(0), Some(20));
            assert_eq!((t, d[0]), (20, 20));
            let (_, t, d) = ampi.recv(None, None); // wildcard gets the rest
            assert_eq!((t, d[0]), (30, 30));
        }
    });
}

#[test]
fn same_tag_messages_arrive_in_send_order() {
    run_world(opts(2, 1), |ampi| {
        if ampi.rank() == 0 {
            for i in 0..10u8 {
                ampi.send(1, 5, vec![i]);
            }
        } else {
            for i in 0..10u8 {
                let (_, _, d) = ampi.recv(Some(0), Some(5));
                assert_eq!(d[0], i, "FIFO per (src, tag)");
            }
        }
    });
}

#[test]
fn collectives_compute_correct_results() {
    run_world(opts(5, 2), |ampi| {
        let r = ampi.rank() as f64;
        // sum over ranks of [r, 2r]
        let s = ampi.allreduce_f64(&[r, 2.0 * r], ReduceOp::SumF64);
        assert_eq!(s, vec![10.0, 20.0]);
        let mx = ampi.allreduce_f64(&[r], ReduceOp::MaxF64);
        assert_eq!(mx, vec![4.0]);
        let mn = ampi.allreduce_f64(&[-r], ReduceOp::MinF64);
        assert_eq!(mn, vec![-4.0]);
        let g = ampi.allgather_f64(r * r);
        assert_eq!(g, vec![0.0, 1.0, 4.0, 9.0, 16.0]);
        let u = ampi.allreduce_u64_sum(&[ampi.rank() as u64, 1]);
        assert_eq!(u, vec![10, 5]);
    });
}

#[test]
fn barriers_order_phases() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();
    run_world(opts(4, 2), move |ampi| {
        l2.lock().unwrap().push((1, ampi.rank()));
        ampi.barrier();
        l2.lock().unwrap().push((2, ampi.rank()));
        ampi.barrier();
        l2.lock().unwrap().push((3, ampi.rank()));
    });
    let log = log.lock().unwrap();
    // Every phase-1 entry precedes every phase-2 entry, etc.
    let phase_positions: Vec<(usize, usize)> =
        log.iter().enumerate().map(|(i, &(p, _))| (p, i)).collect();
    for &(p, i) in &phase_positions {
        for &(q, j) in &phase_positions {
            if p < q {
                assert!(i < j, "phase {p} at {i} must precede phase {q} at {j}: {log:?}");
            }
        }
    }
}

#[test]
fn rotate_lb_migrates_every_rank_and_execution_continues() {
    // RotateLB moves every rank to the next PE at the migrate() point —
    // maximal stress on pack/ship/unpack.
    let seen_pes = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen_pes.clone();
    let report = run_world(
        opts(4, 2).with_strategy(Arc::new(RotateLb)),
        move |ampi| {
            let before = ampi.current_pe();
            // Local state that must survive migration byte-for-byte.
            let mut acc: Vec<u64> = (0..100).map(|i| i * ampi.rank() as u64).collect();
            let heap = ampi.malloc(256).expect("iso heap");
            // SAFETY: fresh allocation, 256 bytes.
            unsafe { std::ptr::write_bytes(heap, ampi.rank() as u8, 256) };

            ampi.migrate();

            let after = ampi.current_pe();
            acc.push(before as u64);
            acc.push(after as u64);
            // SAFETY: heap migrated with us (same address).
            unsafe {
                assert_eq!(*heap, ampi.rank() as u8);
                assert_eq!(*heap.add(255), ampi.rank() as u8);
            }
            assert!(ampi.free(heap));
            let check: u64 = acc.iter().sum();
            let expect: u64 =
                (0..100u64).map(|i| i * ampi.rank() as u64).sum::<u64>() + before as u64 + after as u64;
            assert_eq!(check, expect);
            s2.lock().unwrap().push((ampi.rank(), before, after));
        },
    );
    let seen = seen_pes.lock().unwrap();
    assert_eq!(seen.len(), 4);
    for &(_rank, before, after) in seen.iter() {
        assert_eq!(after, (before + 1) % 2, "every rank rotated one PE over");
    }
    assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
}

#[test]
fn messages_chase_migrated_ranks() {
    // Rank 0 stays (on PE0 side of block map), sends to rank 3 *after*
    // rank 3 has rotated away; delivery must follow it.
    let got = Arc::new(AtomicUsize::new(0));
    let g2 = got.clone();
    run_world(
        opts(4, 2).with_strategy(Arc::new(RotateLb)),
        move |ampi| {
            if ampi.rank() == 0 {
                ampi.migrate();
                // After the collective migrate, rank 3 lives on a new PE.
                ampi.send(3, 9, vec![99]);
            } else if ampi.rank() == 3 {
                ampi.migrate();
                let (src, tag, data) = ampi.recv(None, None);
                assert_eq!((src, tag, data[0]), (0, 9, 99));
                g2.fetch_add(1, Ordering::Relaxed);
            } else {
                ampi.migrate();
            }
        },
    );
    assert_eq!(got.load(Ordering::Relaxed), 1);
}

#[test]
fn greedy_lb_drains_overloaded_pe() {
    // 8 ranks block-mapped onto 2 PEs: ranks 0..4 on PE0, 4..8 on PE1.
    // Ranks 0..4 do heavy work before migrate(); greedy should spread
    // them afterwards. We verify some rank actually moved and everything
    // completes.
    let moves = Arc::new(Mutex::new(Vec::new()));
    let m2 = moves.clone();
    run_world(
        opts(8, 2).with_strategy(Arc::new(GreedyLb)),
        move |ampi| {
            // Unbalanced work: low ranks burn CPU.
            let mut sink = 0u64;
            let reps = if ampi.rank() < 4 { 200_000 } else { 1_000 };
            for i in 0..reps {
                sink = sink.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(sink);
            let before = ampi.current_pe();
            ampi.migrate();
            let after = ampi.current_pe();
            m2.lock().unwrap().push((ampi.rank(), before, after));
            ampi.barrier(); // post-migration collectives still work
        },
    );
    let moves = moves.lock().unwrap();
    assert_eq!(moves.len(), 8);
    assert!(
        moves.iter().any(|&(_, b, a)| b != a),
        "greedy must move someone: {moves:?}"
    );
}

#[test]
fn threaded_mode_runs_the_ring_too() {
    let sum = Arc::new(AtomicU64::new(0));
    let s2 = sum.clone();
    run_world(opts(4, 2).threaded(true), move |ampi| {
        let next = (ampi.rank() + 1) % ampi.size();
        ampi.send(next, 1, vec![1]);
        let _ = ampi.recv(None, Some(1));
        s2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(sum.load(Ordering::Relaxed), 4);
}

#[test]
#[should_panic(expected = "at least one rank per PE")]
fn too_few_ranks_is_refused() {
    run_world(opts(1, 2), |_ampi| {});
}

#[test]
fn nonblocking_irecv_overlaps_compute() {
    run_world(opts(2, 2), |ampi| {
        if ampi.rank() == 0 {
            // Post the receive before the data exists, compute meanwhile.
            let req = ampi.irecv(Some(1), Some(3));
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            ampi.send(1, 1, vec![1]); // release the partner
            let (src, tag, data) = ampi.wait(req).expect("recv payload");
            assert_eq!((src, tag, data[0]), (1, 3, 77));
        } else {
            let _ = ampi.recv(Some(0), Some(1)); // wait for go-ahead
            ampi.send(0, 3, vec![77]);
        }
    });
}

#[test]
fn test_polls_without_blocking() {
    run_world(opts(2, 1), |ampi| {
        if ampi.rank() == 0 {
            let mut req = ampi.irecv(Some(1), Some(9));
            assert!(!ampi.test(&mut req), "nothing sent yet");
            assert!(!req.is_complete());
            ampi.send(1, 8, vec![0]); // tell rank 1 to go
            // Spin-test with yields until the payload lands.
            while !ampi.test(&mut req) {
                flows_core::yield_now();
            }
            assert!(req.is_complete());
            let (_, _, d) = ampi.wait(req).unwrap();
            assert_eq!(d, vec![5]);
            // isend requests are born complete.
            let s = ampi.isend(1, 10, vec![1]);
            assert!(s.is_complete());
        } else {
            let _ = ampi.recv(Some(0), Some(8));
            ampi.send(0, 9, vec![5]);
            let _ = ampi.recv(Some(0), Some(10));
        }
    });
}

#[test]
fn bcast_scatter_alltoall() {
    run_world(opts(4, 2), |ampi| {
        let n = ampi.size();
        let me = ampi.rank();
        // Bcast from rank 2.
        let got = ampi.bcast(2, if me == 2 { vec![42, 43] } else { vec![] });
        assert_eq!(got, vec![42, 43]);
        // Scatter from rank 1: chunk j = [j; j+1].
        let chunks = (me == 1).then(|| (0..n).map(|j| vec![j as u8; j + 1]).collect());
        let mine = ampi.scatter(1, chunks);
        assert_eq!(mine, vec![me as u8; me + 1]);
        // Alltoall: part for j = [me*10 + j]. Received[src] = [src*10 + me].
        let parts = (0..n).map(|j| vec![(me * 10 + j) as u8]).collect();
        let blocks = ampi.alltoall(parts);
        for (src, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![(src * 10 + me) as u8]);
        }
        // Twice in a row: reserved tags must not collide.
        let parts = (0..n).map(|j| vec![(me + j) as u8]).collect();
        let blocks = ampi.alltoall(parts);
        for (src, b) in blocks.iter().enumerate() {
            assert_eq!(b, &vec![(src + me) as u8]);
        }
    });
}

mod faulty_transport_props {
    //! AMPI guarantees are *semantics*, not best-effort: per-(src, tag)
    //! FIFO ordering and exact reduction results must hold under any mix
    //! of injected duplication, reordering, delay and loss — and across a
    //! mid-run migration of every rank. The checksum is position-weighted,
    //! so any reorder, drop or double-delivery changes the answer.

    use super::*;
    use flows_converse::FaultPlan;
    use flows_lb::RotateLb;
    use proptest::prelude::*;

    const MSGS: usize = 6;

    fn ring_under_faults(ranks: usize, pes: usize, plan: FaultPlan) {
        let n = ranks;
        // Each rank's order-sensitive checksum of what it receives from
        // its ring predecessor, then the analytic all-ranks total.
        let expected_total: u64 = (0..n as u64)
            .map(|src| {
                (0..MSGS as u64)
                    .map(|i| (src * MSGS as u64 + i) * (i + 1))
                    .sum::<u64>()
            })
            .sum();
        run_world(
            AmpiOptions::new(ranks, pes)
                .with_net(NetModel::default())
                .with_strategy(Arc::new(RotateLb))
                .with_faults(plan),
            move |ampi| {
                let me = ampi.rank();
                let next = (me + 1) % n;
                let src = (me + n - 1) % n;
                for i in 0..MSGS / 2 {
                    ampi.send(next, 5, ((me * MSGS + i) as u64).to_le_bytes().to_vec());
                }
                // Every rank moves to another PE mid-stream; in-flight and
                // stashed messages must chase it.
                ampi.migrate();
                for i in MSGS / 2..MSGS {
                    ampi.send(next, 5, ((me * MSGS + i) as u64).to_le_bytes().to_vec());
                }
                let mut check = 0u64;
                for i in 0..MSGS {
                    let (from, _, data) = ampi.recv(Some(src), Some(5));
                    assert_eq!(from, src);
                    let v = u64::from_le_bytes(data[..8].try_into().unwrap());
                    assert_eq!(
                        v,
                        (src * MSGS + i) as u64,
                        "rank {me}: message {i} out of send order"
                    );
                    check = check.wrapping_add(v * (i as u64 + 1));
                }
                let total = ampi.allreduce_u64_sum(&[check]);
                assert_eq!(total[0], expected_total, "rank {me}: reduction corrupted");
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn ordering_and_reductions_survive_any_fault_mix(
            seed in any::<u64>(),
            ranks in 4usize..7,
            pes in 2usize..4,
            dup in 0u32..4,
            reorder in 0u32..4,
            delay in 0u32..3,
            drop in 0u32..3,
        ) {
            prop_assume!(ranks >= pes * 2);
            let plan = FaultPlan::new(seed)
                .dup_prob(dup as f64 * 0.1)
                .reorder_prob(reorder as f64 * 0.1)
                .delay(delay as f64 * 0.1, 40_000)
                .drop_prob(drop as f64 * 0.05);
            ring_under_faults(ranks, pes, plan);
        }
    }
}

#[test]
fn waitall_gathers_many() {
    run_world(opts(3, 1), |ampi| {
        if ampi.rank() == 0 {
            let reqs: Vec<_> = (1..3).map(|s| ampi.irecv(Some(s), Some(4))).collect();
            ampi.send(1, 1, vec![]);
            ampi.send(2, 1, vec![]);
            let got = ampi.waitall(reqs);
            assert_eq!(got.len(), 2);
            let mut vals: Vec<u8> = got.into_iter().map(|g| g.unwrap().2[0]).collect();
            vals.sort();
            assert_eq!(vals, vec![10, 20]);
        } else {
            let _ = ampi.recv(Some(0), Some(1));
            ampi.send(0, 4, vec![ampi.rank() as u8 * 10]);
        }
    });
}
