//! Cross-process online recovery: a 2-process × 2-PE machine runs the
//! ring workload; the whole child process is killed by the crash
//! schedule, survivors on the lead process detect it by phi-accrual
//! (heartbeats stop arriving over the wire) and heal from buddy
//! checkpoint images that crossed the socket backend.
//!
//! This lives in its own test binary because the topology is
//! `migratable()`: thread images cross the process boundary, so the
//! leader disables ASLR and re-executes itself once — replaying only
//! this binary's tests, not the whole online-recovery suite.
//!
//! Cross-process rules the workload obeys (the same ones real AMPI
//! imposes on isomalloc programs): the rank main is a plain `fn` (its
//! closure environment would live on the dead process's heap), results
//! are collected in a `static` (same address in every process once ASLR
//! is off, each process writing its own copy), and no heap allocation is
//! held across a checkpoint.

use flows_ampi::{run_world, run_world_ft, AmpiOptions};
use flows_converse::{FaultPlan, NetModel};
use flows_lb::GreedyLb;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const RANKS: usize = 8;
const PES: usize = 4;
const ITERS: usize = 10;
const VICTIM: usize = 1;

/// Per-rank `(checksum, final PE)` results. A `static` on purpose: the
/// ranks respawned from the dead child finish on the leader, and with
/// ASLR off their code resolves this symbol to the leader's copy.
static RESULTS: Mutex<Vec<(usize, u64, usize)>> = Mutex::new(Vec::new());

/// Same iterative ring exchange as the single-process online-recovery
/// tests — per-iteration work, a checkpoint at every matched
/// communication boundary — as a capture-free `fn`.
fn ring_main(ampi: &mut flows_ampi::Ampi) {
    let me = ampi.rank();
    let n = ampi.size();
    let mut check: u64 = me as u64 + 1;
    for it in 0..ITERS {
        let next = (me + 1) % n;
        ampi.send(next, 7, check.to_le_bytes().to_vec());
        // Scope the received buffer so it is freed before checkpoint():
        // heap allocations held across the cut are not part of the image.
        let (src, got) = {
            let (src, _, data) = ampi.recv(Some((me + n - 1) % n), Some(7));
            (src, u64::from_le_bytes(data[..8].try_into().unwrap()))
        };
        check = check
            .wrapping_mul(1_000_003)
            .wrapping_add(got)
            .wrapping_add((it * n + src) as u64);
        ampi.charge_ns(50_000 + 20_000 * me as u64);
        ampi.checkpoint();
    }
    let total = ampi.allreduce_u64_sum(&[check]);
    RESULTS.lock().unwrap().push((me, total[0], ampi.current_pe()));
}

fn opts(ranks: usize, pes: usize) -> AmpiOptions {
    AmpiOptions::new(ranks, pes)
        .with_net(NetModel::default())
        .with_strategy(Arc::new(GreedyLb))
        .modeled_time(true)
}

/// The SPMD body both the leader and the child run.
fn mp_recovery_body(world: Arc<flows_net::World>) {
    // Whole-process failure unit: replication must be at least
    // pes_per_proc, or a rank's only buddy image could die with it.
    let plan = FaultPlan::new(0x0F88)
        .online_recovery(2)
        .crash_process(VICTIM, world.pes_per_proc(), 2_000_000);
    let ft = run_world_ft(opts(RANKS, PES).multiproc(world.clone()), plan, ring_main);
    if world.rank() == VICTIM {
        // This process was scripted to die mid-run; its machine-level
        // failure is the survivors' to heal. Returning cleanly (exit 0)
        // is all that is asked of it.
        return;
    }
    let map: HashMap<usize, (u64, usize)> = RESULTS
        .lock()
        .unwrap()
        .iter()
        .map(|&(r, total, pe)| (r, (total, pe)))
        .collect();
    assert_eq!(ft.restarts, 0, "online recovery must not restart the world");
    assert!(ft.recoveries >= 1, "at least one recovery round completed");
    assert!(ft.report.crashed.is_none(), "survivors healed, not aborted");
    let mut dead = ft.crashed_pes.clone();
    dead.sort_unstable();
    assert_eq!(dead, vec![2, 3], "exactly the child's PEs died");

    // Every rank finished — the dead process's ranks were respawned from
    // buddy images onto the survivors — and every checksum matches a
    // fault-free single-process run of the same workload bit for bit.
    RESULTS.lock().unwrap().clear();
    run_world(opts(RANKS, PES), ring_main);
    let clean: HashMap<usize, u64> = RESULTS
        .lock()
        .unwrap()
        .iter()
        .map(|&(r, total, _)| (r, total))
        .collect();
    assert_eq!(map.len(), RANKS, "all ranks finished on the survivors");
    for (r, (total, pe)) in &map {
        assert_eq!(
            *total, clean[r],
            "rank {r} checksum differs after cross-process recovery"
        );
        assert!(*pe != 2 && *pe != 3, "rank {r} finished on a dead PE");
    }
}

/// Child-process entry (returns immediately when run without a
/// flows-net environment, i.e. as an ordinary test).
#[test]
fn mp_recovery_child() {
    if flows_net::child_rank().is_none() {
        return;
    }
    let world = flows_net::attach_from_env().expect("child attach");
    mp_recovery_body(world);
}

#[test]
fn cross_process_crash_heals_over_socket_backend() {
    let world = flows_net::TopologySpec::new(2, 2)
        .backend(flows_net::Backend::Uds)
        .migratable()
        .child_args(["mp_recovery_child", "--exact", "--nocapture"])
        .launch()
        .expect("launch");
    mp_recovery_body(world.clone());
    world.shutdown().expect("child exited clean");
}
