//! Sanitizer trip reporting for the `sanitize` cargo feature.
//!
//! The memory substrate (`flows-mem`), the context-switch layer
//! (`flows-arch`) and the scheduler (`flows-core`) gain runtime detectors
//! when built with their `sanitize` feature: stack canaries, heap
//! red-zones and freed-block quarantine, vacated-slot poisoning, scheduler
//! lifecycle assertions, and a pup size validator. When a detector fires
//! it must (a) leave a trace event behind so a flushed ring explains the
//! death, and (b) stop the program before the corruption propagates.
//! This module is that common funnel. It lives here — not in the crates
//! that detect — because `flows-trace` is the one crate every detector
//! already depends on.
//!
//! By default a trip aborts the process (corrupted memory must not unwind
//! through arbitrary frames). Tests flip [`set_trip_panics`] so a trip
//! becomes a normal panic they can observe with `catch_unwind`.

use crate::{emit, EventKind};
use std::sync::atomic::{AtomicBool, Ordering};

/// Which sanitizer detector fired. Carried as the `a` word of a
/// [`EventKind::SanTrip`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SanCheck {
    /// The canary word at a thread's stack floor was clobbered while the
    /// thread ran (stack overflow or a wild write).
    StackCanary = 1,
    /// The red zone behind an isomalloc block was written past the
    /// block's capacity (heap buffer overflow).
    HeapRedZone = 2,
    /// A quarantined freed isomalloc block lost its poison pattern before
    /// reuse (use-after-free write).
    HeapUseAfterFree = 3,
    /// A scheduler invariant on thread lifecycle broke: awaken of a
    /// thread that is already runnable or running.
    DoubleAwaken = 4,
    /// A scheduler operation touched a thread that already exited.
    UseAfterExit = 5,
    /// A `Pup` impl's declared size disagrees with the bytes it actually
    /// packed (lying `size()` corrupts every downstream wire offset).
    PupSize = 6,
    /// A migrated-away slot was found readable when it should have been
    /// re-poisoned `PROT_NONE`.
    VacatedSlot = 7,
}

impl SanCheck {
    /// Stable short name for messages and log greps.
    pub fn name(self) -> &'static str {
        match self {
            SanCheck::StackCanary => "stack-canary",
            SanCheck::HeapRedZone => "heap-red-zone",
            SanCheck::HeapUseAfterFree => "heap-use-after-free",
            SanCheck::DoubleAwaken => "double-awaken",
            SanCheck::UseAfterExit => "use-after-exit",
            SanCheck::PupSize => "pup-size",
            SanCheck::VacatedSlot => "vacated-slot",
        }
    }
}

/// When set, trips panic instead of aborting (test mode).
static TRIP_PANICS: AtomicBool = AtomicBool::new(false);

/// Make sanitizer trips panic (unwinding, observable with `catch_unwind`)
/// instead of aborting the process. Test harnesses only; the abort
/// default exists because a tripped invariant means memory is already
/// corrupt.
pub fn set_trip_panics(yes: bool) {
    TRIP_PANICS.store(yes, Ordering::SeqCst);
}

/// Report a sanitizer detection and stop: emit a [`EventKind::SanTrip`]
/// trace event (recorded if the gate is on and a ring is installed),
/// print the diagnosis to stderr, then abort — or panic under
/// [`set_trip_panics`].
pub fn trip(check: SanCheck, detail: &str, b: u64, c: u64) -> ! {
    emit(EventKind::SanTrip, check as u64, b, c);
    eprintln!(
        "flows-sanitize: {} detector tripped: {detail} (b={b:#x} c={c:#x})",
        check.name()
    );
    if TRIP_PANICS.load(Ordering::SeqCst) {
        panic!("flows-sanitize trip [{}]: {detail}", check.name());
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install_ring, set_enabled, TraceRing};
    use std::sync::Arc;

    #[test]
    fn trip_emits_event_then_panics_in_test_mode() {
        let ring = Arc::new(TraceRing::new(0, 64));
        set_enabled(true);
        set_trip_panics(true);
        let caught = {
            let _g = install_ring(&ring);
            std::panic::catch_unwind(|| {
                trip(SanCheck::StackCanary, "unit test", 0xAB, 0xCD);
            })
        };
        set_enabled(false);
        set_trip_panics(false);
        let err = caught.expect_err("trip must panic in test mode");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("stack-canary"), "panic names the check: {msg}");
        let evs = ring.events();
        assert_eq!(evs.len(), 1, "trip leaves exactly one event behind");
        assert_eq!(evs[0].kind, EventKind::SanTrip);
        assert_eq!(evs[0].a, SanCheck::StackCanary as u64);
        assert_eq!((evs[0].b, evs[0].c), (0xAB, 0xCD));
    }

    #[test]
    fn check_names_are_distinct() {
        let all = [
            SanCheck::StackCanary,
            SanCheck::HeapRedZone,
            SanCheck::HeapUseAfterFree,
            SanCheck::DoubleAwaken,
            SanCheck::UseAfterExit,
            SanCheck::PupSize,
            SanCheck::VacatedSlot,
        ];
        let names: std::collections::HashSet<_> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
