//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the Trace Event Format's JSON-array flavor, which both
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly:
//! each PE becomes a process (`pid`), each user-level thread a track
//! (`tid`). On-CPU bursts become `"X"` complete events (synthesized
//! from `SwitchOut`, whose payload carries the burst length, so one
//! record yields begin+duration); everything else becomes `"i"`
//! instant events carrying its payload as `args`.

use crate::event::EventKind;
use crate::ring::TraceRing;
use crate::{flavor_name, Event};
use std::fmt::Write as _;
use std::sync::Arc;

/// Timestamp in Chrome's microsecond unit, keeping sub-µs precision.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render one ring's events into `out` (shared by export and tests).
fn push_pe_events(out: &mut String, pe: usize, events: &[Event], first: &mut bool) {
    let mut sep = |out: &mut String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
    };
    // Name the process track after the PE.
    sep(out);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pe},\"name\":\"process_name\",\"args\":{{\"name\":\"PE {pe}\"}}}}"
    );
    for ev in events {
        match ev.kind {
            EventKind::SwitchOut => {
                // One complete slice per on-CPU burst: starts burst ns
                // before the switch-out timestamp.
                let start = ev.ts.saturating_sub(ev.b);
                sep(out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{pe},\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                     \"name\":\"run\",\"cat\":\"cpu\",\"args\":{{\"flavor\":\"{flavor}\"}}}}",
                    tid = ev.a,
                    ts = us(start),
                    dur = us(ev.b),
                    flavor = flavor_name(ev.c),
                );
            }
            // SwitchIn is implied by the slice start; skip to keep
            // traces small.
            EventKind::SwitchIn => {}
            kind => {
                sep(out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":{pe},\"tid\":0,\"ts\":{ts:.3},\"s\":\"t\",\
                     \"name\":\"{name}\",\"cat\":\"{cat}\",\
                     \"args\":{{\"a\":{a},\"b\":{b},\"c\":{c}}}}}",
                    ts = us(ev.ts),
                    name = kind.name(),
                    cat = category(kind),
                    a = ev.a,
                    b = ev.b,
                    c = ev.c,
                );
            }
        }
    }
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::ThreadCreate | EventKind::ThreadExit => "thread",
        EventKind::MsgSend | EventKind::MsgRecv => "msg",
        EventKind::MigPack | EventKind::MigUnpack => "migration",
        EventKind::Checkpoint => "checkpoint",
        EventKind::LbEpoch => "lb",
        EventKind::FaultDrop
        | EventKind::FaultRetransmit
        | EventKind::FaultCrash
        | EventKind::FaultStall => "fault",
        EventKind::FtSuspect
        | EventKind::FtClear
        | EventKind::FtConfirm
        | EventKind::FtRollback
        | EventKind::FtRespawn
        | EventKind::FtResume => "recovery",
        EventKind::VtStep => "bigsim",
        EventKind::SanTrip => "sanitizer",
        EventKind::RemapBatch | EventKind::LazyCommit => "mem",
        _ => "misc",
    }
}

/// Export a machine's rings as a Chrome-trace JSON array.
pub fn chrome_trace_json(rings: &[Arc<TraceRing>]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for ring in rings {
        push_pe_events(&mut out, ring.pe(), &ring.events(), &mut first);
    }
    out.push_str("\n]\n");
    out
}

// --- A minimal JSON validator -------------------------------------------
//
// There is no serde in this workspace, but tests and trace_demo.sh need
// "is this output actually JSON". A ~60-line recursive-descent checker
// is enough: it validates structure, not schema.

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => {
                self.eat(b'{')?;
                if self.peek() == Some(b'}') {
                    return self.eat(b'}');
                }
                loop {
                    self.string()?;
                    self.eat(b':')?;
                    self.value()?;
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => return self.eat(b'}'),
                    }
                }
            }
            b'[' => {
                self.eat(b'[')?;
                if self.peek() == Some(b']') {
                    return self.eat(b']');
                }
                loop {
                    self.value()?;
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => return self.eat(b']'),
                    }
                }
            }
            b'"' => self.string(),
            b't' => self.lit("true"),
            b'f' => self.lit("false"),
            b'n' => self.lit("null"),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        self.ws();
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&b) = self.s.get(self.i) {
            self.i += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => self.i += 1, // skip the escaped byte
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        self.ws();
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            Err(format!("expected number at byte {start}"))
        } else {
            Ok(())
        }
    }
}

/// Check that `s` is one well-formed JSON value (structure only).
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = P {
        s: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(ring: &TraceRing, ts: u64, kind: EventKind, a: u64, b: u64, c: u64) {
        // SAFETY: the test thread is the only one driving this ring.
        unsafe { ring.push(Event { ts, kind, a, b, c }) }
    }

    #[test]
    fn export_is_valid_json_with_expected_records() {
        let ring = Arc::new(TraceRing::new(2, 64));
        push(&ring, 1_000, EventKind::ThreadCreate, 1, 0, 65536);
        push(&ring, 2_000, EventKind::SwitchIn, 1, 0, 0);
        push(&ring, 5_000, EventKind::SwitchOut, 1, 3_000, 0);
        push(&ring, 6_000, EventKind::MsgSend, 3, 256, 2);
        push(&ring, 7_000, EventKind::MigPack, 1, 8_192, 0);
        push(&ring, 8_000, EventKind::FaultRetransmit, 3, 11, 2);
        let js = chrome_trace_json(&[ring]);
        validate_json(&js).expect("chrome trace parses");
        assert!(js.contains("\"ph\":\"X\""));
        assert!(js.contains("\"name\":\"PE 2\""));
        assert!(js.contains("thread_create"));
        assert!(js.contains("msg_send"));
        assert!(js.contains("mig_pack"));
        assert!(js.contains("fault_retransmit"));
        assert!(js.contains("stack-copy"));
        // SwitchIn is folded into the X slice.
        assert!(!js.contains("switch_in"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("[]").unwrap();
        validate_json("{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\",\"c\":null}").unwrap();
        assert!(validate_json("[1,").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[] trailing").is_err());
        assert!(validate_json("\"open").is_err());
    }
}
