//! Reducing raw event rings to the paper's analyses.
//!
//! Projections answers "what fraction of PE 3 was busy", "how big are
//! the grains", "when did objects move" from the raw log. This module
//! does the same reduction once, producing a [`TraceSummary`] that is
//! pup-serializable (rides in `MachineReport`) and JSON-printable
//! (no serde; the format is small enough to hand-roll).

use crate::event::{Event, EventKind};
use crate::ring::TraceRing;
use flows_pup::pup_fields;

/// Number of log2 buckets in the grainsize histogram. Bucket `i` counts
/// on-CPU bursts with `floor(log2(ns)) == i` (bucket 0 also takes 0-ns
/// bursts); the last bucket takes everything ≥ 2^31 ns (~2 s).
pub const GRAIN_BUCKETS: usize = 32;

/// Per-PE reduction of one trace ring.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PeTraceSummary {
    /// PE index.
    pub pe: u64,
    /// Events retained in the ring at summary time.
    pub events: u64,
    /// Oldest events overwritten by ring wraparound (exact).
    pub dropped: u64,
    /// Timestamp of the earliest retained event (ns).
    pub first_ts: u64,
    /// Timestamp of the latest retained event (ns).
    pub last_ts: u64,
    /// Context switches observed (`SwitchOut` count).
    pub switches: u64,
    /// Total on-CPU ns across all bursts (sum of `SwitchOut` bursts).
    pub busy_ns: u64,
    /// `busy_ns` over the retained span (`last_ts - first_ts`), clamped
    /// to [0, 1]. The paper's per-PE utilization.
    pub utilization: f64,
    /// Threads created on this PE.
    pub threads_created: u64,
    /// Threads that ran to completion on this PE.
    pub threads_exited: u64,
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Messages delivered to handlers.
    pub msgs_recv: u64,
    /// Payload bytes delivered.
    pub bytes_recv: u64,
    /// Threads packed and shipped away.
    pub migrations_out: u64,
    /// Threads received and unpacked.
    pub migrations_in: u64,
    /// Checkpoint snapshots taken.
    pub checkpoints: u64,
    /// Load-balance epochs observed.
    pub lb_epochs: u64,
    /// Fault-injection events (drops, retransmits, crashes, stalls).
    pub faults: u64,
    /// Sanitizer detectors that fired (`sanitize` feature trips; normally
    /// at most one — the process aborts right after recording it).
    pub sanitizer_trips: u64,
    /// Online-recovery protocol events (suspect, clear, confirm,
    /// rollback, respawn, resume).
    pub recovery_events: u64,
    /// Deferred-reclaim flushes observed (`RemapBatch` events): each is
    /// one batched syscall pass releasing a PE's vacated alias windows
    /// or isomalloc slots.
    pub remap_batches: u64,
    /// Steal requests this PE posted while idle (`StealAttempt` events).
    pub steal_attempts: u64,
    /// Threads this PE absorbed from its steal inbox (sum of `StealHit`
    /// counts).
    pub steal_hits: u64,
    /// Memory-alias `MAP_FIXED` remaps issued by this PE's OS thread
    /// (filled from the syscall counters, not from events).
    pub remap: u64,
    /// All syscalls issued by this PE's OS thread over the run
    /// (likewise from the counters).
    pub syscalls_total: u64,
    /// log2 histogram of on-CPU burst lengths; see [`GRAIN_BUCKETS`].
    pub grainsize_hist: Vec<u64>,
}

pup_fields!(PeTraceSummary {
    pe,
    events,
    dropped,
    first_ts,
    last_ts,
    switches,
    busy_ns,
    utilization,
    threads_created,
    threads_exited,
    msgs_sent,
    bytes_sent,
    msgs_recv,
    bytes_recv,
    migrations_out,
    migrations_in,
    checkpoints,
    lb_epochs,
    faults,
    sanitizer_trips,
    recovery_events,
    remap_batches,
    steal_attempts,
    steal_hits,
    remap,
    syscalls_total,
    grainsize_hist
});

/// One migration timeline entry: a thread leaving or arriving at a PE.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MigRecord {
    /// When (ns).
    pub ts: u64,
    /// Where.
    pub pe: u64,
    /// Which thread.
    pub tid: u64,
    /// Packed image size in bytes.
    pub bytes: u64,
    /// `true` = packed (leaving `pe`), `false` = unpacked (arriving).
    pub packed: bool,
}

pup_fields!(MigRecord { ts, pe, tid, bytes, packed });

/// The machine-wide trace reduction: one [`PeTraceSummary`] per PE plus
/// the merged migration timeline.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceSummary {
    /// Per-PE reductions, indexed by PE.
    pub pes: Vec<PeTraceSummary>,
    /// Every pack/unpack event across the machine, sorted by timestamp.
    pub migrations: Vec<MigRecord>,
}

pup_fields!(TraceSummary { pes, migrations });

/// log2 bucket index for a burst length.
fn grain_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(GRAIN_BUCKETS - 1)
    }
}

/// Reduce one ring's retained events to a [`PeTraceSummary`] (the
/// syscall-derived fields stay 0 here; the machine fills them from its
/// counters) and append this PE's migration records to `migs`.
pub fn summarize_pe(ring: &TraceRing, migs: &mut Vec<MigRecord>) -> PeTraceSummary {
    let events = ring.events();
    let mut s = PeTraceSummary {
        pe: ring.pe() as u64,
        events: events.len() as u64,
        dropped: ring.dropped_events(),
        first_ts: events.first().map_or(0, |e| e.ts),
        last_ts: events.last().map_or(0, |e| e.ts),
        grainsize_hist: vec![0; GRAIN_BUCKETS],
        ..Default::default()
    };
    for ev in &events {
        match ev.kind {
            EventKind::SwitchOut => {
                s.switches += 1;
                s.busy_ns += ev.b;
                s.grainsize_hist[grain_bucket(ev.b)] += 1;
            }
            EventKind::ThreadCreate => s.threads_created += 1,
            EventKind::ThreadExit => s.threads_exited += 1,
            EventKind::MsgSend => {
                s.msgs_sent += 1;
                s.bytes_sent += ev.b;
            }
            EventKind::MsgRecv => {
                s.msgs_recv += 1;
                s.bytes_recv += ev.b;
            }
            EventKind::MigPack => {
                s.migrations_out += 1;
                migs.push(mig_record(ring.pe() as u64, ev, true));
            }
            EventKind::MigUnpack => {
                s.migrations_in += 1;
                migs.push(mig_record(ring.pe() as u64, ev, false));
            }
            EventKind::Checkpoint => s.checkpoints += 1,
            EventKind::LbEpoch => s.lb_epochs += 1,
            EventKind::FaultDrop
            | EventKind::FaultRetransmit
            | EventKind::FaultCrash
            | EventKind::FaultStall => s.faults += 1,
            EventKind::SanTrip => s.sanitizer_trips += 1,
            EventKind::FtSuspect
            | EventKind::FtClear
            | EventKind::FtConfirm
            | EventKind::FtRollback
            | EventKind::FtRespawn
            | EventKind::FtResume => s.recovery_events += 1,
            EventKind::RemapBatch => s.remap_batches += 1,
            EventKind::StealAttempt => s.steal_attempts += 1,
            EventKind::StealHit => s.steal_hits += ev.b,
            EventKind::SwitchIn | EventKind::VtStep | EventKind::Mark | EventKind::LazyCommit => {}
        }
    }
    let span = s.last_ts.saturating_sub(s.first_ts);
    if span > 0 {
        s.utilization = (s.busy_ns as f64 / span as f64).clamp(0.0, 1.0);
    }
    s
}

fn mig_record(pe: u64, ev: &Event, packed: bool) -> MigRecord {
    MigRecord {
        ts: ev.ts,
        pe,
        tid: ev.a,
        bytes: ev.b,
        packed,
    }
}

/// Reduce a set of per-PE rings to the machine-wide summary.
pub fn summarize(rings: &[std::sync::Arc<TraceRing>]) -> TraceSummary {
    let mut migrations = Vec::new();
    let pes = rings
        .iter()
        .map(|r| summarize_pe(r, &mut migrations))
        .collect();
    migrations.sort_by_key(|m| m.ts);
    TraceSummary { pes, migrations }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl PeTraceSummary {
    fn to_json(&self) -> String {
        let hist: Vec<String> = self.grainsize_hist.iter().map(|n| n.to_string()).collect();
        format!(
            concat!(
                "{{\"pe\":{},\"events\":{},\"dropped\":{},\"first_ts\":{},\"last_ts\":{},",
                "\"switches\":{},\"busy_ns\":{},\"utilization\":{:.6},",
                "\"threads_created\":{},\"threads_exited\":{},",
                "\"msgs_sent\":{},\"bytes_sent\":{},\"msgs_recv\":{},\"bytes_recv\":{},",
                "\"migrations_out\":{},\"migrations_in\":{},\"checkpoints\":{},",
                "\"lb_epochs\":{},\"faults\":{},\"sanitizer_trips\":{},",
                "\"recovery_events\":{},\"remap_batches\":{},",
                "\"remap\":{},\"syscalls_total\":{},",
                "\"grainsize_hist\":[{}]}}"
            ),
            self.pe,
            self.events,
            self.dropped,
            self.first_ts,
            self.last_ts,
            self.switches,
            self.busy_ns,
            self.utilization,
            self.threads_created,
            self.threads_exited,
            self.msgs_sent,
            self.bytes_sent,
            self.msgs_recv,
            self.bytes_recv,
            self.migrations_out,
            self.migrations_in,
            self.checkpoints,
            self.lb_epochs,
            self.faults,
            self.sanitizer_trips,
            self.recovery_events,
            self.remap_batches,
            self.remap,
            self.syscalls_total,
            hist.join(",")
        )
    }
}

impl TraceSummary {
    /// Serialize as a JSON object (hand-rolled; see module docs).
    pub fn to_json(&self) -> String {
        let pes: Vec<String> = self.pes.iter().map(|p| p.to_json()).collect();
        let migs: Vec<String> = self
            .migrations
            .iter()
            .map(|m| {
                format!(
                    "{{\"ts\":{},\"pe\":{},\"tid\":{},\"bytes\":{},\"dir\":\"{}\"}}",
                    m.ts,
                    m.pe,
                    m.tid,
                    m.bytes,
                    json_escape(if m.packed { "out" } else { "in" })
                )
            })
            .collect();
        format!(
            "{{\"pes\":[{}],\"migrations\":[{}]}}",
            pes.join(","),
            migs.join(",")
        )
    }

    /// Machine-wide utilization: busy time over span, summed across PEs.
    pub fn mean_utilization(&self) -> f64 {
        if self.pes.is_empty() {
            return 0.0;
        }
        self.pes.iter().map(|p| p.utilization).sum::<f64>() / self.pes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn push(ring: &TraceRing, ts: u64, kind: EventKind, a: u64, b: u64, c: u64) {
        // SAFETY: this test thread is the only pusher.
        unsafe { ring.push(Event { ts, kind, a, b, c }) }
    }

    #[test]
    fn summarize_counts_and_utilization() {
        let ring = Arc::new(TraceRing::new(1, 64));
        push(&ring, 100, EventKind::ThreadCreate, 1, 3, 4096);
        push(&ring, 110, EventKind::SwitchIn, 1, 3, 0);
        push(&ring, 160, EventKind::SwitchOut, 1, 50, 3);
        push(&ring, 170, EventKind::MsgSend, 2, 128, 5);
        push(&ring, 180, EventKind::MsgRecv, 0, 64, 5);
        push(&ring, 190, EventKind::MigPack, 1, 9000, 3);
        push(&ring, 195, EventKind::FaultDrop, 2, 7, 1);
        push(&ring, 200, EventKind::ThreadExit, 1, 50, 0);
        let sum = summarize(&[ring]);
        let p = &sum.pes[0];
        assert_eq!(p.pe, 1);
        assert_eq!(p.events, 8);
        assert_eq!(p.switches, 1);
        assert_eq!(p.busy_ns, 50);
        assert_eq!(p.threads_created, 1);
        assert_eq!(p.threads_exited, 1);
        assert_eq!((p.msgs_sent, p.bytes_sent), (1, 128));
        assert_eq!((p.msgs_recv, p.bytes_recv), (1, 64));
        assert_eq!(p.migrations_out, 1);
        assert_eq!(p.faults, 1);
        // span = 200-100 = 100, busy = 50
        assert!((p.utilization - 0.5).abs() < 1e-9);
        // burst of 50 ns lands in bucket floor(log2(50)) = 5
        assert_eq!(p.grainsize_hist[5], 1);
        assert_eq!(sum.migrations.len(), 1);
        assert!(sum.migrations[0].packed);
        assert_eq!(sum.migrations[0].bytes, 9000);
    }

    #[test]
    fn grain_buckets_edge_cases() {
        assert_eq!(grain_bucket(0), 0);
        assert_eq!(grain_bucket(1), 0);
        assert_eq!(grain_bucket(2), 1);
        assert_eq!(grain_bucket(1023), 9);
        assert_eq!(grain_bucket(1024), 10);
        assert_eq!(grain_bucket(u64::MAX), GRAIN_BUCKETS - 1);
    }

    #[test]
    fn pup_roundtrip() {
        let ring = Arc::new(TraceRing::new(0, 16));
        push(&ring, 10, EventKind::SwitchOut, 1, 7, 0);
        push(&ring, 20, EventKind::MigUnpack, 4, 512, 1);
        let mut sum = summarize(&[ring]);
        let bytes = flows_pup::to_bytes(&mut sum);
        let back: TraceSummary = flows_pup::from_bytes(&bytes).unwrap();
        assert_eq!(back, sum);
    }

    #[test]
    fn json_is_wellformed() {
        let ring = Arc::new(TraceRing::new(0, 16));
        push(&ring, 10, EventKind::SwitchOut, 1, 7, 0);
        push(&ring, 20, EventKind::MigPack, 4, 512, 1);
        let sum = summarize(&[ring]);
        let js = sum.to_json();
        crate::chrome::validate_json(&js).expect("summary JSON parses");
        assert!(js.contains("\"migrations\""));
    }
}
