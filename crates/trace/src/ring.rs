//! The per-PE single-writer event ring.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity, overwrite-oldest event log owned by one PE.
///
/// Writes are wait-free and unsynchronized: exactly one OS thread (the
/// one currently driving the owning PE) pushes events, bumping `head`
/// with a `Release` store after the slot write. Readers only run after
/// the writer has quiesced (machine report time, after PE joins), so a
/// single `Acquire` load of `head` makes every published slot visible.
/// Overwriting drops the *oldest* events; [`TraceRing::dropped_events`]
/// is exact.
pub struct TraceRing {
    pe: usize,
    cap: usize,
    buf: UnsafeCell<Box<[Event]>>,
    /// Total events ever pushed; `head % cap` is the next slot.
    head: AtomicU64,
}

// SAFETY: the single-writer discipline above — one pushing thread at a
// time, reads only after the writer quiesces — is what every installer
// (Pe::enter/leave, install_ring) upholds. The UnsafeCell is never
// touched concurrently from two threads.
unsafe impl Sync for TraceRing {}
// SAFETY: same single-writer discipline as the Sync impl above.
unsafe impl Send for TraceRing {}

impl TraceRing {
    /// A ring for PE `pe` holding the most recent `cap` events
    /// (`cap` is rounded up to at least 2).
    pub fn new(pe: usize, cap: usize) -> Self {
        let cap = cap.max(2);
        TraceRing {
            pe,
            cap,
            buf: UnsafeCell::new(vec![Event::default(); cap].into_boxed_slice()),
            head: AtomicU64::new(0),
        }
    }

    /// The PE this ring belongs to.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append one event, overwriting the oldest when full.
    ///
    /// # Safety
    /// Must only be called from the single OS thread currently driving
    /// this ring's PE (see the type-level discipline).
    pub(crate) unsafe fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let buf = &mut *self.buf.get();
        buf[(h % self.cap as u64) as usize] = ev;
        self.head.store(h + 1, Ordering::Release);
    }

    /// Total events ever recorded (including ones since overwritten).
    pub fn total_events(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Exactly how many of the oldest events were overwritten.
    pub fn dropped_events(&self) -> u64 {
        self.total_events().saturating_sub(self.cap as u64)
    }

    /// The retained events, oldest first. Call only after the writer
    /// has quiesced.
    pub fn events(&self) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        // SAFETY: reader runs after the writer quiesced (crate
        // discipline); the Acquire load orders the slot reads below
        // after every published write.
        let buf = unsafe { &*self.buf.get() };
        let start = h.saturating_sub(self.cap as u64);
        (start..h)
            .map(|i| buf[(i % self.cap as u64) as usize])
            .collect()
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("pe", &self.pe)
            .field("cap", &self.cap)
            .field("total_events", &self.total_events())
            .field("dropped_events", &self.dropped_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event {
            ts: 1000 + i,
            kind: EventKind::Mark,
            a: i,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn fills_in_order_without_drops() {
        let r = TraceRing::new(3, 8);
        for i in 0..5 {
            // SAFETY: this test thread is the only pusher.
            unsafe { r.push(ev(i)) };
        }
        assert_eq!(r.pe(), 3);
        assert_eq!(r.total_events(), 5);
        assert_eq!(r.dropped_events(), 0);
        let evs = r.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs.iter().map(|e| e.a).collect::<Vec<_>>(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts_exactly() {
        let r = TraceRing::new(0, 4);
        for i in 0..11 {
            // SAFETY: this test thread is the only pusher.
            unsafe { r.push(ev(i)) };
        }
        // 11 pushed into 4 slots: exactly 7 oldest dropped.
        assert_eq!(r.total_events(), 11);
        assert_eq!(r.dropped_events(), 7);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        // The survivors are the newest four, oldest first.
        assert_eq!(evs.iter().map(|e| e.a).collect::<Vec<_>>(), [7, 8, 9, 10]);
    }

    #[test]
    fn retained_timestamps_are_monotonic() {
        let r = TraceRing::new(0, 16);
        for i in 0..100 {
            // SAFETY: this test thread is the only pusher.
            unsafe { r.push(ev(i)) };
        }
        let evs = r.events();
        assert!(evs.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let r = TraceRing::new(0, 0);
        assert!(r.capacity() >= 2);
        // SAFETY: this test thread is the only pusher.
        unsafe { r.push(ev(0)) };
        assert_eq!(r.events().len(), 1);
    }
}
