//! Trace-derived per-thread CPU accounting — the load balancer's input.
//!
//! Projections-style measurement-based balancing needs each thread's
//! accumulated on-CPU time. Rather than threading a `load_ns` field
//! through every Tcb and migration record by hand, the scheduler owns
//! one [`LoadTracker`]: `begin()` at switch-in, `end(tid)` at
//! switch-out, and the balancer reads the accumulated map. This stays
//! on even when event recording is gated off — LB correctness must not
//! depend on whether someone wants a timeline.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Thread ids are sequential process-wide counters, and `end()` sits on
/// the context-switch hot path — hashing the key is wasted work, so the
/// map uses the id itself.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type IdMap = HashMap<u64, u64, BuildHasherDefault<IdHasher>>;

/// Accumulates per-thread on-CPU nanoseconds for one scheduler.
///
/// Keys are thread ids (`Tid.0`). The scheduler is non-preemptive, so
/// bursts never nest: one `begin` is always closed by one `end`.
#[derive(Debug, Default)]
pub struct LoadTracker {
    loads: IdMap,
    t0: u64,
}

impl LoadTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of an on-CPU burst (at switch-in).
    #[inline]
    pub fn begin(&mut self) {
        self.t0 = flows_sys::time::load_clock_ns();
    }

    /// Close the burst opened by the last [`begin`](Self::begin),
    /// charge it to `tid`, and return its length in ns.
    #[inline]
    pub fn end(&mut self, tid: u64) -> u64 {
        let burst = flows_sys::time::load_clock_ns().saturating_sub(self.t0);
        *self.loads.entry(tid).or_insert(0) += burst;
        burst
    }

    /// Accumulated on-CPU ns for `tid` (0 if never seen).
    pub fn get(&self, tid: u64) -> u64 {
        self.loads.get(&tid).copied().unwrap_or(0)
    }

    /// Overwrite `tid`'s accumulated load (migration unpack restores the
    /// load carried in from the source PE).
    pub fn set(&mut self, tid: u64, ns: u64) {
        self.loads.insert(tid, ns);
    }

    /// Remove and return `tid`'s accumulated load (migration pack,
    /// thread exit).
    pub fn take(&mut self, tid: u64) -> u64 {
        self.loads.remove(&tid).unwrap_or(0)
    }

    /// Zero one thread's accumulated load (LB epoch boundary).
    pub fn reset(&mut self, tid: u64) {
        self.loads.remove(&tid);
    }

    /// Zero every thread's accumulated load.
    pub fn reset_all(&mut self) {
        self.loads.clear();
    }

    /// Iterate `(tid, accumulated ns)` pairs (unordered).
    pub fn loads(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.loads.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_accumulate_per_thread() {
        let mut t = LoadTracker::new();
        t.begin();
        std::hint::black_box((0..1000).sum::<u64>());
        let b1 = t.end(7);
        t.begin();
        let b2 = t.end(7);
        assert_eq!(t.get(7), b1 + b2);
        assert_eq!(t.get(8), 0);
    }

    #[test]
    fn set_take_reset_roundtrip() {
        let mut t = LoadTracker::new();
        t.set(1, 500);
        t.set(2, 900);
        assert_eq!(t.take(1), 500);
        assert_eq!(t.take(1), 0);
        t.reset(2);
        assert_eq!(t.get(2), 0);
        t.set(3, 4);
        t.reset_all();
        assert_eq!(t.loads().count(), 0);
    }
}
