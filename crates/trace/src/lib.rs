//! # flows-trace — Projections-style runtime tracing and metrics
//!
//! The paper's evidence — per-PE timelines, grainsize histograms,
//! utilization plots, and the measurement-based load balancer's input —
//! all comes from Charm++'s *Projections* tracing layer. This crate is
//! that layer for the reproduction:
//!
//! * a per-PE single-writer [`TraceRing`] of fixed-size [`Event`]s,
//!   timestamped with the vDSO clock (`flows_sys::time::load_clock_ns`),
//!   a few nanoseconds per event when enabled;
//! * a compile-time feature (`ring`, default on) **and** a process-wide
//!   runtime gate ([`set_enabled`]): with the feature off [`emit`]
//!   compiles to nothing, with the gate off it is one relaxed atomic
//!   load and a predictable branch;
//! * a [`LoadTracker`] accumulating per-thread on-CPU time — the load
//!   balancer's `ObjLoad` source (always on; independent of the ring
//!   gate, because LB correctness must not depend on tracing);
//! * a [`TraceSummary`] reducing raw rings to the paper's analyses
//!   (utilization, switch/message rates, grainsize histograms,
//!   migration timelines), pup- and JSON-serializable;
//! * a Chrome-trace exporter ([`chrome::chrome_trace_json`]) whose
//!   output opens directly in Perfetto / `chrome://tracing`.
//!
//! ### Recording discipline
//! Events are recorded through a thread-local *current ring* pointer,
//! installed around each span of PE driving (`flows-converse` installs
//! it in `Pe::enter`/`Pe::leave`; standalone schedulers and benches use
//! [`install_ring`]). A ring is written by exactly one OS thread at a
//! time and read only after its writer has quiesced (machine report
//! time, after joins) — which is what makes the ring lock-free.

#![warn(missing_docs)]

pub mod chrome;
mod event;
mod load;
mod ring;
pub mod san;
mod summary;

pub use event::{Event, EventKind};
pub use load::LoadTracker;
pub use ring::TraceRing;
pub use summary::{summarize, summarize_pe, MigRecord, PeTraceSummary, TraceSummary, GRAIN_BUCKETS};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Stack-flavor tags used in trace events — same encoding as the
/// migration wire format (`flows-core`), so tools agree on names.
pub const FLAVOR_NAMES: [&str; 4] = ["stack-copy", "isomalloc", "memory-alias", "standard"];

/// Human name of a flavor tag carried in an event payload.
pub fn flavor_name(tag: u64) -> &'static str {
    FLAVOR_NAMES.get(tag as usize).copied().unwrap_or("unknown")
}

/// The process-wide runtime gate. Off by default: a compiled-in but
/// disabled tracer costs one relaxed load per would-be event.
static GATE: AtomicBool = AtomicBool::new(false);

/// Is event recording currently enabled? Constant `false` when the
/// `ring` feature is compiled out (the call folds away entirely).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "ring") && GATE.load(Ordering::Relaxed)
}

/// Turn the process-wide recording gate on or off.
pub fn set_enabled(yes: bool) {
    GATE.store(yes, Ordering::Relaxed);
}

thread_local! {
    /// The ring receiving this OS thread's events right now (null = none).
    static CURRENT_RING: Cell<*const TraceRing> = const { Cell::new(std::ptr::null()) };
}

/// Install `next` as the calling OS thread's event destination, returning
/// the previous pointer (restore it when the span ends). Pass null to
/// uninstall.
///
/// # Safety
/// The caller must guarantee the pointed-to ring outlives the span during
/// which it is installed (every [`emit`] between this call and the
/// restoring call dereferences it). `flows-converse` satisfies this by
/// holding the ring in an `Arc` on the `Pe` it installs around.
pub unsafe fn swap_current(next: *const TraceRing) -> *const TraceRing {
    CURRENT_RING.with(|c| c.replace(next))
}

/// The raw pointer for [`swap_current`] from an optional shared ring.
pub fn ring_ptr(ring: Option<&Arc<TraceRing>>) -> *const TraceRing {
    ring.map_or(std::ptr::null(), Arc::as_ptr)
}

/// RAII installation of a ring for the calling OS thread (benches, tests,
/// standalone schedulers). Restores the previous ring on drop.
pub struct RingGuard {
    prev: *const TraceRing,
    /// Keeps the ring alive for the installation span.
    _ring: Arc<TraceRing>,
}

/// Install `ring` as the calling thread's event destination until the
/// returned guard drops.
pub fn install_ring(ring: &Arc<TraceRing>) -> RingGuard {
    // SAFETY: the guard holds an Arc clone, so the ring outlives the span.
    let prev = unsafe { swap_current(Arc::as_ptr(ring)) };
    RingGuard {
        prev,
        _ring: ring.clone(),
    }
}

impl Drop for RingGuard {
    fn drop(&mut self) {
        // SAFETY: restoring the pointer that was current before install.
        unsafe {
            swap_current(self.prev);
        }
    }
}

/// Record one event on the calling thread's current ring, timestamped
/// now. A no-op when the gate is off or no ring is installed; the
/// disabled fast path is one relaxed load and a branch.
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64, c: u64) {
    if !enabled() {
        return;
    }
    emit_now(kind, a, b, c);
}

/// The gated slow half of [`emit`], outlined so the disabled path stays
/// branch-and-return.
fn emit_now(kind: EventKind, a: u64, b: u64, c: u64) {
    CURRENT_RING.with(|cur| {
        let p = cur.get();
        if p.is_null() {
            return;
        }
        let ts = flows_sys::time::load_clock_ns();
        // SAFETY: the installer of `p` guarantees the ring outlives the
        // installation span (see `swap_current`).
        unsafe { (*p).push(Event { ts, kind, a, b, c }) }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_ring_or_gate_is_a_noop() {
        set_enabled(false);
        emit(EventKind::Mark, 1, 2, 3); // no ring, gate off: nothing happens
        set_enabled(true);
        emit(EventKind::Mark, 1, 2, 3); // gate on but no ring: still nothing
        set_enabled(false);
    }

    #[test]
    fn install_ring_routes_events_and_restores() {
        let ring = Arc::new(TraceRing::new(0, 64));
        set_enabled(true);
        {
            let _g = install_ring(&ring);
            emit(EventKind::Mark, 7, 8, 9);
        }
        emit(EventKind::Mark, 0, 0, 0); // guard dropped: not recorded
        set_enabled(false);
        let evs = ring.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Mark);
        assert_eq!((evs[0].a, evs[0].b, evs[0].c), (7, 8, 9));
        assert!(evs[0].ts > 0);
    }

    #[test]
    fn gate_off_records_nothing_even_with_ring() {
        let ring = Arc::new(TraceRing::new(0, 64));
        set_enabled(false);
        let _g = install_ring(&ring);
        for _ in 0..1000 {
            emit(EventKind::MsgSend, 1, 2, 3);
        }
        assert_eq!(ring.total_events(), 0);
    }

    #[test]
    fn flavor_names_cover_tags() {
        assert_eq!(flavor_name(0), "stack-copy");
        assert_eq!(flavor_name(3), "standard");
        assert_eq!(flavor_name(99), "unknown");
    }

    #[test]
    fn disabled_emit_is_cheap() {
        // Satellite: tracing compiled in but gated off must be noise.
        // 10M disabled emits in well under a second even on a slow host
        // (~a nanosecond each); the generous bound avoids CI flakiness.
        set_enabled(false);
        let t0 = std::time::Instant::now();
        for i in 0..10_000_000u64 {
            emit(EventKind::SwitchIn, i, 0, 0);
        }
        let per = t0.elapsed().as_nanos() as f64 / 10_000_000.0;
        assert!(per < 50.0, "disabled emit costs {per:.1} ns, want < 50");
    }
}
