//! The compact event taxonomy and its fixed-size record.

/// What happened. Mirrors the Projections taxonomy the paper's figures
/// are built from, plus this reproduction's fault-injection and
/// virtual-time events. The per-kind meaning of the `a`/`b`/`c` payload
/// words is documented on each variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// User annotation. `a`/`b`/`c` free-form.
    #[default]
    Mark = 0,
    /// Thread created. `a`=tid, `b`=stack flavor tag, `c`=stack bytes.
    ThreadCreate,
    /// Thread ran to completion. `a`=tid, `b`=lifetime on-CPU ns.
    ThreadExit,
    /// Scheduler is switching a thread in. `a`=tid, `b`=flavor tag.
    SwitchIn,
    /// Thread yielded or blocked. `a`=tid, `b`=burst ns just spent
    /// on-CPU, `c`=flavor tag. One `SwitchOut` closes one `SwitchIn`.
    SwitchOut,
    /// Message handed to the network. `a`=dest PE, `b`=payload bytes,
    /// `c`=handler id.
    MsgSend,
    /// Message delivered to its handler. `a`=source PE, `b`=payload
    /// bytes, `c`=handler id.
    MsgRecv,
    /// Thread packed for migration. `a`=tid, `b`=packed bytes,
    /// `c`=flavor tag.
    MigPack,
    /// Thread unpacked after migration. `a`=tid, `b`=packed bytes,
    /// `c`=flavor tag.
    MigUnpack,
    /// Checkpoint snapshot taken. `a`=rank, `b`=sequence, `c`=bytes.
    Checkpoint,
    /// Load-balance epoch completed. `a`=epoch sequence, `b`=migrations
    /// planned, `c`=object reports collected.
    LbEpoch,
    /// Fault layer dropped a packet. `a`=dest PE, `b`=sequence,
    /// `c`=attempt.
    FaultDrop,
    /// Reliable link retransmitted. `a`=dest PE, `b`=sequence,
    /// `c`=attempt.
    FaultRetransmit,
    /// Injected PE crash observed. `a`=PE.
    FaultCrash,
    /// Injected PE stall window entered. `a`=PE, `b`=stall ns.
    FaultStall,
    /// BigSim advanced virtual time. `a`=virtual ns now, `b`=events
    /// executed so far.
    VtStep,
    /// A runtime sanitizer detector fired (the `sanitize` cargo feature of
    /// the memory/threading crates). `a`=check code
    /// ([`crate::san::SanCheck`]), `b`/`c`=check-specific detail words
    /// (typically the offending address and the expected value). Recorded
    /// immediately before the process aborts, so a flushed ring's last
    /// event explains the death.
    SanTrip,
    /// Failure detector crossed the suspicion threshold for a peer.
    /// `a`=suspected PE, `b`=phi scaled by 1000, `c`=silence ns.
    FtSuspect,
    /// A suspected peer's heartbeats resumed; suspicion withdrawn.
    /// `a`=cleared PE, `b`=silence ns at clearing.
    FtClear,
    /// The recovery leader confirmed a peer dead (fencing committed).
    /// `a`=dead PE, `b`=phi scaled by 1000.
    FtConfirm,
    /// A PE rolled its local ranks back to a committed checkpoint
    /// generation. `a`=generation, `b`=ranks rolled back, `c`=epoch.
    FtRollback,
    /// A PE adopted and respawned an orphan rank of a dead peer.
    /// `a`=rank, `b`=dead PE, `c`=generation.
    FtRespawn,
    /// Online recovery completed; normal work resumed. `a`=dead PE,
    /// `b`=epoch.
    FtResume,
    /// A per-PE slot-memory reclaim list was flushed: one batch of
    /// deferred remaps/discards instead of one syscall per vacated
    /// window or slot. `a`=PE, `b`=windows/slots released, `c`=pool
    /// kind (0 = alias windows, 1 = isomalloc slots).
    RemapBatch,
    /// An isomalloc heap widened its committed extent on demand (commit
    /// happens on first allocation touching the range, not eagerly at
    /// slab build). `a`=slot global index, `b`=arena offset, `c`=bytes.
    LazyCommit,
    /// An idle PE asked a busier victim for run-queue tail threads.
    /// `a`=victim PE, `b`=thief PE, `c`=victim's published runnable count
    /// at selection time.
    StealAttempt,
    /// A thief absorbed donated threads from its steal inbox. `a`=thief
    /// PE, `b`=threads absorbed, `c`=packed bytes absorbed.
    StealHit,
}

impl EventKind {
    /// Stable short name (used by exporters and grep-based checks).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Mark => "mark",
            EventKind::ThreadCreate => "thread_create",
            EventKind::ThreadExit => "thread_exit",
            EventKind::SwitchIn => "switch_in",
            EventKind::SwitchOut => "switch_out",
            EventKind::MsgSend => "msg_send",
            EventKind::MsgRecv => "msg_recv",
            EventKind::MigPack => "mig_pack",
            EventKind::MigUnpack => "mig_unpack",
            EventKind::Checkpoint => "checkpoint",
            EventKind::LbEpoch => "lb_epoch",
            EventKind::FaultDrop => "fault_drop",
            EventKind::FaultRetransmit => "fault_retransmit",
            EventKind::FaultCrash => "fault_crash",
            EventKind::FaultStall => "fault_stall",
            EventKind::VtStep => "vt_step",
            EventKind::SanTrip => "san_trip",
            EventKind::FtSuspect => "ft_suspect",
            EventKind::FtClear => "ft_clear",
            EventKind::FtConfirm => "ft_confirm",
            EventKind::FtRollback => "ft_rollback",
            EventKind::FtRespawn => "ft_respawn",
            EventKind::FtResume => "ft_resume",
            EventKind::RemapBatch => "remap_batch",
            EventKind::LazyCommit => "lazy_commit",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealHit => "steal_hit",
        }
    }
}

/// One fixed-size trace record: a vDSO timestamp, a kind, and three
/// kind-specific payload words. 40 bytes, copied into the ring by value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Event {
    /// Nanosecond timestamp from `flows_sys::time::load_clock_ns`.
    pub ts: u64,
    /// Event kind; payload meaning is per-kind (see [`EventKind`]).
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}
