//! # flows-bigsim — simulating a huge machine with user-level threads
//!
//! A reproduction of the BigSim experiment (paper §4.4, refs [43][44]):
//! predicting the per-timestep behaviour of a molecular-dynamics run on a
//! machine with hundreds of thousands of processors, using only a handful
//! of real ("simulating") PEs. Each *target processor* is one user-level
//! thread — the paper simulates 200 000 target processors as 200 000
//! Converse threads, far beyond what processes or kernel threads allow
//! (Table 2) — and that is the entire point of the experiment.
//!
//! The MD-like workload: every target processor owns a patch of particles
//! and, per timestep, runs a short-range force kernel over them (real
//! floating-point work), publishes a summary that its ring neighbours
//! read (cross-thread data flow), and joins a step barrier implemented
//! with cooperative yields.
//!
//! Figure 11 plots simulation time per step against the number of
//! simulating processors. On this 1-core host the *modeled* per-step time
//! (max over PEs of per-step busy time) carries the scaling shape; wall
//! time is also reported.

#![warn(missing_docs)]

use flows_converse::{FaultPlan, FaultSummary, MachineBuilder, NetModel};
use flows_core::{yield_now, StackFlavor};
use flows_sys::time::monotonic_ns;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Model of the *target* machine being predicted (BigSim's raison
/// d'être: forecasting a petascale machine from a small one, §4.4).
#[derive(Debug, Clone, Copy)]
pub struct TargetModel {
    /// Target processor speed relative to the simulating host (e.g. 0.25 =
    /// each target CPU runs the kernel 4x slower than this host).
    pub cpu_ratio: f64,
    /// Per-message latency of the target interconnect, nanoseconds.
    pub net_latency_ns: u64,
}

impl Default for TargetModel {
    fn default() -> Self {
        // A Blue-Gene-like target: slow simple cores, fast torus.
        TargetModel {
            cpu_ratio: 0.25,
            net_latency_ns: 3_000,
        }
    }
}

/// Configuration of one BigSim run.
#[derive(Debug, Clone)]
pub struct BigSimConfig {
    /// Number of simulated target processors (= user-level threads).
    pub target_procs: usize,
    /// Number of simulating PEs.
    pub sim_pes: usize,
    /// Timesteps to simulate.
    pub steps: usize,
    /// Particles per target processor (work scale of the MD kernel).
    pub particles_per_proc: usize,
    /// Thread stack bytes (the paper's Cth threads are small).
    pub stack_bytes: usize,
    /// Drive PEs on OS threads (`false` = deterministic).
    pub threaded: bool,
    /// The target machine being predicted.
    pub target: TargetModel,
    /// Transport fault plan (drop/duplicate/delay/reorder). BigSim's
    /// target threads use `StackFlavor::Standard` stacks, which cannot be
    /// packed, so PE crashes are *not* recoverable here — the plan must
    /// not script any (`run` asserts this). Lossy links are survived by
    /// the reliable transport.
    pub faults: Option<FaultPlan>,
    /// Record a Projections-style event trace (including per-step
    /// virtual-time marks) into per-PE rings; the summary rides in
    /// [`BigSimReport::trace`].
    pub tracing: bool,
}

impl BigSimConfig {
    /// A laptop-scale default: 2 000 target processors on 2 PEs.
    pub fn small() -> BigSimConfig {
        BigSimConfig {
            target_procs: 2_000,
            sim_pes: 2,
            steps: 3,
            particles_per_proc: 16,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        }
    }
}

/// Results of a BigSim run.
#[derive(Debug, Clone)]
pub struct BigSimReport {
    /// Echo of the configuration.
    pub target_procs: usize,
    /// Echo of the configuration.
    pub sim_pes: usize,
    /// Steps simulated.
    pub steps: usize,
    /// Wall-clock nanoseconds for the whole run (host time).
    pub wall_ns: u64,
    /// Wall-clock nanoseconds per step as observed by target processor 0.
    pub per_step_wall_ns: Vec<u64>,
    /// Modeled parallel time per step: `max_pe(vtime) / steps`.
    pub modeled_step_ns: u64,
    /// Total context switches performed by the simulators.
    pub switches: u64,
    /// A deterministic checksum of the final particle state (validates
    /// that different PE counts compute the same simulation).
    pub checksum: u64,
    /// BigSim's actual product: the predicted per-step execution time of
    /// the *target* machine (max over target processors of kernel time /
    /// cpu_ratio, plus one ghost-exchange latency), nanoseconds.
    pub predicted_target_step_ns: u64,
    /// Per-step progress tokens received machine-wide. Target processor 0
    /// sends a burst to every PE each step; with a lossy plan the reliable
    /// transport must still deliver each exactly once, so this equals
    /// `steps * sim_pes * TOKENS_PER_STEP` whatever the fault rate.
    pub step_tokens: u64,
    /// Fault/recovery counters (present iff a plan was attached).
    pub faults: Option<FaultSummary>,
    /// Trace summary (present iff `cfg.tracing`).
    pub trace: Option<flows_converse::TraceSummary>,
}

/// Cross-PE progress tokens sent per (step, destination PE) — enough
/// traffic that even low-probability transport faults get exercised.
pub const TOKENS_PER_STEP: u64 = 4;

/// A cooperative step barrier for user-level threads: arrivals count up;
/// the last arrival advances the generation; waiters spin through
/// `yield_now`, letting every other thread on their PE run.
struct StepBarrier {
    arrived: AtomicUsize,
    generation: AtomicU64,
    parties: usize,
}

impl StepBarrier {
    fn new(parties: usize) -> StepBarrier {
        StepBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            parties,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                yield_now();
            }
        }
    }
}

/// The per-particle MD kernel: a cheap but real pairwise interaction over
/// the local patch plus the two ring-neighbour summaries.
fn md_kernel(positions: &mut [f64], left: f64, right: f64) -> f64 {
    let n = positions.len();
    let mut energy = 0.0;
    for i in 0..n {
        let mut force = 0.0;
        for j in 0..n {
            if i != j {
                let dx = positions[i] - positions[j] + 1e-3;
                force += 1.0 / (dx * dx + 1.0);
            }
        }
        force += 0.1 * (left - positions[i]) + 0.1 * (right - positions[i]);
        positions[i] += 1e-4 * force;
        energy += force * force;
    }
    energy
}

/// Run the simulation.
pub fn run(cfg: &BigSimConfig) -> BigSimReport {
    assert!(cfg.target_procs >= cfg.sim_pes && cfg.sim_pes > 0 && cfg.steps > 0);
    let barrier = Arc::new(StepBarrier::new(cfg.target_procs));
    // Each target processor publishes a per-step summary its ring
    // neighbours read. Double-buffered by step parity so every thread
    // reads exactly the *previous* step's values regardless of
    // within-step scheduling order — the simulation result must not
    // depend on how many PEs simulate it.
    let published: Arc<[Vec<AtomicU64>; 2]> = Arc::new([
        (0..cfg.target_procs).map(|_| AtomicU64::new(0)).collect(),
        (0..cfg.target_procs).map(|_| AtomicU64::new(0)).collect(),
    ]);
    let step_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let checksum = Arc::new(AtomicU64::new(0));
    // Aggregate per-(target processor, step) kernel CPU time (ns).
    let kernel_total_ns = Arc::new(AtomicU64::new(0));
    let kernel_count = Arc::new(AtomicU64::new(0));

    let cfg2 = cfg.clone();
    let barrier2 = barrier.clone();
    let published2 = published.clone();
    let step_times2 = step_times.clone();
    let checksum2 = checksum.clone();
    let kernel_total2 = kernel_total_ns.clone();
    let kernel_count2 = kernel_count.clone();

    let mut mb = MachineBuilder::new(cfg.sim_pes)
        .net_model(NetModel::zero())
        .tracing(cfg.tracing);
    if let Some(plan) = &cfg.faults {
        assert!(
            plan.crashes.is_empty(),
            "BigSim target threads use Standard stacks and cannot be \
             checkpointed — transport faults only, no PE crashes"
        );
        mb = mb.fault_plan(plan.clone());
    }
    let step_tokens = Arc::new(AtomicU64::new(0));
    let tokens_rx = step_tokens.clone();
    let token_handler = mb.handler(move |_, _| {
        tokens_rx.fetch_add(1, Ordering::Relaxed);
    });

    let t0 = monotonic_ns();
    let init = move |pe: &flows_converse::Pe| {
        let me = pe.id();
        let pes = pe.num_pes();
        for tp in 0..cfg2.target_procs {
            if tp * pes / cfg2.target_procs != me {
                continue;
            }
            let cfg = cfg2.clone();
            let barrier = barrier2.clone();
            let published = published2.clone();
            let step_times = step_times2.clone();
            let checksum = checksum2.clone();
            let kernel_total = kernel_total2.clone();
            let kernel_samples = kernel_count2.clone();
            pe.sched()
                .spawn_with(StackFlavor::Standard, cfg.stack_bytes, move || {
                    let n = cfg.target_procs;
                    let mut positions: Vec<f64> = (0..cfg.particles_per_proc)
                        .map(|i| (tp * 31 + i * 7 % 97) as f64 * 0.01)
                        .collect();
                    let mut t_last = monotonic_ns();
                    for step in 0..cfg.steps {
                        let read_buf = &published[step % 2];
                        let write_buf = &published[(step + 1) % 2];
                        let left =
                            f64::from_bits(read_buf[(tp + n - 1) % n].load(Ordering::Relaxed));
                        let right =
                            f64::from_bits(read_buf[(tp + 1) % n].load(Ordering::Relaxed));
                        let k0 = flows_sys::time::thread_cpu_ns();
                        let e = md_kernel(&mut positions, left, right);
                        let kernel_ns = flows_sys::time::thread_cpu_ns().saturating_sub(k0);
                        kernel_total.fetch_add(kernel_ns, Ordering::Relaxed);
                        kernel_samples.fetch_add(1, Ordering::Relaxed);
                        write_buf[tp].store(
                            (positions.iter().sum::<f64>() / positions.len().max(1) as f64)
                                .to_bits(),
                            Ordering::Relaxed,
                        );
                        std::hint::black_box(e);
                        // Cross-PE progress tokens: real message traffic
                        // for the (possibly lossy) transport to chew on.
                        if tp == 0 {
                            flows_converse::with_pe(|pe| {
                                for dest in 0..pe.num_pes() {
                                    for _ in 0..TOKENS_PER_STEP {
                                        pe.send(dest, token_handler, vec![step as u8]);
                                    }
                                }
                            });
                            flows_trace::emit(
                                flows_trace::EventKind::VtStep,
                                flows_converse::vtime_ns(),
                                step as u64,
                                0,
                            );
                        }
                        barrier.wait();
                        if tp == 0 {
                            let now = monotonic_ns();
                            step_times.lock().unwrap().push(now - t_last);
                            t_last = now;
                        }
                    }
                    // Deterministic digest of the final state.
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for p in &positions {
                        h = (h ^ p.to_bits()).wrapping_mul(0x100_0000_01b3);
                    }
                    checksum.fetch_add(h, Ordering::Relaxed);
                })
                .expect("spawn target processor");
        }
    };
    let report = if cfg.threaded {
        mb.run(init)
    } else {
        mb.run_deterministic(init)
    };
    let wall_ns = monotonic_ns() - t0;
    let per_step_wall_ns = step_times.lock().unwrap().clone();

    // Predict the target machine: the mean per-processor kernel time
    // (homogeneous workload; mean is robust to host timer noise), scaled
    // by the target CPU speed, plus one ghost exchange per step.
    let mean_kernel = kernel_total_ns.load(Ordering::Relaxed) as f64
        / kernel_count.load(Ordering::Relaxed).max(1) as f64;
    let predicted = mean_kernel / cfg.target.cpu_ratio + cfg.target.net_latency_ns as f64;
    BigSimReport {
        target_procs: cfg.target_procs,
        sim_pes: cfg.sim_pes,
        steps: cfg.steps,
        wall_ns,
        per_step_wall_ns,
        modeled_step_ns: report.parallel_time_ns() / cfg.steps as u64,
        switches: report.sched_stats.iter().map(|s| s.switches).sum(),
        checksum: checksum.load(Ordering::Relaxed),
        predicted_target_step_ns: predicted as u64,
        step_tokens: step_tokens.load(Ordering::Relaxed),
        faults: report.faults,
        trace: report.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_simulation_completes() {
        let cfg = BigSimConfig {
            target_procs: 64,
            sim_pes: 2,
            steps: 3,
            particles_per_proc: 8,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        };
        let r = run(&cfg);
        assert_eq!(r.per_step_wall_ns.len(), 3);
        assert!(r.switches >= 64 * 3, "every thread must run every step");
        assert!(r.modeled_step_ns > 0);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn checksum_is_independent_of_pe_count() {
        // The simulation's answer must not depend on how many simulating
        // PEs host the threads (deterministic drive mode; the published
        // ghost values are step-synchronized by the barrier).
        let base = BigSimConfig {
            target_procs: 32,
            sim_pes: 1,
            steps: 2,
            particles_per_proc: 6,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        };
        let a = run(&base);
        let b = run(&BigSimConfig {
            sim_pes: 4,
            ..base.clone()
        });
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn modeled_time_scales_down_with_more_pes() {
        let base = BigSimConfig {
            target_procs: 256,
            sim_pes: 1,
            steps: 2,
            particles_per_proc: 12,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        };
        let t1 = run(&base).modeled_step_ns as f64;
        let t4 = run(&BigSimConfig {
            sim_pes: 4,
            ..base.clone()
        })
        .modeled_step_ns as f64;
        assert!(
            t4 < t1 * 0.6,
            "4 simulating PEs should model ≥1.67x faster: {t1} vs {t4}"
        );
    }

    #[test]
    fn thousands_of_threads_on_one_pe() {
        // The headline capability: far more flows than any kernel
        // mechanism would allow per Table 2, on one PE.
        let cfg = BigSimConfig {
            target_procs: 5_000,
            sim_pes: 1,
            steps: 1,
            particles_per_proc: 2,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        };
        let r = run(&cfg);
        assert!(r.switches >= 5_000);
    }

    #[test]
    fn lossy_transport_leaves_the_simulation_exact() {
        let clean = BigSimConfig {
            target_procs: 32,
            sim_pes: 2,
            steps: 3,
            particles_per_proc: 6,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel::default(),
            faults: None,
            tracing: false,
        };
        let a = run(&clean);
        let faulty = BigSimConfig {
            faults: Some(
                FaultPlan::new(0xB165)
                    .drop_prob(0.2)
                    .dup_prob(0.2)
                    .reorder_prob(0.1),
            ),
            ..clean.clone()
        };
        let b = run(&faulty);
        assert_eq!(a.checksum, b.checksum, "faults must not change the answer");
        let expected_tokens = (clean.steps * clean.sim_pes) as u64 * TOKENS_PER_STEP;
        assert_eq!(a.step_tokens, expected_tokens);
        assert_eq!(b.step_tokens, expected_tokens, "exactly-once under loss");
        let f = b.faults.expect("fault counters present");
        assert!(f.dropped > 0, "the plan actually dropped packets");
        assert!(f.retransmits >= f.dropped, "every drop was repaired");
    }

    #[test]
    #[should_panic(expected = "transport faults only")]
    fn scripted_crashes_are_refused() {
        let cfg = BigSimConfig {
            faults: Some(FaultPlan::new(1).crash_pe(0, 1)),
            ..BigSimConfig::small()
        };
        let _ = run(&cfg);
    }

    #[test]
    fn barrier_synchronizes_generations() {
        let b = StepBarrier::new(1);
        b.wait(); // single party never blocks
        b.wait();
        assert_eq!(b.generation.load(Ordering::Relaxed), 2);
    }
}

#[cfg(test)]
mod prediction_tests {
    use super::*;

    #[test]
    fn target_prediction_scales_with_cpu_ratio() {
        let mut cfg = BigSimConfig {
            target_procs: 64,
            sim_pes: 1,
            steps: 2,
            particles_per_proc: 24,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel {
                cpu_ratio: 1.0,
                net_latency_ns: 0,
            },
            faults: None,
            tracing: false,
        };
        let fast = run(&cfg).predicted_target_step_ns;
        cfg.target.cpu_ratio = 0.25;
        let slow = run(&cfg).predicted_target_step_ns;
        assert!(
            slow as f64 > fast as f64 * 2.0,
            "a 4x slower target must predict much slower steps: {fast} vs {slow}"
        );
        // The prediction is independent of how many PEs simulate it.
        cfg.sim_pes = 4;
        let slow4 = run(&cfg).predicted_target_step_ns;
        let ratio = slow as f64 / slow4 as f64;
        assert!(
            (0.2..5.0).contains(&ratio),
            "prediction should not depend strongly on simulator size: {slow} vs {slow4}"
        );
    }

    #[test]
    fn network_latency_floors_the_prediction() {
        let cfg = BigSimConfig {
            target_procs: 16,
            sim_pes: 1,
            steps: 1,
            particles_per_proc: 1,
            stack_bytes: 16 * 1024,
            threaded: false,
            target: TargetModel {
                cpu_ratio: 1.0,
                net_latency_ns: 5_000_000,
            },
            faults: None,
            tracing: false,
        };
        let r = run(&cfg);
        assert!(r.predicted_target_step_ns >= 5_000_000);
    }
}
