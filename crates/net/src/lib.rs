//! # flows-net — multi-process & multi-host transport for the flows machine
//!
//! The converse machine's PEs normally exchange packets over in-process
//! channels. This crate carries the same header+tail wire format across
//! *process* boundaries so one machine can span `N processes × M PEs`
//! (and, over TCP, multiple hosts):
//!
//! * [`frame`] — the framed wire format (a fixed header plus an
//!   uninterpreted body) shared by every backend;
//! * [`shm`] — lock-free single-producer/single-consumer rings in a
//!   `memfd`-backed segment, futex doorbells for blocking, and
//!   zero-copy delivery: a received body is a [`flows_core::Payload`]
//!   view *into the shared arena*, freed back to the ring when the last
//!   view drops;
//! * [`sock`] — a full mesh of Unix-domain or TCP streams reusing the
//!   counted framed I/O in `flows_sys::sock`;
//! * [`topo`] — topology bring-up (spawn-children and attach-by-address
//!   modes, meta-file handshake) and orderly leader shutdown (child
//!   reaping, exit-status propagation, session unlink).
//!
//! The crate deliberately knows nothing about PEs, links, or handlers —
//! it moves [`Frame`]s between process ranks. The converse layer owns
//! the Packet↔Frame codec and the machine-wide protocols.

#![warn(missing_docs)]

pub mod frame;
pub mod shm;
pub mod sock;
pub mod topo;

pub use frame::{ctrl, Frame, FrameKind, Header, HEADER_LEN};
pub use shm::{Segment, ShmTransport, DEFAULT_SLOTS, DEFAULT_SLOT_BYTES};
pub use sock::SockTransport;
pub use topo::{
    attach, attach_from_env, child_rank, launch_or_attach, Backend, TopologySpec, World,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A transport endpoint: frames in, frames out, between process ranks.
/// Implementations must be callable from many sender threads at once;
/// `try_recv`/`park` are only ever called by one comm thread.
pub trait Transport: Send + Sync {
    /// This process's rank.
    fn rank(&self) -> usize;
    /// Number of processes in the topology.
    fn procs(&self) -> usize;
    /// Send a frame to `dst` (silently dropped if `dst` is dead).
    fn send(&self, dst: usize, frame: &Frame);
    /// Next pending frame from any peer.
    fn try_recv(&self) -> Option<(usize, Frame)>;
    /// Block until traffic arrives or `timeout` elapses.
    fn park(&self, timeout: Duration);
    /// Stop sending to `proc` and never block on its rings again.
    fn mark_dead(&self, proc: usize);
    /// The shared arena's address range, when the backend has one.
    fn shm_range(&self) -> Option<(usize, usize)> {
        None
    }
    /// Release any blocking resources (streams, reader threads).
    fn close(&self) {}
}

impl Transport for ShmTransport {
    fn rank(&self) -> usize {
        self.rank_of()
    }
    fn procs(&self) -> usize {
        ShmTransport::segment(self).procs()
    }
    fn send(&self, dst: usize, frame: &Frame) {
        ShmTransport::send(self, dst, frame)
    }
    fn try_recv(&self) -> Option<(usize, Frame)> {
        ShmTransport::try_recv(self)
    }
    fn park(&self, timeout: Duration) {
        ShmTransport::park(self, timeout)
    }
    fn mark_dead(&self, proc: usize) {
        ShmTransport::mark_dead(self, proc)
    }
    fn shm_range(&self) -> Option<(usize, usize)> {
        Some(ShmTransport::segment(self).range())
    }
}

impl Transport for SockTransport {
    fn rank(&self) -> usize {
        self.rank_of()
    }
    fn procs(&self) -> usize {
        self.procs_of()
    }
    fn send(&self, dst: usize, frame: &Frame) {
        SockTransport::send(self, dst, frame)
    }
    fn try_recv(&self) -> Option<(usize, Frame)> {
        SockTransport::try_recv(self)
    }
    fn park(&self, timeout: Duration) {
        SockTransport::park(self, timeout)
    }
    fn mark_dead(&self, proc: usize) {
        SockTransport::mark_dead(self, proc)
    }
    fn close(&self) {
        SockTransport::close(self)
    }
}

/// Process-wide count of message-body staging copies taken by the shm
/// backend (the spill path for frames bigger than a ring slot). The
/// zero-copy fast path never bumps it, which is exactly what the
/// acceptance tests pin.
static BODY_COPIES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump_body_copies() {
    BODY_COPIES.fetch_add(1, Ordering::Relaxed);
}

/// Total body staging copies this process has taken (see
/// [`bump_body_copies`]'s doc on the static).
pub fn body_copies() -> u64 {
    BODY_COPIES.load(Ordering::Relaxed)
}
