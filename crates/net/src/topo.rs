//! Topology bring-up: describing an `N processes × M PEs` machine,
//! spawning or attaching its processes, and tearing it down cleanly.
//!
//! Bring-up is file-based. The leader (rank 0) creates a session
//! directory containing a `meta` file — magic, geometry, backend, and
//! the attach coordinates (leader pid + memfd number for shm, port base
//! for TCP) — then either spawns the other ranks itself (re-executing
//! its own binary with `FLOWS_NET_RANK`/`FLOWS_NET_DIR` in the
//! environment) or waits for independently started processes to attach
//! by reading the same meta file. Shared-memory attach reopens the
//! leader's memfd through `/proc/<pid>/fd/<n>`; socket attach dials by
//! the `p{rank}.sock` / `base + rank` convention.
//!
//! Shutdown is the leader's job: close the transport, reap every child,
//! propagate nonzero exit statuses, and unlink the session directory so
//! no memfd link or socket file outlives the machine.

use crate::frame::Frame;
use crate::shm::{Segment, ShmTransport, DEFAULT_SLOTS, DEFAULT_SLOT_BYTES};
use crate::sock::SockTransport;
use crate::Transport;
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable carrying a spawned child's process rank.
pub const ENV_RANK: &str = "FLOWS_NET_RANK";
/// Environment variable carrying the session directory path.
pub const ENV_DIR: &str = "FLOWS_NET_DIR";

/// How long bring-up waits for the full topology to assemble.
const BRINGUP_TIMEOUT: Duration = Duration::from_secs(30);
/// How long shutdown waits for a child before killing it.
const REAP_TIMEOUT: Duration = Duration::from_secs(10);

/// Which transport carries inter-process frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Lock-free shared-memory rings over a memfd (intra-host).
    Shm,
    /// Unix-domain stream sockets (intra-host).
    Uds,
    /// TCP loopback/LAN sockets (multi-host capable).
    Tcp,
}

impl Backend {
    /// The name used in meta files and `--backend` flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Shm => "shm",
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
        }
    }

    /// Parse a `--backend` flag / meta-file value.
    pub fn parse(s: &str) -> Option<Backend> {
        Some(match s {
            "shm" => Backend::Shm,
            "uds" => Backend::Uds,
            "tcp" => Backend::Tcp,
            _ => return None,
        })
    }
}

/// The meta file's parsed contents.
struct Meta {
    procs: usize,
    pes_per_proc: usize,
    backend: Backend,
    leader_pid: i32,
    memfd_fd: i32,
    tcp_base: u16,
}

impl Meta {
    fn write(&self, dir: &Path) -> io::Result<()> {
        let body = format!(
            "flows-net 1\nprocs {}\npes_per_proc {}\nbackend {}\nleader_pid {}\nmemfd_fd {}\ntcp_base {}\n",
            self.procs,
            self.pes_per_proc,
            self.backend.as_str(),
            self.leader_pid,
            self.memfd_fd,
            self.tcp_base,
        );
        let tmp = dir.join("meta.tmp");
        std::fs::write(&tmp, body)?;
        // Rename so attachers never observe a half-written meta file.
        std::fs::rename(tmp, dir.join("meta"))
    }

    fn read(dir: &Path) -> io::Result<Meta> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, format!("meta: {m}"));
        let text = std::fs::read_to_string(dir.join("meta"))?;
        let mut fields = std::collections::HashMap::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 {
                if line != "flows-net 1" {
                    return Err(bad("bad magic line"));
                }
                continue;
            }
            let (k, v) = line.split_once(' ').ok_or_else(|| bad("bad line"))?;
            fields.insert(k.to_string(), v.to_string());
        }
        let get = |k: &str| fields.get(k).ok_or_else(|| bad(&format!("missing {k}")));
        let num = |k: &str| -> io::Result<i64> {
            get(k)?.parse().map_err(|_| bad(&format!("bad {k}")))
        };
        Ok(Meta {
            procs: num("procs")? as usize,
            pes_per_proc: num("pes_per_proc")? as usize,
            backend: Backend::parse(get("backend")?).ok_or_else(|| bad("bad backend"))?,
            leader_pid: num("leader_pid")? as i32,
            memfd_fd: num("memfd_fd")? as i32,
            tcp_base: num("tcp_base")? as u16,
        })
    }
}

/// Builder for an `N processes × M PEs` machine topology.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    procs: usize,
    pes_per_proc: usize,
    backend: Backend,
    child_args: Vec<String>,
    slots: usize,
    slot_bytes: usize,
    dir: Option<PathBuf>,
    migratable: bool,
}

impl TopologySpec {
    /// A topology of `procs` processes each driving `pes_per_proc` PEs.
    pub fn new(procs: usize, pes_per_proc: usize) -> TopologySpec {
        assert!(procs >= 2, "a multi-process topology needs >= 2 processes");
        assert!(pes_per_proc >= 1);
        TopologySpec {
            procs,
            pes_per_proc,
            backend: Backend::Shm,
            child_args: Vec::new(),
            slots: DEFAULT_SLOTS,
            slot_bytes: DEFAULT_SLOT_BYTES,
            dir: None,
            migratable: false,
        }
    }

    /// Declare that packed thread images will cross process boundaries in
    /// this topology (cross-process migration or recovery respawn).
    ///
    /// An image is a raw byte copy of a thread's isomalloc slot; the slot
    /// addresses are machine-wide constants, but the stack inside it also
    /// holds return addresses into the *text segment* — valid in another
    /// process only when the binary is mapped at the same base there.
    /// Under this flag [`TopologySpec::launch`] guarantees that layout:
    /// if ASLR is still on it sets `ADDR_NO_RANDOMIZE` and re-executes the
    /// current binary with identical arguments (children inherit the
    /// personality through spawn, exactly as `setarch -R` would arrange).
    /// Callers must therefore tolerate the process restarting from `main`
    /// once; idempotent test binaries and SPMD benchmarks do.
    pub fn migratable(mut self) -> TopologySpec {
        self.migratable = true;
        self
    }

    /// Select the transport backend (default: shared memory).
    pub fn backend(mut self, b: Backend) -> TopologySpec {
        self.backend = b;
        self
    }

    /// Arguments passed to spawned children (the leader re-executes its
    /// own binary; under `cargo test` this is typically
    /// `["<child_test_name>", "--exact", "--nocapture"]`).
    pub fn child_args<I: IntoIterator<Item = S>, S: Into<String>>(mut self, args: I) -> TopologySpec {
        self.child_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Override the shm ring geometry (tests).
    pub fn ring(mut self, slots: usize, slot_bytes: usize) -> TopologySpec {
        self.slots = slots;
        self.slot_bytes = slot_bytes;
        self
    }

    /// Use a caller-managed session directory (attach-by-address mode:
    /// independently launched processes agree on this path out of band).
    pub fn session_dir(mut self, dir: PathBuf) -> TopologySpec {
        self.dir = Some(dir);
        self
    }

    /// Leader entry: create the session, spawn children, connect the
    /// transport, and wait for the whole topology to come up.
    pub fn launch(self) -> io::Result<Arc<World>> {
        if self.migratable {
            reexec_without_aslr()?;
        }
        static SESSION: AtomicU64 = AtomicU64::new(0);
        let owns_dir = self.dir.is_none();
        let dir = self.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "flows-net-{}-{}",
                std::process::id(),
                SESSION.fetch_add(1, Ordering::Relaxed)
            ))
        });
        std::fs::create_dir_all(&dir)?;

        let sys_err = |e: flows_sys::SysError| io::Error::other(e.to_string());
        let segment = match self.backend {
            Backend::Shm => Some(Segment::create(self.procs, self.slots, self.slot_bytes).map_err(sys_err)?),
            _ => None,
        };
        // TCP port base: spread sessions out by pid so concurrent test
        // runs don't collide on a fixed port.
        let tcp_base = 20_000 + (std::process::id() % 20_000) as u16;
        let meta = Meta {
            procs: self.procs,
            pes_per_proc: self.pes_per_proc,
            backend: self.backend,
            leader_pid: std::process::id() as i32,
            memfd_fd: segment.as_ref().map(|s| s.fd()).unwrap_or(-1),
            tcp_base,
        };
        meta.write(&dir)?;

        let exe = std::env::current_exe()?;
        let mut children = Vec::new();
        for rank in 1..self.procs {
            let child = Command::new(&exe)
                .args(&self.child_args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_DIR, &dir)
                .stdin(Stdio::null())
                .spawn()?;
            children.push(ChildSlot {
                rank,
                child: Some(child),
                status: None,
            });
        }

        let transport = match self.backend {
            Backend::Shm => {
                let t = ShmTransport::new(segment.unwrap(), 0);
                t.set_ready();
                if !t.wait_all_ready(BRINGUP_TIMEOUT) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "children never attached the shm segment",
                    ));
                }
                t as Arc<dyn Transport>
            }
            Backend::Uds => {
                SockTransport::connect(0, self.procs, &dir, None, BRINGUP_TIMEOUT)? as Arc<dyn Transport>
            }
            Backend::Tcp => {
                SockTransport::connect(0, self.procs, &dir, Some(tcp_base), BRINGUP_TIMEOUT)?
                    as Arc<dyn Transport>
            }
        };

        Ok(Arc::new(World {
            rank: 0,
            procs: self.procs,
            pes_per_proc: self.pes_per_proc,
            backend: self.backend,
            transport,
            children: Mutex::new(children),
            dir,
            owns_dir,
            closed: AtomicBool::new(false),
        }))
    }
}

/// Marker set across the ASLR re-exec so a failure to disable
/// randomization is detected instead of looping.
const ENV_REEXEC: &str = "FLOWS_NET_ASLR_REEXEC";

/// Ensure this process runs without address-space randomization,
/// re-executing itself (argv preserved) after setting
/// `ADDR_NO_RANDOMIZE` if needed. Returns `Ok(())` when ASLR is already
/// off; otherwise it only returns on error.
fn reexec_without_aslr() -> io::Result<()> {
    if flows_sys::os::aslr_disabled() {
        return Ok(());
    }
    if std::env::var_os(ENV_REEXEC).is_some() {
        return Err(io::Error::other(
            "ASLR still enabled after ADDR_NO_RANDOMIZE re-exec",
        ));
    }
    if !flows_sys::os::disable_aslr() {
        return Err(io::Error::other(
            "personality(ADDR_NO_RANDOMIZE) is not permitted here; \
             migratable multi-process topologies need it (or run under \
             `setarch -R`)",
        ));
    }
    use std::os::unix::process::CommandExt;
    let exe = std::env::current_exe()?;
    let err = Command::new(exe)
        .args(std::env::args().skip(1))
        .env(ENV_REEXEC, "1")
        .exec();
    Err(err)
}

/// This process's rank, when it was spawned (or addressed) as a
/// flows-net child; `None` in ordinary single-process runs.
pub fn child_rank() -> Option<usize> {
    std::env::var(ENV_RANK).ok()?.parse().ok()
}

/// Child entry: join the topology described by the environment
/// (`FLOWS_NET_RANK` + `FLOWS_NET_DIR`).
pub fn attach_from_env() -> io::Result<Arc<World>> {
    let rank = child_rank()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{ENV_RANK} not set")))?;
    let dir = PathBuf::from(
        std::env::var(ENV_DIR)
            .map_err(|_| io::Error::new(io::ErrorKind::NotFound, format!("{ENV_DIR} not set")))?,
    );
    attach(rank, &dir)
}

/// Attach-by-address: join the session at `dir` as `rank`. Waits for
/// the leader's meta file when it has not appeared yet.
pub fn attach(rank: usize, dir: &Path) -> io::Result<Arc<World>> {
    let deadline = Instant::now() + BRINGUP_TIMEOUT;
    let meta = loop {
        match Meta::read(dir) {
            Ok(m) => break m,
            Err(e) if e.kind() == io::ErrorKind::NotFound && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    };
    if rank == 0 || rank >= meta.procs {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("rank {rank} out of range for {} procs", meta.procs),
        ));
    }
    let sys_err = |e: flows_sys::SysError| io::Error::other(e.to_string());
    let transport = match meta.backend {
        Backend::Shm => {
            let fd = flows_sys::MemFd::open_pid_fd(meta.leader_pid, meta.memfd_fd).map_err(sys_err)?;
            let t = ShmTransport::new(Segment::attach(fd).map_err(sys_err)?, rank);
            t.set_ready();
            if !t.wait_all_ready(BRINGUP_TIMEOUT) {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "topology never fully attached",
                ));
            }
            t as Arc<dyn Transport>
        }
        Backend::Uds => {
            SockTransport::connect(rank, meta.procs, dir, None, BRINGUP_TIMEOUT)? as Arc<dyn Transport>
        }
        Backend::Tcp => {
            SockTransport::connect(rank, meta.procs, dir, Some(meta.tcp_base), BRINGUP_TIMEOUT)?
                as Arc<dyn Transport>
        }
    };
    Ok(Arc::new(World {
        rank,
        procs: meta.procs,
        pes_per_proc: meta.pes_per_proc,
        backend: meta.backend,
        transport,
        children: Mutex::new(Vec::new()),
        dir: dir.to_path_buf(),
        owns_dir: false,
        closed: AtomicBool::new(false),
    }))
}

/// SPMD entry: attach when running as a spawned child, launch the
/// topology otherwise. Lets one binary (a benchmark, a test) be both
/// leader and child.
pub fn launch_or_attach(spec: TopologySpec) -> io::Result<Arc<World>> {
    if child_rank().is_some() {
        attach_from_env()
    } else {
        spec.launch()
    }
}

struct ChildSlot {
    rank: usize,
    child: Option<Child>,
    status: Option<i32>,
}

/// One process's handle on a running multi-process machine.
pub struct World {
    rank: usize,
    procs: usize,
    pes_per_proc: usize,
    backend: Backend,
    transport: Arc<dyn Transport>,
    children: Mutex<Vec<ChildSlot>>,
    dir: PathBuf,
    owns_dir: bool,
    closed: AtomicBool,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("rank", &self.rank)
            .field("procs", &self.procs)
            .field("pes_per_proc", &self.pes_per_proc)
            .field("backend", &self.backend.as_str())
            .finish()
    }
}

impl World {
    /// This process's rank (0 = leader).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the topology.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// PEs driven by each process.
    pub fn pes_per_proc(&self) -> usize {
        self.pes_per_proc
    }

    /// Total PEs across the machine.
    pub fn num_pes(&self) -> usize {
        self.procs * self.pes_per_proc
    }

    /// First global PE id owned by this process.
    pub fn first_pe(&self) -> usize {
        self.rank * self.pes_per_proc
    }

    /// Which process owns global PE `pe`.
    pub fn proc_of_pe(&self, pe: usize) -> usize {
        pe / self.pes_per_proc
    }

    /// Is this process the leader (rank 0)?
    pub fn is_leader(&self) -> bool {
        self.rank == 0
    }

    /// The active backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The session directory (meta file, socket files).
    pub fn session_dir(&self) -> &Path {
        &self.dir
    }

    /// Send `frame` to process `dst` (dropped if `dst` is dead).
    pub fn send(&self, dst: usize, frame: &Frame) {
        self.transport.send(dst, frame);
    }

    /// Next frame from any peer, if one is pending.
    pub fn try_recv(&self) -> Option<(usize, Frame)> {
        self.transport.try_recv()
    }

    /// Block until traffic arrives or `timeout` elapses.
    pub fn park(&self, timeout: Duration) {
        self.transport.park(timeout);
    }

    /// Stop sending to process `proc` (it died).
    pub fn mark_proc_dead(&self, proc: usize) {
        self.transport.mark_dead(proc);
    }

    /// The shared arena's address range, on the shm backend (zero-copy
    /// assertions in tests).
    pub fn shm_range(&self) -> Option<(usize, usize)> {
        self.transport.shm_range()
    }

    /// Leader only: poll for children that exited since the last call.
    /// Returns `(rank, exit_code)` pairs; a signal death reports -1.
    pub fn poll_children(&self) -> Vec<(usize, i32)> {
        let mut out = Vec::new();
        for slot in self.children.lock().iter_mut() {
            let Some(child) = slot.child.as_mut() else { continue };
            if let Ok(Some(status)) = child.try_wait() {
                let code = status.code().unwrap_or(-1);
                slot.status = Some(code);
                slot.child = None;
                out.push((slot.rank, code));
            }
        }
        out
    }

    /// Tear the machine down. The leader reaps every child (killing
    /// stragglers after a grace period), unlinks the session directory,
    /// and reports any child that exited nonzero; children just close
    /// their transport. Idempotent.
    pub fn shutdown(&self) -> Result<(), String> {
        if self.closed.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        self.transport.close();
        let mut failures = Vec::new();
        if self.is_leader() {
            let deadline = Instant::now() + REAP_TIMEOUT;
            for slot in self.children.lock().iter_mut() {
                let code = match (slot.status, slot.child.as_mut()) {
                    (Some(code), _) => code,
                    (None, None) => continue,
                    (None, Some(child)) => loop {
                        match child.try_wait() {
                            Ok(Some(status)) => break status.code().unwrap_or(-1),
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Ok(None) => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break -2;
                            }
                            Err(_) => break -1,
                        }
                    },
                };
                slot.status = Some(code);
                slot.child = None;
                if code != 0 {
                    failures.push(format!("rank {} exited with {}", slot.rank, code));
                }
            }
            if self.owns_dir {
                let _ = std::fs::remove_dir_all(&self.dir);
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

impl Drop for World {
    fn drop(&mut self) {
        // Best-effort cleanup when the caller forgot to shut down: no
        // zombie children, no leaked session directory.
        let _ = self.shutdown();
    }
}
