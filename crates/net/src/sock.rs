//! Stream-socket transport backend: a full mesh of Unix-domain or TCP
//! connections, one blocking reader thread per peer.
//!
//! The mesh builds itself by filesystem / port convention — process
//! `r` listens at `dir/p{r}.sock` (or loopback port `base + r`) and
//! dials every lower rank, so each unordered pair gets exactly one
//! stream. The dialer sends a one-byte hello carrying its rank. All
//! framed I/O goes through `flows_sys::sock`, which counts syscalls the
//! same way the memory layer counts `mmap`s, so tests can compare the
//! socket path's per-message cost against the shared-memory rings.

use crate::frame::{Frame, Header, HEADER_LEN};
use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::sync::{Parker, Unparker};
use flows_core::Payload;
use flows_sys::sock as rawsock;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One peer stream, either flavour.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The socket-mesh transport endpoint of one process.
pub struct SockTransport {
    rank: usize,
    procs: usize,
    /// Writer half per peer (None for self).
    writers: Vec<Option<Mutex<Stream>>>,
    rx: Receiver<(usize, Frame)>,
    parker: Parker,
    dead: Vec<AtomicBool>,
}

fn read_one_frame(s: &mut Stream) -> io::Result<Frame> {
    let mut hdr = [0u8; HEADER_LEN];
    rawsock::read_frame(s, &mut hdr)?;
    let h = Header::decode(&hdr)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad frame header"))?;
    let body = if h.body_len == 0 {
        Payload::empty()
    } else {
        let mut buf = vec![0u8; h.body_len as usize];
        rawsock::read_frame(s, &mut buf)?;
        Payload::from_vec(buf)
    };
    Ok(Frame::from_header(h, body))
}

fn spawn_reader(peer: usize, mut s: Stream, tx: Sender<(usize, Frame)>, unparker: Unparker) {
    std::thread::Builder::new()
        .name(format!("flows-net-rx-p{peer}"))
        .spawn(move || {
            // Reads until the peer closes (clean GOODBYE path) or dies
            // (the machine layer learns of deaths from control frames
            // and child reaping, not from this EOF).
            while let Ok(frame) = read_one_frame(&mut s) {
                if tx.send((peer, frame)).is_err() {
                    break;
                }
                unparker.unpark();
            }
        })
        .expect("spawn reader thread");
}

impl SockTransport {
    /// Build the full mesh for `rank` of `procs` processes. Unix-domain
    /// when `tcp_base` is `None` (sockets live in `dir`), TCP loopback
    /// on ports `base + rank` otherwise. Blocks until every peer is
    /// connected or `timeout` passes.
    pub fn connect(
        rank: usize,
        procs: usize,
        dir: &Path,
        tcp_base: Option<u16>,
        timeout: Duration,
    ) -> io::Result<Arc<SockTransport>> {
        let (tx, rx) = unbounded::<(usize, Frame)>();
        let parker = Parker::new();
        let mut writers: Vec<Option<Mutex<Stream>>> = (0..procs).map(|_| None).collect();

        enum Listener {
            Unix(std::os::unix::net::UnixListener),
            Tcp(std::net::TcpListener),
        }
        // Listen before dialing so the mesh can't deadlock: every rank's
        // listener exists before any peer retries against it.
        let listener = match tcp_base {
            None => Listener::Unix(rawsock::uds_listen(&dir.join(format!("p{rank}.sock")))?),
            Some(base) => {
                let addr: SocketAddr = format!("127.0.0.1:{}", base + rank as u16).parse().unwrap();
                Listener::Tcp(rawsock::tcp_listen(addr)?)
            }
        };

        for (peer, writer) in writers.iter_mut().enumerate().take(rank) {
            let mut s = match tcp_base {
                None => Stream::Unix(rawsock::uds_connect_retry(
                    &dir.join(format!("p{peer}.sock")),
                    timeout,
                )?),
                Some(base) => {
                    let addr: SocketAddr =
                        format!("127.0.0.1:{}", base + peer as u16).parse().unwrap();
                    Stream::Tcp(rawsock::tcp_connect_retry(addr, timeout)?)
                }
            };
            s.write_all(&[rank as u8])?;
            spawn_reader(peer, s.try_clone()?, tx.clone(), parker.unparker());
            *writer = Some(Mutex::new(s));
        }

        for _ in 0..procs.saturating_sub(rank + 1) {
            let mut s = match &listener {
                Listener::Unix(l) => Stream::Unix(l.accept()?.0),
                Listener::Tcp(l) => {
                    let (t, _) = l.accept()?;
                    t.set_nodelay(true)?;
                    Stream::Tcp(t)
                }
            };
            let mut hello = [0u8; 1];
            s.read_exact(&mut hello)?;
            let peer = hello[0] as usize;
            if peer <= rank || peer >= procs || writers[peer].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad hello rank {peer}"),
                ));
            }
            spawn_reader(peer, s.try_clone()?, tx.clone(), parker.unparker());
            writers[peer] = Some(Mutex::new(s));
        }

        Ok(Arc::new(SockTransport {
            rank,
            procs,
            writers,
            rx,
            parker,
            dead: (0..procs).map(|_| AtomicBool::new(false)).collect(),
        }))
    }

    /// Send a frame to process `dst`; frames to dead peers are dropped,
    /// and a broken pipe marks the peer dead.
    pub fn send(&self, dst: usize, frame: &Frame) {
        debug_assert_ne!(dst, self.rank);
        if self.dead[dst].load(Ordering::Relaxed) {
            return;
        }
        let Some(w) = &self.writers[dst] else { return };
        let mut buf = Vec::with_capacity(frame.wire_len());
        frame.encode(&mut buf);
        let mut s = w.lock();
        if rawsock::write_frame(&mut *s, &buf).is_err() {
            self.dead[dst].store(true, Ordering::SeqCst);
        }
    }

    /// Next delivered frame, if any.
    pub fn try_recv(&self) -> Option<(usize, Frame)> {
        self.rx.try_recv().ok()
    }

    /// Sleep until a reader thread delivers a frame or `timeout` passes.
    pub fn park(&self, timeout: Duration) {
        if !self.rx.is_empty() {
            return;
        }
        self.parker.park_timeout(timeout);
    }

    /// Stop sending to process `proc`.
    pub fn mark_dead(&self, proc: usize) {
        self.dead[proc].store(true, Ordering::SeqCst);
    }

    /// Shut every stream down, releasing the reader threads.
    pub fn close(&self) {
        for w in self.writers.iter().flatten() {
            w.lock().shutdown();
        }
    }

    /// Mesh degree (for tests).
    pub fn peers(&self) -> usize {
        self.procs - 1
    }

    /// This endpoint's process rank.
    pub fn rank_of(&self) -> usize {
        self.rank
    }

    /// Number of processes in the mesh.
    pub fn procs_of(&self) -> usize {
        self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_sys::counters;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("flows-net-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn mesh(dir: &Path, procs: usize) -> Vec<Arc<SockTransport>> {
        let handles: Vec<_> = (0..procs)
            .map(|r| {
                let dir = dir.to_path_buf();
                std::thread::spawn(move || {
                    SockTransport::connect(r, procs, &dir, None, Duration::from_secs(5)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn uds_mesh_round_trip() {
        let dir = tmp_dir("mesh");
        let m = mesh(&dir, 3);
        let before = counters::snapshot();
        m[0].send(2, &Frame::data(0, 4, 1, 2, 3, vec![5u8; 300].into()));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let (src, f) = loop {
            if let Some(got) = m[2].try_recv() {
                break got;
            }
            assert!(std::time::Instant::now() < deadline, "frame never arrived");
            m[2].park(Duration::from_millis(50));
        };
        assert_eq!(src, 0);
        assert_eq!(f.body, vec![5u8; 300]);
        assert_eq!((f.a, f.b, f.c), (1, 2, 3));
        let d = counters::snapshot().since(&before);
        assert_eq!(d.sock_send, 1, "one framed write per send");
        for t in &m {
            t.close();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn send_to_closed_peer_marks_dead_not_panics() {
        let dir = tmp_dir("dead");
        let m = mesh(&dir, 2);
        m[1].close();
        // The first send may still land in the socket buffer; keep
        // writing until the broken pipe surfaces, then sends drop.
        for _ in 0..10_000 {
            m[0].send(1, &Frame::ack(0, 1, 1));
            if m[0].dead[1].load(Ordering::Relaxed) {
                break;
            }
        }
        m[0].close();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
