//! The framed wire format every flows-net backend carries.
//!
//! One frame is one converse-level event crossing a process boundary: a
//! data message (with its link-layer sequence number), an ack, a
//! heartbeat, or a control frame of the machine-wide protocols
//! (quiescence gathering, death notices, shutdown). The header is a
//! fixed [`HEADER_LEN`]-byte little-endian prefix; the body travels
//! uninterpreted, so the shared-memory backend can hand it to the
//! receiver as a zero-copy view of the ring slot.

use flows_core::Payload;

/// Fixed header size: kind(1) ctrl(1) src_pe(4) dst_pe(4) a(8) b(8)
/// c(8) body_len(4).
pub const HEADER_LEN: usize = 38;

/// What a frame carries. `Data`/`Ack`/`Heartbeat` mirror the in-process
/// link layer's `PacketBody`; `Ctrl` frames belong to the machine-wide
/// protocols and are consumed by the comm thread itself.
// flows-wire: defines net-frame
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An application message: `a` = link seq (0 = unsequenced),
    /// `b` = handler id, `c` = send-side virtual time.
    Data,
    /// Cumulative link ack: `a` = cum.
    Ack,
    /// Failure-detector heartbeat: `a` = hb_seq.
    Heartbeat,
    /// Machine protocol frame; see [`ctrl`] for the tag meanings.
    Ctrl,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Data => 1,
            FrameKind::Ack => 2,
            FrameKind::Heartbeat => 3,
            FrameKind::Ctrl => 4,
        }
    }

    fn from_code(c: u8) -> Option<FrameKind> {
        Some(match c {
            1 => FrameKind::Data,
            2 => FrameKind::Ack,
            3 => FrameKind::Heartbeat,
            4 => FrameKind::Ctrl,
            _ => return None,
        })
    }
}

/// Control-frame tags (the `ctrl` byte of a [`FrameKind::Ctrl`] frame).
// flows-wire: defines net-ctrl
pub mod ctrl {
    /// Child → leader: local counter snapshot for quiescence gathering.
    /// `a` = sent, `b` = recv, `c` = probe round (0 = unsolicited);
    /// body = `[flags u8][written_off u64][dead u64][fenced u64]
    /// [confirmed u64][resolved u64]` (flags bit0 = all local PEs idle,
    /// bit1 = an unresolved failure is pending locally).
    pub const STATS: u8 = 1;
    /// Child → leader: a local PE died; body is the serialized morgue
    /// (per-peer rx/tx cursors + reaped mask). `a` = dead PE id.
    pub const MORGUE: u8 = 2;
    /// Child → leader: the whole process is going down after scripted
    /// crashes. `a` = proc rank, `b` = sent, `c` = recv; body =
    /// `[written_off u64]`.
    pub const PROC_DEAD: u8 = 3;
    /// Leader → children: re-report STATS stamped with round `a`.
    pub const PROBE: u8 = 4;
    /// Leader → children: quiescence reached; `a` = global sent count.
    pub const DONE: u8 = 5;
    /// Child → leader: drained and exiting cleanly. `a` = proc rank.
    pub const GOODBYE: u8 = 6;
    /// Leader → children: union of the machine-wide failure masks.
    /// `a` = dead, `b` = confirmed, `c` = resolved; body = `[fenced u64]`.
    pub const MASKS: u8 = 7;
}

/// One transport frame: fixed header fields plus an uninterpreted body.
#[derive(Debug, Clone)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Control tag ([`ctrl`]); 0 for non-control frames.
    pub ctrl: u8,
    /// Global source PE (or proc rank for control frames).
    pub src_pe: u32,
    /// Global destination PE; `u32::MAX` for control frames.
    pub dst_pe: u32,
    /// Kind-specific field (seq / cum / hb_seq / protocol field).
    pub a: u64,
    /// Kind-specific field (handler id / protocol field).
    pub b: u64,
    /// Kind-specific field (send vtime / protocol field).
    pub c: u64,
    /// The body bytes (zero-copy view on the shm receive path).
    pub body: Payload,
}

/// Decoded header fields, before the body is attached.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// See [`Frame::kind`].
    pub kind: FrameKind,
    /// See [`Frame::ctrl`].
    pub ctrl: u8,
    /// See [`Frame::src_pe`].
    pub src_pe: u32,
    /// See [`Frame::dst_pe`].
    pub dst_pe: u32,
    /// See [`Frame::a`].
    pub a: u64,
    /// See [`Frame::b`].
    pub b: u64,
    /// See [`Frame::c`].
    pub c: u64,
    /// Length of the body that follows the header.
    pub body_len: u32,
}

impl Header {
    /// Decode a header from (at least) [`HEADER_LEN`] bytes. `None` on
    /// a short buffer or unknown frame kind.
    pub fn decode(h: &[u8]) -> Option<Header> {
        if h.len() < HEADER_LEN {
            return None;
        }
        let u32_at = |o: usize| u32::from_le_bytes(h[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(h[o..o + 8].try_into().unwrap());
        Some(Header {
            kind: FrameKind::from_code(h[0])?,
            ctrl: h[1],
            src_pe: u32_at(2),
            dst_pe: u32_at(6),
            a: u64_at(10),
            b: u64_at(18),
            c: u64_at(26),
            body_len: u32_at(34),
        })
    }
}

impl Frame {
    /// A data frame (`seq` 0 = unsequenced fast path).
    pub fn data(src_pe: u32, dst_pe: u32, seq: u64, handler: u64, vtime: u64, body: Payload) -> Frame {
        Frame {
            kind: FrameKind::Data,
            ctrl: 0,
            src_pe,
            dst_pe,
            a: seq,
            b: handler,
            c: vtime,
            body,
        }
    }

    /// A cumulative ack frame.
    pub fn ack(src_pe: u32, dst_pe: u32, cum: u64) -> Frame {
        Frame {
            kind: FrameKind::Ack,
            ctrl: 0,
            src_pe,
            dst_pe,
            a: cum,
            b: 0,
            c: 0,
            body: Payload::empty(),
        }
    }

    /// A heartbeat frame. `vt` is the sender's virtual clock, used by
    /// receivers in threaded machines to keep loosely synchronized.
    pub fn heartbeat(src_pe: u32, dst_pe: u32, hb_seq: u64, vt: u64) -> Frame {
        Frame {
            kind: FrameKind::Heartbeat,
            ctrl: 0,
            src_pe,
            dst_pe,
            a: hb_seq,
            b: vt,
            c: 0,
            body: Payload::empty(),
        }
    }

    /// A machine-protocol control frame; `src_pe` carries the sender's
    /// proc rank.
    pub fn control(tag: u8, src_proc: u32, a: u64, b: u64, c: u64, body: Payload) -> Frame {
        Frame {
            kind: FrameKind::Ctrl,
            ctrl: tag,
            src_pe: src_proc,
            dst_pe: u32::MAX,
            a,
            b,
            c,
            body,
        }
    }

    /// Total encoded size (header + body).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.body.len()
    }

    /// Write the header into `out`.
    pub fn encode_header(&self, out: &mut [u8; HEADER_LEN]) {
        out[0] = self.kind.code();
        out[1] = self.ctrl;
        out[2..6].copy_from_slice(&self.src_pe.to_le_bytes());
        out[6..10].copy_from_slice(&self.dst_pe.to_le_bytes());
        out[10..18].copy_from_slice(&self.a.to_le_bytes());
        out[18..26].copy_from_slice(&self.b.to_le_bytes());
        out[26..34].copy_from_slice(&self.c.to_le_bytes());
        out[34..38].copy_from_slice(&(self.body.len() as u32).to_le_bytes());
    }

    /// Append the full frame (header + body) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut h = [0u8; HEADER_LEN];
        self.encode_header(&mut h);
        out.extend_from_slice(&h);
        out.extend_from_slice(self.body.as_slice());
    }

    /// Reattach a decoded header to its body.
    pub fn from_header(h: Header, body: Payload) -> Frame {
        debug_assert_eq!(h.body_len as usize, body.len());
        Frame {
            kind: h.kind,
            ctrl: h.ctrl,
            src_pe: h.src_pe,
            dst_pe: h.dst_pe,
            a: h.a,
            b: h.b,
            c: h.c,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let body: Payload = vec![9u8; 100].into();
        let f = Frame::data(3, 7, 42, 5, 1_000_000, body.clone());
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN + 100);
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h.kind, FrameKind::Data);
        assert_eq!((h.src_pe, h.dst_pe), (3, 7));
        assert_eq!((h.a, h.b, h.c), (42, 5, 1_000_000));
        assert_eq!(h.body_len, 100);
        let g = Frame::from_header(h, Payload::from_vec(buf[HEADER_LEN..].to_vec()));
        assert_eq!(g.body, body);
    }

    #[test]
    fn control_and_empty_bodies() {
        let f = Frame::control(ctrl::DONE, 0, 1234, 0, 0, Payload::empty());
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h.kind, FrameKind::Ctrl);
        assert_eq!(h.ctrl, ctrl::DONE);
        assert_eq!(h.a, 1234);
        assert_eq!(h.body_len, 0);
    }

    #[test]
    fn short_or_garbage_headers_are_rejected() {
        assert!(Header::decode(&[0u8; 10]).is_none());
        let mut junk = [0u8; HEADER_LEN];
        junk[0] = 99;
        assert!(Header::decode(&junk).is_none());
    }
}
