//! Lock-free shared-memory rings over a `memfd` segment — the
//! intra-host transport backend.
//!
//! One segment holds, for every ordered process pair `(src, dst)`, a
//! fixed ring of message slots. Each ring is strictly single-producer /
//! single-consumer: the producing process serializes its PE threads on
//! a *local* mutex (nothing shared is locked), and only the destination
//! process's comm thread consumes. A slot's `state` word is the only
//! synchronization: the producer waits for `FREE`, writes the frame
//! once, and publishes with a `Release` store of `FULL`; the consumer
//! acquires `FULL`, hands the body to the PE as a zero-copy
//! [`ExternRegion`] view of the slot, and the slot returns to `FREE`
//! when the last payload view drops. Bodies never transit a socket or
//! an intermediate buffer — the producer's single write into the ring
//! is the only time the bytes move.
//!
//! Blocking is futex-based: each process has a doorbell word in the
//! segment header; producers bump it after publishing and issue a
//! `FUTEX_WAKE` only when the consumer has advertised it is parked, so
//! a busy receiver costs zero syscalls per message.

use crate::frame::{Frame, Header, HEADER_LEN};
use flows_core::{ExternRegion, Payload};
use flows_sys::{futex, page_align_up, MemFd, Mapping, SysError, SysResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Segment magic ("FLOWNET1").
const MAGIC: u64 = 0x464c_4f57_4e45_5431;

/// Segment header size (magic + geometry, padded to a cache line).
const HDR_LEN: usize = 64;

/// Per-process control block stride (one cache line each).
const CTRL_STRIDE: usize = 64;
/// Doorbell word: bumped by producers after publishing a slot; the
/// futex the consumer sleeps on.
const CTRL_DOORBELL: usize = 0;
/// Parked flag: 1 while the consumer is (about to be) in `FUTEX_WAIT`.
const CTRL_PARKED: usize = 4;
/// Ready flag: set once the process has attached (bring-up barrier).
const CTRL_READY: usize = 8;

/// Per-slot header: state(4) len(4) flags(4) pad(4).
const SLOT_HDR: usize = 16;
const SLOT_FREE: u32 = 0;
const SLOT_FULL: u32 = 1;
/// Slot flag: this slot is one chunk of a spilled (oversized) frame and
/// more chunks follow.
const FLAG_MORE: u32 = 1;

/// Default slots per ring.
pub const DEFAULT_SLOTS: usize = 64;
/// Default slot capacity; `SLOT_HDR + DEFAULT_SLOT_BYTES` is one 4 KiB
/// page, so a default ring slot never splits a frame that fits a page.
pub const DEFAULT_SLOT_BYTES: usize = 4096 - SLOT_HDR;

/// A mapped flows-net segment: geometry plus raw accessors. Shared by
/// the transport and by the [`SlotRegion`] payload views that keep
/// slots pinned.
pub struct Segment {
    fd: MemFd,
    map: Mapping,
    procs: usize,
    slots: usize,
    slot_bytes: usize,
}

impl Segment {
    fn layout_len(procs: usize, slots: usize, slot_bytes: usize) -> usize {
        let stride = Self::stride_of(slot_bytes);
        page_align_up(HDR_LEN + procs * CTRL_STRIDE + procs * procs * slots * stride)
    }

    fn stride_of(slot_bytes: usize) -> usize {
        (SLOT_HDR + slot_bytes).next_multiple_of(64)
    }

    /// Create a fresh segment for `procs` processes (leader side).
    pub fn create(procs: usize, slots: usize, slot_bytes: usize) -> SysResult<Arc<Segment>> {
        if procs < 2 || slots < 2 || !slots.is_power_of_two() || slot_bytes < HEADER_LEN {
            return Err(SysError::logic(
                "shm_segment",
                format!("bad geometry: procs={procs} slots={slots} slot_bytes={slot_bytes}"),
            ));
        }
        let len = Self::layout_len(procs, slots, slot_bytes);
        let fd = MemFd::new("flows-net", len as u64)?;
        let seg = Self::map_over(fd, procs, slots, slot_bytes)?;
        // A fresh memfd reads as zeros, so every slot starts FREE and
        // every control block unparked; only the geometry header needs
        // writing.
        seg.write_bytes(0, &MAGIC.to_le_bytes());
        seg.write_bytes(8, &(procs as u32).to_le_bytes());
        seg.write_bytes(12, &(slots as u32).to_le_bytes());
        seg.write_bytes(16, &(slot_bytes as u32).to_le_bytes());
        Ok(seg)
    }

    /// Map an existing segment (child side; `fd` usually comes from
    /// [`MemFd::open_pid_fd`]). Validates magic and geometry.
    pub fn attach(fd: MemFd) -> SysResult<Arc<Segment>> {
        let probe = {
            let mut hdr = [0u8; 20];
            fd.read_at(0, &mut hdr)?;
            hdr
        };
        if u64::from_le_bytes(probe[0..8].try_into().unwrap()) != MAGIC {
            return Err(SysError::logic("shm_segment", "bad magic".into()));
        }
        let procs = u32::from_le_bytes(probe[8..12].try_into().unwrap()) as usize;
        let slots = u32::from_le_bytes(probe[12..16].try_into().unwrap()) as usize;
        let slot_bytes = u32::from_le_bytes(probe[16..20].try_into().unwrap()) as usize;
        let want = Self::layout_len(procs, slots, slot_bytes);
        if procs < 2 || slots < 2 || fd.len() < want as u64 {
            return Err(SysError::logic(
                "shm_segment",
                format!("inconsistent geometry: procs={procs} slots={slots} len={}", fd.len()),
            ));
        }
        Self::map_over(fd, procs, slots, slot_bytes)
    }

    fn map_over(fd: MemFd, procs: usize, slots: usize, slot_bytes: usize) -> SysResult<Arc<Segment>> {
        let len = Self::layout_len(procs, slots, slot_bytes);
        let map = Mapping::reserve(len)?;
        map.alias_file(0, len, fd.fd(), 0)?;
        Ok(Arc::new(Segment {
            fd,
            map,
            procs,
            slots,
            slot_bytes,
        }))
    }

    /// The memfd backing this segment (for the meta file's attach info).
    pub fn fd(&self) -> std::os::fd::RawFd {
        self.fd.fd()
    }

    /// Number of processes the segment was sized for.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The mapped virtual-address range, for zero-copy assertions
    /// ("this payload's bytes live inside the shared arena").
    pub fn range(&self) -> (usize, usize) {
        (self.map.addr(), self.map.addr() + self.map.len())
    }

    fn ctrl_off(&self, proc: usize) -> usize {
        HDR_LEN + proc * CTRL_STRIDE
    }

    fn slot_off(&self, src: usize, dst: usize, idx: usize) -> usize {
        let stride = Self::stride_of(self.slot_bytes);
        HDR_LEN
            + self.procs * CTRL_STRIDE
            + ((src * self.procs + dst) * self.slots + idx) * stride
    }

    fn atom(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.map.len() && off.is_multiple_of(4));
        // SAFETY: `off` is a 4-aligned offset inside the mapping (all
        // layout offsets are multiples of 16); concurrent cross-process
        // access to the word is exactly what AtomicU32 permits.
        unsafe { &*(self.map.ptr(off) as *const AtomicU32) }
    }

    fn bytes(&self, off: usize, len: usize) -> &[u8] {
        debug_assert!(off + len <= self.map.len());
        // SAFETY: range is inside the mapping, and the slot protocol
        // guarantees the producer stopped writing before the consumer
        // (or a payload view) reads: reads happen only after an Acquire
        // load observes SLOT_FULL, which the producer stores with
        // Release after its last byte write.
        unsafe { std::slice::from_raw_parts(self.map.ptr(off), len) }
    }

    fn write_bytes(&self, off: usize, src: &[u8]) {
        debug_assert!(off + src.len() <= self.map.len());
        // SAFETY: range is inside the mapping; the slot protocol makes
        // the producer the only writer while the slot is FREE.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), self.map.ptr(off), src.len()) };
    }
}

/// A zero-copy payload view of one ring slot's body. Holding it pins
/// the slot; dropping the last view stores `FREE`, returning the slot
/// to its producer.
struct SlotRegion {
    seg: Arc<Segment>,
    state_off: usize,
    data_off: usize,
    len: usize,
}

impl ExternRegion for SlotRegion {
    fn bytes(&self) -> &[u8] {
        self.seg.bytes(self.data_off, self.len)
    }
}

impl Drop for SlotRegion {
    fn drop(&mut self) {
        self.seg.atom(self.state_off).store(SLOT_FREE, Ordering::Release); // flows-atomic: publishes shm-slot-free
    }
}

/// The shared-memory transport endpoint of one process.
pub struct ShmTransport {
    seg: Arc<Segment>,
    rank: usize,
    /// Producer tails, one per destination; the mutex serializes this
    /// process's PE threads (local, never shared across processes).
    tails: Vec<Mutex<u64>>,
    /// Consumer heads, one per source; only the comm thread consumes.
    heads: Mutex<Vec<u64>>,
    /// Round-robin scan start so no source ring starves.
    rr: AtomicUsize,
    dead: Vec<AtomicBool>,
}

impl ShmTransport {
    /// Wrap a segment as the endpoint for process `rank`.
    pub fn new(seg: Arc<Segment>, rank: usize) -> Arc<ShmTransport> {
        assert!(rank < seg.procs);
        let procs = seg.procs;
        Arc::new(ShmTransport {
            seg,
            rank,
            tails: (0..procs).map(|_| Mutex::new(0)).collect(),
            heads: Mutex::new(vec![0; procs]),
            rr: AtomicUsize::new(0),
            dead: (0..procs).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// The segment this endpoint maps.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.seg
    }

    /// This endpoint's process rank.
    pub fn rank_of(&self) -> usize {
        self.rank
    }

    /// Announce this process attached (bring-up barrier contribution).
    pub fn set_ready(&self) {
        self.seg
            .atom(self.seg.ctrl_off(self.rank) + CTRL_READY)
            .store(1, Ordering::Release); // flows-atomic: publishes shm-ready
    }

    /// Wait until every process has set its ready flag.
    pub fn wait_all_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let all = (0..self.seg.procs)
                // flows-atomic: consumes shm-ready
                .all(|p| self.seg.atom(self.seg.ctrl_off(p) + CTRL_READY).load(Ordering::Acquire) == 1);
            if all {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn ring_doorbell(&self, dst: usize) {
        let ctrl = self.seg.ctrl_off(dst);
        let doorbell = self.seg.atom(ctrl + CTRL_DOORBELL);
        // SeqCst on both sides closes the classic lost-wakeup race with
        // the consumer's parked-flag / doorbell-snapshot ordering.
        doorbell.fetch_add(1, Ordering::SeqCst); // flows-atomic: publishes shm-doorbell
        if self.seg.atom(ctrl + CTRL_PARKED).load(Ordering::SeqCst) == 1 { // flows-atomic: consumes shm-parked
            let _ = futex::wake(doorbell, 1);
        }
    }

    /// Wait for slot `off` to be FREE; false if `dst` died meanwhile.
    fn wait_free(&self, off: usize, dst: usize) -> bool {
        let state = self.seg.atom(off);
        let mut spins = 0u32;
        while state.load(Ordering::Acquire) != SLOT_FREE { // flows-atomic: consumes shm-slot-free
            if self.dead[dst].load(Ordering::Relaxed) {
                return false;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Ring full: the consumer always drains, so yield until
                // it catches up (or its payload views drop).
                std::thread::yield_now();
            }
        }
        true
    }

    /// Send a frame to process `dst`. Frames to a dead process are
    /// dropped (the machine's written-off accounting covers them).
    pub fn send(&self, dst: usize, frame: &Frame) {
        debug_assert_ne!(dst, self.rank);
        if self.dead[dst].load(Ordering::Relaxed) {
            return;
        }
        let total = frame.wire_len();
        let seg = &self.seg;
        if total <= seg.slot_bytes {
            // Fast path: the frame fits one slot — header and body are
            // written straight into the shared arena, the only time the
            // body bytes move.
            let mut tail = self.tails[dst].lock();
            let idx = (*tail % seg.slots as u64) as usize;
            let off = seg.slot_off(self.rank, dst, idx);
            if !self.wait_free(off, dst) {
                return;
            }
            let mut hdr = [0u8; HEADER_LEN];
            frame.encode_header(&mut hdr);
            seg.write_bytes(off + SLOT_HDR, &hdr);
            seg.write_bytes(off + SLOT_HDR + HEADER_LEN, frame.body.as_slice());
            seg.atom(off + 4).store(total as u32, Ordering::Relaxed);
            seg.atom(off + 8).store(0, Ordering::Relaxed);
            seg.atom(off).store(SLOT_FULL, Ordering::Release); // flows-atomic: publishes shm-slot-full
            *tail += 1;
            drop(tail);
            self.ring_doorbell(dst);
            return;
        }
        // Spill path: the frame is bigger than a slot, so it crosses in
        // chunks and the bytes get staged once on each side. Counted so
        // the zero-copy tests can pin the fast path.
        crate::bump_body_copies();
        let mut buf = Vec::with_capacity(total);
        frame.encode(&mut buf);
        let mut tail = self.tails[dst].lock();
        let mut written = 0usize;
        while written < total {
            let chunk = (total - written).min(seg.slot_bytes);
            let idx = (*tail % seg.slots as u64) as usize;
            let off = seg.slot_off(self.rank, dst, idx);
            if !self.wait_free(off, dst) {
                return;
            }
            seg.write_bytes(off + SLOT_HDR, &buf[written..written + chunk]);
            seg.atom(off + 4).store(chunk as u32, Ordering::Relaxed);
            let more = if written + chunk < total { FLAG_MORE } else { 0 };
            seg.atom(off + 8).store(more, Ordering::Relaxed);
            seg.atom(off).store(SLOT_FULL, Ordering::Release); // flows-atomic: publishes shm-slot-full
            *tail += 1;
            written += chunk;
        }
        drop(tail);
        self.ring_doorbell(dst);
    }

    /// Poll every source ring once (round-robin start); `None` when all
    /// are empty.
    pub fn try_recv(&self) -> Option<(usize, Frame)> {
        let seg = &self.seg;
        let procs = seg.procs;
        let mut heads = self.heads.lock();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for i in 0..procs {
            let src = (start + i) % procs;
            if src == self.rank {
                continue;
            }
            let idx = (heads[src] % seg.slots as u64) as usize;
            let off = seg.slot_off(src, self.rank, idx);
            if seg.atom(off).load(Ordering::Acquire) != SLOT_FULL { // flows-atomic: consumes shm-slot-full
                continue;
            }
            let len = seg.atom(off + 4).load(Ordering::Relaxed) as usize;
            let flags = seg.atom(off + 8).load(Ordering::Relaxed);
            if flags & FLAG_MORE != 0 {
                let frame = self.assemble_spill(&mut heads, src, off, len);
                return frame.map(|f| (src, f));
            }
            debug_assert!(len >= HEADER_LEN && len <= seg.slot_bytes);
            let Some(hdr) = Header::decode(seg.bytes(off + SLOT_HDR, HEADER_LEN)) else {
                // A corrupt header must not wedge the ring: bailing out
                // with the slot still FULL would make every later poll
                // re-read the same slot and the producer's lane would
                // stall forever once the ring wrapped. Discard the slot
                // and keep scanning.
                seg.atom(off).store(SLOT_FREE, Ordering::Release); // flows-atomic: publishes shm-slot-free
                heads[src] += 1;
                continue;
            };
            let body_len = hdr.body_len as usize;
            let body = if body_len == 0 {
                seg.atom(off).store(SLOT_FREE, Ordering::Release); // flows-atomic: publishes shm-slot-free
                Payload::empty()
            } else {
                // Zero-copy handoff: the payload aliases the slot; the
                // slot frees itself when the last view drops (or right
                // here, for small bodies that inline).
                let region: Arc<dyn ExternRegion> = Arc::new(SlotRegion {
                    seg: seg.clone(),
                    state_off: off,
                    data_off: off + SLOT_HDR + HEADER_LEN,
                    len: body_len,
                });
                Payload::from_extern(region)
            };
            heads[src] += 1;
            return Some((src, Frame::from_header(hdr, body)));
        }
        None
    }

    /// Reassemble a frame spilled across slots. Advances `heads[src]`
    /// past every chunk.
    fn assemble_spill(
        &self,
        heads: &mut [u64],
        src: usize,
        first_off: usize,
        first_len: usize,
    ) -> Option<Frame> {
        let seg = &self.seg;
        crate::bump_body_copies();
        let mut buf = Vec::with_capacity(first_len * 2);
        buf.extend_from_slice(seg.bytes(first_off + SLOT_HDR, first_len));
        seg.atom(first_off).store(SLOT_FREE, Ordering::Release); // flows-atomic: publishes shm-slot-free
        heads[src] += 1;
        loop {
            let idx = (heads[src] % seg.slots as u64) as usize;
            let off = seg.slot_off(src, self.rank, idx);
            // The producer published the first chunk last-to-first? No:
            // chunks are published in order, so later chunks may still
            // be in flight — spin for each.
            let state = seg.atom(off);
            while state.load(Ordering::Acquire) != SLOT_FULL { // flows-atomic: consumes shm-slot-full
                std::hint::spin_loop();
            }
            let len = seg.atom(off + 4).load(Ordering::Relaxed) as usize;
            let flags = seg.atom(off + 8).load(Ordering::Relaxed);
            buf.extend_from_slice(seg.bytes(off + SLOT_HDR, len));
            state.store(SLOT_FREE, Ordering::Release); // flows-atomic: publishes shm-slot-free
            heads[src] += 1;
            if flags & FLAG_MORE == 0 {
                break;
            }
        }
        let hdr = Header::decode(&buf)?;
        let body = Payload::from_vec(buf.split_off(HEADER_LEN));
        Some(Frame::from_header(hdr, body))
    }

    /// True when any source ring has an undelivered slot.
    fn any_full(&self) -> bool {
        let seg = &self.seg;
        let heads = self.heads.lock();
        (0..seg.procs).any(|src| {
            src != self.rank && {
                let idx = (heads[src] % seg.slots as u64) as usize;
                // flows-atomic: consumes shm-slot-full
                seg.atom(seg.slot_off(src, self.rank, idx)).load(Ordering::Acquire) == SLOT_FULL
            }
        })
    }

    /// Sleep on the doorbell until a producer publishes or `timeout`
    /// elapses. Returns immediately if work is already pending.
    pub fn park(&self, timeout: Duration) {
        let ctrl = self.seg.ctrl_off(self.rank);
        let doorbell = self.seg.atom(ctrl + CTRL_DOORBELL);
        let parked = self.seg.atom(ctrl + CTRL_PARKED);
        let snapshot = doorbell.load(Ordering::SeqCst); // flows-atomic: consumes shm-doorbell
        parked.store(1, Ordering::SeqCst); // flows-atomic: publishes shm-parked
        if self.any_full() {
            parked.store(0, Ordering::SeqCst);
            return;
        }
        let _ = futex::wait(doorbell, snapshot, Some(timeout));
        parked.store(0, Ordering::SeqCst);
    }

    /// Stop sending to (and waiting on slots of) process `proc`.
    pub fn mark_dead(&self, proc: usize) {
        self.dead[proc].store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flows_sys::counters;

    fn pair() -> (Arc<ShmTransport>, Arc<ShmTransport>) {
        let seg = Segment::create(2, 8, DEFAULT_SLOT_BYTES).unwrap();
        (ShmTransport::new(seg.clone(), 0), ShmTransport::new(seg, 1))
    }

    #[test]
    fn data_frame_round_trip_is_zero_copy() {
        let (a, b) = pair();
        let copies_before = crate::body_copies();
        let body: Payload = (0..200u8).collect::<Vec<_>>().into();
        a.send(1, &Frame::data(0, 1, 7, 3, 99, body.clone()));
        let (src, got) = b.try_recv().expect("frame pending");
        assert_eq!(src, 0);
        assert_eq!((got.a, got.b, got.c), (7, 3, 99));
        assert_eq!(got.body, body);
        let (lo, hi) = a.segment().range();
        let p = got.body.as_slice().as_ptr() as usize;
        assert!(p >= lo && p < hi, "body must alias the shared arena");
        assert_eq!(crate::body_copies(), copies_before, "fast path copies nothing");
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn slot_is_reused_after_payload_drops() {
        let (a, b) = pair();
        // 8 slots; send 3 rounds of 8 so the ring must wrap — works only
        // if the receiver's drops free the slots.
        for round in 0..3u8 {
            for i in 0..8u8 {
                a.send(1, &Frame::data(0, 1, 0, 0, 0, vec![round; 100 + i as usize].into()));
            }
            for _ in 0..8 {
                let (_, f) = b.try_recv().expect("slot pending");
                assert_eq!(f.body[0], round);
            }
        }
    }

    #[test]
    fn corrupt_header_slot_is_discarded_not_wedged() {
        let (a, b) = pair();
        a.send(1, &Frame::ack(0, 1, 7));
        // Smash the frame's kind byte in the shared slot — a buggy or
        // hostile peer writes garbage. The receiver used to bail out of
        // try_recv with the slot still FULL, re-reading the same slot on
        // every later poll and stalling the lane forever.
        let seg = a.segment();
        let off = seg.slot_off(0, 1, 0);
        seg.write_bytes(off + SLOT_HDR, &[99]);
        a.send(1, &Frame::ack(0, 1, 8));
        // The corrupt slot is discarded (one poll may come back empty
        // while the scan cursor passes it), then the good frame arrives.
        let mut got = None;
        for _ in 0..4 {
            if let Some(x) = b.try_recv() {
                got = Some(x);
                break;
            }
        }
        let (src, f) = got.expect("ring must not wedge on a corrupt header");
        assert_eq!(src, 0);
        assert_eq!(f.a, 8);
        // The discarded slot really went back to FREE: the ring still
        // sustains full-depth traffic past the poisoned index.
        for i in 0..16u64 {
            a.send(1, &Frame::ack(0, 1, i));
            let (_, f) = b.try_recv().expect("ring healthy after discard");
            assert_eq!(f.a, i);
        }
    }

    #[test]
    fn backpressure_blocks_producer_until_consumer_drains() {
        let (a, b) = pair();
        let a2 = a.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                a2.send(1, &Frame::data(0, 1, i, 0, 0, vec![1u8; 128].into()));
            }
        });
        let mut got = 0;
        while got < 100 {
            if let Some((_, f)) = b.try_recv() {
                assert_eq!(f.a, got);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn oversized_frames_spill_and_reassemble() {
        let (a, b) = pair();
        let copies_before = crate::body_copies();
        let body: Vec<u8> = (0..20_000u32).map(|i| i as u8).collect();
        a.send(1, &Frame::data(0, 1, 5, 2, 1, body.clone().into()));
        let (_, got) = b.try_recv().expect("spilled frame pending");
        assert_eq!(got.body, body);
        assert_eq!((got.a, got.b), (5, 2));
        assert!(crate::body_copies() > copies_before, "spill path is counted");
    }

    #[test]
    fn park_wakes_on_doorbell() {
        let (a, b) = pair();
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || {
            let before = counters::snapshot();
            let t0 = Instant::now();
            b2.park(Duration::from_secs(5));
            let waited = t0.elapsed();
            let d = counters::snapshot().since(&before);
            (waited, d.futex_wait)
        });
        std::thread::sleep(Duration::from_millis(50));
        a.send(1, &Frame::ack(0, 1, 9));
        let (waited, futex_waits) = waiter.join().unwrap();
        assert!(waited < Duration::from_secs(4), "woken, not timed out");
        assert_eq!(futex_waits, 1);
        assert!(b.try_recv().is_some());
        // A busy receiver never parks, so the producer never wakes:
        // steady-state messaging costs zero futex syscalls.
        let before = counters::snapshot();
        for _ in 0..32 {
            a.send(1, &Frame::ack(0, 1, 1));
            b.try_recv().unwrap();
        }
        let d = counters::snapshot().since(&before);
        assert_eq!(d.futex_wake + d.futex_wait, 0);
    }

    #[test]
    fn sends_to_dead_procs_are_dropped() {
        let (a, b) = pair();
        a.mark_dead(1);
        for _ in 0..1000 {
            a.send(1, &Frame::ack(0, 1, 1));
        }
        // Ring has 8 slots; 1000 sends didn't block because they were
        // dropped before touching the ring. Nothing was published.
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn attach_rejects_garbage() {
        let fd = MemFd::new("flows-net-junk", 4096 * 4).unwrap();
        assert!(Segment::attach(fd).is_err());
    }
}
