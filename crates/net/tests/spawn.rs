//! Cross-process bring-up and teardown: the leader re-executes this
//! test binary as its children (`child_args` selects the `child_entry`
//! test below), frames cross real process boundaries, and shutdown
//! leaves nothing behind — children reaped, exit codes propagated, the
//! session directory (meta file, sockets) unlinked.

use flows_net::{child_rank, ctrl, Backend, Frame, TopologySpec};
use std::time::Duration;

/// Child-process body: attach, echo every data frame back to its
/// sender, leave on DONE. Not a test of its own — when the file runs
/// normally (no flows-net environment), it returns immediately.
#[test]
fn child_entry() {
    if child_rank().is_none() {
        return;
    }
    let world = flows_net::attach_from_env().expect("child attach");
    loop {
        match world.try_recv() {
            Some((src, f)) => match f.kind {
                flows_net::FrameKind::Data => {
                    world.send(src, &Frame::data(f.dst_pe, f.src_pe, f.a, f.b, f.c, f.body));
                }
                flows_net::FrameKind::Ctrl if f.ctrl == ctrl::DONE => break,
                _ => {}
            },
            None => world.park(Duration::from_millis(50)),
        }
    }
}

/// Child-process body for the exit-status test: attach (so the leader's
/// bring-up completes), then die loudly.
#[test]
fn child_exit_7() {
    if child_rank().is_none() {
        return;
    }
    let _world = flows_net::attach_from_env().expect("child attach");
    std::process::exit(7);
}

fn echo_round_trip(backend: Backend) {
    let world = TopologySpec::new(2, 2)
        .backend(backend)
        .child_args(["child_entry", "--exact", "--nocapture"])
        .launch()
        .expect("launch");
    assert!(world.is_leader());
    assert_eq!(world.num_pes(), 4);
    assert_eq!(world.proc_of_pe(3), 1);
    let dir = world.session_dir().to_path_buf();
    assert!(dir.join("meta").exists(), "meta file written");

    let body: Vec<u8> = (0..150u8).collect();
    world.send(1, &Frame::data(0, 2, 41, 9, 7, body.clone().into()));
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let echo = loop {
        if let Some((src, f)) = world.try_recv() {
            assert_eq!(src, 1);
            break f;
        }
        assert!(std::time::Instant::now() < deadline, "echo never arrived");
        world.park(Duration::from_millis(50));
    };
    assert_eq!((echo.src_pe, echo.dst_pe), (2, 0), "echoed with swapped PEs");
    assert_eq!(echo.body, body);

    world.send(1, &Frame::control(ctrl::DONE, 0, 0, 0, 0, flows_core::Payload::empty()));
    world.shutdown().expect("clean shutdown: child exited zero");
    assert!(!dir.exists(), "session directory unlinked at shutdown");
    assert!(world.poll_children().is_empty(), "all children reaped");
}

#[test]
fn shm_spawn_echo_and_clean_shutdown() {
    echo_round_trip(Backend::Shm);
}

#[test]
fn uds_spawn_echo_and_clean_shutdown() {
    echo_round_trip(Backend::Uds);
}

#[test]
fn tcp_spawn_echo_and_clean_shutdown() {
    echo_round_trip(Backend::Tcp);
}

#[test]
fn nonzero_child_exit_is_propagated() {
    let world = TopologySpec::new(2, 1)
        .backend(Backend::Uds)
        .child_args(["child_exit_7", "--exact", "--nocapture"])
        .launch()
        .expect("launch");
    let err = world.shutdown().expect_err("child exited 7");
    assert!(err.contains('7'), "exit code surfaces in the error: {err}");
}
