//! Exhaustive interleaving checks of the shm slot-ring protocol.
//!
//! The model mirrors `crates/net/src/shm.rs`: a producer writes slot
//! bytes then publishes `SLOT_FULL` (Release — modeled as data-before-
//! flag step order), the consumer is gated on observing FULL (Acquire)
//! and stores `SLOT_FREE` when the payload view drops, and a full ring
//! blocks the producer in `wait_free` (modeled as a guarded step). The
//! explorer runs every schedule under sequential consistency; the
//! Relaxed variant is modeled as the legally-reordered program
//! (flag-before-data), which is exactly the program the weak hardware
//! may execute — the `atomic-protocol` lint flags the same mistake
//! statically.

use flows_check::interleave::{Explorer, Step};

/// One-slot SPSC ring carrying two messages: slot reuse forces the
/// consumer's FREE store and the producer's `wait_free` gate into play.
#[derive(Clone, Default)]
struct Ring1 {
    data: u64,
    full: bool,
    got: Vec<u64>,
}

fn ring1_in_order(s: &Ring1) -> Result<(), String> {
    if s.got.is_empty() || s.got == [1] || s.got == [1, 2] {
        Ok(())
    } else {
        Err(format!("consumer saw {:?}", s.got))
    }
}

#[test]
fn release_publish_passes_every_schedule() {
    let ex = Explorer::new(vec![
        // Producer: send(1), wait_free, send(2) — body bytes land
        // before the Release FULL store, as in `ShmTransport::send`.
        vec![
            Step::new("write-1", |s: &mut Ring1| s.data = 1),
            Step::new("publish-full-1", |s| s.full = true),
            Step::guarded("wait-free", |s| !s.full, |_| {}),
            Step::new("write-2", |s| s.data = 2),
            Step::new("publish-full-2", |s| s.full = true),
        ],
        // Consumer: try_recv gated on the Acquire FULL load; the FREE
        // store models the SlotRegion drop.
        vec![
            Step::guarded("consume-1", |s| s.full, |s| {
                s.got.push(s.data);
                s.full = false;
            }),
            Step::guarded("consume-2", |s| s.full, |s| {
                s.got.push(s.data);
                s.full = false;
            }),
        ],
    ]);
    let n = ex.check(&Ring1::default(), ring1_in_order).expect("protocol is clean");
    assert!(n >= 1, "explored at least one complete schedule");
}

#[test]
fn relaxed_publish_is_caught_as_stale_read() {
    // A Relaxed FULL store may reorder ahead of the body writes; the
    // model therefore publishes the flag first. The explorer must find
    // the schedule where the consumer reads the slot before the bytes
    // arrive — the dynamic twin of the atomic-protocol lint finding.
    let ex = Explorer::new(vec![
        vec![
            Step::new("publish-full-relaxed", |s: &mut Ring1| s.full = true),
            Step::new("write-1", |s| s.data = 1),
        ],
        vec![Step::guarded("consume", |s| s.full, |s| {
            s.got.push(s.data);
            s.full = false;
        })],
    ]);
    let v = ex
        .check(&Ring1::default(), |s| {
            if s.got.first() == Some(&0) {
                Err("consumed slot bytes before the producer wrote them".into())
            } else {
                Ok(())
            }
        })
        .expect_err("stale read must be discoverable");
    assert!(
        v.schedule.iter().any(|step| step.contains("consume")),
        "violating schedule runs the consumer inside the window: {v}"
    );
}

/// Two-slot ring carrying three messages: the third send wraps onto
/// slot 0 and must block in `wait_free` until the consumer frees it.
#[derive(Clone, Default)]
struct Ring2 {
    full: [bool; 2],
    data: [u64; 2],
    got: Vec<u64>,
}

#[test]
fn wraparound_backpressure_keeps_order_and_never_deadlocks() {
    let ex = Explorer::new(vec![
        vec![
            Step::new("write-1", |s: &mut Ring2| s.data[0] = 1),
            Step::new("publish-1", |s| s.full[0] = true),
            Step::new("write-2", |s| s.data[1] = 2),
            Step::new("publish-2", |s| s.full[1] = true),
            // Ring wrapped: slot 0 must come back FREE first.
            Step::guarded("wait-free-0", |s| !s.full[0], |_| {}),
            Step::new("write-3", |s| s.data[0] = 3),
            Step::new("publish-3", |s| s.full[0] = true),
        ],
        // Consumer walks heads in order 0, 1, 0 — as try_recv does.
        vec![
            Step::guarded("consume-0", |s| s.full[0], |s| {
                s.got.push(s.data[0]);
                s.full[0] = false;
            }),
            Step::guarded("consume-1", |s| s.full[1], |s| {
                s.got.push(s.data[1]);
                s.full[1] = false;
            }),
            Step::guarded("consume-0-again", |s| s.full[0], |s| {
                s.got.push(s.data[0]);
                s.full[0] = false;
            }),
        ],
    ]);
    // A deadlock (producer stuck in wait_free, consumer stuck on an
    // empty slot) would surface as a Violation; order must hold too.
    let n = ex
        .check(&Ring2::default(), |s| {
            if s.got.is_empty() || s.got == [1] || s.got == [1, 2] || s.got == [1, 2, 3] {
                Ok(())
            } else {
                Err(format!("out-of-order delivery {:?}", s.got))
            }
        })
        .expect("wraparound protocol is clean");
    assert!(n >= 1);
}
