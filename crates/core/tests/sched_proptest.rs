//! Property tests on the scheduler and migration: random flavor mixes,
//! random yield/suspend patterns and random migration points must never
//! lose work or corrupt results.

use flows_core::{
    migrate::migrate, suspend, yield_now, SchedConfig, Scheduler, SharedPools, StackFlavor,
    ThreadState,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn flavor_of(i: u8) -> StackFlavor {
    StackFlavor::ALL[(i % 4) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads of random flavors each do a random number of yields and
    /// then report; every thread completes exactly once and the scheduler
    /// ends empty.
    #[test]
    fn random_flavor_mix_always_completes(
        specs in proptest::collection::vec((any::<u8>(), 1usize..12), 1..20)
    ) {
        let s = Scheduler::new(0, SharedPools::new_for_tests(), SchedConfig::default());
        let done: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, (fl, yields)) in specs.iter().enumerate() {
            let done = done.clone();
            let yields = *yields;
            s.spawn(flavor_of(*fl), move || {
                for _ in 0..yields {
                    yield_now();
                }
                done.borrow_mut().push(i);
            }).unwrap();
        }
        s.run();
        let mut d = done.borrow().clone();
        d.sort();
        prop_assert_eq!(d, (0..specs.len()).collect::<Vec<_>>());
        prop_assert_eq!(s.thread_count(), 0);
        prop_assert_eq!(s.stats().completed, specs.len() as u64);
    }

    /// Threads suspend at random points; migrating a random subset to a
    /// second PE and finishing there must preserve every accumulator.
    #[test]
    fn random_migrations_preserve_results(
        specs in proptest::collection::vec((0u8..3, 1u64..50, any::<bool>()), 1..12)
    ) {
        let shared = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
        let pe1 = Scheduler::new(1, shared, SchedConfig::default());
        let results: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let migratable = [StackFlavor::StackCopy, StackFlavor::Isomalloc, StackFlavor::Alias];
        let mut tids = Vec::new();
        for &(fl, work, _) in &specs {
            let results = results.clone();
            let tid = pe0.spawn(migratable[(fl % 3) as usize], move || {
                let mut acc: u64 = (0..work).sum();
                suspend(); // migration may happen here
                acc += (work..2 * work).sum::<u64>();
                results.borrow_mut().push(acc);
            }).unwrap();
            tids.push(tid);
        }
        pe0.run(); // all suspended
        for (tid, &(_, _, move_it)) in tids.iter().zip(&specs) {
            prop_assert_eq!(pe0.state(*tid), Some(ThreadState::Suspended));
            if move_it {
                migrate(&pe0, &pe1, *tid).unwrap();
                pe1.awaken_tid(*tid).unwrap();
            } else {
                pe0.awaken_tid(*tid).unwrap();
            }
        }
        pe0.run();
        pe1.run();
        let mut got = results.borrow().clone();
        got.sort_unstable();
        let mut expect: Vec<u64> = specs.iter().map(|&(_, w, _)| (0..2 * w).sum()).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(pe0.thread_count() + pe1.thread_count(), 0);
    }

    /// The full steal protocol under randomness: whatever mix of flavors,
    /// warm-up steps and yield counts, a request → donate → absorb round
    /// between two schedulers never loses or duplicates a thread, leaves
    /// nothing in flight, and both PEs drain to empty.
    #[test]
    fn steal_protocol_never_loses_threads(
        specs in proptest::collection::vec((any::<u8>(), 1usize..10), 2..24),
        warmup in 0usize..30,
    ) {
        let shared = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
        let pe1 = Scheduler::new(1, shared.clone(), SchedConfig::default());
        let done: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &(fl, yields)) in specs.iter().enumerate() {
            let done = done.clone();
            pe0.spawn(flavor_of(fl), move || {
                for _ in 0..yields {
                    yield_now();
                }
                done.borrow_mut().push(i);
            }).unwrap();
        }
        // Random warm-up: some threads start (become stealable), some may
        // already finish, some never run before the steal.
        for _ in 0..warmup {
            if !pe0.step() {
                break;
            }
        }
        let mesh = shared.steal();
        mesh.request(0, 1);
        let donated = pe0.donate_steals();
        let absorbed = pe1.absorb_steals();
        if donated != 0 {
            prop_assert!(absorbed > 0, "a donation bitmask implies threads moved");
        }
        prop_assert_eq!(mesh.in_flight(), 0, "absorb drained the inbox");
        pe0.run();
        pe1.run();
        let mut d = done.borrow().clone();
        d.sort_unstable();
        prop_assert_eq!(d, (0..specs.len()).collect::<Vec<_>>());
        prop_assert_eq!(pe0.thread_count() + pe1.thread_count(), 0);
        let s0 = pe0.stats();
        let s1 = pe1.stats();
        prop_assert_eq!(s0.migrations_out, s1.migrations_in);
        prop_assert_eq!(s0.completed + s1.completed, specs.len() as u64);
    }

    /// Priorities: whatever the spawn order, strictly higher-priority
    /// (lower-valued) non-yielding threads finish in priority order.
    #[test]
    fn priority_order_is_respected(prios in proptest::collection::vec(-20i32..20, 2..15)) {
        let s = Scheduler::new(0, SharedPools::new_for_tests(), SchedConfig::default());
        let order: Rc<RefCell<Vec<i32>>> = Rc::new(RefCell::new(Vec::new()));
        for &p in &prios {
            let order = order.clone();
            s.spawn_prio(StackFlavor::Standard, 32 * 1024, p, move || {
                order.borrow_mut().push(p);
            }).unwrap();
        }
        s.run();
        let got = order.borrow().clone();
        let mut expect = prios.clone();
        expect.sort(); // stable: equal priorities keep spawn order
        prop_assert_eq!(got, expect);
    }
}
