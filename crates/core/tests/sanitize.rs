//! Scheduler-level sanitizer tests: each drives a real lifecycle or
//! memory violation through the scheduler and asserts the matching
//! detector fires — as a panic (`set_trip_panics`) and, where the trip
//! happens on a thread-side stack that catches unwinds, as the
//! `SanTrip` trace event it leaves behind.

#![cfg(feature = "sanitize")]

use flows_core::migrate::{assert_slot_vacated, checked_pack_into};
use flows_core::scheduler::current_stack_floor;
use flows_core::{
    awaken, current, migrate, suspend, yield_now, SchedConfig, Scheduler, SharedPools,
    StackFlavor,
};
use flows_pup::{Pup, Puper};
use flows_trace::san::{set_trip_panics, SanCheck};
use flows_trace::{install_ring, set_enabled, EventKind, TraceRing};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn sched() -> Scheduler {
    Scheduler::new(0, SharedPools::new_for_tests(), SchedConfig::default())
}

fn trip_message(r: std::thread::Result<()>) -> String {
    let err = r.expect_err("the detector must fire");
    err.downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into())
}

#[test]
fn smashed_stack_canary_trips_at_switch_out() {
    set_trip_panics(true);
    for flavor in [StackFlavor::Standard, StackFlavor::Isomalloc] {
        let s = sched();
        s.spawn(flavor, || {
            let floor = current_stack_floor().expect("dedicated-stack flavor");
            // SAFETY: the floor word is committed stack memory; this
            // models a stack overflow reaching the bottom of the stack.
            unsafe { (floor as *mut u64).write_unaligned(0) };
            yield_now();
        })
        .unwrap();
        let msg = trip_message(catch_unwind(AssertUnwindSafe(|| s.run())));
        assert!(msg.contains("stack-canary"), "{}: got {msg}", flavor.name());
    }
}

#[test]
fn clean_threads_never_trip_the_canary() {
    set_trip_panics(true);
    let s = sched();
    for _ in 0..4 {
        s.spawn(StackFlavor::Isomalloc, || {
            let v = vec![7u8; 4096];
            yield_now();
            assert_eq!(v[0], 7);
        })
        .unwrap();
    }
    s.run();
    assert_eq!(s.stats().completed, 4);
}

#[test]
fn awaken_of_the_running_thread_trips_double_awaken() {
    set_trip_panics(true);
    let ring = Arc::new(TraceRing::new(0, 256));
    set_enabled(true);
    let trips: Vec<_> = {
        let _g = install_ring(&ring);
        let s = sched();
        s.spawn(StackFlavor::Standard, || {
            // The trip panics on the thread's own stack, so thread_main's
            // panic guard swallows it — the trace event is the witness.
            let me = current().unwrap();
            let _ = awaken(me);
        })
        .unwrap();
        s.run();
        ring.events()
            .into_iter()
            .filter(|e| e.kind == EventKind::SanTrip)
            .collect()
    };
    set_enabled(false);
    assert_eq!(trips.len(), 1, "exactly one trip recorded");
    assert_eq!(trips[0].a, SanCheck::DoubleAwaken as u64);
}

#[test]
fn awaken_of_an_exited_thread_trips_use_after_exit() {
    set_trip_panics(true);
    let s = sched();
    let tid = s.spawn(StackFlavor::Standard, suspend).unwrap();
    s.run(); // runs until the thread suspends
    assert_eq!(s.state(tid), Some(flows_core::ThreadState::Suspended));
    s.sanitize_force_done(tid);
    let msg = trip_message(catch_unwind(AssertUnwindSafe(|| {
        let _ = s.awaken_tid(tid);
    })));
    assert!(msg.contains("use-after-exit"), "got: {msg}");
}

/// A `Pup` impl whose packing traversal writes more than its sizing
/// traversal declared — the exact bug the validator exists to catch.
#[derive(Default)]
struct LyingPup;
impl Pup for LyingPup {
    fn pup(&mut self, p: &mut Puper) {
        let mut a = 1u32;
        a.pup(p);
        if p.is_packing() {
            let mut extra = 2u32;
            extra.pup(p);
        }
    }
}

#[test]
fn lying_pup_size_trips_the_validator() {
    set_trip_panics(true);
    let mut honest = 5u64;
    let mut out = Vec::new();
    assert_eq!(checked_pack_into(&mut honest, &mut out), 8);
    let msg = trip_message(catch_unwind(AssertUnwindSafe(|| {
        let mut v = LyingPup;
        let mut out = Vec::new();
        checked_pack_into(&mut v, &mut out);
    })));
    assert!(msg.contains("pup-size"), "got: {msg}");
}

#[test]
fn readable_vacated_slot_trips() {
    set_trip_panics(true);
    // A slot that is plainly still mapped read-write: this stack page.
    let probe = 0u64;
    let page = (&probe as *const u64 as usize) & !4095;
    let msg = trip_message(catch_unwind(AssertUnwindSafe(|| {
        assert_slot_vacated(page, 4096);
    })));
    assert!(msg.contains("vacated-slot"), "got: {msg}");
}

#[test]
fn steal_and_slot_adoption_under_sanitize_round_trip() {
    // The whole steal path — tail steal off the run queue, pack, mesh
    // transit, absorb + slot adoption on the thief — with every sanitize
    // detector armed: canaries re-verified each switch, vacated-slot
    // checks at pack, PUP size validation on every head, eager reclaim
    // (high-water 0) so adoption always crosses the evict path.
    set_trip_panics(true);
    let shared = SharedPools::new_for_tests();
    let s0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let s1 = Scheduler::new(1, shared.clone(), SchedConfig::default());
    let done = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for flavor in [StackFlavor::Isomalloc, StackFlavor::Alias] {
        for _ in 0..6 {
            let done = done.clone();
            s0.spawn(flavor, move || {
                // Live stack + heap state that must survive the steal.
                let stack_word = 0xA5A5_5A5Au64;
                let heap = (flavor == StackFlavor::Isomalloc).then(|| {
                    let p = flows_core::iso_malloc(512).unwrap();
                    // SAFETY: freshly allocated from this thread's heap.
                    unsafe { std::ptr::write_bytes(p, 0x77, 512) };
                    p
                });
                for _ in 0..6 {
                    yield_now();
                }
                assert_eq!(stack_word, 0xA5A5_5A5Au64);
                if let Some(p) = heap {
                    // SAFETY: allocation above; address survives the move.
                    unsafe { assert_eq!(*p, 0x77) };
                    assert!(flows_core::iso_free(p));
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            })
            .unwrap();
        }
    }
    // Start every thread (unstarted threads are not stealable), then run
    // repeated steal rounds while both schedulers keep draining.
    for _ in 0..12 {
        s0.step();
    }
    let mesh = shared.steal();
    let mut stolen_total = 0u64;
    for _ in 0..8 {
        mesh.request(0, 1);
        s0.donate_steals();
        stolen_total += s1.absorb_steals() as u64;
        s0.step();
        s1.step();
    }
    assert_eq!(mesh.in_flight(), 0);
    s0.run();
    s1.run();
    assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), 12);
    assert_eq!(s0.thread_count() + s1.thread_count(), 0);
    assert!(stolen_total > 0, "rounds above must actually move threads");
    assert_eq!(s1.stats().migrations_in, stolen_total);
}

#[test]
fn migration_under_sanitize_round_trips() {
    set_trip_panics(true);
    let shared = SharedPools::new_for_tests();
    let s0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let s1 = Scheduler::new(1, shared, SchedConfig::default());
    let tid = s0
        .spawn(StackFlavor::Isomalloc, || {
            let p = flows_core::iso_malloc(4096).unwrap();
            // SAFETY: freshly allocated from this thread's heap.
            unsafe { std::ptr::write_bytes(p, 0x3C, 4096) };
            suspend();
            // SAFETY: isomalloc addresses survive migration unchanged.
            unsafe { assert_eq!(*p, 0x3C) };
            assert!(flows_core::iso_free(p));
        })
        .unwrap();
    s0.run(); // thread suspends after touching its heap
    migrate::migrate(&s0, &s1, tid).unwrap(); // pack verifies the vacated slot
    s1.awaken_tid(tid).unwrap();
    s1.run();
    assert_eq!(s1.stats().completed, 1);
}
