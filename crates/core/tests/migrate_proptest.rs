//! Property tests on the migration wire format: batched head++payload
//! records must frame and parse exactly, and a hostile buffer — truncated
//! anywhere, or with any byte flipped — must come back as an `Err`, never
//! a panic or a bogus thread.

use flows_core::{
    suspend, PackedThread, Payload, SchedConfig, Scheduler, SharedPools, StackFlavor,
};
use proptest::prelude::*;

/// Pack `n` real threads (alternating migratable flavors) into wire
/// records. Built per test case so each case owns fresh schedulers.
fn packed_threads(n: usize) -> Vec<PackedThread> {
    let s = Scheduler::new(0, SharedPools::new_for_tests(), SchedConfig::default());
    let mut tids = Vec::new();
    for i in 0..n {
        let flavor = if i % 2 == 0 {
            StackFlavor::Isomalloc
        } else {
            StackFlavor::StackCopy
        };
        let tid = s
            .spawn(flavor, move || {
                // Give each image a distinct live-stack footprint.
                let pad = vec![i as u8; 64 + 64 * i];
                suspend();
                drop(pad);
            })
            .unwrap();
        tids.push(tid);
    }
    s.run(); // every thread suspends
    tids.iter().map(|&t| s.pack_thread(t).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concatenating records and walking them back with `from_payload`
    /// recovers every thread at the right offset, consuming exactly the
    /// bytes each record wrote.
    #[test]
    fn batched_records_frame_and_parse_exactly(n in 1usize..5) {
        let packed = packed_threads(n);
        let mut wire = Vec::new();
        let mut lens = Vec::new();
        for p in &packed {
            lens.push(p.pack_into(&mut wire));
        }
        let wire = Payload::from_vec(wire);
        let mut off = 0;
        for (p, &len) in packed.iter().zip(&lens) {
            let (back, used) = PackedThread::from_payload(&wire, off).unwrap();
            prop_assert_eq!(used, len, "record must consume the bytes it wrote");
            prop_assert_eq!(back.id(), p.id());
            prop_assert_eq!(back.payload_len(), p.payload_len());
            prop_assert_eq!(back.payload().as_slice(), p.payload().as_slice());
            off += used;
        }
        prop_assert_eq!(off, wire.len(), "no trailing bytes");
    }

    /// Truncating a valid image anywhere must produce an error, not a
    /// panic — and never a silently short thread.
    #[test]
    fn truncated_images_error_never_panic(cut_frac in 0.0f64..1.0) {
        let packed = packed_threads(1).pop().unwrap();
        let bytes = packed.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(PackedThread::from_bytes(&bytes[..cut]).is_err());
            let short = Payload::from_vec(bytes[..cut].to_vec());
            prop_assert!(PackedThread::from_payload(&short, 0).is_err());
        }
    }

    /// Flipping any byte of a valid image must never panic; if it still
    /// parses, the framing invariants must still hold.
    #[test]
    fn corrupted_images_never_panic(idx_frac in 0.0f64..1.0, flip in 1u32..256) {
        let packed = packed_threads(1).pop().unwrap();
        let mut bytes = packed.to_bytes();
        let idx = ((bytes.len() as f64) * idx_frac) as usize % bytes.len();
        bytes[idx] ^= flip as u8;
        match PackedThread::from_bytes(&bytes) {
            Err(_) => {}
            Ok(p) => {
                // A flip in the raw payload tail parses fine; the head's
                // framing fields must still be self-consistent.
                prop_assert_eq!(p.to_bytes().len(), bytes.len());
            }
        }
    }
}
